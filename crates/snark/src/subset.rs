//! The **generalized subset task** — the family of NP-complete problems
//! (generalizing Subset-Sum and Subset-Product) that §1.2 of the paper
//! connects to SRDS: constructing SRDS from multi-signatures in weak PKI
//! models would yield average-case SNARGs for exactly these problems.
//!
//! This module provides the language (over the field `F_{2^61−1}`), a
//! planted average-case instance sampler, an exact solver for small
//! instances, and a SNARG for the language built on the simulated SNARK —
//! letting the benchmark harness (experiment E7 in DESIGN.md) measure the
//! proof-size-vs-witness-size separation the paper's barrier argument turns
//! on.
//!
//! # Examples
//!
//! ```
//! use pba_snark::subset::{SubsetInstance, SubsetOp};
//! use pba_crypto::prg::Prg;
//!
//! let mut prg = Prg::from_seed_bytes(b"instance");
//! let (instance, witness) = SubsetInstance::sample_planted(SubsetOp::Sum, 20, &mut prg);
//! assert!(instance.check(&witness));
//! ```

use crate::system::{Proof, ProveError, Relation, SnarkCrs, SnarkSystem};
use pba_crypto::field::Fp;
use pba_crypto::prg::Prg;
use std::fmt;

/// The monoid operation defining the subset task variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SubsetOp {
    /// Subset-Sum over `F_p` (identity 0, operation +).
    Sum,
    /// Subset-Product over `F_p` (identity 1, operation ×).
    Product,
}

impl SubsetOp {
    /// The identity element of the operation.
    pub fn identity(&self) -> Fp {
        match self {
            SubsetOp::Sum => Fp::ZERO,
            SubsetOp::Product => Fp::ONE,
        }
    }

    /// Applies the operation.
    pub fn apply(&self, a: Fp, b: Fp) -> Fp {
        match self {
            SubsetOp::Sum => a + b,
            SubsetOp::Product => a * b,
        }
    }
}

impl fmt::Display for SubsetOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubsetOp::Sum => f.write_str("subset-sum"),
            SubsetOp::Product => f.write_str("subset-product"),
        }
    }
}

/// An instance of the generalized subset task: elements `a_1 … a_k` and a
/// target `T`; the question is whether some **nonempty** subset `S` has
/// `⊙_{i∈S} a_i = T`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubsetInstance {
    /// Which monoid the task is over.
    pub op: SubsetOp,
    /// The element list.
    pub elements: Vec<Fp>,
    /// The target value.
    pub target: Fp,
}

impl SubsetInstance {
    /// Samples a planted average-case instance: uniform elements, a uniform
    /// nonempty subset as the planted witness, target derived from it.
    ///
    /// Returns the instance and the planted witness (a selection bitmap).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn sample_planted(op: SubsetOp, k: usize, prg: &mut Prg) -> (SubsetInstance, Vec<bool>) {
        assert!(k > 0, "instance needs at least one element");
        let elements: Vec<Fp> = (0..k).map(|_| Fp::random(prg)).collect();
        let mut witness: Vec<bool> = (0..k).map(|_| prg.gen_bool_ratio(1, 2)).collect();
        if !witness.iter().any(|&b| b) {
            witness[prg.gen_range(k as u64) as usize] = true;
        }
        let target = fold(op, &elements, &witness);
        (
            SubsetInstance {
                op,
                elements,
                target,
            },
            witness,
        )
    }

    /// Checks a candidate witness: nonempty selection folding to the target.
    pub fn check(&self, witness: &[bool]) -> bool {
        witness.len() == self.elements.len()
            && witness.iter().any(|&b| b)
            && fold(self.op, &self.elements, witness) == self.target
    }

    /// Exhaustively searches for a witness. Exponential in `k`; intended for
    /// tests and small-instance validation.
    ///
    /// # Panics
    ///
    /// Panics if `k > 24` (over 16M subsets).
    pub fn solve_exhaustive(&self) -> Option<Vec<bool>> {
        let k = self.elements.len();
        assert!(k <= 24, "exhaustive search capped at k=24, got {k}");
        for mask in 1u32..(1u32 << k) {
            let witness: Vec<bool> = (0..k).map(|i| mask >> i & 1 == 1).collect();
            if fold(self.op, &self.elements, &witness) == self.target {
                return Some(witness);
            }
        }
        None
    }

    /// Witness size in bits (what a trivial NP proof would ship).
    pub fn witness_bits(&self) -> usize {
        self.elements.len()
    }
}

fn fold(op: SubsetOp, elements: &[Fp], witness: &[bool]) -> Fp {
    elements
        .iter()
        .zip(witness)
        .filter(|(_, &b)| b)
        .fold(op.identity(), |acc, (&a, _)| op.apply(acc, a))
}

/// The NP relation for the subset task (statement = instance, witness =
/// selection bitmap).
#[derive(Clone, Copy, Debug, Default)]
pub struct SubsetRelation;

impl Relation for SubsetRelation {
    type Statement = SubsetInstance;
    type Witness = Vec<bool>;

    fn id(&self) -> &'static str {
        "generalized-subset-task"
    }

    fn check(&self, statement: &SubsetInstance, witness: &Vec<bool>) -> bool {
        statement.check(witness)
    }

    fn encode_statement(&self, s: &SubsetInstance, buf: &mut Vec<u8>) {
        buf.push(match s.op {
            SubsetOp::Sum => 0,
            SubsetOp::Product => 1,
        });
        buf.extend_from_slice(&(s.elements.len() as u64).to_le_bytes());
        for e in &s.elements {
            buf.extend_from_slice(&e.value().to_le_bytes());
        }
        buf.extend_from_slice(&s.target.value().to_le_bytes());
    }
}

/// A SNARG for the generalized subset task: 32-byte proofs for witnesses of
/// any length.
pub type SubsetSnarg = SnarkSystem<SubsetRelation>;

/// Convenience constructor for the subset-task SNARG.
pub fn subset_snarg(crs: SnarkCrs) -> SubsetSnarg {
    SnarkSystem::new(crs, SubsetRelation)
}

/// Proves a planted instance, returning `(proof, witness_bits, proof_bytes)`
/// for size-separation reporting.
///
/// # Errors
///
/// Propagates [`ProveError`] if the witness is invalid.
pub fn prove_with_sizes(
    snarg: &SubsetSnarg,
    instance: &SubsetInstance,
    witness: &Vec<bool>,
) -> Result<(Proof, usize, usize), ProveError> {
    let proof = snarg.prove(instance, witness)?;
    Ok((proof, instance.witness_bits(), Proof::LEN))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_instances_check() {
        let mut prg = Prg::from_seed_bytes(b"p");
        for op in [SubsetOp::Sum, SubsetOp::Product] {
            for k in [1usize, 2, 5, 50, 200] {
                let (inst, wit) = SubsetInstance::sample_planted(op, k, &mut prg);
                assert!(inst.check(&wit), "op={op} k={k}");
            }
        }
    }

    #[test]
    fn empty_selection_rejected() {
        let mut prg = Prg::from_seed_bytes(b"e");
        let (mut inst, _) = SubsetInstance::sample_planted(SubsetOp::Sum, 4, &mut prg);
        inst.target = Fp::ZERO; // empty subset "sums" to 0, but must be rejected
        assert!(!inst.check(&[false; 4]));
    }

    #[test]
    fn wrong_length_witness_rejected() {
        let mut prg = Prg::from_seed_bytes(b"w");
        let (inst, wit) = SubsetInstance::sample_planted(SubsetOp::Sum, 5, &mut prg);
        assert!(!inst.check(&wit[..4]));
    }

    #[test]
    fn exhaustive_solver_finds_planted() {
        let mut prg = Prg::from_seed_bytes(b"s");
        for op in [SubsetOp::Sum, SubsetOp::Product] {
            let (inst, _) = SubsetInstance::sample_planted(op, 12, &mut prg);
            let found = inst.solve_exhaustive().expect("planted instance solvable");
            assert!(inst.check(&found));
        }
    }

    #[test]
    fn unsatisfiable_instance_unsolved() {
        // With random target, a k=10 instance has ~1023/p chance of being
        // satisfiable — effectively zero.
        let mut prg = Prg::from_seed_bytes(b"u");
        let inst = SubsetInstance {
            op: SubsetOp::Sum,
            elements: (0..10).map(|_| Fp::random(&mut prg)).collect(),
            target: Fp::random(&mut prg),
        };
        assert_eq!(inst.solve_exhaustive(), None);
    }

    #[test]
    fn snarg_roundtrip_and_sizes() {
        let mut prg = Prg::from_seed_bytes(b"g");
        let snarg = subset_snarg(SnarkCrs::setup(b"subset-crs"));
        let (inst, wit) = SubsetInstance::sample_planted(SubsetOp::Product, 500, &mut prg);
        let (proof, wbits, pbytes) = prove_with_sizes(&snarg, &inst, &wit).unwrap();
        assert!(snarg.verify(&inst, &proof));
        assert_eq!(wbits, 500);
        assert_eq!(pbytes, 32); // succinct: 32 bytes vs 500-bit witness
    }

    #[test]
    fn snarg_rejects_bad_witness() {
        let mut prg = Prg::from_seed_bytes(b"b");
        let snarg = subset_snarg(SnarkCrs::setup(b"subset-crs"));
        let (inst, mut wit) = SubsetInstance::sample_planted(SubsetOp::Sum, 20, &mut prg);
        // Flip a bit: overwhelmingly no longer a witness.
        wit[0] = !wit[0];
        if !inst.check(&wit) {
            assert!(snarg.prove(&inst, &wit).is_err());
        }
    }

    #[test]
    fn proof_not_transferable_across_instances() {
        let mut prg = Prg::from_seed_bytes(b"t");
        let snarg = subset_snarg(SnarkCrs::setup(b"subset-crs"));
        let (i1, w1) = SubsetInstance::sample_planted(SubsetOp::Sum, 8, &mut prg);
        let (i2, _) = SubsetInstance::sample_planted(SubsetOp::Sum, 8, &mut prg);
        let p = snarg.prove(&i1, &w1).unwrap();
        assert!(!snarg.verify(&i2, &p));
    }
}
