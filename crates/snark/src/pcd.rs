//! Proof-carrying data (PCD) for bounded-depth DAGs, in the style of
//! Chiesa–Tromer and Bitansky–Canetti–Chiesa–Tromer (STOC '13).
//!
//! A PCD system lets distributed parties pass messages up a communication
//! DAG while maintaining a succinct, publicly verifiable proof that the
//! entire history of the computation is *compliant* with a predicate. The
//! paper uses PCD (obtainable from SNARKs with linear extraction) to let
//! tree nodes prove "my count aggregates this many distinct valid base
//! signatures" without shipping the signatures themselves.
//!
//! Built on the simulated SNARK of [`crate::system`] (see that module and
//! DESIGN.md §2 for exactly what the simulation preserves): proving for
//! message `z` requires PCD-verifying every input proof and checking the
//! compliance predicate `Π(z; inputs, local)` — so an accepted proof
//! inductively attests a fully compliant transcript — and proofs stay
//! 32 bytes at every depth, which is the succinctness property the SRDS
//! construction consumes.
//!
//! # Examples
//!
//! ```
//! use pba_snark::pcd::{CompliancePredicate, PcdSystem};
//! use pba_snark::system::SnarkCrs;
//!
//! /// Messages are counters; a step may increase the sum of inputs by at
//! /// most 1 (sources start at ≤ 1).
//! struct Counting;
//! impl CompliancePredicate for Counting {
//!     type Message = u64;
//!     fn id(&self) -> &'static str { "counting" }
//!     fn check(&self, output: &u64, inputs: &[u64], _local: &[u8]) -> bool {
//!         *output <= inputs.iter().sum::<u64>() + 1
//!     }
//!     fn encode_message(&self, m: &u64, buf: &mut Vec<u8>) {
//!         buf.extend_from_slice(&m.to_le_bytes());
//!     }
//! }
//!
//! let pcd = PcdSystem::new(SnarkCrs::setup(b"crs"), Counting);
//! let p1 = pcd.prove(&1, &[], b"")?;          // source: count 1
//! let p2 = pcd.prove(&1, &[], b"")?;          // source: count 1
//! let joined = pcd.prove(&3, &[(&1, &p1), (&1, &p2)], b"")?; // 1+1+1
//! assert!(pcd.verify(&3, &joined));
//! assert!(pcd.prove(&5, &[(&1, &p1)], b"").is_err()); // over-counting
//! # Ok::<(), pba_snark::pcd::PcdError>(())
//! ```

use crate::system::SnarkCrs;
use pba_crypto::codec::{CodecError, Decode, Encode, Reader};
use pba_crypto::sha256::{Digest, Sha256};
use std::fmt;

/// A compliance predicate `Π(z_out; z_in*, local)` over DAG messages.
pub trait CompliancePredicate {
    /// The message type carried on DAG edges.
    type Message;

    /// Stable identifier, mixed into every proof.
    fn id(&self) -> &'static str;

    /// Whether `output` is a compliant successor of `inputs` with private
    /// auxiliary data `local`.
    fn check(&self, output: &Self::Message, inputs: &[Self::Message], local: &[u8]) -> bool;

    /// Canonical message encoding (what proofs bind to).
    fn encode_message(&self, message: &Self::Message, buf: &mut Vec<u8>);
}

/// A succinct PCD proof — 32 bytes at every DAG depth.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PcdProof(Digest);

impl PcdProof {
    /// Wire size of any PCD proof.
    pub const LEN: usize = 32;

    /// Raw bytes (adversarial mangling in experiments).
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }

    /// Builds a (candidate) proof from raw bytes; verification will reject
    /// anything not produced by [`PcdSystem::prove`].
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        PcdProof(Digest::new(bytes))
    }
}

impl fmt::Debug for PcdProof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PcdProof({}..)", &self.0.to_hex()[..8])
    }
}

impl Encode for PcdProof {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        Self::LEN
    }
}

impl Decode for PcdProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PcdProof(Digest::decode(r)?))
    }
}

/// Errors from [`PcdSystem::prove`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PcdError {
    /// Input proof at the given position failed verification.
    InvalidInputProof(usize),
    /// The compliance predicate rejected the step.
    NotCompliant,
}

impl fmt::Display for PcdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcdError::InvalidInputProof(i) => write!(f, "input proof {i} failed verification"),
            PcdError::NotCompliant => f.write_str("compliance predicate rejected the step"),
        }
    }
}

impl std::error::Error for PcdError {}

/// A PCD system for a fixed compliance predicate under a fixed CRS.
#[derive(Clone, Debug)]
pub struct PcdSystem<C> {
    crs: SnarkCrs,
    predicate: C,
}

impl<C: CompliancePredicate> PcdSystem<C>
where
    C::Message: Clone,
{
    /// Binds a compliance predicate to a CRS.
    pub fn new(crs: SnarkCrs, predicate: C) -> Self {
        PcdSystem { crs, predicate }
    }

    /// The predicate.
    pub fn predicate(&self) -> &C {
        &self.predicate
    }

    /// The CRS.
    pub fn crs(&self) -> &SnarkCrs {
        &self.crs
    }

    fn message_digest(&self, message: &C::Message) -> Digest {
        let mut buf = Vec::new();
        self.predicate.encode_message(message, &mut buf);
        let mut h = Sha256::new();
        h.update(b"pba-pcd-msg");
        h.update(self.crs.public_id().as_bytes());
        h.update(self.predicate.id().as_bytes());
        h.update(&[0]);
        h.update(&buf);
        h.finalize()
    }

    /// Proves that `output` is the result of a compliant DAG step consuming
    /// `inputs` (message/proof pairs) with auxiliary data `local`.
    ///
    /// Source nodes pass an empty `inputs` slice.
    ///
    /// # Errors
    ///
    /// * [`PcdError::InvalidInputProof`] — some input proof does not verify;
    /// * [`PcdError::NotCompliant`] — the predicate rejects the step.
    pub fn prove(
        &self,
        output: &C::Message,
        inputs: &[(&C::Message, &PcdProof)],
        local: &[u8],
    ) -> Result<PcdProof, PcdError> {
        for (i, (msg, proof)) in inputs.iter().enumerate() {
            if !self.verify(msg, proof) {
                return Err(PcdError::InvalidInputProof(i));
            }
        }
        let input_msgs: Vec<C::Message> = inputs.iter().map(|(m, _)| (*m).clone()).collect();
        if !self.predicate.check(output, &input_msgs, local) {
            return Err(PcdError::NotCompliant);
        }
        let d = self.message_digest(output);
        Ok(PcdProof(self.crs.attest(self.predicate.id(), &d)))
    }

    /// Verifies that `message` carries a compliant-history proof.
    pub fn verify(&self, message: &C::Message, proof: &PcdProof) -> bool {
        self.crs
            .attest(self.predicate.id(), &self.message_digest(message))
            == proof.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test predicate: message is (depth, sum); a step's sum must equal the
    /// sum of input sums (+1 for sources), depth must exceed input depths.
    struct SumDag;

    impl CompliancePredicate for SumDag {
        type Message = (u64, u64);
        fn id(&self) -> &'static str {
            "sum-dag"
        }
        fn check(&self, output: &(u64, u64), inputs: &[(u64, u64)], _local: &[u8]) -> bool {
            if inputs.is_empty() {
                return output.0 == 0 && output.1 == 1;
            }
            let sum: u64 = inputs.iter().map(|m| m.1).sum();
            let max_depth = inputs.iter().map(|m| m.0).max().unwrap_or(0);
            output.1 == sum && output.0 == max_depth + 1
        }
        fn encode_message(&self, m: &(u64, u64), buf: &mut Vec<u8>) {
            buf.extend_from_slice(&m.0.to_le_bytes());
            buf.extend_from_slice(&m.1.to_le_bytes());
        }
    }

    fn pcd() -> PcdSystem<SumDag> {
        PcdSystem::new(SnarkCrs::setup(b"pcd-test"), SumDag)
    }

    #[test]
    fn deep_composition() {
        let pcd = pcd();
        // 8 sources, binary tree of depth 3.
        let mut layer: Vec<((u64, u64), PcdProof)> = (0..8)
            .map(|_| {
                let m = (0u64, 1u64);
                let p = pcd.prove(&m, &[], b"").unwrap();
                (m, p)
            })
            .collect();
        let mut depth = 1;
        while layer.len() > 1 {
            layer = layer
                .chunks(2)
                .map(|pair| {
                    let msg = (depth, pair.iter().map(|(m, _)| m.1).sum());
                    let inputs: Vec<(&(u64, u64), &PcdProof)> =
                        pair.iter().map(|(m, p)| (m, p)).collect();
                    let proof = pcd.prove(&msg, &inputs, b"").unwrap();
                    (msg, proof)
                })
                .collect();
            depth += 1;
        }
        let (root_msg, root_proof) = &layer[0];
        assert_eq!(*root_msg, (3, 8));
        assert!(pcd.verify(root_msg, root_proof));
    }

    #[test]
    fn bad_source_rejected() {
        let pcd = pcd();
        assert_eq!(pcd.prove(&(0, 2), &[], b""), Err(PcdError::NotCompliant));
    }

    #[test]
    fn inflated_sum_rejected() {
        let pcd = pcd();
        let m = (0u64, 1u64);
        let p = pcd.prove(&m, &[], b"").unwrap();
        assert_eq!(
            pcd.prove(&(1, 5), &[(&m, &p)], b""),
            Err(PcdError::NotCompliant)
        );
    }

    #[test]
    fn invalid_input_proof_rejected() {
        let pcd = pcd();
        let m = (0u64, 1u64);
        let forged = PcdProof::from_bytes([7u8; 32]);
        assert_eq!(
            pcd.prove(&(1, 1), &[(&m, &forged)], b""),
            Err(PcdError::InvalidInputProof(0))
        );
    }

    #[test]
    fn verify_rejects_wrong_message() {
        let pcd = pcd();
        let m = (0u64, 1u64);
        let p = pcd.prove(&m, &[], b"").unwrap();
        assert!(pcd.verify(&m, &p));
        assert!(!pcd.verify(&(0, 2), &p));
    }

    #[test]
    fn cross_predicate_isolation() {
        struct OtherDag;
        impl CompliancePredicate for OtherDag {
            type Message = (u64, u64);
            fn id(&self) -> &'static str {
                "other-dag"
            }
            fn check(&self, _: &(u64, u64), _: &[(u64, u64)], _: &[u8]) -> bool {
                true
            }
            fn encode_message(&self, m: &(u64, u64), buf: &mut Vec<u8>) {
                buf.extend_from_slice(&m.0.to_le_bytes());
                buf.extend_from_slice(&m.1.to_le_bytes());
            }
        }
        let crs = SnarkCrs::setup(b"shared");
        let a = PcdSystem::new(crs.clone(), SumDag);
        let b = PcdSystem::new(crs, OtherDag);
        let m = (0u64, 1u64);
        let p = a.prove(&m, &[], b"").unwrap();
        assert!(!b.verify(&m, &p));
    }

    #[test]
    fn proofs_are_constant_size() {
        let pcd = pcd();
        let m = (0u64, 1u64);
        let p = pcd.prove(&m, &[], b"").unwrap();
        assert_eq!(pba_crypto::codec::encode_to_vec(&p).len(), PcdProof::LEN);
    }
}
