//! A **simulated** threshold fully homomorphic encryption scheme, for
//! reproducing the MPC corollary (Cor. 1.2(2)): the paper obtains
//! communication-efficient MPC from its BA protocol *assuming FHE*.
//!
//! Like the SNARK simulation (DESIGN.md §2), this preserves the interface
//! and the *sizes* the corollary's communication analysis depends on, not
//! cryptographic hardness against a setup-holder:
//!
//! * ciphertexts are `payload ⊕ PRG(trapdoor, nonce)` plus a MAC —
//!   `|m| + O(κ)` bytes, hiding plaintexts from everything but the
//!   [`FheSystem`] (no party type in this workspace reads the trapdoor);
//! * [`FheSystem::eval`] applies an arbitrary public function to
//!   ciphertexts — the simulation decrypts internally, applies the
//!   function, and re-encrypts, which is exactly the black-box behaviour
//!   honest protocol code may assume of real FHE;
//! * decryption is **threshold**: `eval`/`encrypt` are public-key
//!   operations, but recovering a plaintext requires `threshold` distinct
//!   key-holders' [`DecryptionShare`]s.
//!
//! # Examples
//!
//! ```
//! use pba_snark::fhe::FheSystem;
//!
//! let fhe = FheSystem::setup(b"randomness", 5, 3);
//! let ct = fhe.encrypt(b"secret input");
//! let doubled = fhe.eval(&[ct], |inputs| {
//!     let mut out = inputs[0].clone();
//!     out.extend_from_slice(&inputs[0]);
//!     out
//! });
//! let shares: Vec<_> = (0..3)
//!     .map(|i| fhe.partial_decrypt(i, &doubled).unwrap())
//!     .collect::<Vec<_>>();
//! assert_eq!(fhe.combine(&doubled, &shares).unwrap(), b"secret inputsecret input");
//! ```

use pba_crypto::hmac::hmac_sha256;
use pba_crypto::prg::Prg;
use pba_crypto::sha256::{Digest, Sha256};
use std::fmt;

/// A simulated FHE ciphertext: masked payload, nonce, and integrity tag.
#[derive(Clone, PartialEq, Eq)]
pub struct Ciphertext {
    nonce: Digest,
    masked: Vec<u8>,
    tag: Digest,
}

impl fmt::Debug for Ciphertext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ciphertext")
            .field("len", &self.masked.len())
            .finish_non_exhaustive()
    }
}

impl Ciphertext {
    /// Wire size in bytes: payload + nonce + tag.
    pub fn encoded_len(&self) -> usize {
        self.masked.len() + 64
    }
}

/// One key-holder's decryption share.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecryptionShare {
    holder: usize,
    ct_digest: Digest,
    share: Digest,
}

impl DecryptionShare {
    /// Wire size in bytes.
    pub fn encoded_len(&self) -> usize {
        8 + 64
    }
}

/// Errors from threshold decryption.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FheError {
    /// The key-holder index is out of range.
    NoSuchHolder(usize),
    /// A share failed validation or belongs to a different ciphertext.
    InvalidShare,
    /// Fewer than `threshold` distinct valid shares.
    BelowThreshold {
        /// Valid distinct shares seen.
        have: usize,
        /// Shares required.
        need: usize,
    },
    /// The ciphertext integrity tag failed.
    BadCiphertext,
}

impl fmt::Display for FheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FheError::NoSuchHolder(i) => write!(f, "no key holder {i}"),
            FheError::InvalidShare => f.write_str("invalid decryption share"),
            FheError::BelowThreshold { have, need } => {
                write!(f, "{have} valid shares, need {need}")
            }
            FheError::BadCiphertext => f.write_str("ciphertext integrity check failed"),
        }
    }
}

impl std::error::Error for FheError {}

/// The simulated threshold-FHE system.
///
/// `holders` key shares were dealt at setup; `threshold` of them must
/// cooperate to decrypt. The master trapdoor lives only inside this struct
/// (private fields, `Debug` redacts).
#[derive(Clone)]
pub struct FheSystem {
    trapdoor: Digest,
    holders: usize,
    threshold: usize,
}

impl fmt::Debug for FheSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FheSystem")
            .field("holders", &self.holders)
            .field("threshold", &self.threshold)
            .field("trapdoor", &"<redacted>")
            .finish()
    }
}

impl FheSystem {
    /// Trusted setup: derives the key material from `randomness` and deals
    /// shares to `holders` parties with the given decryption `threshold`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0` or `threshold > holders`.
    pub fn setup(randomness: &[u8], holders: usize, threshold: usize) -> Self {
        assert!(threshold >= 1 && threshold <= holders, "bad threshold");
        let mut h = Sha256::new();
        h.update(b"pba-fhe-trapdoor");
        h.update(randomness);
        FheSystem {
            trapdoor: h.finalize(),
            holders,
            threshold,
        }
    }

    /// Number of key holders.
    pub fn holders(&self) -> usize {
        self.holders
    }

    /// Decryption threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    fn keystream(&self, nonce: &Digest, len: usize) -> Vec<u8> {
        let mut prg = Prg::from_seed_label(
            &[self.trapdoor.as_bytes(), nonce.as_bytes()].concat(),
            "fhe-mask",
        );
        let mut out = vec![0u8; len];
        rand::RngCore::fill_bytes(&mut prg, &mut out);
        out
    }

    fn tag(&self, nonce: &Digest, masked: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(nonce.as_bytes());
        h.update(masked);
        hmac_sha256(self.trapdoor.as_bytes(), h.finalize().as_bytes())
    }

    fn encrypt_with_nonce(&self, nonce: Digest, plaintext: &[u8]) -> Ciphertext {
        let mask = self.keystream(&nonce, plaintext.len());
        let masked: Vec<u8> = plaintext.iter().zip(mask).map(|(p, m)| p ^ m).collect();
        let tag = self.tag(&nonce, &masked);
        Ciphertext { nonce, masked, tag }
    }

    /// Public-key encryption of `plaintext`.
    pub fn encrypt(&self, plaintext: &[u8]) -> Ciphertext {
        // Nonce derived from the plaintext and a counter-free domain: in the
        // simulation, uniqueness matters, secrecy of derivation does not.
        let mut h = Sha256::new();
        h.update(b"pba-fhe-nonce");
        h.update(self.trapdoor.as_bytes());
        h.update(&(plaintext.len() as u64).to_le_bytes());
        h.update(plaintext);
        self.encrypt_with_nonce(h.finalize(), plaintext)
    }

    /// Publicly checks a ciphertext's integrity tag (honest evaluators
    /// filter adversarial inputs with this before [`FheSystem::eval`]).
    pub fn validate(&self, ct: &Ciphertext) -> bool {
        self.tag(&ct.nonce, &ct.masked) == ct.tag
    }

    fn decrypt_internal(&self, ct: &Ciphertext) -> Result<Vec<u8>, FheError> {
        if self.tag(&ct.nonce, &ct.masked) != ct.tag {
            return Err(FheError::BadCiphertext);
        }
        let mask = self.keystream(&ct.nonce, ct.masked.len());
        Ok(ct.masked.iter().zip(mask).map(|(c, m)| c ^ m).collect())
    }

    /// Homomorphic evaluation: applies the public function `f` to the
    /// plaintexts under `inputs`, producing a fresh ciphertext of the
    /// result. Callers never see the plaintexts.
    ///
    /// # Panics
    ///
    /// Panics if any input ciphertext fails its integrity check (honest
    /// evaluators validate inputs before evaluating).
    pub fn eval<F>(&self, inputs: &[Ciphertext], f: F) -> Ciphertext
    where
        F: FnOnce(&[Vec<u8>]) -> Vec<u8>,
    {
        let plains: Vec<Vec<u8>> = inputs
            .iter()
            .map(|ct| self.decrypt_internal(ct).expect("invalid input ciphertext"))
            .collect();
        let out = f(&plains);
        // Fresh nonce bound to the inputs (deterministic evaluation).
        let mut h = Sha256::new();
        h.update(b"pba-fhe-eval");
        for ct in inputs {
            h.update(ct.tag.as_bytes());
        }
        h.update(&(out.len() as u64).to_le_bytes());
        self.encrypt_with_nonce(h.finalize(), &out)
    }

    /// Key-holder `holder`'s partial decryption of `ct`.
    ///
    /// # Errors
    ///
    /// [`FheError::NoSuchHolder`] / [`FheError::BadCiphertext`].
    pub fn partial_decrypt(
        &self,
        holder: usize,
        ct: &Ciphertext,
    ) -> Result<DecryptionShare, FheError> {
        if holder >= self.holders {
            return Err(FheError::NoSuchHolder(holder));
        }
        if self.tag(&ct.nonce, &ct.masked) != ct.tag {
            return Err(FheError::BadCiphertext);
        }
        let ct_digest = ct.tag;
        let mut h = Sha256::new();
        h.update(b"pba-fhe-share");
        h.update(&(holder as u64).to_le_bytes());
        h.update(ct_digest.as_bytes());
        Ok(DecryptionShare {
            holder,
            ct_digest,
            share: hmac_sha256(self.trapdoor.as_bytes(), h.finalize().as_bytes()),
        })
    }

    /// Combines `threshold` distinct valid shares into the plaintext.
    ///
    /// # Errors
    ///
    /// [`FheError::InvalidShare`] on any bad share,
    /// [`FheError::BelowThreshold`] with too few distinct holders,
    /// [`FheError::BadCiphertext`] on integrity failure.
    pub fn combine(
        &self,
        ct: &Ciphertext,
        shares: &[DecryptionShare],
    ) -> Result<Vec<u8>, FheError> {
        let mut holders = std::collections::BTreeSet::new();
        for s in shares {
            if s.ct_digest != ct.tag {
                return Err(FheError::InvalidShare);
            }
            let expected = self.partial_decrypt(s.holder, ct)?;
            if expected.share != s.share {
                return Err(FheError::InvalidShare);
            }
            holders.insert(s.holder);
        }
        if holders.len() < self.threshold {
            return Err(FheError::BelowThreshold {
                have: holders.len(),
                need: self.threshold,
            });
        }
        self.decrypt_internal(ct)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fhe() -> FheSystem {
        FheSystem::setup(b"test-fhe", 7, 3)
    }

    fn decrypt(fhe: &FheSystem, ct: &Ciphertext) -> Vec<u8> {
        let shares: Vec<_> = (0..3)
            .map(|i| fhe.partial_decrypt(i, ct).unwrap())
            .collect();
        fhe.combine(ct, &shares).unwrap()
    }

    #[test]
    fn encrypt_decrypt_roundtrip() {
        let fhe = fhe();
        let ct = fhe.encrypt(b"hello mpc");
        assert_eq!(decrypt(&fhe, &ct), b"hello mpc");
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let fhe = fhe();
        let ct = fhe.encrypt(b"secret-value-xyz");
        // The masked payload must not contain the plaintext.
        assert!(!ct.masked.windows(6).any(|w| w == b"secret"));
    }

    #[test]
    fn eval_applies_function_under_encryption() {
        let fhe = fhe();
        let a = fhe.encrypt(&[1, 2, 3]);
        let b = fhe.encrypt(&[10, 20, 30]);
        let sum = fhe.eval(&[a, b], |ins| {
            ins[0].iter().zip(&ins[1]).map(|(x, y)| x + y).collect()
        });
        assert_eq!(decrypt(&fhe, &sum), vec![11, 22, 33]);
    }

    #[test]
    fn below_threshold_fails() {
        let fhe = fhe();
        let ct = fhe.encrypt(b"x");
        let shares: Vec<_> = (0..2)
            .map(|i| fhe.partial_decrypt(i, &ct).unwrap())
            .collect();
        assert_eq!(
            fhe.combine(&ct, &shares),
            Err(FheError::BelowThreshold { have: 2, need: 3 })
        );
    }

    #[test]
    fn duplicate_holders_do_not_count_twice() {
        let fhe = fhe();
        let ct = fhe.encrypt(b"x");
        let s0 = fhe.partial_decrypt(0, &ct).unwrap();
        let shares = vec![s0.clone(), s0.clone(), s0];
        assert!(matches!(
            fhe.combine(&ct, &shares),
            Err(FheError::BelowThreshold { have: 1, need: 3 })
        ));
    }

    #[test]
    fn forged_share_rejected() {
        let fhe = fhe();
        let ct = fhe.encrypt(b"x");
        let mut s = fhe.partial_decrypt(0, &ct).unwrap();
        s.share = Digest::ZERO;
        assert_eq!(fhe.combine(&ct, &[s]), Err(FheError::InvalidShare));
    }

    #[test]
    fn share_bound_to_ciphertext() {
        let fhe = fhe();
        let ct1 = fhe.encrypt(b"one");
        let ct2 = fhe.encrypt(b"two");
        let shares: Vec<_> = (0..3)
            .map(|i| fhe.partial_decrypt(i, &ct1).unwrap())
            .collect();
        assert_eq!(fhe.combine(&ct2, &shares), Err(FheError::InvalidShare));
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let fhe = fhe();
        let mut ct = fhe.encrypt(b"payload");
        ct.masked[0] ^= 1;
        assert_eq!(fhe.partial_decrypt(0, &ct), Err(FheError::BadCiphertext));
    }

    #[test]
    fn ciphertext_size_is_payload_plus_constant() {
        let fhe = fhe();
        for len in [0usize, 10, 1000] {
            let ct = fhe.encrypt(&vec![7u8; len]);
            assert_eq!(ct.encoded_len(), len + 64);
        }
    }

    #[test]
    fn out_of_range_holder() {
        let fhe = fhe();
        let ct = fhe.encrypt(b"x");
        assert_eq!(fhe.partial_decrypt(9, &ct), Err(FheError::NoSuchHolder(9)));
    }
}
