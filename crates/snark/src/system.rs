//! A **simulated** succinct non-interactive argument of knowledge (SNARK).
//!
//! The paper's bare-PKI SRDS assumes SNARKs with linear extraction — a
//! non-falsifiable assumption with no offline-buildable instantiation. Per
//! the substitution policy (DESIGN.md §2), we model a SNARK with a
//! *designated-setup attestation scheme*:
//!
//! * [`SnarkCrs::setup`] samples a CRS containing a secret MAC trapdoor;
//! * [`SnarkSystem::prove`] **checks the NP relation locally** and — only if
//!   the witness satisfies it — emits a constant-size (32-byte) proof, an
//!   HMAC of the statement under the trapdoor;
//! * [`SnarkSystem::verify`] recomputes the MAC.
//!
//! What this preserves (the quantities the paper reasons about):
//! **succinctness** — proofs are 32 bytes regardless of witness size, so all
//! communication measurements match a real SNARK deployment; and
//! **knowledge soundness inside the simulation** — no proof exists unless
//! `prove` was called with a satisfying witness, so accepted proofs imply a
//! witness was materially held (the "extractor" is trivial). What it does
//! *not* provide is security against an adversary holding the CRS — no such
//! adversary exists in any experiment in this workspace; adversarial
//! strategies interact with proofs only through [`SnarkSystem::prove`] /
//! [`SnarkSystem::verify`].
//!
//! # Examples
//!
//! ```
//! use pba_snark::system::{Relation, SnarkCrs, SnarkSystem};
//!
//! /// Statement: a digest `d`. Witness: a preimage of `d`.
//! struct PreimageRelation;
//! impl Relation for PreimageRelation {
//!     type Statement = pba_crypto::Digest;
//!     type Witness = Vec<u8>;
//!     fn id(&self) -> &'static str { "sha256-preimage" }
//!     fn check(&self, statement: &Self::Statement, witness: &Self::Witness) -> bool {
//!         pba_crypto::Sha256::digest(witness) == *statement
//!     }
//!     fn encode_statement(&self, s: &Self::Statement, buf: &mut Vec<u8>) {
//!         buf.extend_from_slice(s.as_bytes());
//!     }
//! }
//!
//! let crs = SnarkCrs::setup(b"common random string");
//! let snark = SnarkSystem::new(crs, PreimageRelation);
//! let statement = pba_crypto::Sha256::digest(b"witness");
//! let proof = snark.prove(&statement, &b"witness".to_vec())?;
//! assert!(snark.verify(&statement, &proof));
//! # Ok::<(), pba_snark::system::ProveError>(())
//! ```

use pba_crypto::codec::{CodecError, Decode, Encode, Reader};
use pba_crypto::hmac::hmac_sha256;
use pba_crypto::sha256::{Digest, Sha256};
use std::fmt;

/// An NP relation: statements, witnesses, and the satisfaction check.
pub trait Relation {
    /// Public statement type.
    type Statement;
    /// Private witness type.
    type Witness;

    /// Stable identifier, mixed into every proof (domain separation across
    /// relations sharing a CRS).
    fn id(&self) -> &'static str;

    /// The satisfaction predicate `R(x, w)`.
    fn check(&self, statement: &Self::Statement, witness: &Self::Witness) -> bool;

    /// Canonical encoding of the statement (what the proof binds to).
    fn encode_statement(&self, statement: &Self::Statement, buf: &mut Vec<u8>);
}

/// The common reference string: a public identifier plus the secret
/// attestation trapdoor.
///
/// The trapdoor is deliberately inaccessible (private field, no getter):
/// code in this workspace can only use it through [`SnarkSystem`].
#[derive(Clone)]
pub struct SnarkCrs {
    public_id: Digest,
    trapdoor: Digest,
}

impl fmt::Debug for SnarkCrs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnarkCrs")
            .field("public_id", &self.public_id)
            .field("trapdoor", &"<redacted>")
            .finish()
    }
}

impl SnarkCrs {
    /// Runs the trusted setup, deriving the CRS from `randomness`.
    pub fn setup(randomness: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"pba-snark-crs-public");
        h.update(randomness);
        let public_id = h.finalize();
        let mut h = Sha256::new();
        h.update(b"pba-snark-crs-trapdoor");
        h.update(randomness);
        SnarkCrs {
            public_id,
            trapdoor: h.finalize(),
        }
    }

    /// The public CRS identifier (safe to publish).
    pub fn public_id(&self) -> Digest {
        self.public_id
    }

    pub(crate) fn attest(&self, relation_id: &str, statement_digest: &Digest) -> Digest {
        let mut msg = Vec::with_capacity(relation_id.len() + 32);
        msg.extend_from_slice(relation_id.as_bytes());
        msg.push(0); // separator: relation ids contain no NUL
        msg.extend_from_slice(statement_digest.as_bytes());
        hmac_sha256(self.trapdoor.as_bytes(), &msg)
    }
}

/// A succinct proof: 32 bytes, independent of witness size.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Proof(Digest);

impl Proof {
    /// Wire size of any proof.
    pub const LEN: usize = 32;

    /// Raw bytes (e.g. for adversarial mangling in tests).
    pub fn as_bytes(&self) -> &[u8] {
        self.0.as_bytes()
    }

    /// Constructs a proof from raw bytes — exists so adversaries can *try*
    /// to forge; such proofs fail verification unless they hit the MAC.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Proof(Digest::new(bytes))
    }
}

impl fmt::Debug for Proof {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Proof({}..)", &self.0.to_hex()[..8])
    }
}

impl Encode for Proof {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        Self::LEN
    }
}

impl Decode for Proof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Proof(Digest::decode(r)?))
    }
}

/// Error from [`SnarkSystem::prove`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProveError {
    /// The witness does not satisfy the relation — an honest prover refuses
    /// (and a malicious one cannot do better; that is the soundness model).
    WitnessUnsatisfied,
}

impl fmt::Display for ProveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProveError::WitnessUnsatisfied => f.write_str("witness does not satisfy the relation"),
        }
    }
}

impl std::error::Error for ProveError {}

/// A SNARK for a fixed relation under a fixed CRS.
#[derive(Clone, Debug)]
pub struct SnarkSystem<R> {
    crs: SnarkCrs,
    relation: R,
}

impl<R: Relation> SnarkSystem<R> {
    /// Binds a relation to a CRS.
    pub fn new(crs: SnarkCrs, relation: R) -> Self {
        SnarkSystem { crs, relation }
    }

    /// The underlying relation.
    pub fn relation(&self) -> &R {
        &self.relation
    }

    /// The CRS.
    pub fn crs(&self) -> &SnarkCrs {
        &self.crs
    }

    fn statement_digest(&self, statement: &R::Statement) -> Digest {
        let mut buf = Vec::new();
        self.relation.encode_statement(statement, &mut buf);
        let mut h = Sha256::new();
        h.update(b"pba-snark-stmt");
        h.update(self.crs.public_id.as_bytes());
        h.update(&buf);
        h.finalize()
    }

    /// Produces a proof that the prover knows `witness` with
    /// `R(statement, witness) = 1`.
    ///
    /// # Errors
    ///
    /// [`ProveError::WitnessUnsatisfied`] when the relation check fails —
    /// this is where the simulation enforces knowledge soundness.
    pub fn prove(
        &self,
        statement: &R::Statement,
        witness: &R::Witness,
    ) -> Result<Proof, ProveError> {
        if !self.relation.check(statement, witness) {
            return Err(ProveError::WitnessUnsatisfied);
        }
        let d = self.statement_digest(statement);
        Ok(Proof(self.crs.attest(self.relation.id(), &d)))
    }

    /// Verifies a proof for `statement`.
    pub fn verify(&self, statement: &R::Statement, proof: &Proof) -> bool {
        let d = self.statement_digest(statement);
        self.crs.attest(self.relation.id(), &d) == proof.0
    }
}

/// A designated-setup attestor: the raw MAC primitive underlying the
/// simulated SNARK, exposed for sibling simulation substrates (e.g. the
/// multi-signature baseline) that need "combine with an unforgeable tag"
/// behaviour without a full NP relation.
///
/// Holding an `Attestor` means holding the CRS — i.e., being the trusted
/// setup or an honest protocol participant. Adversarial code in the
/// experiments never calls [`Attestor::attest`] on statements it could not
/// legitimately produce; forging a tag without it requires guessing a
/// 32-byte MAC.
#[derive(Clone, Debug)]
pub struct Attestor {
    crs: SnarkCrs,
    domain: &'static str,
}

impl Attestor {
    /// Creates an attestor for a fixed domain label.
    pub fn new(crs: SnarkCrs, domain: &'static str) -> Self {
        Attestor { crs, domain }
    }

    /// Produces the tag for a statement digest.
    pub fn attest(&self, statement: &Digest) -> Digest {
        self.crs.attest(self.domain, statement)
    }

    /// Checks a tag.
    pub fn check(&self, statement: &Digest, tag: &Digest) -> bool {
        self.attest(statement) == *tag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SumRelation;

    impl Relation for SumRelation {
        type Statement = u64;
        type Witness = (u64, u64);
        fn id(&self) -> &'static str {
            "sum"
        }
        fn check(&self, statement: &u64, witness: &(u64, u64)) -> bool {
            witness.0.wrapping_add(witness.1) == *statement
        }
        fn encode_statement(&self, s: &u64, buf: &mut Vec<u8>) {
            buf.extend_from_slice(&s.to_le_bytes());
        }
    }

    fn system() -> SnarkSystem<SumRelation> {
        SnarkSystem::new(SnarkCrs::setup(b"test-crs"), SumRelation)
    }

    #[test]
    fn prove_verify_roundtrip() {
        let s = system();
        let proof = s.prove(&10, &(4, 6)).unwrap();
        assert!(s.verify(&10, &proof));
    }

    #[test]
    fn bad_witness_refused() {
        let s = system();
        assert_eq!(s.prove(&10, &(4, 7)), Err(ProveError::WitnessUnsatisfied));
    }

    #[test]
    fn proof_does_not_transfer_to_other_statement() {
        let s = system();
        let proof = s.prove(&10, &(4, 6)).unwrap();
        assert!(!s.verify(&11, &proof));
    }

    #[test]
    fn forged_bytes_rejected() {
        let s = system();
        assert!(!s.verify(&10, &Proof::from_bytes([0u8; 32])));
        let real = s.prove(&10, &(1, 9)).unwrap();
        let mut bytes: [u8; 32] = real.as_bytes().try_into().unwrap();
        bytes[0] ^= 1;
        assert!(!s.verify(&10, &Proof::from_bytes(bytes)));
    }

    #[test]
    fn cross_crs_rejected() {
        let s1 = system();
        let s2 = SnarkSystem::new(SnarkCrs::setup(b"other-crs"), SumRelation);
        let proof = s1.prove(&10, &(5, 5)).unwrap();
        assert!(!s2.verify(&10, &proof));
    }

    #[test]
    fn cross_relation_rejected() {
        struct ProductRelation;
        impl Relation for ProductRelation {
            type Statement = u64;
            type Witness = (u64, u64);
            fn id(&self) -> &'static str {
                "product"
            }
            fn check(&self, s: &u64, w: &(u64, u64)) -> bool {
                w.0.wrapping_mul(w.1) == *s
            }
            fn encode_statement(&self, s: &u64, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&s.to_le_bytes());
            }
        }
        let crs = SnarkCrs::setup(b"shared");
        let sum = SnarkSystem::new(crs.clone(), SumRelation);
        let product = SnarkSystem::new(crs, ProductRelation);
        // 10 = 4+6 and 10 = 2*5; proofs must not transfer across relations.
        let sum_proof = sum.prove(&10, &(4, 6)).unwrap();
        assert!(!product.verify(&10, &sum_proof));
    }

    #[test]
    fn proof_is_constant_size() {
        let s = system();
        let p = s.prove(&u64::MAX, &(u64::MAX, 0)).unwrap();
        assert_eq!(pba_crypto::codec::encode_to_vec(&p).len(), Proof::LEN);
    }

    #[test]
    fn attestor_roundtrip_and_domain_separation() {
        let crs = SnarkCrs::setup(b"a");
        let a1 = Attestor::new(crs.clone(), "d1");
        let a2 = Attestor::new(crs, "d2");
        let stmt = Sha256::digest(b"statement");
        let tag = a1.attest(&stmt);
        assert!(a1.check(&stmt, &tag));
        assert!(!a2.check(&stmt, &tag));
        assert!(!a1.check(&Sha256::digest(b"other"), &tag));
    }

    #[test]
    fn debug_redacts_trapdoor() {
        let crs = SnarkCrs::setup(b"x");
        assert!(format!("{crs:?}").contains("<redacted>"));
    }
}
