#![warn(missing_docs)]
//! # pba-snark
//!
//! Succinct-argument machinery for the `polylog-ba` workspace: a simulated
//! SNARK with CRS setup, proof-carrying data (PCD) for bounded-depth DAGs,
//! and the generalized subset task (average-case SNARG target) from §1.2 of
//! *Boyle–Cohen–Goel (PODC 2021)*.
//!
//! The SNARK is a **designated-setup simulation** — see [`system`] and
//! DESIGN.md §2 for precisely what it preserves (proof sizes, communication,
//! in-simulation knowledge soundness) and what it does not (security against
//! a CRS-trapdoor holder, of which this workspace has none).
//!
//! * [`system`] — the simulated SNARK: relations, CRS, 32-byte proofs;
//! * [`fhe`] — simulated threshold FHE (for the MPC corollary);
//! * [`pcd`] — recursive proof composition over DAGs (Bitansky et al.);
//! * [`subset`] — generalized Subset-Sum/Subset-Product + SNARG.
pub mod fhe;
pub mod pcd;
pub mod subset;
pub mod system;

pub use pcd::{CompliancePredicate, PcdProof, PcdSystem};
pub use system::{Proof, Relation, SnarkCrs, SnarkSystem};
