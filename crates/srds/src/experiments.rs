//! Executable SRDS security experiments: the robustness game of **Figure 1**
//! and the forgery game of **Figure 2**, generic over the SRDS scheme and a
//! pluggable adversary.
//!
//! The experiments follow the figures step by step:
//!
//! * **Setup and corruption** — the challenger runs `Setup`/`KeyGen`; the
//!   adversary corrupts up to `t` parties *after* seeing `pp` and all
//!   verification keys, and (in bare-PKI mode) may replace corrupted keys;
//! * **Robustness challenge** — signatures of honest parties (isolated ones
//!   on adversarially chosen messages `m_i`) are aggregated up an
//!   `(n, I)`-almost-everywhere communication tree; good nodes are
//!   aggregated by the challenger with the range filter of Fig. 3 step 5c,
//!   bad nodes by the adversary; the adversary wins if the root signature
//!   fails to verify;
//! * **Forgery challenge** — the adversary receives honest signatures
//!   (a set `S` with `|S ∪ I| < n/3` on chosen messages) and wins by
//!   producing a verifying signature on any `m' ≠ m`.
//!
//! SRDS party indices coincide with tree slots (identity layout,
//! [`pba_aetree::tree::Tree::build_identity`]) — the paper's requirement
//! that level-0 nodes appear in increasing ID order.

use crate::traits::{PkiBoard, PkiMode, Srds};
use pba_aetree::analysis::TreeAnalysis;
use pba_aetree::params::TreeParams;
use pba_aetree::tree::Tree;
use pba_crypto::prg::Prg;
use pba_net::wire::MAX_WIRE_BYTES;
use pba_net::PartyId;
use std::collections::{BTreeMap, BTreeSet};

/// The adversary interface of the robustness experiment (Fig. 1).
///
/// Default implementations realize the strongest *generic* adversary
/// (silent bad nodes, isolated parties signing a divergent message);
/// scheme-specific attacks override individual hooks.
pub trait RobustnessAdversary<S: Srds> {
    /// Phase A: adaptively choose up to `t` corruptions given the public
    /// setup information.
    fn corrupt(
        &mut self,
        pp: &S::PublicParams,
        vks: &[S::VerificationKey],
        t: usize,
        prg: &mut Prg,
    ) -> BTreeSet<u64> {
        let _ = (pp, vks);
        prg.sample_distinct(vks.len() as u64, t)
            .into_iter()
            .collect()
    }

    /// Phase A (bare PKI only): replace corrupted parties' published keys.
    fn replace_keys(
        &mut self,
        scheme: &S,
        corrupt: &BTreeSet<u64>,
        board: &mut PkiBoard<S>,
        prg: &mut Prg,
    ) {
        let _ = (scheme, corrupt, board, prg);
    }

    /// Phase B.1: the adversary may choose the `(n, I)` tree itself (the
    /// full strength of Fig. 1). The returned tree must keep the identity
    /// slot layout ("level-0 nodes in increasing ID order") and satisfy the
    /// Def. 2.3 guarantees for `I` — the challenger validates both and an
    /// invalid choice makes the run ill-posed. `None` (the default) lets
    /// the challenger build the tree from post-corruption randomness.
    fn choose_tree(
        &mut self,
        params: &TreeParams,
        corrupt: &BTreeSet<u64>,
        prg: &mut Prg,
    ) -> Option<Tree> {
        let _ = (params, corrupt, prg);
        None
    }

    /// Phase B.2: the challenge message `m`.
    fn message(&mut self) -> Vec<u8> {
        b"robustness-challenge-m".to_vec()
    }

    /// Phase B.2: messages for the isolated honest parties `N`.
    fn isolated_messages(&mut self, isolated: &BTreeSet<u64>) -> BTreeMap<u64, Vec<u8>> {
        isolated
            .iter()
            .map(|&i| (i, format!("isolated-divergent-{i}").into_bytes()))
            .collect()
    }

    /// Phase B.4: signatures of the corrupted parties, given all honest
    /// signatures. Returning no entry for a party models withholding.
    fn corrupt_signatures(
        &mut self,
        scheme: &S,
        board: &PkiBoard<S>,
        corrupt: &BTreeSet<u64>,
        message: &[u8],
        honest: &BTreeMap<u64, S::Signature>,
    ) -> BTreeMap<u64, S::Signature> {
        let _ = honest;
        // Default: corrupted parties sign honestly — combined with silent
        // bad nodes below, this exercises both withholding (aggregation
        // side) and maximal-participation (counting side) pressure.
        corrupt
            .iter()
            .filter_map(|&i| {
                scheme
                    .sign(&board.pp, i, &board.sks[i as usize], message)
                    .map(|s| (i, s))
            })
            .collect()
    }

    /// Phase B.5: the aggregate emitted by a bad node, given the child
    /// signatures it received. `None` models withholding/garbage (which
    /// honest parents filter out).
    fn bad_aggregate(
        &mut self,
        scheme: &S,
        board: &PkiBoard<S>,
        level: usize,
        node: usize,
        children: &[S::Signature],
    ) -> Option<S::Signature> {
        let _ = (scheme, board, level, node, children);
        None
    }
}

/// The generic worst-case adversary with every default hook.
#[derive(Clone, Copy, Debug, Default)]
pub struct DefaultRobustnessAdversary;

impl<S: Srds> RobustnessAdversary<S> for DefaultRobustnessAdversary {}

/// A robustness adversary that exercises its Fig. 1 right to **choose the
/// tree**: it corrupts a prefix of parties (so whole leaves go bad) and
/// packs its corrupted parties into as few internal committees as the
/// Def. 2.3 guarantees allow, maximizing dropped subtrees.
#[derive(Clone, Copy, Debug, Default)]
pub struct TreePackingAdversary;

impl<S: Srds> RobustnessAdversary<S> for TreePackingAdversary {
    fn corrupt(
        &mut self,
        _pp: &S::PublicParams,
        vks: &[S::VerificationKey],
        t: usize,
        _prg: &mut Prg,
    ) -> BTreeSet<u64> {
        // Contiguous prefix: concentrates corruption in the leftmost leaves.
        (0..(t as u64).min(vks.len() as u64)).collect()
    }

    #[allow(clippy::needless_range_loop)] // committees are addressed by (level, node)
    fn choose_tree(
        &mut self,
        params: &TreeParams,
        corrupt: &BTreeSet<u64>,
        prg: &mut Prg,
    ) -> Option<Tree> {
        // Start from an honest tree, then overwrite internal committees:
        // fill as many level-1 committees as possible entirely with
        // corrupted parties (their subtrees die), keeping the root honest.
        let base = Tree::build_identity(params, b"packing-base");
        let mut committees: Vec<Vec<Vec<PartyId>>> = (0..params.height)
            .map(|level| {
                (0..base.nodes_at_level(level))
                    .map(|node| base.committee(level, node).to_vec())
                    .collect()
            })
            .collect();
        let honest: Vec<PartyId> = (0..params.n as u64)
            .map(PartyId)
            .filter(|p| !corrupt.contains(&p.0))
            .collect();
        let c = params.committee_size.min(params.n);
        // Root: all honest (the guarantee requires a good root anyway).
        let root_level = params.height - 1;
        committees[root_level][0] = honest[..c.min(honest.len())].to_vec();
        // Re-sample other internal committees from honest parties, then
        // corrupt a budgeted number of level-1 nodes outright.
        for level in 1..params.height - 1 {
            for node in 0..committees[level].len() {
                let picks = prg.sample_distinct(honest.len() as u64, c.min(honest.len()));
                committees[level][node] = picks.into_iter().map(|i| honest[i as usize]).collect();
            }
        }
        if params.height > 2 {
            let corrupt_vec: Vec<PartyId> = corrupt.iter().map(|&i| PartyId(i)).collect();
            // Keep the bad-leaf fraction within the validated slack: each
            // bad level-1 node kills `branching` leaves.
            let max_bad_nodes = (params.leaf_count / params.branching) / 5;
            let budget = (corrupt_vec.len() / c).min(max_bad_nodes);
            for node in 0..budget {
                committees[1][node] = corrupt_vec[node * c..(node + 1) * c].to_vec();
            }
        }
        let slot_party: Vec<PartyId> = (0..params.n as u64).map(PartyId).collect();
        Some(Tree::from_parts(params, committees, slot_party))
    }
}

/// A robustness adversary whose bad nodes *replay* one child signature
/// (attempting the duplicate-aggregation attack of §2.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplayRobustnessAdversary;

impl<S: Srds> RobustnessAdversary<S> for ReplayRobustnessAdversary {
    fn bad_aggregate(
        &mut self,
        _scheme: &S,
        _board: &PkiBoard<S>,
        _level: usize,
        _node: usize,
        children: &[S::Signature],
    ) -> Option<S::Signature> {
        children.first().cloned()
    }
}

/// Outcome of one robustness game.
#[derive(Clone, Debug)]
pub struct RobustnessOutcome {
    /// Whether the root signature verified (`true` ⇒ robustness held).
    pub verified: bool,
    /// Number of corrupted parties.
    pub corrupted: usize,
    /// Number of isolated honest parties (the set `N`).
    pub isolated_honest: usize,
    /// Fraction of leaves on good paths.
    pub good_leaf_fraction: f64,
    /// Wire size of the root signature in bytes, if one was produced.
    pub root_signature_len: Option<usize>,
    /// Maximum batch size passed to any single `Aggregate` call.
    pub max_batch: usize,
}

/// Errors making a run ill-posed (the adversary must present a valid
/// `(n, I)` tree; a failed guarantee is a configuration error, not an
/// adversary win).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExperimentError {
    /// The tree failed the Def. 2.3 guarantees for the corruption set.
    InvalidTree(String),
    /// `t` is not below a third of `n`.
    TooManyCorruptions {
        /// Number of SRDS parties.
        n: usize,
        /// Requested corruptions (or `|S ∪ I|` in the forgery game).
        t: usize,
    },
    /// An adversary-chosen message exceeds the wire-layer size cap
    /// ([`MAX_WIRE_BYTES`]) — in `π_ba` such a payload would be rejected
    /// by the hardened decoder before any party signed it, so a game
    /// built on one is ill-posed rather than an adversary win.
    OversizedMessage {
        /// The offending message length.
        len: usize,
    },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::InvalidTree(why) => write!(f, "invalid (n, I) tree: {why}"),
            ExperimentError::TooManyCorruptions { n, t } => {
                write!(f, "t = {t} not below n/3 for n = {n}")
            }
            ExperimentError::OversizedMessage { len } => {
                write!(
                    f,
                    "message of {len} bytes exceeds the wire cap {MAX_WIRE_BYTES}"
                )
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Runs the robustness experiment `Expt^robust` (Fig. 1).
///
/// # Errors
///
/// [`ExperimentError`] if the run is ill-posed (corruptions ≥ n/3 or the
/// resulting tree violates the Def. 2.3 guarantees).
pub fn run_robustness<S: Srds, A: RobustnessAdversary<S>>(
    scheme: &S,
    n_requested: usize,
    t: usize,
    adversary: &mut A,
    seed: &[u8],
) -> Result<RobustnessOutcome, ExperimentError> {
    let params = TreeParams::for_slots(n_requested);
    let n = params.n;
    if 3 * t >= n {
        return Err(ExperimentError::TooManyCorruptions { n, t });
    }
    let mut prg = Prg::from_seed_label(seed, "robustness");

    // A. Setup and corruption.
    let mut board = PkiBoard::<S>::establish(scheme, n, &mut prg);
    let corrupt = adversary.corrupt(&board.pp, &board.vks, t, &mut prg);
    assert!(corrupt.len() <= t, "adversary exceeded corruption budget");
    if scheme.mode() == PkiMode::Bare {
        adversary.replace_keys(scheme, &corrupt, &mut board, &mut prg);
    }
    let keys = board.prepare(scheme);

    // B.1: the tree — adversary-chosen if it exercises that right, else
    // built from post-corruption randomness; identity slot layout either
    // way, and the challenger validates the (n, I) guarantees.
    let corrupt_parties: BTreeSet<PartyId> = corrupt.iter().map(|&i| PartyId(i)).collect();
    let tree = match adversary.choose_tree(&params, &corrupt, &mut prg) {
        Some(tree) => {
            if tree.params() != &params {
                return Err(ExperimentError::InvalidTree("wrong parameters".into()));
            }
            for s in 0..params.total_slots() as u64 {
                if tree.slot_party(s) != PartyId(s) {
                    return Err(ExperimentError::InvalidTree(
                        "level-0 IDs not in increasing order".into(),
                    ));
                }
            }
            tree
        }
        None => {
            let mut tree_seed = seed.to_vec();
            tree_seed.extend_from_slice(b"/tree");
            Tree::build_identity(&params, &tree_seed)
        }
    };
    let analysis = TreeAnalysis::analyze(&tree, &corrupt_parties);
    analysis
        .check_ae_guarantees(0.3)
        .map_err(ExperimentError::InvalidTree)?;

    // B.2: messages. N = honest parties on leaves without good paths.
    // Adversary-chosen payloads obey the same wire-layer size cap the
    // hardened decoder enforces on real traffic.
    let message = adversary.message();
    if message.len() > MAX_WIRE_BYTES {
        return Err(ExperimentError::OversizedMessage { len: message.len() });
    }
    let isolated: BTreeSet<u64> = (0..n as u64)
        .filter(|i| !corrupt.contains(i) && !analysis.leaf_has_good_path(tree.slot_leaf(*i)))
        .collect();
    let divergent = adversary.isolated_messages(&isolated);
    if let Some(big) = divergent.values().find(|m| m.len() > MAX_WIRE_BYTES) {
        return Err(ExperimentError::OversizedMessage { len: big.len() });
    }

    // B.3: honest signatures.
    let mut signatures: BTreeMap<u64, S::Signature> = BTreeMap::new();
    for i in 0..n as u64 {
        if corrupt.contains(&i) {
            continue;
        }
        let msg: &[u8] = divergent.get(&i).map(|m| m.as_slice()).unwrap_or(&message);
        if let Some(sig) = scheme.sign(&board.pp, i, &board.sks[i as usize], msg) {
            signatures.insert(i, sig);
        }
    }

    // B.4: adversary's signatures.
    let adv_sigs = adversary.corrupt_signatures(scheme, &board, &corrupt, &message, &signatures);
    for (i, sig) in adv_sigs {
        assert!(corrupt.contains(&i), "adversary signed for honest party");
        signatures.insert(i, sig);
    }

    // B.5: aggregate up the tree. Level 0 aggregates base signatures of the
    // leaf's slots; higher levels aggregate child signatures with the
    // range-containment filter of Fig. 3 step 5c.
    let mut max_batch = 0usize;
    let mut current: Vec<Option<S::Signature>> = Vec::with_capacity(params.leaf_count);
    for leaf in 0..params.leaf_count {
        let range = tree.leaf_range(leaf);
        let base: Vec<S::Signature> = range
            .clone()
            .filter_map(|slot| signatures.get(&slot).cloned())
            // Step 5c for leaves: base signatures carry a single index
            // inside the leaf's range.
            .filter(|sig| {
                scheme.min_index(sig) == scheme.max_index(sig)
                    && range.contains(&scheme.min_index(sig))
            })
            .collect();
        max_batch = max_batch.max(base.len());
        let agg = if base.is_empty() {
            None
        } else if analysis.is_good(0, leaf) {
            scheme.aggregate(&board.pp, &keys, &message, &base)
        } else {
            adversary.bad_aggregate(scheme, &board, 0, leaf, &base)
        };
        current.push(agg);
    }

    for level in 1..params.height {
        let mut next: Vec<Option<S::Signature>> = Vec::with_capacity(tree.nodes_at_level(level));
        for node in 0..tree.nodes_at_level(level) {
            let children: Vec<S::Signature> = tree
                .children(level, node)
                .filter_map(|child| {
                    let sig = current[child].clone()?;
                    // Step 5c: the child's covered range must fall within
                    // that child's slot range.
                    let child_range = tree.node_range(level - 1, child);
                    (child_range.contains(&scheme.min_index(&sig))
                        && child_range.contains(&scheme.max_index(&sig)))
                    .then_some(sig)
                })
                .collect();
            max_batch = max_batch.max(children.len());
            let agg = if children.is_empty() {
                None
            } else if analysis.is_good(level, node) {
                scheme.aggregate(&board.pp, &keys, &message, &children)
            } else {
                adversary.bad_aggregate(scheme, &board, level, node, &children)
            };
            next.push(agg);
        }
        current = next;
    }

    // C. Output phase.
    let root_sig = current.pop().flatten();
    let verified = root_sig
        .as_ref()
        .map(|sig| scheme.verify(&board.pp, &keys, &message, sig))
        .unwrap_or(false);

    Ok(RobustnessOutcome {
        verified,
        corrupted: corrupt.len(),
        isolated_honest: isolated.len(),
        good_leaf_fraction: analysis.good_leaf_fraction(),
        root_signature_len: root_sig.as_ref().map(|s| scheme.signature_len(s)),
        max_batch,
    })
}

/// The adversary interface of the forgery experiment (Fig. 2).
pub trait ForgeryAdversary<S: Srds> {
    /// Phase A: corruptions (as in the robustness game).
    fn corrupt(
        &mut self,
        pp: &S::PublicParams,
        vks: &[S::VerificationKey],
        t: usize,
        prg: &mut Prg,
    ) -> BTreeSet<u64> {
        let _ = (pp, vks);
        prg.sample_distinct(vks.len() as u64, t)
            .into_iter()
            .collect()
    }

    /// Phase A (bare PKI): key replacement.
    fn replace_keys(
        &mut self,
        scheme: &S,
        corrupt: &BTreeSet<u64>,
        board: &mut PkiBoard<S>,
        prg: &mut Prg,
    ) {
        let _ = (scheme, corrupt, board, prg);
    }

    /// Phase B.a: the target message `m`, the seduced honest set `S`
    /// (must satisfy `|S ∪ I| < n/3`), and the messages `{m_i}` those
    /// parties will sign.
    fn choose_challenge(
        &mut self,
        n: usize,
        corrupt: &BTreeSet<u64>,
        prg: &mut Prg,
    ) -> (Vec<u8>, BTreeMap<u64, Vec<u8>>);

    /// Phase B.d: given all honest signatures, output a claimed forgery
    /// `(m', σ')` with `m' ≠ m`.
    fn forge(
        &mut self,
        scheme: &S,
        board: &PkiBoard<S>,
        keys: &S::KeyBoard,
        corrupt: &BTreeSet<u64>,
        message: &[u8],
        honest: &BTreeMap<u64, S::Signature>,
    ) -> Option<(Vec<u8>, S::Signature)>;
}

/// Outcome of one forgery game.
#[derive(Clone, Debug)]
pub struct ForgeryOutcome {
    /// Whether the adversary produced a verifying `(m', σ')`, `m' ≠ m`.
    pub forged: bool,
    /// Number of corrupted parties.
    pub corrupted: usize,
    /// Size of the seduced honest set `S`.
    pub seduced: usize,
}

/// Runs the forgery experiment `Expt^forge` (Fig. 2).
///
/// # Errors
///
/// [`ExperimentError::TooManyCorruptions`] if `|S ∪ I| ≥ n/3`.
pub fn run_forgery<S: Srds, A: ForgeryAdversary<S>>(
    scheme: &S,
    n: usize,
    t: usize,
    adversary: &mut A,
    seed: &[u8],
) -> Result<ForgeryOutcome, ExperimentError> {
    let mut prg = Prg::from_seed_label(seed, "forgery");

    // A. Setup and corruption.
    let mut board = PkiBoard::<S>::establish(scheme, n, &mut prg);
    let corrupt = adversary.corrupt(&board.pp, &board.vks, t, &mut prg);
    assert!(corrupt.len() <= t, "adversary exceeded corruption budget");
    if scheme.mode() == PkiMode::Bare {
        adversary.replace_keys(scheme, &corrupt, &mut board, &mut prg);
    }
    let keys = board.prepare(scheme);

    // B.a: challenge choice. Adversary-chosen payloads obey the wire cap.
    let (message, seduced) = adversary.choose_challenge(n, &corrupt, &mut prg);
    if message.len() > MAX_WIRE_BYTES {
        return Err(ExperimentError::OversizedMessage { len: message.len() });
    }
    if let Some(big) = seduced.values().find(|m| m.len() > MAX_WIRE_BYTES) {
        return Err(ExperimentError::OversizedMessage { len: big.len() });
    }
    let mut union = corrupt.clone();
    union.extend(seduced.keys().copied());
    if 3 * union.len() >= n {
        return Err(ExperimentError::TooManyCorruptions { n, t: union.len() });
    }
    for i in seduced.keys() {
        assert!(!corrupt.contains(i), "seduced set must be honest");
    }

    // B.b–c: honest signatures.
    let mut honest: BTreeMap<u64, S::Signature> = BTreeMap::new();
    for i in 0..n as u64 {
        if corrupt.contains(&i) {
            continue;
        }
        let msg: &[u8] = seduced.get(&i).map(|m| m.as_slice()).unwrap_or(&message);
        if let Some(sig) = scheme.sign(&board.pp, i, &board.sks[i as usize], msg) {
            honest.insert(i, sig);
        }
    }

    // B.d: forgery attempt.
    let attempt = adversary.forge(scheme, &board, &keys, &corrupt, &message, &honest);

    // C. Output phase.
    let forged = match attempt {
        Some((m_prime, sig)) => {
            m_prime != message && scheme.verify(&board.pp, &keys, &m_prime, &sig)
        }
        None => false,
    };

    Ok(ForgeryOutcome {
        forged,
        corrupted: corrupt.len(),
        seduced: seduced.len(),
    })
}

/// The canonical forgery strategy: seduce a maximal honest set onto the
/// forgery target `m'`, add all corrupt signatures on `m'`, and aggregate —
/// the strongest generic attack (anything stronger must break the
/// underlying signatures or proofs).
#[derive(Clone, Debug)]
pub struct AggregateForgeryAdversary {
    /// The forgery target.
    pub target: Vec<u8>,
}

impl Default for AggregateForgeryAdversary {
    fn default() -> Self {
        AggregateForgeryAdversary {
            target: b"forged-message".to_vec(),
        }
    }
}

impl<S: Srds> ForgeryAdversary<S> for AggregateForgeryAdversary {
    fn choose_challenge(
        &mut self,
        n: usize,
        corrupt: &BTreeSet<u64>,
        _prg: &mut Prg,
    ) -> (Vec<u8>, BTreeMap<u64, Vec<u8>>) {
        // Seduce as many honest parties as the n/3 budget allows.
        let budget = (n - 1) / 3;
        let room = budget.saturating_sub(corrupt.len());
        let seduced: BTreeMap<u64, Vec<u8>> = (0..n as u64)
            .filter(|i| !corrupt.contains(i))
            .take(room)
            .map(|i| (i, self.target.clone()))
            .collect();
        (b"honest-message".to_vec(), seduced)
    }

    fn forge(
        &mut self,
        scheme: &S,
        board: &PkiBoard<S>,
        keys: &S::KeyBoard,
        corrupt: &BTreeSet<u64>,
        _message: &[u8],
        honest: &BTreeMap<u64, S::Signature>,
    ) -> Option<(Vec<u8>, S::Signature)> {
        // Corrupt parties sign the target; combine with every honest
        // signature in sight (the ones on m get filtered by Aggregate₁ —
        // that is the point of the attack).
        let mut pool: Vec<S::Signature> = honest.values().cloned().collect();
        for &i in corrupt {
            if let Some(sig) = scheme.sign(&board.pp, i, &board.sks[i as usize], &self.target) {
                pool.push(sig);
            }
        }
        let sig = scheme.aggregate(&board.pp, keys, &self.target, &pool)?;
        Some((self.target.clone(), sig))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::owf::OwfSrds;
    use crate::snark::SnarkSrds;

    #[test]
    fn robustness_holds_owf_default_adversary() {
        let scheme = OwfSrds::with_defaults();
        let out = run_robustness(&scheme, 200, 20, &mut DefaultRobustnessAdversary, b"r1").unwrap();
        assert!(out.verified, "robustness broken: {out:?}");
        assert!(out.root_signature_len.is_some());
    }

    #[test]
    fn robustness_holds_snark_default_adversary() {
        let scheme = SnarkSrds::with_defaults();
        let out = run_robustness(&scheme, 150, 15, &mut DefaultRobustnessAdversary, b"r2").unwrap();
        assert!(out.verified, "robustness broken: {out:?}");
        // SNARK certificates are constant-size.
        assert!(out.root_signature_len.unwrap() < 200);
    }

    #[test]
    fn robustness_holds_under_replay_adversary() {
        let snark = SnarkSrds::with_defaults();
        let out = run_robustness(&snark, 150, 15, &mut ReplayRobustnessAdversary, b"r3").unwrap();
        assert!(out.verified, "replay adversary broke robustness: {out:?}");

        let owf = OwfSrds::with_defaults();
        let out = run_robustness(&owf, 200, 20, &mut ReplayRobustnessAdversary, b"r4").unwrap();
        assert!(out.verified, "replay adversary broke robustness: {out:?}");
    }

    #[test]
    fn robustness_survives_adversarial_tree_choice() {
        // The adversary picks the tree (packing its corruption into whole
        // level-1 subtrees); the surviving good paths must still carry a
        // majority of base signatures.
        let scheme = SnarkSrds::with_defaults();
        let out = run_robustness(&scheme, 400, 40, &mut TreePackingAdversary, b"pack1").unwrap();
        assert!(out.verified, "adversarial tree broke robustness: {out:?}");

        let owf = OwfSrds::with_defaults();
        let out = run_robustness(&owf, 400, 40, &mut TreePackingAdversary, b"pack2").unwrap();
        assert!(out.verified, "adversarial tree broke robustness: {out:?}");
    }

    #[test]
    fn invalid_adversarial_tree_rejected() {
        // A tree that shuffles the slot layout violates the increasing-ID
        // requirement and must be rejected as ill-posed.
        struct ShuffledTree;
        impl RobustnessAdversary<SnarkSrds> for ShuffledTree {
            fn choose_tree(
                &mut self,
                params: &TreeParams,
                _corrupt: &BTreeSet<u64>,
                _prg: &mut Prg,
            ) -> Option<Tree> {
                Some(Tree::build(params, b"shuffled")) // random, not identity
            }
        }
        let scheme = SnarkSrds::with_defaults();
        let err = run_robustness(&scheme, 200, 20, &mut ShuffledTree, b"pack3");
        assert!(matches!(err, Err(ExperimentError::InvalidTree(_))));
    }

    #[test]
    fn aggregation_batches_stay_polylog() {
        let scheme = SnarkSrds::with_defaults();
        let out = run_robustness(&scheme, 300, 30, &mut DefaultRobustnessAdversary, b"r5").unwrap();
        // Batch = leaf slots or branching-many children: polylog, far below n.
        assert!(out.max_batch < 150, "batch {} too large", out.max_batch);
    }

    #[test]
    fn too_many_corruptions_rejected() {
        let scheme = OwfSrds::with_defaults();
        let err = run_robustness(&scheme, 100, 60, &mut DefaultRobustnessAdversary, b"r6");
        assert!(matches!(
            err,
            Err(ExperimentError::TooManyCorruptions { .. })
        ));
    }

    #[test]
    fn forgery_fails_owf() {
        let scheme = OwfSrds::with_defaults();
        let out = run_forgery(
            &scheme,
            240,
            24,
            &mut AggregateForgeryAdversary::default(),
            b"f1",
        )
        .unwrap();
        assert!(!out.forged, "OWF SRDS forged: {out:?}");
        assert!(out.seduced > 0);
    }

    #[test]
    fn forgery_fails_snark() {
        let scheme = SnarkSrds::with_defaults();
        let out = run_forgery(
            &scheme,
            120,
            12,
            &mut AggregateForgeryAdversary::default(),
            b"f2",
        )
        .unwrap();
        assert!(!out.forged, "SNARK SRDS forged: {out:?}");
    }

    #[test]
    fn oversized_adversarial_message_is_ill_posed() {
        struct Oversized;
        impl RobustnessAdversary<OwfSrds> for Oversized {
            fn message(&mut self) -> Vec<u8> {
                vec![0u8; MAX_WIRE_BYTES + 1]
            }
        }
        let scheme = OwfSrds::with_defaults();
        let err = run_robustness(&scheme, 200, 0, &mut Oversized, b"big1");
        assert!(matches!(err, Err(ExperimentError::OversizedMessage { .. })));
    }

    #[test]
    fn honest_majority_on_true_message_verifies() {
        // Sanity: with zero corruption the root certificate verifies — the
        // games only forbid verifying on m' ≠ m with a sub-third coalition.
        let scheme = OwfSrds::with_defaults();
        let out = run_robustness(&scheme, 200, 0, &mut DefaultRobustnessAdversary, b"f3").unwrap();
        assert!(out.verified);
        assert_eq!(out.corrupted, 0);
        assert_eq!(out.isolated_honest, 0);
    }
}
