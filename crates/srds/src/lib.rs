#![warn(missing_docs)]
//! # pba-srds
//!
//! **Succinctly reconstructed distributed signatures (SRDS)** — the new
//! cryptographic primitive of *Boyle–Cohen–Goel (PODC 2021)* — with both of
//! the paper's constructions and the security experiments of Figures 1–2.
//!
//! * [`traits`] — the SRDS definition (Def. 2.1) with the
//!   `Aggregate₁`/`Aggregate₂` succinctness decomposition (Def. 2.2);
//! * [`owf`] — SRDS from one-way functions in the trusted-PKI model
//!   (Theorem 2.7): sortition + oblivious-keygen Lamport signatures;
//! * [`snark`] — SRDS from CRH + SNARKs in the bare-PKI + CRS model
//!   (Theorem 2.8): Merkle-indexed keys + proof-carrying-data counting;
//! * [`experiments`] — executable robustness (Fig. 1) and forgery (Fig. 2)
//!   games against pluggable adversaries;
//! * [`cache`] — the per-session verified-certificate cache that stops
//!   identical aggregation certificates from being re-verified at every
//!   tree level.
pub mod cache;
pub mod experiments;
pub mod multisig;
pub mod owf;
pub mod snark;
pub mod traits;

pub use cache::{cert_cache_stats, CertCache};
pub use multisig::MultisigSrds;
pub use owf::OwfSrds;
pub use snark::SnarkSrds;
pub use traits::{PkiBoard, PkiMode, Srds};
