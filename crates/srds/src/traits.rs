//! The SRDS abstraction — Definition 2.1 of the paper, with the
//! succinctness decomposition of Definition 2.2.
//!
//! A *succinctly reconstructed distributed signature* scheme lets `n`
//! parties jointly produce a short certificate that a **majority** of them
//! signed a message, where:
//!
//! * aggregation happens incrementally in polylog-size batches
//!   (`Aggregate₁` deterministically filters inputs against the PKI;
//!   `Aggregate₂` combines the survivors without touching the `n`
//!   verification keys);
//! * every signature — base or aggregated — carries the minimum and maximum
//!   virtual index it covers (the paper's `min(σ)` / `max(σ)`), which is
//!   what lets the tree protocol prevent double-aggregation without
//!   tracking contributor sets;
//! * the final signature plus everything needed to verify it is `Õ(1)`.

use pba_crypto::prg::Prg;
use std::collections::BTreeSet;
use std::fmt;

/// The PKI flavour a scheme is secure under (§1.2 "On the different PKI
/// models").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PkiMode {
    /// Honestly generated keys; corrupted parties cannot replace theirs.
    Trusted,
    /// Parties generate keys locally; the adversary may substitute corrupted
    /// parties' keys after seeing all public information.
    Bare,
}

impl fmt::Display for PkiMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PkiMode::Trusted => f.write_str("trusted-pki"),
            PkiMode::Bare => f.write_str("bare-pki"),
        }
    }
}

/// A succinctly reconstructed distributed signature scheme
/// (Setup, KeyGen, Sign, Aggregate, Verify).
///
/// `n` here is the number of *SRDS parties* — in the BA protocol this is
/// the number of virtual identities `n · z`, not the number of protocol
/// participants (see the "Notation n" remark under Definition 2.1).
pub trait Srds {
    /// Public parameters `pp` output by `Setup`.
    type PublicParams: Clone;
    /// A verification key.
    type VerificationKey: Clone + PartialEq + fmt::Debug;
    /// A signing key (may internally be "no key" for sortition schemes —
    /// `Sign` then returns `None`, the paper's `⊥`).
    type SigningKey: Clone;
    /// Base and aggregated signatures (the space `X`); `⊥` is modelled by
    /// `Option` at call sites.
    type Signature: Clone + PartialEq + fmt::Debug;

    /// A prepared view of the public key board `{vk_1 … vk_n}`.
    ///
    /// Verification and `Aggregate₁` are defined over the full key list;
    /// schemes that need derived structure over it (e.g. a Merkle index)
    /// build it once in [`Srds::prepare`] instead of per call.
    type KeyBoard;

    /// Which PKI model the scheme is secure in.
    fn mode(&self) -> PkiMode;

    /// Prepares the published key list for repeated aggregation and
    /// verification.
    fn prepare(&self, pp: &Self::PublicParams, vks: &[Self::VerificationKey]) -> Self::KeyBoard;

    /// `Setup(1^κ, 1^n) → pp`.
    fn setup(&self, n: usize, prg: &mut Prg) -> Self::PublicParams;

    /// `KeyGen(pp) → (vk, sk)`.
    fn keygen(
        &self,
        pp: &Self::PublicParams,
        prg: &mut Prg,
    ) -> (Self::VerificationKey, Self::SigningKey);

    /// `Sign(pp, i, sk, m) → σ ∈ X ∪ {⊥}`.
    fn sign(
        &self,
        pp: &Self::PublicParams,
        index: u64,
        sk: &Self::SigningKey,
        message: &[u8],
    ) -> Option<Self::Signature>;

    /// Signs within a numbered execution (epoch) of the surrounding
    /// protocol. SRDS security is defined for one-time signatures; schemes
    /// whose keys support several one-time slots (e.g. the Merkle-signature
    /// based construction) override this to consume a fresh slot per epoch,
    /// enabling the multi-execution broadcast corollary. The default
    /// ignores the epoch.
    fn sign_epoch(
        &self,
        pp: &Self::PublicParams,
        index: u64,
        sk: &Self::SigningKey,
        epoch: u64,
        message: &[u8],
    ) -> Option<Self::Signature> {
        let _ = epoch;
        self.sign(pp, index, sk, message)
    }

    /// How many numbered executions (epochs) one key generation supports
    /// before [`Srds::sign_epoch`] runs out of one-time signing slots —
    /// `None` when the scheme places no epoch bound (e.g. sortition
    /// schemes whose `sign_epoch` ignores the epoch). Callers that stream
    /// instances over one establishment use this to budget disjoint
    /// capacity slices instead of discovering exhaustion mid-protocol.
    fn epoch_capacity(&self, pp: &Self::PublicParams) -> Option<u64> {
        let _ = pp;
        None
    }

    /// Counters of the scheme's verified-certificate cache, when it keeps
    /// one ([`crate::cache::CacheStats`]); `None` for cache-less schemes.
    fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        None
    }

    /// Marks an instance boundary on the scheme's certificate cache (see
    /// [`crate::cache::CertCache::advance_generation`]): verdicts cached
    /// before this point count as *warm* when hit again afterwards.
    /// No-op for cache-less schemes.
    fn advance_cache_generation(&self) {}

    /// `Aggregate₁(pp, {vk}, m, {σ}) → S_sig` — the deterministic,
    /// key-dependent filter. Output is the polylog-size subset of
    /// signatures that will actually be combined.
    fn aggregate1(
        &self,
        pp: &Self::PublicParams,
        board: &Self::KeyBoard,
        message: &[u8],
        sigs: &[Self::Signature],
    ) -> Vec<Self::Signature>;

    /// `Aggregate₂(pp, m, S_sig) → σ` — the key-independent combiner whose
    /// circuit is `Õ(1)`.
    fn aggregate2(
        &self,
        pp: &Self::PublicParams,
        message: &[u8],
        s_sig: &[Self::Signature],
    ) -> Option<Self::Signature>;

    /// `Verify(pp, {vk}, m, σ) → {0, 1}`.
    fn verify(
        &self,
        pp: &Self::PublicParams,
        board: &Self::KeyBoard,
        message: &[u8],
        sig: &Self::Signature,
    ) -> bool;

    /// The paper's `min(σ)`: smallest virtual index aggregated in `σ`.
    fn min_index(&self, sig: &Self::Signature) -> u64;

    /// The paper's `max(σ)`: largest virtual index aggregated in `σ`.
    fn max_index(&self, sig: &Self::Signature) -> u64;

    /// Wire size of a signature in bytes (for succinctness checks and
    /// communication accounting).
    fn signature_len(&self, sig: &Self::Signature) -> usize;

    /// Full `Aggregate = Aggregate₂ ∘ Aggregate₁` (Definition 2.1).
    fn aggregate(
        &self,
        pp: &Self::PublicParams,
        board: &Self::KeyBoard,
        message: &[u8],
        sigs: &[Self::Signature],
    ) -> Option<Self::Signature> {
        let s_sig = self.aggregate1(pp, board, message, sigs);
        self.aggregate2(pp, message, &s_sig)
    }
}

/// The result of a full PKI establishment for `n` SRDS parties: every
/// party's keys plus the public board of verification keys.
///
/// The experiments mutate `vks` for corrupted parties in bare-PKI mode
/// (Figure 1, step A.4b).
#[derive(Clone)]
pub struct PkiBoard<S: Srds> {
    /// Public parameters.
    pub pp: S::PublicParams,
    /// The bulletin board of verification keys, indexed by SRDS party.
    pub vks: Vec<S::VerificationKey>,
    /// Signing keys, indexed by SRDS party (the experiment hands corrupted
    /// ones to the adversary).
    pub sks: Vec<S::SigningKey>,
}

impl<S: Srds> fmt::Debug for PkiBoard<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PkiBoard")
            .field("n", &self.vks.len())
            .finish_non_exhaustive()
    }
}

impl<S: Srds> PkiBoard<S> {
    /// Runs `Setup` and `KeyGen` for all `n` parties.
    pub fn establish(scheme: &S, n: usize, prg: &mut Prg) -> Self {
        let pp = scheme.setup(n, prg);
        let mut vks = Vec::with_capacity(n);
        let mut sks = Vec::with_capacity(n);
        for i in 0..n {
            let mut kprg = prg.child("keygen", i as u64);
            let (vk, sk) = scheme.keygen(&pp, &mut kprg);
            vks.push(vk);
            sks.push(sk);
        }
        PkiBoard { pp, vks, sks }
    }

    /// Prepares the key board for aggregation/verification. Call again
    /// after any bare-PKI key replacement.
    pub fn prepare(&self, scheme: &S) -> S::KeyBoard {
        scheme.prepare(&self.pp, &self.vks)
    }

    /// Number of SRDS parties.
    pub fn len(&self) -> usize {
        self.vks.len()
    }

    /// True if the board is empty.
    pub fn is_empty(&self) -> bool {
        self.vks.is_empty()
    }
}

/// Checks the succinctness bound of Definition 2.2(1): signature size at
/// most `alpha(n, κ)` for a polylog bound — instantiated as
/// `cap_bytes = base · (log₂ n)^2` with a scheme-provided `base`.
pub fn check_succinctness(sig_len: usize, n: usize, base: usize) -> bool {
    let logn = (usize::BITS - n.max(2).saturating_sub(1).leading_zeros()) as usize;
    sig_len <= base * logn * logn
}

/// Helper: indices (SRDS party ids) covered by a signature set, for tests.
pub fn covered_indices<S: Srds>(scheme: &S, sigs: &[S::Signature]) -> BTreeSet<(u64, u64)> {
    sigs.iter()
        .map(|s| (scheme.min_index(s), scheme.max_index(s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pki_mode_display() {
        assert_eq!(PkiMode::Trusted.to_string(), "trusted-pki");
        assert_eq!(PkiMode::Bare.to_string(), "bare-pki");
    }

    #[test]
    fn succinctness_bound() {
        // 1 KiB base: at n=1024 (log=10) the cap is 100 KiB.
        assert!(check_succinctness(50_000, 1024, 1024));
        assert!(!check_succinctness(200_000, 1024, 1024));
        // Degenerate small n uses log >= 1.
        assert!(check_succinctness(100, 2, 1024));
    }
}
