//! A verified-certificate cache for SRDS aggregation.
//!
//! During a `π_ba` session the *same* aggregation certificate is verified
//! many times: [`crate::snark::SnarkSrds`] re-checks every incoming
//! `Agg` certificate inside `Aggregate₁` at **every** tree level, and the
//! final root certificate is verified once per receiving party during the
//! PRF spread — Θ(n) verifications of byte-identical input. PCD
//! verification is deterministic for a fixed CRS, so its verdict can be
//! memoized: the cache maps a digest of (CRS id, statement, proof) to the
//! boolean verdict.
//!
//! The cache lives inside the scheme value (one per session in practice),
//! so verdicts never leak across CRS instances; the hit/miss counters are
//! process-wide so harnesses can observe aggregate hit rates via
//! [`cert_cache_stats`].

use pba_crypto::sha256::Digest;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

// Same memory-ordering contract as the Merkle proof-cache counters
// (`pba_crypto::merkle`): relaxed, independently monotone event counts —
// never used to synchronise other memory, not an atomic pair snapshot.
static CERT_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CERT_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` of the process-wide certificate-verification cache.
///
/// Each counter is monotone non-decreasing between resets on any thread;
/// the pair is two independent relaxed loads, so derived hit rates are
/// only exact while the threaded round engine is quiescent.
pub fn cert_cache_stats() -> (u64, u64) {
    (
        CERT_CACHE_HITS.load(Ordering::Relaxed),
        CERT_CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// Resets the process-wide certificate-cache counters and returns the
/// values they held, `(hits, misses)`.
///
/// **Single-threaded entry points only** — same contract as
/// `pba_crypto::merkle::reset_proof_cache_stats`: call from harness code
/// while no threaded round engine is running, or monotonicity assertions
/// on other threads will observe the counters going backwards.
pub fn reset_cert_cache_stats() -> (u64, u64) {
    (
        CERT_CACHE_HITS.swap(0, Ordering::Relaxed),
        CERT_CACHE_MISSES.swap(0, Ordering::Relaxed),
    )
}

/// A snapshot of one cache's own counters (as opposed to the process-wide
/// [`cert_cache_stats`]): hits and misses since construction, plus the
/// *warm* hits — hits on entries inserted in an **earlier generation**
/// than the one current at lookup time.
///
/// A BA service advances the generation at every instance boundary, so
/// `warm_hits` counts exactly the cross-instance reuse: verdicts cached by
/// a previous instance (e.g. the chained predecessor certificate) and
/// consumed by a later one. A cold single-shot run never advances the
/// generation, so its `warm_hits` is zero by construction even though
/// within-run memoization produces plenty of plain `hits`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the verifier.
    pub misses: u64,
    /// Hits whose entry predates the current generation.
    pub warm_hits: u64,
}

/// Memoizes deterministic verification verdicts keyed by an input digest.
///
/// The caller is responsible for making the key collision-resistantly
/// cover *everything* the verdict depends on (for SNARK-SRDS: the CRS
/// public id, the full statement, and the proof bytes).
///
/// Besides the process-wide counters, each cache tracks its own
/// [`CacheStats`] and a monotone *generation*: entries remember the
/// generation they were inserted in, and a hit on an entry from an older
/// generation counts as a warm (cross-generation) hit. Callers that reuse
/// one cache across protocol instances bump the generation at each
/// boundary via [`CertCache::advance_generation`].
#[derive(Debug, Default)]
pub struct CertCache {
    verdicts: Mutex<HashMap<Digest, (bool, u64)>>,
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    warm_hits: AtomicU64,
}

impl CertCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cached verdicts.
    pub fn len(&self) -> usize {
        self.verdicts.lock().expect("cache poisoned").len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current generation (0 until the first
    /// [`CertCache::advance_generation`]).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    /// Starts a new generation and returns its number. Entries inserted
    /// from now on are "fresh"; hits on older entries count as warm.
    pub fn advance_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// This cache's own counters (relaxed independent loads — same
    /// snapshot contract as [`cert_cache_stats`]).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            warm_hits: self.warm_hits.load(Ordering::Relaxed),
        }
    }

    /// Returns the cached verdict for `key`, or runs `verify`, caches its
    /// verdict, and returns it.
    pub fn get_or_verify(&self, key: Digest, verify: impl FnOnce() -> bool) -> bool {
        let generation = self.generation.load(Ordering::Relaxed);
        if let Some(&(verdict, born)) = self.verdicts.lock().expect("cache poisoned").get(&key) {
            CERT_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            if born < generation {
                self.warm_hits.fetch_add(1, Ordering::Relaxed);
            }
            return verdict;
        }
        CERT_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let verdict = verify();
        self.verdicts
            .lock()
            .expect("cache poisoned")
            .insert(key, (verdict, generation));
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_crypto::sha256::Sha256;

    #[test]
    fn caches_both_verdicts_and_counts() {
        let cache = CertCache::new();
        let yes = Sha256::digest(b"good");
        let no = Sha256::digest(b"bad");
        let mut calls = 0;
        let (h0, m0) = cert_cache_stats();

        assert!(cache.get_or_verify(yes, || {
            calls += 1;
            true
        }));
        assert!(!cache.get_or_verify(no, || {
            calls += 1;
            false
        }));
        assert_eq!(calls, 2);

        // Second lookups never re-run the verifier, for either verdict.
        assert!(cache.get_or_verify(yes, || unreachable!("cached")));
        assert!(!cache.get_or_verify(no, || unreachable!("cached")));
        assert_eq!(cache.len(), 2);

        let (h1, m1) = cert_cache_stats();
        assert!(h1 >= h0 + 2);
        assert!(m1 >= m0 + 2);

        // Per-cache counters are scoped to this cache alone.
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 2,
                misses: 2,
                warm_hits: 0
            }
        );
    }

    #[test]
    fn generations_distinguish_warm_hits() {
        let cache = CertCache::new();
        let old = Sha256::digest(b"old-entry");
        let fresh = Sha256::digest(b"fresh-entry");

        assert!(cache.get_or_verify(old, || true)); // miss, generation 0
        assert!(cache.get_or_verify(old, || unreachable!())); // same-generation hit
        assert_eq!(cache.stats().warm_hits, 0);

        assert_eq!(cache.advance_generation(), 1);
        assert!(cache.get_or_verify(fresh, || true)); // miss, generation 1
        assert!(cache.get_or_verify(fresh, || unreachable!())); // same-generation hit
        assert_eq!(cache.stats().warm_hits, 0);

        // Only the hit on the generation-0 entry is warm.
        assert!(cache.get_or_verify(old, || unreachable!()));
        let stats = cache.stats();
        assert_eq!(stats.warm_hits, 1);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 2);
    }
}
