//! SRDS from one-way functions in the trusted-PKI model (Theorem 2.7).
//!
//! The construction follows the paper's "sortition approach":
//!
//! * the trusted key generation tosses a biased coin per party so that, in
//!   expectation, only `s = Θ(polylog n)` parties receive a real
//!   Lamport signing key; everyone else's verification key is sampled
//!   **obliviously** (no signing key exists);
//! * oblivious keys are indistinguishable from real ones, so an adversary
//!   corrupting after seeing the PKI cannot bias the signer set — corrupt
//!   parties hold a `< 1/3` fraction of signing keys w.h.p.;
//! * `Sign` outputs `⊥` for parties without a signing key;
//! * aggregation is concatenation (deduplicated by signer index, sorted);
//! * verification counts distinct valid base signatures on the message and
//!   accepts at the majority-of-expected-signers threshold `⌈s/2⌉`.
//!
//! Honest parties contribute ≈ `(2/3)s` valid signatures ≥ threshold
//! (robustness); the adversary controls ≈ `s/3 <` threshold
//! (unforgeability). Signatures carry `O(s)` Lamport signatures —
//! `polylog(n) · poly(κ)` bits, satisfying succinctness.
//!
//! **Concrete-security margin.** Both bounds are concentration arguments:
//! a maximal `n/3` coalition holds `Binomial(n/3, s/n)` signing keys
//! (mean `s/3`, σ ≈ `√(s/3)`), so the distance to the `s/2` threshold is
//! `(s/6)/√(s/3) = √(3s)/6` standard deviations. The paper's asymptotic
//! `s = polylog(n)` makes this overwhelming; at simulation scale the
//! margin is what `signer_factor`/`min_signers` buy — the defaults give
//! ≈ 3σ against a maximal coalition (property-tested), and
//! security-critical deployments should scale `s` like a security
//! parameter, exactly as the committee-size discussion in EXPERIMENTS.md.
//!
//! # Examples
//!
//! ```
//! use pba_srds::owf::OwfSrds;
//! use pba_srds::traits::{PkiBoard, Srds};
//! use pba_crypto::prg::Prg;
//!
//! let scheme = OwfSrds::with_defaults();
//! let mut prg = Prg::from_seed_bytes(b"demo");
//! let board = PkiBoard::establish(&scheme, 64, &mut prg);
//! let sigs: Vec<_> = (0..64u64)
//!     .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], b"msg"))
//!     .collect();
//! let agg = scheme.aggregate(&board.pp, &board.vks, b"msg", &sigs).unwrap();
//! assert!(scheme.verify(&board.pp, &board.vks, b"msg", &agg));
//! ```

use crate::traits::{PkiMode, Srds};
use pba_crypto::codec::{CodecError, Decode, Encode, Reader};
use pba_crypto::lamport::{
    LamportKeyPair, LamportParams, LamportSignature, LamportVerificationKey,
};
use pba_crypto::prg::Prg;
use std::collections::BTreeMap;

/// Tunables of the OWF-based SRDS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OwfSrdsConfig {
    /// Lamport message-digest bits (κ knob; smaller = smaller signatures).
    pub lamport_bits: usize,
    /// Expected signers as `signer_factor · log₂ n`, floored at
    /// `min_signers`.
    pub signer_factor: usize,
    /// Lower bound on the expected signer count.
    pub min_signers: usize,
}

impl Default for OwfSrdsConfig {
    fn default() -> Self {
        OwfSrdsConfig {
            lamport_bits: 32,
            signer_factor: 10,
            min_signers: 48,
        }
    }
}

/// The OWF / trusted-PKI SRDS scheme.
#[derive(Clone, Copy, Debug, Default)]
pub struct OwfSrds {
    config: OwfSrdsConfig,
}

impl OwfSrds {
    /// Creates the scheme with explicit tunables.
    pub fn new(config: OwfSrdsConfig) -> Self {
        OwfSrds { config }
    }

    /// Creates the scheme with default tunables.
    pub fn with_defaults() -> Self {
        Self::default()
    }

    /// The configuration.
    pub fn config(&self) -> &OwfSrdsConfig {
        &self.config
    }
}

/// Public parameters: party count, sortition rate, Lamport parameters, and
/// the acceptance threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OwfPublicParams {
    /// Number of SRDS parties.
    pub n: usize,
    /// Expected number of parties holding signing keys.
    pub expected_signers: usize,
    /// Count of distinct valid base signatures required to accept.
    pub threshold: usize,
    /// Underlying one-time signature parameters.
    pub lamport: LamportParams,
}

/// A signing key: present only for sortition winners.
#[derive(Clone, Debug, Default)]
pub struct OwfSigningKey(Option<LamportKeyPair>);

impl OwfSigningKey {
    /// Whether this party can sign.
    pub fn can_sign(&self) -> bool {
        self.0.is_some()
    }
}

/// One aggregated entry: signer index and Lamport signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwfEntry {
    /// SRDS party index of the signer.
    pub id: u64,
    /// The base one-time signature.
    pub sig: LamportSignature,
}

impl Encode for OwfEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.sig.encode(buf);
    }
}

impl Decode for OwfEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(OwfEntry {
            id: u64::decode(r)?,
            sig: LamportSignature::decode(r)?,
        })
    }
}

/// An OWF-SRDS signature: a sorted, id-distinct list of base signatures.
/// A base (`Sign`) signature is the single-entry case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwfSignature {
    /// Entries sorted by increasing signer id.
    pub entries: Vec<OwfEntry>,
}

impl Encode for OwfSignature {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.entries.encode(buf);
    }
}

impl Decode for OwfSignature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(OwfSignature {
            entries: Vec::<OwfEntry>::decode(r)?,
        })
    }
}

impl Srds for OwfSrds {
    type PublicParams = OwfPublicParams;
    type VerificationKey = LamportVerificationKey;
    type SigningKey = OwfSigningKey;
    type Signature = OwfSignature;
    type KeyBoard = Vec<LamportVerificationKey>;

    fn prepare(
        &self,
        _pp: &OwfPublicParams,
        vks: &[LamportVerificationKey],
    ) -> Vec<LamportVerificationKey> {
        vks.to_vec()
    }

    fn mode(&self) -> PkiMode {
        PkiMode::Trusted
    }

    fn setup(&self, n: usize, _prg: &mut Prg) -> OwfPublicParams {
        let logn = (usize::BITS - n.max(2).saturating_sub(1).leading_zeros()) as usize;
        let expected_signers = (self.config.signer_factor * logn)
            .max(self.config.min_signers)
            .min(n);
        OwfPublicParams {
            n,
            expected_signers,
            threshold: expected_signers.div_ceil(2),
            lamport: LamportParams::new(self.config.lamport_bits),
        }
    }

    fn keygen(
        &self,
        pp: &OwfPublicParams,
        prg: &mut Prg,
    ) -> (LamportVerificationKey, OwfSigningKey) {
        // Biased sortition coin: real key with probability s/n. This is the
        // honestly-executed trusted key generation; in tr-pki mode the
        // adversary cannot re-run it.
        if prg.gen_bool_ratio(pp.expected_signers as u64, pp.n as u64) {
            let kp = LamportKeyPair::generate(&pp.lamport, prg);
            (kp.verification_key(), OwfSigningKey(Some(kp)))
        } else {
            (
                LamportVerificationKey::generate_oblivious(prg),
                OwfSigningKey(None),
            )
        }
    }

    fn sign(
        &self,
        _pp: &OwfPublicParams,
        index: u64,
        sk: &OwfSigningKey,
        message: &[u8],
    ) -> Option<OwfSignature> {
        let kp = sk.0.as_ref()?;
        Some(OwfSignature {
            entries: vec![OwfEntry {
                id: index,
                sig: kp.sign(message),
            }],
        })
    }

    fn aggregate1(
        &self,
        pp: &OwfPublicParams,
        vks: &Vec<LamportVerificationKey>,
        message: &[u8],
        sigs: &[OwfSignature],
    ) -> Vec<OwfSignature> {
        // Deterministic filter: flatten, verify each entry against its key,
        // deduplicate by id (first valid wins). Output as single-entry
        // signatures so Aggregate₂ is key-independent.
        let mut seen: BTreeMap<u64, OwfEntry> = BTreeMap::new();
        for sig in sigs {
            for entry in &sig.entries {
                if seen.contains_key(&entry.id) {
                    continue;
                }
                let Some(vk) = vks.get(entry.id as usize) else {
                    continue;
                };
                if pp.lamport.verify(vk, message, &entry.sig) {
                    seen.insert(entry.id, entry.clone());
                }
            }
        }
        // Succinctness cap: keep the lowest 4s ids (never binds w.h.p. —
        // there are only ~s signers in the entire system).
        let cap = 4 * pp.expected_signers;
        seen.into_values()
            .take(cap)
            .map(|entry| OwfSignature {
                entries: vec![entry],
            })
            .collect()
    }

    fn aggregate2(
        &self,
        _pp: &OwfPublicParams,
        _message: &[u8],
        s_sig: &[OwfSignature],
    ) -> Option<OwfSignature> {
        // Key-independent merge: concatenate and sort by id. Inputs come
        // from Aggregate₁, so they are valid and id-distinct.
        if s_sig.is_empty() {
            return None;
        }
        let mut entries: Vec<OwfEntry> = s_sig
            .iter()
            .flat_map(|s| s.entries.iter().cloned())
            .collect();
        entries.sort_by_key(|e| e.id);
        entries.dedup_by_key(|e| e.id);
        Some(OwfSignature { entries })
    }

    fn verify(
        &self,
        pp: &OwfPublicParams,
        vks: &Vec<LamportVerificationKey>,
        message: &[u8],
        sig: &OwfSignature,
    ) -> bool {
        // Count distinct valid signers; accept at the majority threshold.
        let mut valid = 0usize;
        let mut last_id: Option<u64> = None;
        for entry in &sig.entries {
            if let Some(prev) = last_id {
                if entry.id <= prev {
                    return false; // not sorted/distinct: malformed
                }
            }
            last_id = Some(entry.id);
            let Some(vk) = vks.get(entry.id as usize) else {
                return false;
            };
            if pp.lamport.verify(vk, message, &entry.sig) {
                valid += 1;
            }
        }
        valid >= pp.threshold
    }

    fn min_index(&self, sig: &OwfSignature) -> u64 {
        sig.entries.first().map(|e| e.id).unwrap_or(u64::MAX)
    }

    fn max_index(&self, sig: &OwfSignature) -> u64 {
        sig.entries.last().map(|e| e.id).unwrap_or(0)
    }

    fn signature_len(&self, sig: &OwfSignature) -> usize {
        pba_crypto::codec::encode_to_vec(sig).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::PkiBoard;

    fn board(n: usize) -> (OwfSrds, PkiBoard<OwfSrds>) {
        let scheme = OwfSrds::with_defaults();
        let mut prg = Prg::from_seed_bytes(b"owf-test");
        let board = PkiBoard::establish(&scheme, n, &mut prg);
        (scheme, board)
    }

    fn all_signatures(
        scheme: &OwfSrds,
        board: &PkiBoard<OwfSrds>,
        msg: &[u8],
    ) -> Vec<OwfSignature> {
        (0..board.len() as u64)
            .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], msg))
            .collect()
    }

    #[test]
    fn sortition_rate_close_to_expected() {
        let (_, board) = board(2048);
        let signers = board.sks.iter().filter(|sk| sk.can_sign()).count();
        let expected = board.pp.expected_signers;
        assert!(
            signers as f64 > 0.5 * expected as f64 && (signers as f64) < 2.0 * expected as f64,
            "signers={signers} expected={expected}"
        );
    }

    #[test]
    fn full_honest_aggregate_verifies() {
        let (scheme, board) = board(512);
        let sigs = all_signatures(&scheme, &board, b"m");
        assert!(sigs.len() >= board.pp.threshold, "not enough signers");
        let agg = scheme
            .aggregate(&board.pp, &board.vks, b"m", &sigs)
            .unwrap();
        assert!(scheme.verify(&board.pp, &board.vks, b"m", &agg));
    }

    #[test]
    fn below_threshold_rejected() {
        let (scheme, board) = board(512);
        let sigs = all_signatures(&scheme, &board, b"m");
        let few = &sigs[..board.pp.threshold - 1];
        let agg = scheme.aggregate(&board.pp, &board.vks, b"m", few).unwrap();
        assert!(!scheme.verify(&board.pp, &board.vks, b"m", &agg));
    }

    #[test]
    fn wrong_message_signatures_filtered() {
        let (scheme, board) = board(512);
        let good = all_signatures(&scheme, &board, b"m");
        let bad = all_signatures(&scheme, &board, b"other");
        // Aggregating the other-message signatures as if on "m" filters all.
        let filtered = scheme.aggregate1(&board.pp, &board.vks, b"m", &bad);
        assert!(filtered.is_empty());
        // Mixed: only the good ones survive.
        let mut mixed = good.clone();
        mixed.extend(bad);
        let agg = scheme
            .aggregate(&board.pp, &board.vks, b"m", &mixed)
            .unwrap();
        assert!(scheme.verify(&board.pp, &board.vks, b"m", &agg));
        assert_eq!(agg.entries.len(), good.len());
    }

    #[test]
    fn duplicate_signatures_counted_once() {
        let (scheme, board) = board(512);
        let sigs = all_signatures(&scheme, &board, b"m");
        // Duplicate every signature 3 times.
        let mut dup = Vec::new();
        for s in &sigs {
            dup.push(s.clone());
            dup.push(s.clone());
            dup.push(s.clone());
        }
        let agg = scheme.aggregate(&board.pp, &board.vks, b"m", &dup).unwrap();
        assert_eq!(agg.entries.len(), sigs.len());
    }

    #[test]
    fn incremental_aggregation_matches_flat() {
        let (scheme, board) = board(512);
        let sigs = all_signatures(&scheme, &board, b"m");
        let flat = scheme
            .aggregate(&board.pp, &board.vks, b"m", &sigs)
            .unwrap();
        // Aggregate in two halves, then combine.
        let mid = sigs.len() / 2;
        let a = scheme
            .aggregate(&board.pp, &board.vks, b"m", &sigs[..mid])
            .unwrap();
        let b = scheme
            .aggregate(&board.pp, &board.vks, b"m", &sigs[mid..])
            .unwrap();
        let combined = scheme
            .aggregate(&board.pp, &board.vks, b"m", &[a, b])
            .unwrap();
        assert_eq!(combined, flat);
    }

    #[test]
    fn min_max_indices() {
        let (scheme, board) = board(512);
        let sigs = all_signatures(&scheme, &board, b"m");
        let first = &sigs[0];
        assert_eq!(scheme.min_index(first), scheme.max_index(first));
        let agg = scheme
            .aggregate(&board.pp, &board.vks, b"m", &sigs)
            .unwrap();
        assert!(scheme.min_index(&agg) < scheme.max_index(&agg));
        assert_eq!(scheme.min_index(&agg), agg.entries[0].id);
    }

    #[test]
    fn unsorted_aggregate_rejected_by_verify() {
        let (scheme, board) = board(512);
        let sigs = all_signatures(&scheme, &board, b"m");
        let mut agg = scheme
            .aggregate(&board.pp, &board.vks, b"m", &sigs)
            .unwrap();
        agg.entries.swap(0, 1);
        assert!(!scheme.verify(&board.pp, &board.vks, b"m", &agg));
    }

    #[test]
    fn duplicated_entry_in_final_signature_rejected() {
        let (scheme, board) = board(512);
        let sigs = all_signatures(&scheme, &board, b"m");
        let mut agg = scheme
            .aggregate(&board.pp, &board.vks, b"m", &sigs)
            .unwrap();
        // Adversarial final signature: repeat one entry to inflate count.
        let dup = agg.entries[0].clone();
        agg.entries.insert(0, dup);
        assert!(!scheme.verify(&board.pp, &board.vks, b"m", &agg));
    }

    #[test]
    fn signature_is_succinct() {
        let (scheme, board) = board(2048);
        let sigs = all_signatures(&scheme, &board, b"m");
        let agg = scheme
            .aggregate(&board.pp, &board.vks, b"m", &sigs)
            .unwrap();
        let len = scheme.signature_len(&agg);
        // Õ(1): bounded by signers * per-sig size, independent of n beyond log.
        let per_sig = board.pp.lamport.signature_len() + 16;
        assert!(len <= 4 * board.pp.expected_signers * per_sig, "len={len}");
    }

    #[test]
    fn codec_roundtrip() {
        let (scheme, board) = board(256);
        let sigs = all_signatures(&scheme, &board, b"m");
        let agg = scheme
            .aggregate(&board.pp, &board.vks, b"m", &sigs)
            .unwrap();
        let bytes = pba_crypto::codec::encode_to_vec(&agg);
        let back: OwfSignature = pba_crypto::codec::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, agg);
        assert!(scheme.verify(&board.pp, &board.vks, b"m", &back));
    }

    #[test]
    fn oblivious_parties_cannot_sign() {
        let (scheme, board) = board(256);
        for i in 0..board.len() as u64 {
            let sk = &board.sks[i as usize];
            if !sk.can_sign() {
                assert!(scheme.sign(&board.pp, i, sk, b"m").is_none());
            }
        }
    }
}
