//! SRDS from CRH + SNARKs (with linear extraction) in the bare-PKI + CRS
//! model (Theorem 2.8).
//!
//! The construction follows §2.2: base signatures are standard (bare-PKI)
//! signatures — our Merkle signature scheme — and aggregation carries a
//! **proof-carrying-data certificate** up the communication tree:
//!
//! * the public keys are indexed by a Merkle tree (built from the bulletin
//!   board after key publication — the CRH in the theorem statement);
//! * a leaf aggregator proves, via a PCD source step, that it knows `c`
//!   **distinct** valid base signatures on `m` from keys at positions
//!   `lo ≤ id₁ < … < id_c ≤ hi` under the key root;
//! * an internal aggregator proves a PCD join step: its children's
//!   certificates have pairwise **disjoint, increasing index ranges**, and
//!   its count is their sum — this is the CRH-based defence (together with
//!   the min/max range encoding of Definition 2.1) against the
//!   same-signature-aggregated-twice attack the paper highlights;
//! * the final certificate is `(count, lo, hi, accumulator, π)` — a few
//!   dozen bytes — and verification accepts iff `π` is valid and
//!   `count ≥ ⌈n/2⌉` (a majority of all SRDS parties signed).
//!
//! # Examples
//!
//! ```
//! use pba_srds::snark::SnarkSrds;
//! use pba_srds::traits::{PkiBoard, Srds};
//! use pba_crypto::prg::Prg;
//!
//! let scheme = SnarkSrds::with_defaults();
//! let mut prg = Prg::from_seed_bytes(b"demo");
//! let board = PkiBoard::establish(&scheme, 32, &mut prg);
//! let keys = board.prepare(&scheme);
//! let sigs: Vec<_> = (0..32u64)
//!     .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], b"msg"))
//!     .collect();
//! let agg = scheme.aggregate(&board.pp, &keys, b"msg", &sigs).unwrap();
//! assert!(scheme.verify(&board.pp, &keys, b"msg", &agg));
//! ```

use crate::traits::{PkiMode, Srds};
use pba_crypto::codec::{encode_to_vec, CodecError, Decode, Encode, Reader};
use pba_crypto::merkle::{MerkleProof, MerkleTree};
use pba_crypto::mss::{MssKeyPair, MssParams, MssSignature, MssVerificationKey};
use pba_crypto::prg::Prg;
use pba_crypto::sha256::{Digest, Sha256};
use pba_snark::pcd::{CompliancePredicate, PcdProof, PcdSystem};
use pba_snark::system::SnarkCrs;

/// Tunables of the SNARK-based SRDS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnarkSrdsConfig {
    /// Lamport digest bits inside the MSS base signatures.
    pub mss_bits: usize,
    /// MSS tree height (2^height one-time keys per SRDS party).
    pub mss_height: usize,
}

impl Default for SnarkSrdsConfig {
    fn default() -> Self {
        SnarkSrdsConfig {
            mss_bits: 32,
            mss_height: 1,
        }
    }
}

/// The CRH + SNARK / bare-PKI SRDS scheme.
///
/// Carries a per-scheme (in practice: per-session) verified-certificate
/// cache — PCD verification is deterministic for a fixed CRS, and the same
/// certificate reaches `Aggregate₁` at every tree level and `Verify` at
/// every receiving party, so verdicts are memoized. Clones share the
/// cache.
#[derive(Clone, Debug, Default)]
pub struct SnarkSrds {
    config: SnarkSrdsConfig,
    cert_cache: std::sync::Arc<crate::cache::CertCache>,
}

impl SnarkSrds {
    /// Creates the scheme with explicit tunables.
    pub fn new(config: SnarkSrdsConfig) -> Self {
        SnarkSrds {
            config,
            cert_cache: Default::default(),
        }
    }

    /// Creates the scheme with default tunables.
    pub fn with_defaults() -> Self {
        Self::default()
    }

    /// Number of distinct certificates whose verdicts are cached.
    pub fn cached_certificates(&self) -> usize {
        self.cert_cache.len()
    }
}

/// Public parameters: the CRS (common random string + SNARK setup), base
/// signature parameters, and the majority threshold.
#[derive(Clone, Debug)]
pub struct SnarkPublicParams {
    /// Number of SRDS parties.
    pub n: usize,
    /// Base-signature parameters.
    pub mss: MssParams,
    /// The SNARK common reference string.
    pub crs: SnarkCrs,
    /// Accepting count: a majority of all SRDS parties.
    pub threshold: u64,
}

/// The prepared key board: the published keys plus their Merkle index.
#[derive(Clone, Debug)]
pub struct SnarkKeyBoard {
    /// The verification keys as published.
    pub vks: Vec<MssVerificationKey>,
    /// Merkle tree over the key digests.
    pub tree: MerkleTree,
}

impl SnarkKeyBoard {
    /// The key-board commitment all certificates bind to.
    pub fn root(&self) -> Digest {
        self.tree.root()
    }
}

/// The aggregation certificate: what flows up the tree and what the final
/// verifier sees. Constant-size.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggCertificate {
    /// Number of distinct base signatures aggregated.
    pub count: u64,
    /// Smallest covered SRDS index (`min(σ)`).
    pub lo: u64,
    /// Largest covered SRDS index (`max(σ)`).
    pub hi: u64,
    /// CRH accumulator binding the aggregation transcript.
    pub acc: Digest,
    /// Key-board commitment this certificate is relative to.
    pub vk_root: Digest,
    /// The PCD proof.
    pub proof: PcdProof,
}

impl Encode for AggCertificate {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.count.encode(buf);
        self.lo.encode(buf);
        self.hi.encode(buf);
        self.acc.encode(buf);
        self.vk_root.encode(buf);
        self.proof.encode(buf);
    }
}

impl Decode for AggCertificate {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(AggCertificate {
            count: u64::decode(r)?,
            lo: u64::decode(r)?,
            hi: u64::decode(r)?,
            acc: Digest::decode(r)?,
            vk_root: Digest::decode(r)?,
            proof: PcdProof::decode(r)?,
        })
    }
}

/// A SNARK-SRDS signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnarkSignature {
    /// Output of `Sign`: one base signature.
    Base {
        /// SRDS party index of the signer.
        id: u64,
        /// The base signature on the message.
        mss: MssSignature,
    },
    /// Output of `Aggregate₁` for base inputs: a verified base signature
    /// enriched with its key's Merkle path (the key-dependent data
    /// `Aggregate₂` needs, precomputed so `Aggregate₂` never touches the
    /// key board).
    Attested {
        /// SRDS party index of the signer.
        id: u64,
        /// The base signature.
        mss: MssSignature,
        /// The signer's verification key.
        vk: Digest,
        /// Merkle path of `vk` at position `id` under the key root.
        path: MerkleProof,
        /// The key root the path verifies against.
        vk_root: Digest,
    },
    /// An aggregated certificate.
    Agg(AggCertificate),
}

impl Encode for SnarkSignature {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            SnarkSignature::Base { id, mss } => {
                buf.push(0);
                id.encode(buf);
                mss.encode(buf);
            }
            SnarkSignature::Attested {
                id,
                mss,
                vk,
                path,
                vk_root,
            } => {
                buf.push(1);
                id.encode(buf);
                mss.encode(buf);
                vk.encode(buf);
                path.encode(buf);
                vk_root.encode(buf);
            }
            SnarkSignature::Agg(cert) => {
                buf.push(2);
                cert.encode(buf);
            }
        }
    }
}

impl Decode for SnarkSignature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(SnarkSignature::Base {
                id: u64::decode(r)?,
                mss: MssSignature::decode(r)?,
            }),
            1 => Ok(SnarkSignature::Attested {
                id: u64::decode(r)?,
                mss: MssSignature::decode(r)?,
                vk: Digest::decode(r)?,
                path: MerkleProof::decode(r)?,
                vk_root: Digest::decode(r)?,
            }),
            2 => Ok(SnarkSignature::Agg(AggCertificate::decode(r)?)),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

/// The PCD message: the public statement a certificate proof binds to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AggStatement {
    /// Digest of the signed message `m`.
    pub m_digest: Digest,
    /// Key-board commitment.
    pub vk_root: Digest,
    /// Distinct base signatures aggregated.
    pub count: u64,
    /// Covered index range.
    pub lo: u64,
    /// Covered index range.
    pub hi: u64,
    /// Transcript accumulator.
    pub acc: Digest,
}

/// The compliance predicate of the SRDS aggregation DAG.
#[derive(Clone, Debug)]
pub struct SrdsPredicate {
    mss: MssParams,
}

/// Witness entry for a PCD *source* step: one verified base signature.
struct SourceEntry {
    id: u64,
    mss: MssSignature,
    vk: Digest,
    path: MerkleProof,
}

impl Encode for SourceEntry {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.id.encode(buf);
        self.mss.encode(buf);
        self.vk.encode(buf);
        self.path.encode(buf);
    }
}

impl Decode for SourceEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(SourceEntry {
            id: u64::decode(r)?,
            mss: MssSignature::decode(r)?,
            vk: Digest::decode(r)?,
            path: MerkleProof::decode(r)?,
        })
    }
}

fn ids_accumulator(ids: &[u64]) -> Digest {
    let mut h = Sha256::new();
    h.update(b"srds-acc-ids");
    for id in ids {
        h.update(&id.to_le_bytes());
    }
    h.finalize()
}

fn join_accumulator(children: &[AggStatement]) -> Digest {
    let mut h = Sha256::new();
    h.update(b"srds-acc-join");
    for c in children {
        h.update(c.acc.as_bytes());
        h.update(&c.count.to_le_bytes());
        h.update(&c.lo.to_le_bytes());
        h.update(&c.hi.to_le_bytes());
    }
    h.finalize()
}

impl CompliancePredicate for SrdsPredicate {
    type Message = AggStatement;

    fn id(&self) -> &'static str {
        "srds-aggregation-v1"
    }

    fn check(&self, output: &AggStatement, inputs: &[AggStatement], local: &[u8]) -> bool {
        if output.lo > output.hi || output.count == 0 {
            return false;
        }
        if inputs.is_empty() {
            // Source step: `local` holds the verified base signatures.
            let Ok(entries) = pba_crypto::codec::decode_from_slice::<Vec<SourceEntry>>(local)
            else {
                return false;
            };
            if entries.is_empty() || entries.len() as u64 != output.count {
                return false;
            }
            let mut prev: Option<u64> = None;
            let mut ids = Vec::with_capacity(entries.len());
            for e in &entries {
                // Strictly increasing ids => distinctness.
                if let Some(p) = prev {
                    if e.id <= p {
                        return false;
                    }
                }
                prev = Some(e.id);
                if e.id < output.lo || e.id > output.hi {
                    return false;
                }
                // The key sits at position `id` under the committed board.
                if e.path.leaf_index() != e.id {
                    return false;
                }
                if !e.path.verify_leaf_digest(
                    &output.vk_root,
                    &pba_crypto::merkle::hash_leaf(e.vk.as_bytes()),
                ) {
                    return false;
                }
                // The base signature verifies on the message digest.
                if !self.mss.verify(
                    &MssVerificationKey(e.vk),
                    output.m_digest.as_bytes(),
                    &e.mss,
                ) {
                    return false;
                }
                ids.push(e.id);
            }
            output.acc == ids_accumulator(&ids)
        } else {
            // Join step: disjoint increasing ranges, matching context.
            let mut count = 0u64;
            for (i, c) in inputs.iter().enumerate() {
                if c.m_digest != output.m_digest || c.vk_root != output.vk_root {
                    return false;
                }
                if c.lo > c.hi || c.count == 0 {
                    return false;
                }
                if i > 0 && c.lo <= inputs[i - 1].hi {
                    return false; // overlap or disorder: double-count risk
                }
                count = count.saturating_add(c.count);
            }
            output.count == count
                && output.lo == inputs[0].lo
                && output.hi == inputs.last().expect("nonempty").hi
                && output.acc == join_accumulator(inputs)
        }
    }

    fn encode_message(&self, m: &AggStatement, buf: &mut Vec<u8>) {
        m.m_digest.encode(buf);
        m.vk_root.encode(buf);
        m.count.encode(buf);
        m.lo.encode(buf);
        m.hi.encode(buf);
        m.acc.encode(buf);
    }
}

impl SnarkSrds {
    fn pcd(&self, pp: &SnarkPublicParams) -> PcdSystem<SrdsPredicate> {
        PcdSystem::new(pp.crs.clone(), SrdsPredicate { mss: pp.mss })
    }

    /// PCD verification through the per-session verdict cache. The key
    /// covers everything the (deterministic) verdict depends on: the CRS
    /// public id, the full statement, and the proof bytes.
    fn cached_cert_verify(
        &self,
        pp: &SnarkPublicParams,
        pcd: &PcdSystem<SrdsPredicate>,
        statement: &AggStatement,
        proof: &PcdProof,
    ) -> bool {
        let mut h = Sha256::new();
        h.update(b"srds-cert-cache");
        h.update(pp.crs.public_id().as_bytes());
        h.update(statement.m_digest.as_bytes());
        h.update(statement.vk_root.as_bytes());
        h.update(&statement.count.to_le_bytes());
        h.update(&statement.lo.to_le_bytes());
        h.update(&statement.hi.to_le_bytes());
        h.update(statement.acc.as_bytes());
        h.update(proof.as_bytes());
        self.cert_cache
            .get_or_verify(h.finalize(), || pcd.verify(statement, proof))
    }

    fn message_digest(message: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(b"srds-message");
        h.update(message);
        h.finalize()
    }

    /// Builds a source certificate from attested entries (helper for
    /// `Aggregate₂`).
    fn source_certificate(
        &self,
        pp: &SnarkPublicParams,
        m_digest: Digest,
        vk_root: Digest,
        entries: &[(u64, MssSignature, Digest, MerkleProof)],
    ) -> Option<AggCertificate> {
        if entries.is_empty() {
            return None;
        }
        let ids: Vec<u64> = entries.iter().map(|e| e.0).collect();
        let statement = AggStatement {
            m_digest,
            vk_root,
            count: entries.len() as u64,
            lo: ids[0],
            hi: *ids.last().expect("nonempty"),
            acc: ids_accumulator(&ids),
        };
        let witness: Vec<SourceEntry> = entries
            .iter()
            .map(|(id, mss, vk, path)| SourceEntry {
                id: *id,
                mss: mss.clone(),
                vk: *vk,
                path: path.clone(),
            })
            .collect();
        let local = encode_to_vec(&witness);
        let proof = self.pcd(pp).prove(&statement, &[], &local).ok()?;
        Some(AggCertificate {
            count: statement.count,
            lo: statement.lo,
            hi: statement.hi,
            acc: statement.acc,
            vk_root,
            proof,
        })
    }

    fn join_certificates(
        &self,
        pp: &SnarkPublicParams,
        m_digest: Digest,
        certs: &[AggCertificate],
    ) -> Option<AggCertificate> {
        if certs.is_empty() {
            return None;
        }
        if certs.len() == 1 {
            return Some(certs[0].clone());
        }
        let vk_root = certs[0].vk_root;
        let pcd = self.pcd(pp);
        let statements: Vec<AggStatement> = certs
            .iter()
            .map(|c| AggStatement {
                m_digest,
                vk_root: c.vk_root,
                count: c.count,
                lo: c.lo,
                hi: c.hi,
                acc: c.acc,
            })
            .collect();
        let output = AggStatement {
            m_digest,
            vk_root,
            count: statements.iter().map(|s| s.count).sum(),
            lo: statements[0].lo,
            hi: statements.last().expect("nonempty").hi,
            acc: join_accumulator(&statements),
        };
        let inputs: Vec<(&AggStatement, &PcdProof)> = statements
            .iter()
            .zip(certs.iter().map(|c| &c.proof))
            .collect();
        let proof = pcd.prove(&output, &inputs, b"").ok()?;
        Some(AggCertificate {
            count: output.count,
            lo: output.lo,
            hi: output.hi,
            acc: output.acc,
            vk_root,
            proof,
        })
    }
}

impl Srds for SnarkSrds {
    type PublicParams = SnarkPublicParams;
    type VerificationKey = MssVerificationKey;
    type SigningKey = MssKeyPair;
    type Signature = SnarkSignature;
    type KeyBoard = SnarkKeyBoard;

    fn mode(&self) -> PkiMode {
        PkiMode::Bare
    }

    fn prepare(&self, _pp: &SnarkPublicParams, vks: &[MssVerificationKey]) -> SnarkKeyBoard {
        let tree = MerkleTree::from_leaves(vks.iter().map(|vk| vk.digest().into_bytes()));
        SnarkKeyBoard {
            vks: vks.to_vec(),
            tree,
        }
    }

    fn setup(&self, n: usize, prg: &mut Prg) -> SnarkPublicParams {
        // The CRS: a common random string expanded into the SNARK setup.
        let crs_seed = {
            use rand::RngCore;
            let mut bytes = [0u8; 32];
            prg.fill_bytes(&mut bytes);
            bytes
        };
        SnarkPublicParams {
            n,
            mss: MssParams::new(self.config.mss_bits, self.config.mss_height),
            crs: SnarkCrs::setup(&crs_seed),
            threshold: (n as u64) / 2 + 1,
        }
    }

    fn keygen(&self, pp: &SnarkPublicParams, prg: &mut Prg) -> (MssVerificationKey, MssKeyPair) {
        // Bare PKI: each party generates locally; corrupted parties may
        // publish arbitrary keys instead (handled by the experiments).
        let kp = MssKeyPair::generate(&pp.mss, prg);
        (kp.verification_key(), kp)
    }

    fn sign(
        &self,
        _pp: &SnarkPublicParams,
        index: u64,
        sk: &MssKeyPair,
        message: &[u8],
    ) -> Option<SnarkSignature> {
        // One-time discipline per SRDS instance (the paper's definition is
        // for one-time SRDS): each key signs a single message, with the
        // deterministic first one-time key.
        let m_digest = Self::message_digest(message);
        Some(SnarkSignature::Base {
            id: index,
            mss: sk.sign_with_index(m_digest.as_bytes(), 0),
        })
    }

    fn sign_epoch(
        &self,
        pp: &SnarkPublicParams,
        index: u64,
        sk: &MssKeyPair,
        epoch: u64,
        message: &[u8],
    ) -> Option<SnarkSignature> {
        // One one-time slot per epoch; past capacity the answer is ⊥, never
        // a silent wrap onto an already-spent key (which would break the
        // one-time discipline the MSS security argument rests on). Streamed
        // callers budget epochs up front via `epoch_capacity`.
        if epoch >= pp.mss.capacity() as u64 {
            return None;
        }
        let m_digest = Self::message_digest(message);
        Some(SnarkSignature::Base {
            id: index,
            mss: sk.sign_with_index(m_digest.as_bytes(), epoch as usize),
        })
    }

    fn epoch_capacity(&self, pp: &SnarkPublicParams) -> Option<u64> {
        Some(pp.mss.capacity() as u64)
    }

    fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        Some(self.cert_cache.stats())
    }

    fn advance_cache_generation(&self) {
        self.cert_cache.advance_generation();
    }

    fn aggregate1(
        &self,
        pp: &SnarkPublicParams,
        board: &SnarkKeyBoard,
        message: &[u8],
        sigs: &[SnarkSignature],
    ) -> Vec<SnarkSignature> {
        // Deterministic key-dependent filter:
        //  * Base signatures: verify against the board, attach Merkle paths
        //    (→ Attested), dedup by id;
        //  * Agg certificates: check proof validity and keep a maximal
        //    prefix of range-disjoint certificates (sorted by lo).
        let m_digest = Self::message_digest(message);
        let vk_root = board.root();
        let pcd = self.pcd(pp);

        let mut attested: std::collections::BTreeMap<u64, SnarkSignature> = Default::default();
        let mut certs: Vec<AggCertificate> = Vec::new();
        for sig in sigs {
            match sig {
                SnarkSignature::Base { id, mss } => {
                    if attested.contains_key(id) {
                        continue;
                    }
                    let Some(vk) = board.vks.get(*id as usize) else {
                        continue;
                    };
                    if pp.mss.verify(vk, m_digest.as_bytes(), mss) {
                        attested.insert(
                            *id,
                            SnarkSignature::Attested {
                                id: *id,
                                mss: mss.clone(),
                                vk: vk.digest(),
                                path: board.tree.prove(*id as usize),
                                vk_root,
                            },
                        );
                    }
                }
                SnarkSignature::Attested {
                    id,
                    mss,
                    vk,
                    path,
                    vk_root: root,
                } => {
                    // Re-validate attested inputs (they may come from the
                    // adversary): path + signature must check out.
                    if attested.contains_key(id) || *root != vk_root {
                        continue;
                    }
                    if path.leaf_index() == *id
                        && path.verify_leaf_digest(
                            &vk_root,
                            &pba_crypto::merkle::hash_leaf(vk.as_bytes()),
                        )
                        && pp
                            .mss
                            .verify(&MssVerificationKey(*vk), m_digest.as_bytes(), mss)
                    {
                        attested.insert(*id, sig.clone());
                    }
                }
                SnarkSignature::Agg(cert) => {
                    if cert.vk_root != vk_root {
                        continue;
                    }
                    let statement = AggStatement {
                        m_digest,
                        vk_root: cert.vk_root,
                        count: cert.count,
                        lo: cert.lo,
                        hi: cert.hi,
                        acc: cert.acc,
                    };
                    if self.cached_cert_verify(pp, &pcd, &statement, &cert.proof) {
                        certs.push(cert.clone());
                    }
                }
            }
        }

        // Greedy disjoint selection over everything, ordered by lo; on a
        // tied lo, prefer the certificate carrying more base signatures
        // (attested entries count 1).
        let count_of = |s: &SnarkSignature| match s {
            SnarkSignature::Agg(c) => c.count,
            _ => 1,
        };
        let mut items: Vec<(u64, u64, SnarkSignature)> = attested
            .into_values()
            .map(|s| (self.min_index(&s), self.max_index(&s), s))
            .chain(
                certs
                    .into_iter()
                    .map(|c| (c.lo, c.hi, SnarkSignature::Agg(c))),
            )
            .collect();
        items.sort_by_key(|(lo, _, s)| (*lo, u64::MAX - count_of(s)));
        let mut out = Vec::new();
        let mut watermark: Option<u64> = None;
        for (lo, hi, sig) in items {
            if watermark.is_none_or(|w| lo > w) {
                watermark = Some(hi);
                out.push(sig);
            }
        }
        out
    }

    fn aggregate2(
        &self,
        pp: &SnarkPublicParams,
        message: &[u8],
        s_sig: &[SnarkSignature],
    ) -> Option<SnarkSignature> {
        // Key-independent combiner: turn runs of attested signatures into
        // source certificates, then join everything. Inputs come from
        // Aggregate₁: validated, deduplicated, range-disjoint, sorted.
        let m_digest = Self::message_digest(message);
        let mut certs: Vec<AggCertificate> = Vec::new();
        let mut run: Vec<(u64, MssSignature, Digest, MerkleProof)> = Vec::new();
        let mut run_root: Option<Digest> = None;

        let flush = |run: &mut Vec<(u64, MssSignature, Digest, MerkleProof)>,
                     run_root: &mut Option<Digest>,
                     certs: &mut Vec<AggCertificate>|
         -> bool {
            if run.is_empty() {
                return true;
            }
            let root = run_root.take().expect("root set with run");
            match self.source_certificate(pp, m_digest, root, run) {
                Some(cert) => {
                    certs.push(cert);
                    run.clear();
                    true
                }
                None => false,
            }
        };

        for sig in s_sig {
            match sig {
                SnarkSignature::Attested {
                    id,
                    mss,
                    vk,
                    path,
                    vk_root,
                } => {
                    run_root.get_or_insert(*vk_root);
                    run.push((*id, mss.clone(), *vk, path.clone()));
                }
                SnarkSignature::Agg(cert) => {
                    if !flush(&mut run, &mut run_root, &mut certs) {
                        return None;
                    }
                    certs.push(cert.clone());
                }
                SnarkSignature::Base { .. } => {
                    // Base signatures must pass through Aggregate₁ first —
                    // Aggregate₂ has no key access to validate them.
                    return None;
                }
            }
        }
        if !flush(&mut run, &mut run_root, &mut certs) {
            return None;
        }
        certs.sort_by_key(|c| c.lo);
        self.join_certificates(pp, m_digest, &certs)
            .map(SnarkSignature::Agg)
    }

    fn verify(
        &self,
        pp: &SnarkPublicParams,
        board: &SnarkKeyBoard,
        message: &[u8],
        sig: &SnarkSignature,
    ) -> bool {
        let SnarkSignature::Agg(cert) = sig else {
            return false; // a single base signature is never a majority
        };
        if cert.vk_root != board.root() || cert.count < pp.threshold {
            return false;
        }
        if cert.hi >= pp.n as u64 || cert.lo > cert.hi {
            return false;
        }
        let statement = AggStatement {
            m_digest: Self::message_digest(message),
            vk_root: cert.vk_root,
            count: cert.count,
            lo: cert.lo,
            hi: cert.hi,
            acc: cert.acc,
        };
        self.cached_cert_verify(pp, &self.pcd(pp), &statement, &cert.proof)
    }

    fn min_index(&self, sig: &SnarkSignature) -> u64 {
        match sig {
            SnarkSignature::Base { id, .. } | SnarkSignature::Attested { id, .. } => *id,
            SnarkSignature::Agg(cert) => cert.lo,
        }
    }

    fn max_index(&self, sig: &SnarkSignature) -> u64 {
        match sig {
            SnarkSignature::Base { id, .. } | SnarkSignature::Attested { id, .. } => *id,
            SnarkSignature::Agg(cert) => cert.hi,
        }
    }

    fn signature_len(&self, sig: &SnarkSignature) -> usize {
        encode_to_vec(sig).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::PkiBoard;

    fn board(n: usize) -> (SnarkSrds, PkiBoard<SnarkSrds>, SnarkKeyBoard) {
        let scheme = SnarkSrds::with_defaults();
        let mut prg = Prg::from_seed_bytes(b"snark-srds");
        let b = PkiBoard::establish(&scheme, n, &mut prg);
        let keys = b.prepare(&scheme);
        (scheme, b, keys)
    }

    fn all_sigs(scheme: &SnarkSrds, b: &PkiBoard<SnarkSrds>, msg: &[u8]) -> Vec<SnarkSignature> {
        (0..b.len() as u64)
            .filter_map(|i| scheme.sign(&b.pp, i, &b.sks[i as usize], msg))
            .collect()
    }

    #[test]
    fn flat_aggregate_verifies() {
        let (scheme, b, keys) = board(48);
        let sigs = all_sigs(&scheme, &b, b"m");
        let agg = scheme.aggregate(&b.pp, &keys, b"m", &sigs).unwrap();
        assert!(scheme.verify(&b.pp, &keys, b"m", &agg));
        // Final certificate is constant-size succinct.
        assert!(
            scheme.signature_len(&agg) < 200,
            "len={}",
            scheme.signature_len(&agg)
        );
    }

    #[test]
    fn tree_aggregation_matches_protocol_shape() {
        // Aggregate in 4 leaf groups, then join pairwise, then the root.
        let (scheme, b, keys) = board(64);
        let sigs = all_sigs(&scheme, &b, b"m");
        let leaf_aggs: Vec<SnarkSignature> = sigs
            .chunks(16)
            .map(|chunk| scheme.aggregate(&b.pp, &keys, b"m", chunk).unwrap())
            .collect();
        let mid: Vec<SnarkSignature> = leaf_aggs
            .chunks(2)
            .map(|pair| scheme.aggregate(&b.pp, &keys, b"m", pair).unwrap())
            .collect();
        let root = scheme.aggregate(&b.pp, &keys, b"m", &mid).unwrap();
        assert!(scheme.verify(&b.pp, &keys, b"m", &root));
        if let SnarkSignature::Agg(cert) = &root {
            assert_eq!(cert.count, 64);
            assert_eq!(cert.lo, 0);
            assert_eq!(cert.hi, 63);
        } else {
            panic!("expected aggregate");
        }
    }

    #[test]
    fn below_majority_rejected() {
        let (scheme, b, keys) = board(48);
        let sigs = all_sigs(&scheme, &b, b"m");
        let half = &sigs[..20]; // < 25 = threshold
        let agg = scheme.aggregate(&b.pp, &keys, b"m", half).unwrap();
        assert!(!scheme.verify(&b.pp, &keys, b"m", &agg));
    }

    #[test]
    fn duplicate_base_signature_not_double_counted() {
        let (scheme, b, keys) = board(32);
        let sigs = all_sigs(&scheme, &b, b"m");
        let mut dup = sigs.clone();
        dup.extend(sigs.iter().cloned());
        let agg = scheme.aggregate(&b.pp, &keys, b"m", &dup).unwrap();
        if let SnarkSignature::Agg(cert) = &agg {
            assert_eq!(cert.count, 32);
        } else {
            panic!("expected aggregate");
        }
    }

    #[test]
    fn overlapping_aggregates_not_double_counted() {
        // The replay attack from §2.2: feed the same sub-aggregate twice.
        let (scheme, b, keys) = board(32);
        let sigs = all_sigs(&scheme, &b, b"m");
        let sub = scheme.aggregate(&b.pp, &keys, b"m", &sigs[..16]).unwrap();
        let twice = vec![sub.clone(), sub.clone()];
        let agg = scheme.aggregate(&b.pp, &keys, b"m", &twice).unwrap();
        if let SnarkSignature::Agg(cert) = &agg {
            assert_eq!(cert.count, 16, "duplicate sub-aggregate was double counted");
        } else {
            panic!("expected aggregate");
        }
    }

    #[test]
    fn invalid_base_signatures_filtered() {
        let (scheme, b, keys) = board(32);
        let good = all_sigs(&scheme, &b, b"m");
        let bad = all_sigs(&scheme, &b, b"other");
        let filtered = scheme.aggregate1(&b.pp, &keys, b"m", &bad);
        assert!(filtered.is_empty());
        let mut mixed = good;
        mixed.extend(bad);
        let agg = scheme.aggregate(&b.pp, &keys, b"m", &mixed).unwrap();
        if let SnarkSignature::Agg(cert) = &agg {
            assert_eq!(cert.count, 32);
        } else {
            panic!("expected aggregate");
        }
    }

    #[test]
    fn forged_certificate_rejected() {
        let (scheme, b, keys) = board(32);
        let sigs = all_sigs(&scheme, &b, b"m");
        let agg = scheme.aggregate(&b.pp, &keys, b"m", &sigs).unwrap();
        if let SnarkSignature::Agg(mut cert) = agg {
            cert.count = 32_000; // inflate
            let forged = SnarkSignature::Agg(cert);
            assert!(!scheme.verify(&b.pp, &keys, b"m", &forged));
        } else {
            panic!("expected aggregate");
        }
    }

    #[test]
    fn certificate_bound_to_message() {
        let (scheme, b, keys) = board(32);
        let sigs = all_sigs(&scheme, &b, b"m");
        let agg = scheme.aggregate(&b.pp, &keys, b"m", &sigs).unwrap();
        assert!(!scheme.verify(&b.pp, &keys, b"m2", &agg));
    }

    #[test]
    fn certificate_bound_to_key_board() {
        let (scheme, b, keys) = board(32);
        let sigs = all_sigs(&scheme, &b, b"m");
        let agg = scheme.aggregate(&b.pp, &keys, b"m", &sigs).unwrap();
        // A different board (one key replaced) must reject.
        let mut vks2 = b.vks.clone();
        vks2.swap(0, 1);
        let keys2 = scheme.prepare(&b.pp, &vks2);
        assert!(!scheme.verify(&b.pp, &keys2, b"m", &agg));
    }

    #[test]
    fn base_signature_alone_never_verifies() {
        let (scheme, b, keys) = board(32);
        let sigs = all_sigs(&scheme, &b, b"m");
        assert!(!scheme.verify(&b.pp, &keys, b"m", &sigs[0]));
    }

    #[test]
    fn aggregate2_refuses_raw_base_inputs() {
        let (scheme, b, _) = board(32);
        let sigs = all_sigs(&scheme, &b, b"m");
        assert_eq!(scheme.aggregate2(&b.pp, b"m", &sigs[..4]), None);
    }

    #[test]
    fn codec_roundtrip() {
        let (scheme, b, keys) = board(32);
        let sigs = all_sigs(&scheme, &b, b"m");
        for sig in sigs.iter().take(2) {
            let bytes = encode_to_vec(sig);
            let back: SnarkSignature = pba_crypto::codec::decode_from_slice(&bytes).unwrap();
            assert_eq!(&back, sig);
        }
        let agg = scheme.aggregate(&b.pp, &keys, b"m", &sigs).unwrap();
        let bytes = encode_to_vec(&agg);
        let back: SnarkSignature = pba_crypto::codec::decode_from_slice(&bytes).unwrap();
        assert!(scheme.verify(&b.pp, &keys, b"m", &back));
    }

    #[test]
    fn min_max_indices() {
        let (scheme, b, keys) = board(32);
        let sigs = all_sigs(&scheme, &b, b"m");
        assert_eq!(scheme.min_index(&sigs[5]), 5);
        assert_eq!(scheme.max_index(&sigs[5]), 5);
        let agg = scheme.aggregate(&b.pp, &keys, b"m", &sigs).unwrap();
        assert_eq!(scheme.min_index(&agg), 0);
        assert_eq!(scheme.max_index(&agg), 31);
    }

    #[test]
    fn greedy_selection_prefers_higher_count_on_tied_ranges() {
        // Two certificates starting at the same lo: the one aggregating
        // more signatures must win the disjoint selection.
        let (scheme, b, keys) = board(32);
        let sigs = all_sigs(&scheme, &b, b"m");
        let small = scheme.aggregate(&b.pp, &keys, b"m", &sigs[..4]).unwrap();
        let large = scheme.aggregate(&b.pp, &keys, b"m", &sigs[..20]).unwrap();
        let merged = scheme
            .aggregate(&b.pp, &keys, b"m", &[small, large])
            .unwrap();
        if let SnarkSignature::Agg(cert) = &merged {
            assert_eq!(cert.count, 20, "greedy kept the smaller certificate");
        } else {
            panic!("expected aggregate");
        }
    }

    #[test]
    fn gaps_in_coverage_allowed() {
        // Missing signers leave gaps; counting must stay exact.
        let (scheme, b, keys) = board(48);
        let sigs = all_sigs(&scheme, &b, b"m");
        let sparse: Vec<SnarkSignature> = sigs
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 != 1)
            .map(|(_, s)| s.clone())
            .collect();
        let agg = scheme.aggregate(&b.pp, &keys, b"m", &sparse).unwrap();
        if let SnarkSignature::Agg(cert) = &agg {
            assert_eq!(cert.count, sparse.len() as u64);
        } else {
            panic!("expected aggregate");
        }
    }
}
