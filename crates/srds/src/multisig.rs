//! The multi-signature baseline: what the paper's §1.2 calls "the culprit
//! for the large Θ(n) per-party communication within the low-locality
//! protocol of [BGT'13]".
//!
//! Multi-signatures aggregate succinctly, but **verification requires the
//! set of contributing parties** — information that takes `Θ(n)` bits to
//! describe. This scheme makes that cost explicit: an aggregated signature
//! carries an `n`-bit contributor bitmap next to a constant-size combined
//! tag, so its wire size is `n/8 + O(1)` bytes. Plugged into the same
//! `π_ba` driver, it reproduces the Θ(n)-per-party row of Table 1 that the
//! paper's SRDS constructions beat.
//!
//! The combined tag is attested through the same designated-setup
//! simulation as the SNARK system (DESIGN.md §2): aggregation verifies the
//! base signatures and MACs `(m, bitmap)`. A real pairing-based
//! multi-signature would have the same sizes and the same
//! contributor-bitmap verification interface, which is all the baseline
//! measures.

use crate::traits::{PkiMode, Srds};
use pba_crypto::codec::{encode_to_vec, CodecError, Decode, Encode, Reader};
use pba_crypto::mss::{MssKeyPair, MssParams, MssSignature, MssVerificationKey};
use pba_crypto::prg::Prg;
use pba_crypto::sha256::{Digest, Sha256};
use pba_snark::system::{Attestor, SnarkCrs};

/// Tunables of the multi-signature baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultisigConfig {
    /// Lamport digest bits inside the MSS base signatures.
    pub mss_bits: usize,
    /// MSS tree height.
    pub mss_height: usize,
}

impl Default for MultisigConfig {
    fn default() -> Self {
        MultisigConfig {
            mss_bits: 32,
            mss_height: 1,
        }
    }
}

/// The multi-signature baseline scheme (bare PKI).
///
/// Like [`crate::snark::SnarkSrds`], the scheme value carries a
/// verified-certificate cache: the combined tag is a deterministic MAC of
/// `(m, bitmap)` under a fixed CRS, and the same `Combined` signature is
/// re-checked at every tree level and by every receiving party during the
/// spread, so the verdict is memoized. Clones share the cache.
#[derive(Clone, Debug, Default)]
pub struct MultisigSrds {
    config: MultisigConfig,
    cert_cache: std::sync::Arc<crate::cache::CertCache>,
}

impl MultisigSrds {
    /// Creates the scheme with explicit tunables.
    pub fn new(config: MultisigConfig) -> Self {
        MultisigSrds {
            config,
            cert_cache: Default::default(),
        }
    }

    /// Creates the scheme with default tunables.
    pub fn with_defaults() -> Self {
        Self::default()
    }

    fn message_digest(message: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(b"multisig-message");
        h.update(message);
        h.finalize()
    }

    fn tag(pp: &MultisigPublicParams, message: &[u8], bitmap: &[u8]) -> Digest {
        let mut payload = Vec::with_capacity(32 + bitmap.len());
        payload.extend_from_slice(Self::message_digest(message).as_bytes());
        payload.extend_from_slice(bitmap);
        let d = Sha256::digest(&payload);
        Attestor::new(pp.crs.clone(), "multisig-combine").attest(&d)
    }

    /// Tag verification through the per-scheme verdict cache. The key
    /// covers everything the deterministic verdict depends on: the CRS
    /// public id, the message digest, the bitmap, and the claimed tag.
    fn cached_tag_verify(
        &self,
        pp: &MultisigPublicParams,
        message: &[u8],
        bitmap: &[u8],
        tag: &Digest,
    ) -> bool {
        let mut h = Sha256::new();
        h.update(b"multisig-cert-cache");
        h.update(pp.crs.public_id().as_bytes());
        h.update(Self::message_digest(message).as_bytes());
        h.update(&(bitmap.len() as u64).to_le_bytes());
        h.update(bitmap);
        h.update(tag.as_bytes());
        self.cert_cache
            .get_or_verify(h.finalize(), || Self::tag(pp, message, bitmap) == *tag)
    }
}

/// Public parameters.
#[derive(Clone, Debug)]
pub struct MultisigPublicParams {
    /// Number of SRDS parties.
    pub n: usize,
    /// Base signature parameters.
    pub mss: MssParams,
    /// Attestation setup for the combined tag.
    pub crs: SnarkCrs,
    /// Majority threshold on the bitmap popcount.
    pub threshold: u64,
}

/// A multi-signature-baseline signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MultisigSignature {
    /// One base signature.
    Base {
        /// SRDS party index of the signer.
        id: u64,
        /// The base signature.
        mss: MssSignature,
    },
    /// A combined signature: constant-size tag + `Θ(n)` contributor bitmap.
    Combined {
        /// Contributor bitmap over all `n` SRDS parties (the Θ(n) part).
        bitmap: Vec<u8>,
        /// The combined tag.
        tag: Digest,
    },
    /// `Aggregate₁`'s output for a **verified** base signature — the local
    /// hand-off between the key-dependent filter and the key-independent
    /// combiner. Never travels on the wire: `Aggregate₁` drops incoming
    /// `Attested` values (it cannot re-validate them), and `Aggregate₂`
    /// refuses raw `Base` inputs, so minting a `Combined` requires passing
    /// the signature checks — mirroring the real multisig, where combining
    /// garbage yields an aggregate the verification equation rejects.
    Attested {
        /// SRDS party index of the verified signer.
        id: u64,
    },
}

impl MultisigSignature {
    fn bitmap_bounds(bitmap: &[u8]) -> Option<(u64, u64)> {
        let mut lo = None;
        let mut hi = None;
        for (byte_idx, &b) in bitmap.iter().enumerate() {
            if b == 0 {
                continue;
            }
            for bit in 0..8 {
                if b >> bit & 1 == 1 {
                    let idx = (byte_idx * 8 + bit) as u64;
                    if lo.is_none() {
                        lo = Some(idx);
                    }
                    hi = Some(idx);
                }
            }
        }
        Some((lo?, hi?))
    }

    fn popcount(bitmap: &[u8]) -> u64 {
        bitmap.iter().map(|b| b.count_ones() as u64).sum()
    }
}

impl Encode for MultisigSignature {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            MultisigSignature::Base { id, mss } => {
                buf.push(0);
                id.encode(buf);
                mss.encode(buf);
            }
            MultisigSignature::Combined { bitmap, tag } => {
                buf.push(1);
                (bitmap.len() as u64).encode(buf);
                buf.extend_from_slice(bitmap);
                tag.encode(buf);
            }
            MultisigSignature::Attested { id } => {
                buf.push(2);
                id.encode(buf);
            }
        }
    }
}

impl Decode for MultisigSignature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(MultisigSignature::Base {
                id: u64::decode(r)?,
                mss: MssSignature::decode(r)?,
            }),
            1 => {
                let len = u64::decode(r)?;
                if len > pba_crypto::codec::MAX_SEQ_LEN {
                    return Err(CodecError::LengthOverflow(len));
                }
                let bitmap = r.take(len as usize)?.to_vec();
                Ok(MultisigSignature::Combined {
                    bitmap,
                    tag: Digest::decode(r)?,
                })
            }
            2 => Ok(MultisigSignature::Attested {
                id: u64::decode(r)?,
            }),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl Srds for MultisigSrds {
    type PublicParams = MultisigPublicParams;
    type VerificationKey = MssVerificationKey;
    type SigningKey = MssKeyPair;
    type Signature = MultisigSignature;
    type KeyBoard = Vec<MssVerificationKey>;

    fn mode(&self) -> PkiMode {
        PkiMode::Bare
    }

    fn prepare(
        &self,
        _pp: &MultisigPublicParams,
        vks: &[MssVerificationKey],
    ) -> Vec<MssVerificationKey> {
        vks.to_vec()
    }

    fn setup(&self, n: usize, prg: &mut Prg) -> MultisigPublicParams {
        let crs_seed = {
            use rand::RngCore;
            let mut bytes = [0u8; 32];
            prg.fill_bytes(&mut bytes);
            bytes
        };
        MultisigPublicParams {
            n,
            mss: MssParams::new(self.config.mss_bits, self.config.mss_height),
            crs: SnarkCrs::setup(&crs_seed),
            threshold: (n as u64) / 2 + 1,
        }
    }

    fn keygen(&self, pp: &MultisigPublicParams, prg: &mut Prg) -> (MssVerificationKey, MssKeyPair) {
        let kp = MssKeyPair::generate(&pp.mss, prg);
        (kp.verification_key(), kp)
    }

    fn sign(
        &self,
        pp: &MultisigPublicParams,
        index: u64,
        sk: &MssKeyPair,
        message: &[u8],
    ) -> Option<MultisigSignature> {
        let _ = pp;
        let m_digest = Self::message_digest(message);
        Some(MultisigSignature::Base {
            id: index,
            mss: sk.sign_with_index(m_digest.as_bytes(), 0),
        })
    }

    fn sign_epoch(
        &self,
        pp: &MultisigPublicParams,
        index: u64,
        sk: &MssKeyPair,
        epoch: u64,
        message: &[u8],
    ) -> Option<MultisigSignature> {
        // ⊥ past capacity — mirrors `SnarkSrds::sign_epoch`: wrapping onto
        // a spent one-time slot would silently break the MSS security
        // argument, so exhaustion is surfaced instead.
        if epoch >= pp.mss.capacity() as u64 {
            return None;
        }
        let m_digest = Self::message_digest(message);
        Some(MultisigSignature::Base {
            id: index,
            mss: sk.sign_with_index(m_digest.as_bytes(), epoch as usize),
        })
    }

    fn epoch_capacity(&self, pp: &MultisigPublicParams) -> Option<u64> {
        Some(pp.mss.capacity() as u64)
    }

    fn cache_stats(&self) -> Option<crate::cache::CacheStats> {
        Some(self.cert_cache.stats())
    }

    fn advance_cache_generation(&self) {
        self.cert_cache.advance_generation();
    }

    fn aggregate1(
        &self,
        pp: &MultisigPublicParams,
        board: &Vec<MssVerificationKey>,
        message: &[u8],
        sigs: &[MultisigSignature],
    ) -> Vec<MultisigSignature> {
        let m_digest = Self::message_digest(message);
        let mut out = Vec::new();
        let mut seen_base = std::collections::BTreeSet::new();
        for sig in sigs {
            match sig {
                MultisigSignature::Base { id, mss } => {
                    if seen_base.contains(id) {
                        continue;
                    }
                    if let Some(vk) = board.get(*id as usize) {
                        if pp.mss.verify(vk, m_digest.as_bytes(), mss) {
                            seen_base.insert(*id);
                            out.push(MultisigSignature::Attested { id: *id });
                        }
                    }
                }
                MultisigSignature::Combined { bitmap, tag } => {
                    if bitmap.len() == pp.n.div_ceil(8)
                        && self.cached_tag_verify(pp, message, bitmap, tag)
                    {
                        out.push(sig.clone());
                    }
                }
                // Attested values are Aggregate₁'s own output: they carry no
                // verifiable material, so ones arriving from outside are
                // dropped (cannot be re-validated).
                MultisigSignature::Attested { .. } => {}
            }
        }
        out
    }

    fn aggregate2(
        &self,
        pp: &MultisigPublicParams,
        message: &[u8],
        s_sig: &[MultisigSignature],
    ) -> Option<MultisigSignature> {
        // Combine: OR the bitmaps of Aggregate₁-verified inputs. Raw Base
        // signatures must pass through Aggregate₁ first (Aggregate₂ has no
        // key access to validate them) and incoming Combined tags are
        // re-checked — so minting a tag requires verified contributions.
        if s_sig.is_empty() {
            return None;
        }
        let mut bitmap = vec![0u8; pp.n.div_ceil(8)];
        for sig in s_sig {
            match sig {
                MultisigSignature::Base { .. } => return None,
                MultisigSignature::Attested { id } => {
                    let idx = *id as usize;
                    if idx < pp.n {
                        bitmap[idx / 8] |= 1 << (idx % 8);
                    }
                }
                MultisigSignature::Combined { bitmap: other, tag } => {
                    if other.len() != bitmap.len()
                        || !self.cached_tag_verify(pp, message, other, tag)
                    {
                        return None;
                    }
                    for (b, o) in bitmap.iter_mut().zip(other) {
                        *b |= o;
                    }
                }
            }
        }
        let tag = Self::tag(pp, message, &bitmap);
        Some(MultisigSignature::Combined { bitmap, tag })
    }

    fn verify(
        &self,
        pp: &MultisigPublicParams,
        _board: &Vec<MssVerificationKey>,
        message: &[u8],
        sig: &MultisigSignature,
    ) -> bool {
        match sig {
            MultisigSignature::Base { .. } | MultisigSignature::Attested { .. } => false,
            MultisigSignature::Combined { bitmap, tag } => {
                bitmap.len() == pp.n.div_ceil(8)
                    && self.cached_tag_verify(pp, message, bitmap, tag)
                    && MultisigSignature::popcount(bitmap) >= pp.threshold
            }
        }
    }

    fn min_index(&self, sig: &MultisigSignature) -> u64 {
        match sig {
            MultisigSignature::Base { id, .. } | MultisigSignature::Attested { id } => *id,
            MultisigSignature::Combined { bitmap, .. } => MultisigSignature::bitmap_bounds(bitmap)
                .map(|(lo, _)| lo)
                .unwrap_or(u64::MAX),
        }
    }

    fn max_index(&self, sig: &MultisigSignature) -> u64 {
        match sig {
            MultisigSignature::Base { id, .. } | MultisigSignature::Attested { id } => *id,
            MultisigSignature::Combined { bitmap, .. } => MultisigSignature::bitmap_bounds(bitmap)
                .map(|(_, hi)| hi)
                .unwrap_or(0),
        }
    }

    fn signature_len(&self, sig: &MultisigSignature) -> usize {
        encode_to_vec(sig).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::PkiBoard;

    fn setup(
        n: usize,
    ) -> (
        MultisigSrds,
        PkiBoard<MultisigSrds>,
        Vec<MssVerificationKey>,
    ) {
        let scheme = MultisigSrds::with_defaults();
        let mut prg = Prg::from_seed_bytes(b"multisig");
        let board = PkiBoard::establish(&scheme, n, &mut prg);
        let keys = board.prepare(&scheme);
        (scheme, board, keys)
    }

    fn all_sigs(
        scheme: &MultisigSrds,
        board: &PkiBoard<MultisigSrds>,
        msg: &[u8],
    ) -> Vec<MultisigSignature> {
        (0..board.len() as u64)
            .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], msg))
            .collect()
    }

    #[test]
    fn aggregate_and_verify() {
        let (scheme, board, keys) = setup(64);
        let sigs = all_sigs(&scheme, &board, b"m");
        let agg = scheme.aggregate(&board.pp, &keys, b"m", &sigs).unwrap();
        assert!(scheme.verify(&board.pp, &keys, b"m", &agg));
    }

    #[test]
    fn signature_size_is_theta_n() {
        // The point of the baseline: combined size grows linearly with n.
        let mut sizes = Vec::new();
        for n in [64usize, 256, 1024] {
            let (scheme, board, keys) = setup(n);
            let sigs = all_sigs(&scheme, &board, b"m");
            let agg = scheme.aggregate(&board.pp, &keys, b"m", &sigs).unwrap();
            sizes.push(scheme.signature_len(&agg));
        }
        // Growth is exactly n/8 bytes of bitmap on top of a constant tag.
        assert_eq!(sizes[1] - sizes[0], (256 - 64) / 8, "sizes {sizes:?}");
        assert_eq!(sizes[2] - sizes[1], (1024 - 256) / 8, "sizes {sizes:?}");
    }

    #[test]
    fn below_majority_rejected() {
        let (scheme, board, keys) = setup(64);
        let sigs = all_sigs(&scheme, &board, b"m");
        let agg = scheme
            .aggregate(&board.pp, &keys, b"m", &sigs[..20])
            .unwrap();
        assert!(!scheme.verify(&board.pp, &keys, b"m", &agg));
    }

    #[test]
    fn tampered_bitmap_rejected() {
        let (scheme, board, keys) = setup(64);
        let sigs = all_sigs(&scheme, &board, b"m");
        let agg = scheme
            .aggregate(&board.pp, &keys, b"m", &sigs[..20])
            .unwrap();
        if let MultisigSignature::Combined { mut bitmap, tag } = agg {
            bitmap[7] = 0xff; // claim more contributors
            let forged = MultisigSignature::Combined { bitmap, tag };
            assert!(!scheme.verify(&board.pp, &keys, b"m", &forged));
        } else {
            panic!("expected combined");
        }
    }

    #[test]
    fn wrong_message_sigs_filtered() {
        let (scheme, board, keys) = setup(64);
        let bad = all_sigs(&scheme, &board, b"other");
        assert!(scheme.aggregate1(&board.pp, &keys, b"m", &bad).is_empty());
    }

    #[test]
    fn min_max_from_bitmap() {
        let (scheme, board, keys) = setup(64);
        let sigs = all_sigs(&scheme, &board, b"m");
        let agg = scheme
            .aggregate(&board.pp, &keys, b"m", &sigs[5..10])
            .unwrap();
        assert_eq!(scheme.min_index(&agg), 5);
        assert_eq!(scheme.max_index(&agg), 9);
    }

    #[test]
    fn recursive_aggregation() {
        let (scheme, board, keys) = setup(64);
        let sigs = all_sigs(&scheme, &board, b"m");
        let a = scheme
            .aggregate(&board.pp, &keys, b"m", &sigs[..32])
            .unwrap();
        let b = scheme
            .aggregate(&board.pp, &keys, b"m", &sigs[32..])
            .unwrap();
        let ab = scheme.aggregate(&board.pp, &keys, b"m", &[a, b]).unwrap();
        assert!(scheme.verify(&board.pp, &keys, b"m", &ab));
        if let MultisigSignature::Combined { bitmap, .. } = &ab {
            assert_eq!(MultisigSignature::popcount(bitmap), 64);
        }
    }

    #[test]
    fn aggregate2_refuses_unverified_base_inputs() {
        // Regression for the bitmap-inflation exploit: fabricating Base
        // entries for every party and calling Aggregate₂ directly must NOT
        // mint a majority certificate.
        let (scheme, board, keys) = setup(64);
        let own = scheme.sign(&board.pp, 0, &board.sks[0], b"forged").unwrap();
        let mut fabricated = vec![own.clone()];
        if let MultisigSignature::Base { mss, .. } = &own {
            for i in 1..64u64 {
                fabricated.push(MultisigSignature::Base {
                    id: i,
                    mss: mss.clone(),
                });
            }
        }
        assert_eq!(scheme.aggregate2(&board.pp, b"forged", &fabricated), None);
        // The full pipeline (Aggregate₁ + Aggregate₂) filters the garbage:
        // only the one genuine signature survives — far below threshold.
        let agg = scheme
            .aggregate(&board.pp, &keys, b"forged", &fabricated)
            .unwrap();
        assert!(!scheme.verify(&board.pp, &keys, b"forged", &agg));
        if let MultisigSignature::Combined { bitmap, .. } = &agg {
            assert_eq!(MultisigSignature::popcount(bitmap), 1);
        }
    }

    #[test]
    fn foreign_attested_values_dropped_by_aggregate1() {
        let (scheme, board, keys) = setup(64);
        let fake: Vec<MultisigSignature> = (0..64)
            .map(|id| MultisigSignature::Attested { id })
            .collect();
        assert!(scheme.aggregate1(&board.pp, &keys, b"m", &fake).is_empty());
    }

    #[test]
    fn tampered_combined_input_rejected_by_aggregate2() {
        let (scheme, board, keys) = setup(64);
        let sigs = all_sigs(&scheme, &board, b"m");
        let agg = scheme
            .aggregate(&board.pp, &keys, b"m", &sigs[..10])
            .unwrap();
        if let MultisigSignature::Combined { mut bitmap, tag } = agg {
            bitmap[7] = 0xff;
            let forged = MultisigSignature::Combined { bitmap, tag };
            assert_eq!(scheme.aggregate2(&board.pp, b"m", &[forged]), None);
        } else {
            panic!("expected combined");
        }
    }

    #[test]
    fn codec_roundtrip() {
        let (scheme, board, keys) = setup(64);
        let sigs = all_sigs(&scheme, &board, b"m");
        let agg = scheme.aggregate(&board.pp, &keys, b"m", &sigs).unwrap();
        let bytes = encode_to_vec(&agg);
        let back: MultisigSignature = pba_crypto::codec::decode_from_slice(&bytes).unwrap();
        assert!(scheme.verify(&board.pp, &keys, b"m", &back));
    }
}
