#![warn(missing_docs)]
//! # pba-crypto
//!
//! The from-scratch cryptographic substrate for the `polylog-ba` workspace —
//! a reproduction of *Boyle, Cohen, Goel: "Breaking the O(√n)-Bit Barrier:
//! Byzantine Agreement with Polylog Bits Per Party"* (PODC 2021).
//!
//! Everything here is implemented from first principles on top of our own
//! SHA-256; no external cryptography crates are used:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (the workspace CRH);
//! * [`hmac`] — HMAC-SHA256 (PRF/MAC);
//! * [`prg`] — deterministic counter-mode PRG implementing [`rand::RngCore`];
//! * [`prf`] — the subset-valued PRF `F_s` from step 7 of the BA protocol;
//! * [`merkle`] — Merkle trees with inclusion proofs;
//! * [`lamport`] — Lamport one-time signatures **with oblivious key
//!   generation** (the exact primitive behind the OWF-based SRDS);
//! * [`mss`] — Merkle many-time signatures (the "standard signature with bare
//!   PKI" for the SNARK-based SRDS and baselines);
//! * [`field`], [`poly`], [`shamir`] — `F_{2^61-1}` arithmetic and Shamir
//!   sharing for committee coin tossing;
//! * [`reed_solomon`] — Berlekamp–Welch error-corrected share decoding
//!   (robust reconstruction against Byzantine echoes);
//! * [`vss`] — committed verifiable secret sharing (Merkle-bound shares);
//! * [`commit`] — hash commitments for commit–reveal;
//! * [`codec`] — the deterministic wire format used for exact communication
//!   accounting.
//!
//! # Examples
//!
//! ```
//! use pba_crypto::prg::Prg;
//! use pba_crypto::lamport::{LamportKeyPair, LamportParams};
//!
//! let params = LamportParams::new(64);
//! let mut prg = Prg::from_seed_bytes(b"demo");
//! let kp = LamportKeyPair::generate(&params, &mut prg);
//! let sig = kp.sign(b"agree on 1");
//! assert!(params.verify(&kp.verification_key(), b"agree on 1", &sig));
//! ```

pub mod codec;
pub mod commit;
pub mod field;
pub mod hmac;
pub mod lamport;
pub mod merkle;
pub mod mss;
pub mod poly;
pub mod prf;
pub mod prg;
pub mod reed_solomon;
pub mod sha256;
pub mod shamir;
pub mod vss;

pub use sha256::{Digest, Sha256};
