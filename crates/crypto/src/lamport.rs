//! Lamport one-time signatures with **oblivious key generation**.
//!
//! This is the exact primitive the paper's OWF-based SRDS needs (§2.2,
//! Theorem 2.7): a signature scheme where a verification key can be sampled
//! *without* learning a corresponding signing key, and where keys generated
//! obliviously are indistinguishable from keys generated with a signing key.
//!
//! Construction (Lamport '79 with hash-compressed public keys):
//!
//! * the message is hashed and truncated to `bits` bits;
//! * the signing key is `2·bits` random 32-byte preimages;
//! * the verification key is `SHA256(H(x_{0,0}) ‖ H(x_{0,1}) ‖ …)` — a single
//!   digest;
//! * a signature reveals, per position, the preimage selected by the message
//!   bit and the *hash* of the complementary preimage, letting the verifier
//!   recompute the key digest.
//!
//! Oblivious key generation samples the verification key uniformly at random:
//! since `H` outputs are pseudorandom, oblivious keys are indistinguishable
//! from real ones, which is what lets the SRDS sortition hide who can sign.
//!
//! # Examples
//!
//! ```
//! use pba_crypto::lamport::{LamportParams, LamportKeyPair};
//! use pba_crypto::prg::Prg;
//!
//! let params = LamportParams::new(64);
//! let mut prg = Prg::from_seed_bytes(b"keygen");
//! let kp = LamportKeyPair::generate(&params, &mut prg);
//! let sig = kp.sign(b"message");
//! assert!(params.verify(&kp.verification_key(), b"message", &sig));
//! assert!(!params.verify(&kp.verification_key(), b"other", &sig));
//! ```

use crate::prg::Prg;
use crate::sha256::{batch_digest, Digest, Sha256, DIGEST_LEN};

/// Parameters for the Lamport scheme: how many message-digest bits are signed.
///
/// `bits` trades signature size (`bits · 64` bytes) against the concrete
/// hardness of finding a second message with a colliding truncated digest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LamportParams {
    bits: usize,
}

impl Default for LamportParams {
    fn default() -> Self {
        Self::new(128)
    }
}

impl LamportParams {
    /// Creates parameters signing `bits` digest bits.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= bits <= 256`.
    pub fn new(bits: usize) -> Self {
        assert!((1..=256).contains(&bits), "bits must be in 1..=256");
        LamportParams { bits }
    }

    /// Number of signed digest bits.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Signature size in bytes on the wire (including the codec's two
    /// varint sequence-length prefixes).
    pub fn signature_len(&self) -> usize {
        2 * crate::codec::varint_len(self.bits as u64) + self.bits * 2 * DIGEST_LEN
    }

    /// Truncated message digest as a bit vector (LSB-first within bytes).
    fn message_bits(&self, message: &[u8]) -> Vec<bool> {
        let d = Sha256::digest(message);
        (0..self.bits)
            .map(|i| (d.as_bytes()[i / 8] >> (i % 8)) & 1 == 1)
            .collect()
    }

    /// Verifies `sig` on `message` under `vk`.
    pub fn verify(
        &self,
        vk: &LamportVerificationKey,
        message: &[u8],
        sig: &LamportSignature,
    ) -> bool {
        if sig.revealed.len() != self.bits || sig.complement_hashes.len() != self.bits {
            return false;
        }
        let bits = self.message_bits(message);
        let mut key_hasher = Sha256::new();
        for (i, &bit) in bits.iter().enumerate() {
            let revealed_hash = Sha256::digest(&sig.revealed[i]);
            let (h0, h1) = if bit {
                (sig.complement_hashes[i], revealed_hash)
            } else {
                (revealed_hash, sig.complement_hashes[i])
            };
            key_hasher.update(h0.as_bytes());
            key_hasher.update(h1.as_bytes());
        }
        key_hasher.finalize() == vk.0
    }
}

/// A Lamport verification key: a single 32-byte digest.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LamportVerificationKey(pub Digest);

impl LamportVerificationKey {
    /// **Oblivious key generation**: samples a verification key uniformly,
    /// with no corresponding signing key in existence.
    ///
    /// Indistinguishable from a real key under the pseudorandomness of the
    /// hash; this is the heart of the sortition-based trusted PKI.
    pub fn generate_oblivious(prg: &mut Prg) -> Self {
        LamportVerificationKey(prg.next_digest())
    }

    /// Raw digest of the key.
    pub fn digest(&self) -> Digest {
        self.0
    }
}

/// A Lamport signing/verification key pair.
#[derive(Clone, Debug)]
pub struct LamportKeyPair {
    params: LamportParams,
    // preimages[i] = (x_{i,0}, x_{i,1})
    preimages: Vec<([u8; DIGEST_LEN], [u8; DIGEST_LEN])>,
    vk: LamportVerificationKey,
}

impl LamportKeyPair {
    /// Generates a fresh key pair from `prg`.
    ///
    /// Routes through [`LamportKeyPair::generate_many`], so all `2·bits`
    /// preimage hashes of the key go through the multi-lane engine in one
    /// batch. Byte-identical to [`LamportKeyPair::generate_scalar`].
    pub fn generate(params: &LamportParams, prg: &mut Prg) -> Self {
        Self::generate_many(params, prg, 1)
            .pop()
            .expect("generate_many(1) yields one key")
    }

    /// Generates `count` key pairs from `prg`, batching *all* preimage
    /// hashes across keys through the multi-lane engine.
    ///
    /// Equivalent to calling [`LamportKeyPair::generate_scalar`] `count`
    /// times on the same `prg`: the preimage material is drawn in one
    /// [`rand::RngCore::fill_bytes`] call (the PRG stream is position-based,
    /// so one large fill emits the same bytes as many small fills in order),
    /// and the per-preimage hashes are bit-identical to the scalar core.
    /// This is the MSS keygen fast path — `capacity` keys hash
    /// `2·bits·capacity` preimages in lane-width groups.
    pub fn generate_many(params: &LamportParams, prg: &mut Prg, count: usize) -> Vec<Self> {
        let preimages_per_key = 2 * params.bits;
        let mut material = vec![0u8; count * preimages_per_key * DIGEST_LEN];
        rand::RngCore::fill_bytes(prg, &mut material);
        let refs: Vec<&[u8]> = material.chunks_exact(DIGEST_LEN).collect();
        let hashes = batch_digest(&refs);
        (0..count)
            .map(|k| {
                let base = k * preimages_per_key;
                let mut preimages = Vec::with_capacity(params.bits);
                let mut key_hasher = Sha256::new();
                for b in 0..params.bits {
                    let i0 = base + 2 * b;
                    let x0: [u8; DIGEST_LEN] =
                        refs[i0].try_into().expect("exact digest-length chunk");
                    let x1: [u8; DIGEST_LEN] =
                        refs[i0 + 1].try_into().expect("exact digest-length chunk");
                    key_hasher.update(hashes[i0].as_bytes());
                    key_hasher.update(hashes[i0 + 1].as_bytes());
                    preimages.push((x0, x1));
                }
                LamportKeyPair {
                    params: *params,
                    preimages,
                    vk: LamportVerificationKey(key_hasher.finalize()),
                }
            })
            .collect()
    }

    /// The scalar reference keygen: one streaming hash per preimage, drawn
    /// two fills per bit. Kept as the equivalence baseline for
    /// [`LamportKeyPair::generate_many`]; tests assert both paths produce
    /// identical keys from the same PRG state.
    pub fn generate_scalar(params: &LamportParams, prg: &mut Prg) -> Self {
        let mut preimages = Vec::with_capacity(params.bits);
        let mut key_hasher = Sha256::new();
        for _ in 0..params.bits {
            let mut x0 = [0u8; DIGEST_LEN];
            let mut x1 = [0u8; DIGEST_LEN];
            prg.fill_bytes_scalar(&mut x0);
            prg.fill_bytes_scalar(&mut x1);
            key_hasher.update(Sha256::digest(&x0).as_bytes());
            key_hasher.update(Sha256::digest(&x1).as_bytes());
            preimages.push((x0, x1));
        }
        let vk = LamportVerificationKey(key_hasher.finalize());
        LamportKeyPair {
            params: *params,
            preimages,
            vk,
        }
    }

    /// The verification key.
    pub fn verification_key(&self) -> LamportVerificationKey {
        self.vk
    }

    /// Signs a message. **One-time**: signing two distinct messages with the
    /// same key reveals enough preimages to forge.
    pub fn sign(&self, message: &[u8]) -> LamportSignature {
        let bits = self.params.message_bits(message);
        let mut revealed = Vec::with_capacity(bits.len());
        let mut complement_hashes = Vec::with_capacity(bits.len());
        for (i, &bit) in bits.iter().enumerate() {
            let (x0, x1) = &self.preimages[i];
            if bit {
                revealed.push(*x1);
                complement_hashes.push(Sha256::digest(x0));
            } else {
                revealed.push(*x0);
                complement_hashes.push(Sha256::digest(x1));
            }
        }
        LamportSignature {
            revealed,
            complement_hashes,
        }
    }
}

/// A Lamport signature: one revealed preimage and one complementary hash per
/// signed bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LamportSignature {
    revealed: Vec<[u8; DIGEST_LEN]>,
    complement_hashes: Vec<Digest>,
}

impl LamportSignature {
    /// Wire size in bytes (including the codec's two varint sequence-length
    /// prefixes).
    pub fn encoded_len(&self) -> usize {
        crate::codec::varint_len(self.revealed.len() as u64)
            + crate::codec::varint_len(self.complement_hashes.len() as u64)
            + (self.revealed.len() + self.complement_hashes.len()) * DIGEST_LEN
    }

    /// Accessors used by codecs.
    pub fn into_parts(self) -> (Vec<[u8; DIGEST_LEN]>, Vec<Digest>) {
        (self.revealed, self.complement_hashes)
    }

    /// Rebuilds a signature from codec parts.
    pub fn from_parts(revealed: Vec<[u8; DIGEST_LEN]>, complement_hashes: Vec<Digest>) -> Self {
        LamportSignature {
            revealed,
            complement_hashes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    fn setup() -> (LamportParams, LamportKeyPair) {
        let params = LamportParams::new(64);
        let mut prg = Prg::from_seed_bytes(b"test-keygen");
        let kp = LamportKeyPair::generate(&params, &mut prg);
        (params, kp)
    }

    #[test]
    fn sign_verify_roundtrip() {
        let (params, kp) = setup();
        let sig = kp.sign(b"hello");
        assert!(params.verify(&kp.verification_key(), b"hello", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let (params, kp) = setup();
        let sig = kp.sign(b"hello");
        assert!(!params.verify(&kp.verification_key(), b"hellO", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let (params, kp) = setup();
        let mut prg = Prg::from_seed_bytes(b"other");
        let other = LamportKeyPair::generate(&params, &mut prg);
        let sig = kp.sign(b"hello");
        assert!(!params.verify(&other.verification_key(), b"hello", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let (params, kp) = setup();
        let sig = kp.sign(b"hello");
        let (mut revealed, complements) = sig.into_parts();
        revealed[0][0] ^= 1;
        let bad = LamportSignature::from_parts(revealed, complements);
        assert!(!params.verify(&kp.verification_key(), b"hello", &bad));
    }

    #[test]
    fn truncated_signature_rejected() {
        let (params, kp) = setup();
        let sig = kp.sign(b"hello");
        let (mut revealed, mut complements) = sig.into_parts();
        revealed.pop();
        complements.pop();
        let bad = LamportSignature::from_parts(revealed, complements);
        assert!(!params.verify(&kp.verification_key(), b"hello", &bad));
    }

    #[test]
    fn oblivious_key_cannot_verify_anything_sensible() {
        let (params, kp) = setup();
        let mut prg = Prg::from_seed_bytes(b"obliv");
        let ovk = LamportVerificationKey::generate_oblivious(&mut prg);
        let sig = kp.sign(b"m");
        assert!(!params.verify(&ovk, b"m", &sig));
    }

    #[test]
    fn oblivious_keys_look_like_real_keys() {
        // Both are 32-byte digests; a trivial distinguisher (first byte bias)
        // should see none. This is a smoke test of the format, not a proof.
        let params = LamportParams::new(16);
        let mut prg = Prg::from_seed_bytes(b"dist");
        let mut real_first = Vec::new();
        let mut obliv_first = Vec::new();
        for _ in 0..64 {
            real_first.push(LamportKeyPair::generate(&params, &mut prg).vk.0.as_bytes()[0]);
            obliv_first.push(
                LamportVerificationKey::generate_oblivious(&mut prg)
                    .0
                    .as_bytes()[0],
            );
        }
        let avg = |v: &[u8]| v.iter().map(|&b| b as f64).sum::<f64>() / v.len() as f64;
        assert!((avg(&real_first) - avg(&obliv_first)).abs() < 64.0);
    }

    #[test]
    fn signature_len_matches_params() {
        let (params, kp) = setup();
        let sig = kp.sign(b"x");
        assert_eq!(sig.encoded_len(), params.signature_len());
    }

    #[test]
    fn deterministic_keygen_from_seed() {
        let params = LamportParams::new(32);
        let k1 = LamportKeyPair::generate(&params, &mut Prg::from_seed_bytes(b"s"));
        let k2 = LamportKeyPair::generate(&params, &mut Prg::from_seed_bytes(b"s"));
        assert_eq!(k1.verification_key(), k2.verification_key());
    }

    #[test]
    fn batched_keygen_matches_scalar_reference() {
        for bits in [1usize, 7, 64, 128] {
            let params = LamportParams::new(bits);
            let mut batched_prg = Prg::from_seed_bytes(b"equiv");
            let mut scalar_prg = Prg::from_seed_bytes(b"equiv");
            let batched = LamportKeyPair::generate(&params, &mut batched_prg);
            let scalar = LamportKeyPair::generate_scalar(&params, &mut scalar_prg);
            assert_eq!(
                batched.verification_key(),
                scalar.verification_key(),
                "vk diverged at bits={bits}"
            );
            assert_eq!(batched.preimages, scalar.preimages, "preimages diverged");
            // PRG state must also agree so downstream draws are unchanged.
            assert_eq!(batched_prg.next_u64(), scalar_prg.next_u64());
        }
    }

    #[test]
    fn generate_many_matches_sequential_generate() {
        let params = LamportParams::new(16);
        let mut many_prg = Prg::from_seed_bytes(b"cross-key");
        let mut seq_prg = Prg::from_seed_bytes(b"cross-key");
        let many = LamportKeyPair::generate_many(&params, &mut many_prg, 5);
        let seq: Vec<_> = (0..5)
            .map(|_| LamportKeyPair::generate_scalar(&params, &mut seq_prg))
            .collect();
        assert_eq!(many.len(), 5);
        for (m, s) in many.iter().zip(&seq) {
            assert_eq!(m.verification_key(), s.verification_key());
            assert_eq!(m.preimages, s.preimages);
        }
        assert_eq!(many_prg.next_u64(), seq_prg.next_u64());
    }

    #[test]
    fn generate_many_zero_is_empty_and_state_neutral() {
        let params = LamportParams::new(8);
        let mut a = Prg::from_seed_bytes(b"zero");
        let mut b = Prg::from_seed_bytes(b"zero");
        assert!(LamportKeyPair::generate_many(&params, &mut a, 0).is_empty());
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
