//! Non-interactive hash-based commitments (random-oracle style), used in the
//! commit–reveal coin tossing of `f_ct`.
//!
//! `commit(value, randomness) = SHA256("pba-commit" ‖ r ‖ value)`. Hiding
//! holds because the 32-byte randomness masks the value under the
//! random-oracle heuristic; binding holds by collision resistance.
//!
//! # Examples
//!
//! ```
//! use pba_crypto::commit::Commitment;
//! use pba_crypto::prg::Prg;
//!
//! let mut prg = Prg::from_seed_bytes(b"r");
//! let (c, opening) = Commitment::commit(b"vote: 1", &mut prg);
//! assert!(c.verify(b"vote: 1", &opening));
//! assert!(!c.verify(b"vote: 0", &opening));
//! ```

use crate::prg::Prg;
use crate::sha256::{Digest, Sha256, DIGEST_LEN};

const DOMAIN: &[u8] = b"pba-commit-v1";

/// The opening (decommitment) randomness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Opening(pub [u8; DIGEST_LEN]);

/// A hash commitment to a byte string.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Commitment(pub Digest);

impl Commitment {
    /// Commits to `value` with fresh randomness from `prg`.
    pub fn commit(value: &[u8], prg: &mut Prg) -> (Commitment, Opening) {
        let mut r = [0u8; DIGEST_LEN];
        rand::RngCore::fill_bytes(prg, &mut r);
        let opening = Opening(r);
        (Self::commit_with(value, &opening), opening)
    }

    /// Deterministic commitment given explicit randomness.
    pub fn commit_with(value: &[u8], opening: &Opening) -> Commitment {
        let mut h = Sha256::new();
        h.update(DOMAIN);
        h.update(&opening.0);
        h.update(value);
        Commitment(h.finalize())
    }

    /// Verifies that `(value, opening)` opens this commitment.
    pub fn verify(&self, value: &[u8], opening: &Opening) -> bool {
        Self::commit_with(value, opening) == *self
    }

    /// Raw digest of the commitment.
    pub fn digest(&self) -> Digest {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commit_verify() {
        let mut prg = Prg::from_seed_bytes(b"c");
        let (c, o) = Commitment::commit(b"secret", &mut prg);
        assert!(c.verify(b"secret", &o));
    }

    #[test]
    fn wrong_value_or_opening_rejected() {
        let mut prg = Prg::from_seed_bytes(b"c");
        let (c, o) = Commitment::commit(b"secret", &mut prg);
        assert!(!c.verify(b"Secret", &o));
        let mut bad = o;
        bad.0[0] ^= 1;
        assert!(!c.verify(b"secret", &Opening(bad.0)));
    }

    #[test]
    fn hiding_smoke() {
        // Commitments to the same value with different randomness differ.
        let mut prg = Prg::from_seed_bytes(b"h");
        let (c1, _) = Commitment::commit(b"v", &mut prg);
        let (c2, _) = Commitment::commit(b"v", &mut prg);
        assert_ne!(c1, c2);
    }

    #[test]
    fn deterministic_given_opening() {
        let o = Opening([7u8; DIGEST_LEN]);
        assert_eq!(
            Commitment::commit_with(b"v", &o),
            Commitment::commit_with(b"v", &o)
        );
    }
}
