//! Merkle signature scheme (MSS): a many-time signature built from Lamport
//! one-time keys under a Merkle root (Merkle '89).
//!
//! This is a *real* OWF-based signature — not a simulation — and serves as the
//! "standard EUF-CMA signature with bare PKI" that the paper's SNARK-based
//! SRDS and the multi-signature baseline assume. Each party locally generates
//! its own key (bare PKI), the verification key is one digest, and up to
//! `2^height` messages can be signed.
//!
//! # Examples
//!
//! ```
//! use pba_crypto::mss::{MssParams, MssKeyPair};
//! use pba_crypto::prg::Prg;
//!
//! let params = MssParams::new(64, 3); // 64-bit Lamport, 8 one-time keys
//! let mut prg = Prg::from_seed_bytes(b"keygen");
//! let mut kp = MssKeyPair::generate(&params, &mut prg);
//! let sig = kp.sign(b"tx-1").unwrap();
//! assert!(params.verify(&kp.verification_key(), b"tx-1", &sig));
//! ```

use crate::lamport::{LamportKeyPair, LamportParams, LamportSignature};
use crate::merkle::{MerkleProof, MerkleTree};
use crate::prg::Prg;
use crate::sha256::Digest;
use std::fmt;

/// Parameters: Lamport digest bits and Merkle tree height.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MssParams {
    lamport: LamportParams,
    height: usize,
}

impl Default for MssParams {
    fn default() -> Self {
        Self::new(128, 4)
    }
}

impl MssParams {
    /// Creates parameters for `2^height` one-time keys with `bits`-bit Lamport
    /// signatures.
    ///
    /// # Panics
    ///
    /// Panics if `height > 16` (a simulator guard against huge keygen) or if
    /// the Lamport parameters are invalid.
    pub fn new(bits: usize, height: usize) -> Self {
        assert!(
            height <= 16,
            "height {height} unreasonably large for simulation"
        );
        MssParams {
            lamport: LamportParams::new(bits),
            height,
        }
    }

    /// Underlying one-time signature parameters.
    pub fn lamport(&self) -> &LamportParams {
        &self.lamport
    }

    /// Maximum number of signatures per key.
    pub fn capacity(&self) -> usize {
        1 << self.height
    }

    /// Verifies an MSS signature.
    pub fn verify(&self, vk: &MssVerificationKey, message: &[u8], sig: &MssSignature) -> bool {
        if !self
            .lamport
            .verify(&sig.one_time_vk_struct(), message, &sig.lamport_sig)
        {
            return false;
        }
        sig.auth_path
            .verify_leaf_digest(&vk.0, &crate::merkle::hash_leaf(sig.one_time_vk.as_bytes()))
            && sig.auth_path.leaf_index() == sig.key_index
    }
}

/// An MSS verification key: the Merkle root over the one-time keys.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MssVerificationKey(pub Digest);

impl MssVerificationKey {
    /// Raw digest of the key.
    pub fn digest(&self) -> Digest {
        self.0
    }
}

/// An MSS signing key: all one-time key pairs plus the Merkle tree and a
/// counter of the next unused leaf.
#[derive(Clone)]
pub struct MssKeyPair {
    params: MssParams,
    one_time: Vec<LamportKeyPair>,
    tree: MerkleTree,
    next: usize,
}

impl fmt::Debug for MssKeyPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MssKeyPair")
            .field("capacity", &self.one_time.len())
            .field("used", &self.next)
            .finish_non_exhaustive()
    }
}

impl MssKeyPair {
    /// Generates a key pair: `2^height` Lamport keys and their Merkle tree.
    ///
    /// Keygen is the hash-heaviest operation in the workspace
    /// (`2^height · 2·bits` preimage hashes plus the tree build), so both
    /// stages go through the multi-lane engine:
    /// [`LamportKeyPair::generate_many`] batches preimage hashing *across*
    /// one-time keys, and [`MerkleTree::from_leaves`] batches each tree
    /// level. The resulting keys, root, and PRG state are byte-identical
    /// to the scalar per-key path.
    pub fn generate(params: &MssParams, prg: &mut Prg) -> Self {
        let one_time = LamportKeyPair::generate_many(&params.lamport, prg, params.capacity());
        let tree = MerkleTree::from_leaves(
            one_time
                .iter()
                .map(|kp| kp.verification_key().digest().into_bytes()),
        );
        MssKeyPair {
            params: *params,
            one_time,
            tree,
            next: 0,
        }
    }

    /// The parameters this key pair was generated with.
    pub fn params(&self) -> &MssParams {
        &self.params
    }

    /// The public verification key (Merkle root).
    pub fn verification_key(&self) -> MssVerificationKey {
        MssVerificationKey(self.tree.root())
    }

    /// Number of signatures already issued.
    pub fn signatures_used(&self) -> usize {
        self.next
    }

    /// Signs with the next unused one-time key.
    ///
    /// # Errors
    ///
    /// Returns [`MssExhausted`] once all `2^height` one-time keys are spent.
    pub fn sign(&mut self, message: &[u8]) -> Result<MssSignature, MssExhausted> {
        if self.next >= self.one_time.len() {
            return Err(MssExhausted);
        }
        let idx = self.next;
        self.next += 1;
        Ok(self.sign_with_index(message, idx))
    }

    /// Signs with a specific one-time key index (deterministic; reusing an
    /// index for two *different* messages breaks one-time security — callers
    /// own that discipline).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn sign_with_index(&self, message: &[u8], index: usize) -> MssSignature {
        let kp = &self.one_time[index];
        MssSignature {
            key_index: index as u64,
            one_time_vk: kp.verification_key().digest(),
            lamport_sig: kp.sign(message),
            auth_path: self.tree.prove(index),
        }
    }
}

/// Error: every one-time key in the MSS pair has been used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MssExhausted;

impl fmt::Display for MssExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("merkle signature key exhausted: all one-time keys used")
    }
}

impl std::error::Error for MssExhausted {}

/// A disjoint-slice allocator over the `2^height` one-time signing slots
/// of an MSS key generation.
///
/// Protocols that stream several executions over one key establishment
/// (each execution consuming one slot per key, via deterministic
/// [`MssKeyPair::sign_with_index`]) reserve their slice *before* starting,
/// so exhaustion is a structured, pre-flight [`LeafBudgetExceeded`] — not
/// a mid-protocol panic or, worse, a silent wrap onto an already-spent
/// one-time key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeafBudget {
    capacity: u64,
    next: u64,
}

impl LeafBudget {
    /// A budget over `capacity` one-time slots (typically
    /// [`MssParams::capacity`]), none consumed yet.
    pub fn new(capacity: u64) -> Self {
        LeafBudget { capacity, next: 0 }
    }

    /// Total slots the budget started with.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Slots handed out so far.
    pub fn consumed(&self) -> u64 {
        self.next
    }

    /// Slots still available.
    pub fn remaining(&self) -> u64 {
        self.capacity - self.next
    }

    /// Reserves the next `count` slots and returns their index range, or a
    /// structured [`LeafBudgetExceeded`] (consuming nothing) when fewer
    /// than `count` remain.
    pub fn reserve(&mut self, count: u64) -> Result<std::ops::Range<u64>, LeafBudgetExceeded> {
        if count > self.remaining() {
            return Err(LeafBudgetExceeded {
                requested: count,
                remaining: self.remaining(),
                capacity: self.capacity,
            });
        }
        let start = self.next;
        self.next += count;
        Ok(start..self.next)
    }
}

/// Error: a [`LeafBudget`] reservation asked for more one-time slots than
/// remain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LeafBudgetExceeded {
    /// Slots the reservation asked for.
    pub requested: u64,
    /// Slots that were still available.
    pub remaining: u64,
    /// Total slots of the budget.
    pub capacity: u64,
}

impl fmt::Display for LeafBudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mss leaf budget exceeded: requested {} one-time slot(s) with {} of {} remaining",
            self.requested, self.remaining, self.capacity
        )
    }
}

impl std::error::Error for LeafBudgetExceeded {}

/// An MSS signature: one-time key index, its verification key, the Lamport
/// signature, and the Merkle authentication path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MssSignature {
    key_index: u64,
    one_time_vk: Digest,
    lamport_sig: LamportSignature,
    auth_path: MerkleProof,
}

impl MssSignature {
    fn one_time_vk_struct(&self) -> crate::lamport::LamportVerificationKey {
        crate::lamport::LamportVerificationKey(self.one_time_vk)
    }

    /// Wire size in bytes.
    pub fn encoded_len(&self) -> usize {
        8 + 32 + self.lamport_sig.encoded_len() + self.auth_path.encoded_len()
    }

    /// Decomposes into codec parts.
    pub fn into_parts(self) -> (u64, Digest, LamportSignature, MerkleProof) {
        (
            self.key_index,
            self.one_time_vk,
            self.lamport_sig,
            self.auth_path,
        )
    }

    /// Rebuilds from codec parts.
    pub fn from_parts(
        key_index: u64,
        one_time_vk: Digest,
        lamport_sig: LamportSignature,
        auth_path: MerkleProof,
    ) -> Self {
        MssSignature {
            key_index,
            one_time_vk,
            lamport_sig,
            auth_path,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MssParams, MssKeyPair) {
        let params = MssParams::new(32, 3);
        let mut prg = Prg::from_seed_bytes(b"mss");
        let kp = MssKeyPair::generate(&params, &mut prg);
        (params, kp)
    }

    #[test]
    fn sign_verify_many() {
        let (params, mut kp) = setup();
        let vk = kp.verification_key();
        for i in 0..params.capacity() {
            let msg = format!("msg-{i}");
            let sig = kp.sign(msg.as_bytes()).unwrap();
            assert!(params.verify(&vk, msg.as_bytes(), &sig));
        }
    }

    #[test]
    fn exhaustion() {
        let (_, mut kp) = setup();
        for i in 0..8 {
            kp.sign(format!("m{i}").as_bytes()).unwrap();
        }
        assert_eq!(kp.sign(b"one-too-many"), Err(MssExhausted));
    }

    #[test]
    fn wrong_message_rejected() {
        let (params, mut kp) = setup();
        let vk = kp.verification_key();
        let sig = kp.sign(b"a").unwrap();
        assert!(!params.verify(&vk, b"b", &sig));
    }

    #[test]
    fn cross_key_rejected() {
        let (params, mut kp1) = setup();
        let mut prg = Prg::from_seed_bytes(b"other");
        let kp2 = MssKeyPair::generate(&params, &mut prg);
        let sig = kp1.sign(b"a").unwrap();
        assert!(!params.verify(&kp2.verification_key(), b"a", &sig));
    }

    #[test]
    fn spliced_index_rejected() {
        // Take a valid signature and claim it came from a different leaf.
        let (params, mut kp) = setup();
        let vk = kp.verification_key();
        let sig = kp.sign(b"a").unwrap();
        let (_, ovk, lsig, path) = sig.into_parts();
        let forged = MssSignature::from_parts(5, ovk, lsig, path);
        assert!(!params.verify(&vk, b"a", &forged));
    }

    #[test]
    fn deterministic_same_seed_same_root() {
        let params = MssParams::new(32, 2);
        let a = MssKeyPair::generate(&params, &mut Prg::from_seed_bytes(b"s"));
        let b = MssKeyPair::generate(&params, &mut Prg::from_seed_bytes(b"s"));
        assert_eq!(a.verification_key(), b.verification_key());
    }

    #[test]
    fn sign_with_index_is_deterministic() {
        let (params, kp) = setup();
        let s1 = kp.sign_with_index(b"m", 2);
        let s2 = kp.sign_with_index(b"m", 2);
        assert_eq!(s1, s2);
        assert!(params.verify(&kp.verification_key(), b"m", &s1));
    }

    #[test]
    fn leaf_budget_hands_out_disjoint_slices() {
        let mut budget = LeafBudget::new(8);
        assert_eq!(budget.reserve(3).unwrap(), 0..3);
        assert_eq!(budget.reserve(5).unwrap(), 3..8);
        assert_eq!(budget.remaining(), 0);
        assert_eq!(budget.consumed(), 8);
    }

    #[test]
    fn leaf_budget_overdraw_is_structured_and_consumes_nothing() {
        let mut budget = LeafBudget::new(4);
        budget.reserve(3).unwrap();
        let err = budget.reserve(2).expect_err("only one slot left");
        assert_eq!(
            err,
            LeafBudgetExceeded {
                requested: 2,
                remaining: 1,
                capacity: 4
            }
        );
        assert!(err.to_string().contains("leaf budget exceeded"));
        // The failed reservation consumed nothing: the last slot is intact.
        assert_eq!(budget.reserve(1).unwrap(), 3..4);
    }
}
