//! HMAC-SHA256 (RFC 2104 / FIPS 198-1), built on our [`crate::sha256`].
//!
//! HMAC is used as the workspace's PRF, as the MAC inside the simulated
//! SNARK system of `pba-snark`, and as the keyed compression step of the PRG.
//!
//! # Examples
//!
//! ```
//! use pba_crypto::hmac::hmac_sha256;
//!
//! let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
//! assert_eq!(
//!     tag.to_hex(),
//!     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8",
//! );
//! ```

use crate::sha256::{Digest, Sha256, BLOCK_LEN};

const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Computes `HMAC-SHA256(key, message)`.
///
/// Keys longer than the SHA-256 block size are hashed first, per the spec.
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> Digest {
    let mut mac = HmacSha256::new(key);
    mac.update(message);
    mac.finalize()
}

/// Incremental HMAC-SHA256.
///
/// # Examples
///
/// ```
/// use pba_crypto::hmac::{hmac_sha256, HmacSha256};
///
/// let mut mac = HmacSha256::new(b"k");
/// mac.update(b"part1");
/// mac.update(b"part2");
/// assert_eq!(mac.finalize(), hmac_sha256(b"k", b"part1part2"));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let hashed = Sha256::digest(key);
            key_block[..hashed.as_bytes().len()].copy_from_slice(hashed.as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad_key = [0u8; BLOCK_LEN];
        let mut opad_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_key[i] = key_block[i] ^ IPAD;
            opad_key[i] = key_block[i] ^ OPAD;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        HmacSha256 { inner, opad_key }
    }

    /// Feeds message bytes into the MAC.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC computation.
    pub fn finalize(self) -> Digest {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(inner_digest.as_bytes());
        outer.finalize()
    }

    /// Constant-time-ish verification of an expected tag.
    ///
    /// The comparison accumulates differences over all bytes rather than
    /// short-circuiting. (Inside a simulator this is hygiene, not a hard
    /// security requirement.)
    pub fn verify(self, expected: &Digest) -> bool {
        let got = self.finalize();
        let mut diff = 0u8;
        for (a, b) in got.as_bytes().iter().zip(expected.as_bytes()) {
            diff |= a ^ b;
        }
        diff == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            tag.to_hex(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            tag.to_hex(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3_long_data() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            tag.to_hex(),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            tag.to_hex(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac_sha256(b"key", b"hello world"));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"m");
        assert!(mac.verify(&tag));

        let mut mac = HmacSha256::new(b"k");
        mac.update(b"m'");
        assert!(!mac.verify(&tag));
    }

    #[test]
    fn different_keys_different_tags() {
        assert_ne!(hmac_sha256(b"k1", b"m"), hmac_sha256(b"k2", b"m"));
    }
}
