//! The pseudorandom function family `F = {F_s}` used in step 7 of the BA
//! protocol (Fig. 3 of the paper): `F_s` maps a party index `i ∈ [n]` to a
//! pseudorandom subset of `[n]` of size polylog(n).
//!
//! Party `P_i` sends its certified output to every party in `F_s(i)`, and a
//! receiver `P_j` accepts a message from `P_i` only if `j ∈ F_s(i)`. Because
//! the seed `s` is chosen by coin tossing *after* corruptions are fixed, the
//! adversary cannot concentrate recipients, and every honest party receives
//! the certificate from at least one honest sender with overwhelming
//! probability while processing only Õ(1) messages.
//!
//! # Examples
//!
//! ```
//! use pba_crypto::prf::SubsetPrf;
//! use pba_crypto::sha256::Sha256;
//!
//! let seed = Sha256::digest(b"coin-tossing output");
//! let prf = SubsetPrf::new(seed, 1000, 16);
//! let targets = prf.eval(7);
//! assert_eq!(targets.len(), 16);
//! assert!(prf.contains(7, targets[0]));
//! ```

use crate::hmac::hmac_sha256;
use crate::prg::Prg;
use crate::sha256::Digest;

/// `F_s : [n] → ([n] choose k)` — a PRF whose outputs are size-`k` subsets.
///
/// Evaluation is deterministic in `(s, i)`; membership queries are supported
/// without materializing the whole subset order.
#[derive(Clone, Debug)]
pub struct SubsetPrf {
    seed: Digest,
    n: u64,
    k: usize,
}

impl SubsetPrf {
    /// Creates the PRF `F_s` for universe size `n` and subset size `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k > n` or `n == 0`.
    pub fn new(seed: Digest, n: u64, k: usize) -> Self {
        assert!(n > 0, "universe must be nonempty");
        assert!(k as u64 <= n, "subset size {k} exceeds universe {n}");
        SubsetPrf { seed, n, k }
    }

    /// Universe size `n`.
    pub fn universe(&self) -> u64 {
        self.n
    }

    /// Subset size `k`.
    pub fn subset_size(&self) -> usize {
        self.k
    }

    /// Evaluates `F_s(i)`: the pseudorandom subset assigned to index `i`.
    pub fn eval(&self, i: u64) -> Vec<u64> {
        let key = hmac_sha256(self.seed.as_bytes(), &i.to_le_bytes());
        let mut prg = Prg::from_digest(&key);
        self.k_distinct(&mut prg)
    }

    fn k_distinct(&self, prg: &mut Prg) -> Vec<u64> {
        prg.sample_distinct(self.n, self.k)
    }

    /// Returns true iff `j ∈ F_s(i)`.
    ///
    /// This is the receiver-side filter of step 8 in Fig. 3: `P_j` processes a
    /// message from `P_i` only when this predicate holds for the seed carried
    /// in the (verified) certificate.
    pub fn contains(&self, i: u64, j: u64) -> bool {
        self.eval(i).contains(&j)
    }

    /// Inverse image restricted to senders: all `i ∈ [n]` with `j ∈ F_s(i)`.
    ///
    /// Linear scan over the universe — used by tests and analysis, not by the
    /// protocol itself (a party never needs the full preimage).
    pub fn senders_to(&self, j: u64) -> Vec<u64> {
        (0..self.n).filter(|&i| self.contains(i, j)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::Sha256;

    fn prf(n: u64, k: usize) -> SubsetPrf {
        SubsetPrf::new(Sha256::digest(b"seed"), n, k)
    }

    #[test]
    fn eval_is_deterministic_and_distinct() {
        let f = prf(500, 12);
        let a = f.eval(3);
        let b = f.eval(3);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), 12);
        assert!(a.iter().all(|&v| v < 500));
    }

    #[test]
    fn different_indices_differ() {
        let f = prf(500, 12);
        assert_ne!(f.eval(1), f.eval(2));
    }

    #[test]
    fn different_seeds_differ() {
        let a = SubsetPrf::new(Sha256::digest(b"s1"), 100, 10).eval(5);
        let b = SubsetPrf::new(Sha256::digest(b"s2"), 100, 10).eval(5);
        assert_ne!(a, b);
    }

    #[test]
    fn contains_matches_eval() {
        let f = prf(200, 8);
        for i in 0..20 {
            let subset = f.eval(i);
            for j in 0..200 {
                assert_eq!(f.contains(i, j), subset.contains(&j));
            }
        }
    }

    #[test]
    fn coverage_every_party_has_a_sender() {
        // With n=256 and k = 4*log2(n) = 32, every party should be in some
        // F_s(i) image with overwhelming probability (coupon collector).
        let n = 256u64;
        let f = prf(n, 32);
        for j in 0..n {
            assert!(
                !f.senders_to(j).is_empty(),
                "party {j} unreachable under PRF"
            );
        }
    }

    #[test]
    fn in_degree_is_balanced() {
        // In-degree concentrates around k; no party should be wildly above.
        let n = 256u64;
        let k = 16usize;
        let f = prf(n, k);
        let max_in = (0..n).map(|j| f.senders_to(j).len()).max().unwrap();
        assert!(max_in < 5 * k, "max in-degree {max_in} too skewed");
    }

    #[test]
    #[should_panic(expected = "subset size")]
    fn oversize_subset_panics() {
        SubsetPrf::new(Digest::ZERO, 4, 5);
    }
}
