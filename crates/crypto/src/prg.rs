//! A deterministic pseudorandom generator (SHA-256 in counter mode) that
//! implements [`rand::RngCore`], so every piece of protocol randomness in the
//! workspace can be derived reproducibly from a seed and a domain label.
//!
//! Determinism matters here twice over: the simulator must be replayable for
//! debugging, and the paper's trusted-setup phase ("public-coin sampling")
//! is modelled by seeding per-party PRGs from a master setup seed.
//!
//! # Examples
//!
//! ```
//! use pba_crypto::prg::Prg;
//! use rand::RngCore;
//!
//! let mut a = Prg::from_seed_label(b"seed", "setup");
//! let mut b = Prg::from_seed_label(b"seed", "setup");
//! assert_eq!(a.next_u64(), b.next_u64());
//!
//! let mut c = Prg::from_seed_label(b"seed", "other-domain");
//! assert_ne!(Prg::from_seed_label(b"seed", "setup").next_u64(), c.next_u64());
//! ```

use crate::sha256::{Digest, Sha256, DIGEST_LEN};
use rand::{CryptoRng, RngCore, SeedableRng};

/// SHA-256 counter-mode PRG.
///
/// The stream is `SHA256(key || ctr=0) || SHA256(key || ctr=1) || ...` where
/// `key` is itself a digest of the seed material. This is the classic
/// hash-based PRG; under the random-oracle heuristic for SHA-256 the output
/// is pseudorandom.
#[derive(Clone, Debug)]
pub struct Prg {
    key: Digest,
    counter: u64,
    buf: [u8; DIGEST_LEN],
    buf_pos: usize,
}

impl Prg {
    /// Creates a PRG from arbitrary seed bytes.
    pub fn from_seed_bytes(seed: &[u8]) -> Self {
        let mut h = Sha256::new();
        h.update(b"pba-prg-v1");
        h.update(seed);
        Prg {
            key: h.finalize(),
            counter: 0,
            buf: [0u8; DIGEST_LEN],
            buf_pos: DIGEST_LEN,
        }
    }

    /// Creates a PRG from seed bytes and a domain-separation label.
    ///
    /// Two PRGs with the same seed but different labels produce independent
    /// streams; this is how per-party / per-subprotocol randomness is split
    /// off a single master seed.
    pub fn from_seed_label(seed: &[u8], label: &str) -> Self {
        let mut h = Sha256::new();
        h.update(b"pba-prg-v1");
        h.update(&(label.len() as u64).to_le_bytes());
        h.update(label.as_bytes());
        h.update(seed);
        Prg {
            key: h.finalize(),
            counter: 0,
            buf: [0u8; DIGEST_LEN],
            buf_pos: DIGEST_LEN,
        }
    }

    /// Creates a PRG keyed by a digest (e.g. a coin-tossing output `s`).
    pub fn from_digest(d: &Digest) -> Self {
        Self::from_seed_bytes(d.as_bytes())
    }

    /// Derives a child PRG for subdomain `label` and index `index`.
    ///
    /// Children are independent of each other and of the parent stream.
    pub fn child(&self, label: &str, index: u64) -> Prg {
        let mut h = Sha256::new();
        h.update(b"pba-prg-child");
        h.update(self.key.as_bytes());
        h.update(&(label.len() as u64).to_le_bytes());
        h.update(label.as_bytes());
        h.update(&index.to_le_bytes());
        Prg {
            key: h.finalize(),
            counter: 0,
            buf: [0u8; DIGEST_LEN],
            buf_pos: DIGEST_LEN,
        }
    }

    fn refill(&mut self) {
        let mut h = Sha256::new();
        h.update(self.key.as_bytes());
        h.update(&self.counter.to_le_bytes());
        self.buf = h.finalize().into_bytes();
        self.counter += 1;
        self.buf_pos = 0;
    }

    /// The scalar reference expansion: byte-identical to [`RngCore::fill_bytes`]
    /// (which routes large requests through the multi-lane SHA-256 engine).
    /// Kept public so equivalence tests and the perf harness can compare the
    /// two paths on the same stream position.
    pub fn fill_bytes_scalar(&mut self, dest: &mut [u8]) {
        let mut filled = 0;
        while filled < dest.len() {
            if self.buf_pos == DIGEST_LEN {
                self.refill();
            }
            let take = (DIGEST_LEN - self.buf_pos).min(dest.len() - filled);
            dest[filled..filled + take]
                .copy_from_slice(&self.buf[self.buf_pos..self.buf_pos + take]);
            self.buf_pos += take;
            filled += take;
        }
    }

    /// Returns a uniformly random value in `[0, bound)`.
    ///
    /// Uses rejection sampling to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn gen_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range bound must be positive");
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Samples a Bernoulli trial that succeeds with probability `num/den`.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` or `num > den`.
    pub fn gen_bool_ratio(&mut self, num: u64, den: u64) -> bool {
        assert!(den > 0 && num <= den, "invalid ratio {num}/{den}");
        self.gen_range(den) < num
    }

    /// Samples `k` distinct values from `[0, n)` (Floyd's algorithm).
    ///
    /// # Panics
    ///
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: u64, k: usize) -> Vec<u64> {
        assert!((k as u64) <= n, "cannot sample {k} distinct from {n}");
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k as u64)..n {
            let t = self.gen_range(j + 1);
            let v = if chosen.contains(&t) { j } else { t };
            chosen.insert(v);
            out.push(v);
        }
        out
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.gen_range(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Returns a fresh 32-byte digest from the stream.
    pub fn next_digest(&mut self) -> Digest {
        let mut bytes = [0u8; DIGEST_LEN];
        self.fill_bytes(&mut bytes);
        Digest::new(bytes)
    }
}

impl RngCore for Prg {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        use crate::sha256::{batch_digest_prefixed, LANES};
        let mut filled = 0;
        // Drain the buffered tail of the previous counter block first, so
        // the stream position is block-aligned for the bulk path.
        if self.buf_pos < DIGEST_LEN && filled < dest.len() {
            let take = (DIGEST_LEN - self.buf_pos).min(dest.len() - filled);
            dest[filled..filled + take]
                .copy_from_slice(&self.buf[self.buf_pos..self.buf_pos + take]);
            self.buf_pos += take;
            filled += take;
        }
        // Bulk expansion: whole counter blocks are hashed [`LANES`] at a
        // time through the batched engine and written straight into `dest`
        // — the stream is `SHA256(key ‖ ctr_i)` concatenated either way,
        // so the bytes are identical to [`Prg::fill_bytes_scalar`].
        while dest.len() - filled >= DIGEST_LEN * LANES {
            let ctrs: [[u8; 8]; LANES] =
                std::array::from_fn(|i| (self.counter + i as u64).to_le_bytes());
            let bodies: [&[u8]; LANES] = std::array::from_fn(|i| &ctrs[i][..]);
            let digests = batch_digest_prefixed(self.key.as_bytes(), &bodies);
            for (i, d) in digests.iter().enumerate() {
                dest[filled + i * DIGEST_LEN..filled + (i + 1) * DIGEST_LEN]
                    .copy_from_slice(d.as_bytes());
            }
            self.counter += LANES as u64;
            filled += DIGEST_LEN * LANES;
        }
        self.fill_bytes_scalar(&mut dest[filled..]);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl CryptoRng for Prg {}

impl SeedableRng for Prg {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        Prg::from_seed_bytes(&seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Prg::from_seed_bytes(b"s");
        let mut b = Prg::from_seed_bytes(b"s");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn label_separation() {
        let mut a = Prg::from_seed_label(b"s", "x");
        let mut b = Prg::from_seed_label(b"s", "y");
        assert_ne!(a.next_digest(), b.next_digest());
    }

    #[test]
    fn child_independence() {
        let parent = Prg::from_seed_bytes(b"s");
        let mut c0 = parent.child("lbl", 0);
        let mut c1 = parent.child("lbl", 1);
        let mut c0b = parent.child("lbl", 0);
        assert_ne!(c0.next_u64(), c1.next_u64());
        let mut c0_again = parent.child("lbl", 0);
        assert_eq!(c0b.next_u64(), c0_again.next_u64());
    }

    #[test]
    fn fill_bytes_cross_boundary() {
        let mut a = Prg::from_seed_bytes(b"s");
        let mut b = Prg::from_seed_bytes(b"s");
        let mut big = [0u8; 100];
        a.fill_bytes(&mut big);
        let mut parts = [0u8; 100];
        b.fill_bytes(&mut parts[..33]);
        b.fill_bytes(&mut parts[33..70]);
        b.fill_bytes(&mut parts[70..]);
        assert_eq!(big, parts);
    }

    #[test]
    fn bulk_fill_matches_scalar_reference() {
        // Large requests take the multi-lane path; the emitted stream and the
        // post-call PRG state must both match the scalar reference exactly.
        for len in [0usize, 1, 31, 32, 255, 256, 257, 1024, 4096 + 7] {
            let mut bulk = Prg::from_seed_bytes(b"equiv");
            let mut scalar = Prg::from_seed_bytes(b"equiv");
            // Desynchronise the block boundary so the drain path is exercised.
            let mut skew = [0u8; 5];
            bulk.fill_bytes(&mut skew);
            scalar.fill_bytes_scalar(&mut skew);
            let mut a = vec![0u8; len];
            let mut b = vec![0u8; len];
            bulk.fill_bytes(&mut a);
            scalar.fill_bytes_scalar(&mut b);
            assert_eq!(a, b, "stream diverged at len={len}");
            // Follow-up draws must also agree (state equivalence).
            assert_eq!(
                bulk.next_u64(),
                scalar.next_u64(),
                "state diverged at len={len}"
            );
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut p = Prg::from_seed_bytes(b"r");
        for bound in [1u64, 2, 3, 7, 100, 1 << 33] {
            for _ in 0..50 {
                assert!(p.gen_range(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut p = Prg::from_seed_bytes(b"c");
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[p.gen_range(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "gen_range bound must be positive")]
    fn gen_range_zero_panics() {
        Prg::from_seed_bytes(b"z").gen_range(0);
    }

    #[test]
    fn sample_distinct_properties() {
        let mut p = Prg::from_seed_bytes(b"d");
        let sample = p.sample_distinct(100, 30);
        assert_eq!(sample.len(), 30);
        let set: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(set.len(), 30);
        assert!(sample.iter().all(|&v| v < 100));
        // Full sample is a permutation of the domain.
        let full = p.sample_distinct(10, 10);
        let mut sorted = full.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut p = Prg::from_seed_bytes(b"sh");
        let mut v: Vec<u32> = (0..50).collect();
        p.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn gen_bool_ratio_extremes() {
        let mut p = Prg::from_seed_bytes(b"b");
        for _ in 0..20 {
            assert!(p.gen_bool_ratio(1, 1));
            assert!(!p.gen_bool_ratio(0, 5));
        }
    }

    #[test]
    fn bernoulli_roughly_calibrated() {
        let mut p = Prg::from_seed_bytes(b"cal");
        let trials = 10_000;
        let hits = (0..trials).filter(|_| p.gen_bool_ratio(1, 4)).count();
        let frac = hits as f64 / trials as f64;
        assert!((frac - 0.25).abs() < 0.02, "frac={frac}");
    }
}
