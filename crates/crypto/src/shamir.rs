//! Shamir secret sharing over `F_p`, used by the committee coin-tossing
//! functionality `f_ct` (Chor–Goldwasser–Micali–Awerbuch style commit/share
//! and reveal).
//!
//! A `(threshold, n)` sharing hides the secret from any `threshold` shares
//! and reconstructs from any `threshold + 1`.
//!
//! # Examples
//!
//! ```
//! use pba_crypto::field::Fp;
//! use pba_crypto::prg::Prg;
//! use pba_crypto::shamir::{share, reconstruct};
//!
//! let mut prg = Prg::from_seed_bytes(b"rng");
//! let shares = share(Fp::new(42), 2, 5, &mut prg);
//! let secret = reconstruct(&shares[1..4]).unwrap();
//! assert_eq!(secret, Fp::new(42));
//! ```

use crate::field::Fp;
use crate::poly::{interpolate_at_zero, Polynomial};
use crate::prg::Prg;
use std::fmt;

/// One share: the evaluation point index (1-based) and value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Share {
    /// 1-based evaluation index (party identity); `x = Fp::new(index)`.
    pub index: u64,
    /// Evaluation of the sharing polynomial at `x`.
    pub value: Fp,
}

/// Errors from share reconstruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShamirError {
    /// No shares were provided.
    Empty,
    /// Two shares carry the same index.
    DuplicateIndex(u64),
}

impl fmt::Display for ShamirError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShamirError::Empty => f.write_str("no shares provided"),
            ShamirError::DuplicateIndex(i) => write!(f, "duplicate share index {i}"),
        }
    }
}

impl std::error::Error for ShamirError {}

/// Shares `secret` with privacy threshold `threshold` among `n` parties.
///
/// Any `threshold + 1` shares reconstruct; any `threshold` reveal nothing.
///
/// # Panics
///
/// Panics if `threshold >= n` or `n == 0`.
pub fn share(secret: Fp, threshold: usize, n: usize, prg: &mut Prg) -> Vec<Share> {
    assert!(n > 0, "need at least one party");
    assert!(threshold < n, "threshold {threshold} must be < n {n}");
    let poly = Polynomial::random_with_constant(secret, threshold, prg);
    (1..=n as u64)
        .map(|index| Share {
            index,
            value: poly.eval(Fp::new(index)),
        })
        .collect()
}

/// Reconstructs the secret from shares (interpolation at zero).
///
/// The caller must supply at least `threshold + 1` *correct* shares; with
/// fewer, the result is wrong (but this function cannot detect that — pair it
/// with commitments for verifiability, as `f_ct` does).
///
/// # Errors
///
/// Returns an error if `shares` is empty or contains duplicate indices.
pub fn reconstruct(shares: &[Share]) -> Result<Fp, ShamirError> {
    if shares.is_empty() {
        return Err(ShamirError::Empty);
    }
    let mut seen = std::collections::HashSet::new();
    for s in shares {
        if !seen.insert(s.index) {
            return Err(ShamirError::DuplicateIndex(s.index));
        }
    }
    let points: Vec<(Fp, Fp)> = shares.iter().map(|s| (Fp::new(s.index), s.value)).collect();
    Ok(interpolate_at_zero(&points))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_subsets_of_size_t_plus_1() {
        let mut prg = Prg::from_seed_bytes(b"sh");
        let shares = share(Fp::new(987654321), 2, 6, &mut prg);
        // every 3-subset reconstructs
        for a in 0..6 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    let subset = [shares[a], shares[b], shares[c]];
                    assert_eq!(reconstruct(&subset).unwrap(), Fp::new(987654321));
                }
            }
        }
    }

    #[test]
    fn threshold_shares_insufficient() {
        let mut prg = Prg::from_seed_bytes(b"priv");
        let shares = share(Fp::new(5), 3, 7, &mut prg);
        // 3 shares of a threshold-3 sharing: wrong with overwhelming prob.
        assert_ne!(reconstruct(&shares[..3]).unwrap(), Fp::new(5));
    }

    #[test]
    fn privacy_distribution_smoke() {
        // A single share of two different secrets should not be biased in a
        // way a trivial distinguisher notices: compare means over many runs.
        let mut prg = Prg::from_seed_bytes(b"dist");
        let mut sum0 = 0f64;
        let mut sum1 = 0f64;
        let runs = 300;
        for _ in 0..runs {
            let s0 = share(Fp::new(0), 1, 3, &mut prg)[0].value.value() as f64;
            let s1 = share(Fp::new(1_000_000_000), 1, 3, &mut prg)[0]
                .value
                .value() as f64;
            sum0 += s0;
            sum1 += s1;
        }
        let p = crate::field::MODULUS as f64;
        let m0 = sum0 / runs as f64 / p;
        let m1 = sum1 / runs as f64 / p;
        assert!((m0 - 0.5).abs() < 0.1, "m0={m0}");
        assert!((m1 - 0.5).abs() < 0.1, "m1={m1}");
    }

    #[test]
    fn errors() {
        assert_eq!(reconstruct(&[]), Err(ShamirError::Empty));
        let s = Share {
            index: 1,
            value: Fp::new(2),
        };
        assert_eq!(reconstruct(&[s, s]), Err(ShamirError::DuplicateIndex(1)));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        let mut prg = Prg::from_seed_bytes(b"bad");
        share(Fp::new(1), 5, 5, &mut prg);
    }

    #[test]
    fn n_equals_one_threshold_zero() {
        let mut prg = Prg::from_seed_bytes(b"one");
        let shares = share(Fp::new(3), 0, 1, &mut prg);
        assert_eq!(reconstruct(&shares).unwrap(), Fp::new(3));
    }
}
