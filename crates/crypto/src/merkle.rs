//! Merkle hash trees with inclusion proofs.
//!
//! Used by the Merkle signature scheme ([`crate::mss`]) to certify many
//! Lamport one-time keys under one verification root, and by the SNARK-based
//! SRDS to commit succinctly to sets of contributed signatures.
//!
//! Leaves and internal nodes are domain-separated (`0x00` / `0x01` prefixes)
//! to rule out second-preimage splicing between levels.
//!
//! # Examples
//!
//! ```
//! use pba_crypto::merkle::MerkleTree;
//!
//! let leaves: Vec<&[u8]> = vec![b"a", b"b", b"c"];
//! let tree = MerkleTree::from_leaves(leaves.iter());
//! let proof = tree.prove(1);
//! assert!(proof.verify(&tree.root(), b"b"));
//! assert!(!proof.verify(&tree.root(), b"x"));
//! ```

use crate::sha256::{batch_digest_pairs, batch_digest_prefixed, Digest, Sha256};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const LEAF_PREFIX: u8 = 0x00;
const NODE_PREFIX: u8 = 0x01;

/// Process-wide proof-cache counters, exposed so benchmarks and property
/// tests can observe hit rates.
///
/// # Memory-ordering contract
///
/// All accesses use [`Ordering::Relaxed`]: each counter is an independent
/// monotone event count, never used to synchronise other memory, so no
/// acquire/release pairing is needed. The guarantees callers may rely on:
///
/// * **Per-counter monotonicity.** Between two calls to
///   [`proof_cache_stats`] on *any* thread (absent a reset), each counter
///   is non-decreasing — relaxed RMWs still hit a single modification
///   order per atomic.
/// * **No cross-counter snapshot.** A `(hits, misses)` pair is two
///   independent loads, not an atomic snapshot; concurrent `prove` calls
///   may land between them. Derived quantities (hit rates, totals) are
///   therefore only exact while the threaded round engine is quiescent.
static PROOF_CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static PROOF_CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` of the process-wide Merkle proof cache.
///
/// See the module's memory-ordering contract: monotone per counter, not an
/// atomic pair snapshot.
pub fn proof_cache_stats() -> (u64, u64) {
    (
        PROOF_CACHE_HITS.load(Ordering::Relaxed),
        PROOF_CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// Resets the process-wide proof-cache counters and returns the values they
/// held, `(hits, misses)`.
///
/// **Single-threaded entry points only.** A reset racing `prove` calls on
/// worker threads would interleave with their increments and break the
/// monotonicity contract that property tests rely on, so this must only be
/// called from harness code while no threaded round engine is running
/// (e.g. between `run_cell` invocations, under the perf harness's exercise
/// lock). The swap is atomic per counter, so even a misplaced call cannot
/// lose increments — it can only make a concurrent reader's window span
/// the reset.
pub fn reset_proof_cache_stats() -> (u64, u64) {
    (
        PROOF_CACHE_HITS.swap(0, Ordering::Relaxed),
        PROOF_CACHE_MISSES.swap(0, Ordering::Relaxed),
    )
}

/// Hashes a leaf payload with the leaf domain prefix.
pub fn hash_leaf(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(&[LEAF_PREFIX]);
    h.update(data);
    h.finalize()
}

/// Hashes two child digests into a parent with the node domain prefix.
pub fn hash_node(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update(&[NODE_PREFIX]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

/// Hashes many leaf payloads through the multi-lane engine.
///
/// Bit-identical to mapping [`hash_leaf`] over `data` (the engine's lanes
/// run the same compression function in lockstep; ragged or sub-lane-width
/// batches fall back to the scalar core).
pub fn hash_leaf_batch(data: &[&[u8]]) -> Vec<Digest> {
    batch_digest_prefixed(&[LEAF_PREFIX], data)
}

/// Hashes many `(left, right)` child pairs into parents through the
/// multi-lane engine's fixed-shape two-block fast path.
///
/// Bit-identical to mapping [`hash_node`] over `pairs`.
pub fn hash_node_batch(pairs: &[(Digest, Digest)]) -> Vec<Digest> {
    batch_digest_pairs(NODE_PREFIX, pairs)
}

/// A complete Merkle tree over a list of byte-string leaves.
///
/// Odd levels are padded by duplicating the last digest, so any positive
/// number of leaves is supported.
///
/// Proof assembly is memoized: repeated [`MerkleTree::prove`] calls for
/// the same leaf (the hot path of MSS epoch signing, which cycles through
/// a tiny slot set, and of SRDS key-board attestation) return a cached
/// sibling path. The cache is shared across clones (the node levels are
/// immutable once built) and its hit/miss counters are process-wide, via
/// [`proof_cache_stats`].
#[derive(Clone, Debug)]
pub struct MerkleTree {
    // levels[0] = leaf digests, levels.last() = [root]
    levels: Vec<Vec<Digest>>,
    // index → assembled sibling path; shared by clones of this tree.
    proofs: Arc<Mutex<HashMap<usize, MerkleProof>>>,
}

impl MerkleTree {
    /// Builds a tree from an iterator of leaf payloads.
    ///
    /// Leaf hashing goes through the multi-lane engine ([`hash_leaf_batch`]);
    /// the resulting digests — and hence the root — are identical to hashing
    /// each leaf with [`hash_leaf`].
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty.
    pub fn from_leaves<I, T>(leaves: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u8]>,
    {
        let payloads: Vec<T> = leaves.into_iter().collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|l| l.as_ref()).collect();
        Self::from_leaf_digests(hash_leaf_batch(&refs))
    }

    /// Builds a tree from pre-hashed leaf digests.
    ///
    /// Each level is hashed with one [`hash_node_batch`] call, so the
    /// engine compresses up to [`crate::sha256::LANES`] parent nodes per
    /// pass. The levels are bit-identical to
    /// [`MerkleTree::from_leaf_digests_scalar`].
    ///
    /// # Panics
    ///
    /// Panics if `digests` is empty.
    pub fn from_leaf_digests(digests: Vec<Digest>) -> Self {
        assert!(!digests.is_empty(), "merkle tree needs at least one leaf");
        let mut levels = vec![digests];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let pairs: Vec<(Digest, Digest)> = prev
                .chunks(2)
                .map(|pair| (pair[0], *pair.get(1).unwrap_or(&pair[0])))
                .collect();
            levels.push(hash_node_batch(&pairs));
        }
        MerkleTree {
            levels,
            proofs: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The scalar reference build: one streaming [`hash_node`] per parent.
    ///
    /// Kept as the equivalence baseline for the batched
    /// [`MerkleTree::from_leaf_digests`]; property tests assert the two
    /// produce identical levels for all shapes, and the perf harness
    /// benches them against each other.
    pub fn from_leaf_digests_scalar(digests: Vec<Digest>) -> Self {
        assert!(!digests.is_empty(), "merkle tree needs at least one leaf");
        let mut levels = vec![digests];
        while levels.last().expect("nonempty").len() > 1 {
            let prev = levels.last().expect("nonempty");
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                let left = &pair[0];
                let right = pair.get(1).unwrap_or(left);
                next.push(hash_node(left, right));
            }
            levels.push(next);
        }
        MerkleTree {
            levels,
            proofs: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The Merkle root.
    pub fn root(&self) -> Digest {
        self.levels.last().expect("nonempty")[0]
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels[0].len()
    }

    /// Returns true if the tree has exactly one (trivial) leaf level entry.
    pub fn is_empty(&self) -> bool {
        false // construction forbids empty trees
    }

    /// Digest of the `index`-th leaf.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn leaf(&self, index: usize) -> Digest {
        self.levels[0][index]
    }

    /// Produces an inclusion proof for the `index`-th leaf, memoized per
    /// index (the internal sibling nodes never change after construction).
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn prove(&self, index: usize) -> MerkleProof {
        assert!(index < self.len(), "leaf index {index} out of bounds");
        if let Some(proof) = self.proofs.lock().expect("cache poisoned").get(&index) {
            PROOF_CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            return proof.clone();
        }
        PROOF_CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        let mut path = Vec::with_capacity(self.levels.len().saturating_sub(1));
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            let sibling = *level.get(sibling_idx).unwrap_or(&level[idx]);
            path.push(sibling);
            idx >>= 1;
        }
        let proof = MerkleProof {
            leaf_index: index as u64,
            path,
        };
        self.proofs
            .lock()
            .expect("cache poisoned")
            .insert(index, proof.clone());
        proof
    }
}

/// An inclusion proof: the sibling path from a leaf to the root.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MerkleProof {
    leaf_index: u64,
    path: Vec<Digest>,
}

impl MerkleProof {
    /// Creates a proof from raw parts (used by codecs).
    pub fn from_parts(leaf_index: u64, path: Vec<Digest>) -> Self {
        MerkleProof { leaf_index, path }
    }

    /// The index of the proven leaf.
    pub fn leaf_index(&self) -> u64 {
        self.leaf_index
    }

    /// The sibling digests, leaf level first.
    pub fn path(&self) -> &[Digest] {
        &self.path
    }

    /// Size of the proof in bytes on the wire (index + varint-length-prefixed
    /// path digests).
    pub fn encoded_len(&self) -> usize {
        8 + crate::codec::varint_len(self.path.len() as u64) + self.path.len() * 32
    }

    /// Verifies the proof for a raw leaf payload against `root`.
    pub fn verify(&self, root: &Digest, leaf_data: &[u8]) -> bool {
        self.verify_leaf_digest(root, &hash_leaf(leaf_data))
    }

    /// Verifies the proof for a pre-hashed leaf digest against `root`.
    pub fn verify_leaf_digest(&self, root: &Digest, leaf: &Digest) -> bool {
        let mut acc = *leaf;
        let mut idx = self.leaf_index;
        for sibling in &self.path {
            acc = if idx & 1 == 0 {
                hash_node(&acc, sibling)
            } else {
                hash_node(sibling, &acc)
            };
            idx >>= 1;
        }
        acc == *root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaves(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_tree() {
        let tree = MerkleTree::from_leaves([b"only"]);
        assert_eq!(tree.len(), 1);
        assert_eq!(tree.root(), hash_leaf(b"only"));
        let proof = tree.prove(0);
        assert!(proof.verify(&tree.root(), b"only"));
        assert_eq!(proof.path().len(), 0);
    }

    #[test]
    fn all_proofs_verify_various_sizes() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 16, 17, 33] {
            let ls = leaves(n);
            let tree = MerkleTree::from_leaves(ls.iter());
            for (i, l) in ls.iter().enumerate() {
                let p = tree.prove(i);
                assert!(p.verify(&tree.root(), l), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_leaf_rejected() {
        let ls = leaves(8);
        let tree = MerkleTree::from_leaves(ls.iter());
        let p = tree.prove(3);
        assert!(!p.verify(&tree.root(), b"not-the-leaf"));
    }

    #[test]
    fn wrong_index_rejected() {
        let ls = leaves(8);
        let tree = MerkleTree::from_leaves(ls.iter());
        let mut p = tree.prove(3);
        p.leaf_index = 4;
        assert!(!p.verify(&tree.root(), &ls[3]));
    }

    #[test]
    fn wrong_root_rejected() {
        let ls = leaves(8);
        let tree = MerkleTree::from_leaves(ls.iter());
        let p = tree.prove(0);
        let other = MerkleTree::from_leaves(leaves(9).iter()).root();
        assert!(!p.verify(&other, &ls[0]));
    }

    #[test]
    fn leaf_node_domain_separation() {
        // A leaf whose payload mimics an internal-node encoding must not
        // collide with that node.
        let a = hash_leaf(b"x");
        let b = hash_leaf(b"y");
        let node = hash_node(&a, &b);
        let mut forged = Vec::new();
        forged.extend_from_slice(a.as_bytes());
        forged.extend_from_slice(b.as_bytes());
        assert_ne!(hash_leaf(&forged), node);
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let ls = leaves(10);
        let base = MerkleTree::from_leaves(ls.iter()).root();
        for i in 0..10 {
            let mut modified = ls.clone();
            modified[i].push(b'!');
            assert_ne!(MerkleTree::from_leaves(modified.iter()).root(), base);
        }
    }

    #[test]
    #[should_panic(expected = "at least one leaf")]
    fn empty_tree_panics() {
        MerkleTree::from_leaves(Vec::<Vec<u8>>::new());
    }

    #[test]
    fn proof_encoded_len() {
        let tree = MerkleTree::from_leaves(leaves(16).iter());
        let p = tree.prove(5);
        assert_eq!(p.encoded_len(), 8 + 1 + 4 * 32);
    }

    #[test]
    fn batched_build_matches_scalar_reference() {
        for n in [1usize, 2, 3, 7, 8, 9, 15, 16, 17, 31, 33, 64, 100] {
            let digests: Vec<Digest> = (0..n)
                .map(|i| hash_leaf(format!("leaf-{i}").as_bytes()))
                .collect();
            let batched = MerkleTree::from_leaf_digests(digests.clone());
            let scalar = MerkleTree::from_leaf_digests_scalar(digests);
            assert_eq!(batched.levels, scalar.levels, "levels diverged at n={n}");
        }
    }

    #[test]
    fn batched_leaf_hashing_matches_scalar() {
        let ls = leaves(37);
        let refs: Vec<&[u8]> = ls.iter().map(|l| l.as_slice()).collect();
        let batched = hash_leaf_batch(&refs);
        let scalar: Vec<Digest> = ls.iter().map(|l| hash_leaf(l)).collect();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn batched_node_hashing_matches_scalar() {
        let base: Vec<Digest> = (0..21).map(|i| hash_leaf(&[i as u8])).collect();
        let pairs: Vec<(Digest, Digest)> = base.windows(2).map(|w| (w[0], w[1])).collect();
        let batched = hash_node_batch(&pairs);
        let scalar: Vec<Digest> = pairs.iter().map(|(a, b)| hash_node(a, b)).collect();
        assert_eq!(batched, scalar);
    }

    // Tests that reset or assert monotonicity of the process-wide counters
    // must not race each other (the single-threaded-entry-point contract of
    // `reset_proof_cache_stats`); they serialise on this lock.
    static COUNTER_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn reset_returns_previous_counts() {
        let _guard = COUNTER_LOCK.lock().expect("counter lock poisoned");
        let tree = MerkleTree::from_leaves(leaves(4).iter());
        tree.prove(0);
        let before = proof_cache_stats();
        let returned = reset_proof_cache_stats();
        // Other (non-counter) tests may still increment between the two
        // calls, so the swapped-out values are at least what we observed.
        assert!(returned.0 >= before.0 && returned.1 >= before.1);
        assert!(returned.1 >= 1, "the fresh proof above was a miss");
    }

    #[test]
    fn repeated_proofs_hit_the_cache() {
        let _guard = COUNTER_LOCK.lock().expect("counter lock poisoned");
        let tree = MerkleTree::from_leaves(leaves(16).iter());
        // Counters are process-wide and other tests may run concurrently,
        // so assert only monotone lower bounds attributable to this tree.
        let (h0, m0) = proof_cache_stats();
        let first = tree.prove(5);
        let (_, m1) = proof_cache_stats();
        assert!(m1 > m0, "first proof is a miss");
        let second = tree.prove(5);
        let (h2, _) = proof_cache_stats();
        assert_eq!(first, second);
        assert!(h2 > h0, "second identical proof hits");

        // Clones share the cache: the clone's first proof for 5 also hits.
        let clone = tree.clone();
        let third = clone.prove(5);
        let (h3, _) = proof_cache_stats();
        assert_eq!(first, third);
        assert!(h3 > h2);
    }
}
