//! Univariate polynomials over [`crate::field::Fp`]: evaluation and Lagrange
//! interpolation, as needed by Shamir secret sharing.
//!
//! # Examples
//!
//! ```
//! use pba_crypto::field::Fp;
//! use pba_crypto::poly::Polynomial;
//!
//! // f(x) = 3 + 2x
//! let f = Polynomial::new(vec![Fp::new(3), Fp::new(2)]);
//! assert_eq!(f.eval(Fp::new(10)), Fp::new(23));
//! ```

use crate::field::Fp;
use crate::prg::Prg;

/// A polynomial stored by coefficients, lowest degree first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Polynomial {
    coeffs: Vec<Fp>,
}

impl Polynomial {
    /// Creates a polynomial from coefficients (constant term first).
    ///
    /// Trailing zero coefficients are retained as given; degree queries use
    /// the stored length.
    pub fn new(coeffs: Vec<Fp>) -> Self {
        assert!(
            !coeffs.is_empty(),
            "polynomial needs at least one coefficient"
        );
        Polynomial { coeffs }
    }

    /// Samples a uniformly random polynomial of the given `degree` with a
    /// fixed constant term `secret` — the Shamir sharing polynomial.
    pub fn random_with_constant(secret: Fp, degree: usize, prg: &mut Prg) -> Self {
        let mut coeffs = Vec::with_capacity(degree + 1);
        coeffs.push(secret);
        for _ in 0..degree {
            coeffs.push(Fp::random(prg));
        }
        Polynomial { coeffs }
    }

    /// The coefficients, constant term first.
    pub fn coefficients(&self) -> &[Fp] {
        &self.coeffs
    }

    /// Degree bound (number of coefficients − 1).
    pub fn degree(&self) -> usize {
        self.coeffs.len() - 1
    }

    /// Evaluates the polynomial at `x` (Horner's rule).
    pub fn eval(&self, x: Fp) -> Fp {
        let mut acc = Fp::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }
}

/// Lagrange-interpolates the unique degree `< points.len()` polynomial through
/// `points` and evaluates it at `x = 0` (secret reconstruction).
///
/// # Panics
///
/// Panics if `points` is empty or contains duplicate x-coordinates.
pub fn interpolate_at_zero(points: &[(Fp, Fp)]) -> Fp {
    assert!(!points.is_empty(), "interpolation needs at least one point");
    let mut acc = Fp::ZERO;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        let mut num = Fp::ONE;
        let mut den = Fp::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            assert!(xi != xj, "duplicate x-coordinate in interpolation");
            num *= -xj; // (0 - xj)
            den *= xi - xj;
        }
        acc += yi * num * den.inverse();
    }
    acc
}

/// Lagrange-interpolates and evaluates at an arbitrary `x`.
///
/// # Panics
///
/// Panics if `points` is empty or contains duplicate x-coordinates.
pub fn interpolate_at(points: &[(Fp, Fp)], x: Fp) -> Fp {
    assert!(!points.is_empty(), "interpolation needs at least one point");
    let mut acc = Fp::ZERO;
    for (i, &(xi, yi)) in points.iter().enumerate() {
        let mut num = Fp::ONE;
        let mut den = Fp::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            assert!(xi != xj, "duplicate x-coordinate in interpolation");
            num *= x - xj;
            den *= xi - xj;
        }
        acc += yi * num * den.inverse();
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_constant_and_linear() {
        let c = Polynomial::new(vec![Fp::new(42)]);
        assert_eq!(c.eval(Fp::new(999)), Fp::new(42));
        let f = Polynomial::new(vec![Fp::new(1), Fp::new(2), Fp::new(3)]); // 1+2x+3x^2
        assert_eq!(f.eval(Fp::new(2)), Fp::new(1 + 4 + 12));
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let mut prg = Prg::from_seed_bytes(b"poly");
        for degree in 0..6 {
            let f = Polynomial::random_with_constant(Fp::new(777), degree, &mut prg);
            let points: Vec<(Fp, Fp)> = (1..=degree as u64 + 1)
                .map(|x| (Fp::new(x), f.eval(Fp::new(x))))
                .collect();
            assert_eq!(interpolate_at_zero(&points), Fp::new(777), "deg={degree}");
            // Also check an off-zero evaluation point.
            assert_eq!(interpolate_at(&points, Fp::new(100)), f.eval(Fp::new(100)));
        }
    }

    #[test]
    fn interpolation_with_extra_points_still_exact() {
        let mut prg = Prg::from_seed_bytes(b"extra");
        let f = Polynomial::random_with_constant(Fp::new(5), 3, &mut prg);
        let points: Vec<(Fp, Fp)> = (1..=7u64)
            .map(|x| (Fp::new(x), f.eval(Fp::new(x))))
            .collect();
        assert_eq!(interpolate_at_zero(&points), Fp::new(5));
    }

    #[test]
    fn too_few_points_give_wrong_secret_generically() {
        let mut prg = Prg::from_seed_bytes(b"few");
        let f = Polynomial::random_with_constant(Fp::new(123456), 4, &mut prg);
        let points: Vec<(Fp, Fp)> = (1..=4u64)
            .map(|x| (Fp::new(x), f.eval(Fp::new(x))))
            .collect();
        // Degree-4 polynomial from 4 points: interpolation yields the wrong
        // constant with overwhelming probability over the random coefficients.
        assert_ne!(interpolate_at_zero(&points), Fp::new(123456));
    }

    #[test]
    #[should_panic(expected = "duplicate x-coordinate")]
    fn duplicate_x_panics() {
        interpolate_at_zero(&[(Fp::new(1), Fp::new(2)), (Fp::new(1), Fp::new(3))]);
    }

    #[test]
    fn random_with_constant_sets_constant() {
        let mut prg = Prg::from_seed_bytes(b"const");
        let f = Polynomial::random_with_constant(Fp::new(9), 5, &mut prg);
        assert_eq!(f.eval(Fp::ZERO), Fp::new(9));
        assert_eq!(f.degree(), 5);
    }
}
