//! Committed verifiable secret sharing: Shamir shares bound to a Merkle
//! commitment, the hash-based stand-in for the Feldman/Pedersen VSS that
//! Chor–Goldwasser–Micali–Awerbuch-style coin tossing assumes.
//!
//! The dealer Shamir-shares a secret and publishes the Merkle root over
//! the *ordered* share list; each recipient gets its share together with
//! an inclusion proof. Anyone can then check that a claimed share is the
//! committed one — so during reconstruction, echoed shares are either the
//! dealer's committed values or rejected, making honest parties' views of
//! each dealer **identical** (a corrupt echoer cannot substitute values;
//! it can only withhold).
//!
//! What this does *not* prove (and Feldman does): that the committed
//! shares lie on a degree-`t` polynomial. A corrupt dealer can commit to
//! inconsistent shares — reconstruction then fails *deterministically and
//! identically* for every honest party (they decode the same committed
//! values), which is exactly the exclusion property the coin toss needs.
//!
//! # Examples
//!
//! ```
//! use pba_crypto::field::Fp;
//! use pba_crypto::prg::Prg;
//! use pba_crypto::vss::CommittedShares;
//!
//! let mut prg = Prg::from_seed_bytes(b"dealer");
//! let dealt = CommittedShares::deal(Fp::new(42), 2, 7, &mut prg);
//! let packet = dealt.packet(3);
//! assert!(packet.verify(&dealt.root(), 7));
//! assert_eq!(packet.share.value, dealt.share(3).value);
//! ```

use crate::field::Fp;
use crate::merkle::{MerkleProof, MerkleTree};
use crate::prg::Prg;
use crate::reed_solomon::{self, RsError};
use crate::sha256::Digest;
use crate::shamir::{self, Share};

fn leaf_bytes(index: u64, value: Fp) -> Vec<u8> {
    let mut buf = Vec::with_capacity(16);
    buf.extend_from_slice(&index.to_le_bytes());
    buf.extend_from_slice(&value.value().to_le_bytes());
    buf
}

/// A dealt, committed sharing: the shares plus their Merkle tree.
#[derive(Clone, Debug)]
pub struct CommittedShares {
    threshold: usize,
    shares: Vec<Share>,
    tree: MerkleTree,
}

impl CommittedShares {
    /// Deals a `(threshold, n)` committed sharing of `secret`.
    ///
    /// # Panics
    ///
    /// Panics if `threshold >= n` or `n == 0` (as in [`shamir::share`]).
    pub fn deal(secret: Fp, threshold: usize, n: usize, prg: &mut Prg) -> Self {
        let shares = shamir::share(secret, threshold, n, prg);
        let tree = MerkleTree::from_leaves(shares.iter().map(|s| leaf_bytes(s.index, s.value)));
        CommittedShares {
            threshold,
            shares,
            tree,
        }
    }

    /// The public commitment (broadcast by the dealer).
    pub fn root(&self) -> Digest {
        self.tree.root()
    }

    /// The sharing threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// The raw share for recipient `position` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    pub fn share(&self, position: usize) -> Share {
        self.shares[position]
    }

    /// The share packet (share + inclusion proof) for recipient `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position` is out of range.
    pub fn packet(&self, position: usize) -> SharePacket {
        SharePacket {
            share: self.shares[position],
            proof: self.tree.prove(position),
        }
    }
}

/// A share with its commitment proof — what travels on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SharePacket {
    /// The Shamir share (1-based evaluation index).
    pub share: Share,
    /// Inclusion proof of `(index, value)` at leaf `index − 1`.
    pub proof: MerkleProof,
}

impl SharePacket {
    /// Verifies the packet against the dealer's commitment for an
    /// `n`-recipient sharing.
    pub fn verify(&self, root: &Digest, n: usize) -> bool {
        self.share.index >= 1
            && self.share.index <= n as u64
            && self.proof.leaf_index() == self.share.index - 1
            && self
                .proof
                .verify(root, &leaf_bytes(self.share.index, self.share.value))
    }

    /// Wire size in bytes.
    pub fn encoded_len(&self) -> usize {
        16 + self.proof.encoded_len()
    }
}

/// Errors from committed reconstruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VssError {
    /// Fewer than `threshold + 1` committed shares verified.
    NotEnoughShares {
        /// Verified shares available.
        have: usize,
        /// Required shares.
        need: usize,
    },
    /// The committed shares are inconsistent (corrupt dealer): they do not
    /// lie on a single degree-`threshold` polynomial.
    InconsistentDealer,
}

impl std::fmt::Display for VssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VssError::NotEnoughShares { have, need } => {
                write!(f, "only {have} verified shares, need {need}")
            }
            VssError::InconsistentDealer => f.write_str("dealer committed inconsistent shares"),
        }
    }
}

impl std::error::Error for VssError {}

/// Reconstructs a committed sharing from verified packets.
///
/// `packets` are first filtered against `root`; the survivors are decoded
/// *without* error correction (committed shares cannot be substituted —
/// only withheld) and checked for global consistency, so every honest
/// party reconstructs the same secret or rejects the same dealer.
///
/// # Errors
///
/// [`VssError::NotEnoughShares`] / [`VssError::InconsistentDealer`].
pub fn reconstruct_committed(
    root: &Digest,
    threshold: usize,
    n: usize,
    packets: &[SharePacket],
) -> Result<Fp, VssError> {
    let mut verified: Vec<Share> = Vec::new();
    let mut seen = std::collections::BTreeSet::new();
    for p in packets {
        if p.verify(root, n) && seen.insert(p.share.index) {
            verified.push(p.share);
        }
    }
    let need = threshold + 1;
    if verified.len() < need {
        return Err(VssError::NotEnoughShares {
            have: verified.len(),
            need,
        });
    }
    let points: Vec<(Fp, Fp)> = verified
        .iter()
        .map(|s| (Fp::new(s.index), s.value))
        .collect();
    // No error budget: verified shares are the committed ones. Decoding
    // with e = 0 both interpolates and checks consistency.
    match reed_solomon::decode(&points, need, 0) {
        Ok(poly) => Ok(poly.eval(Fp::ZERO)),
        Err(RsError::TooManyErrors) => Err(VssError::InconsistentDealer),
        Err(_) => Err(VssError::InconsistentDealer),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deal(secret: u64, t: usize, n: usize) -> CommittedShares {
        let mut prg = Prg::from_seed_bytes(b"vss-test");
        CommittedShares::deal(Fp::new(secret), t, n, &mut prg)
    }

    #[test]
    fn packets_verify_and_reconstruct() {
        let dealt = deal(777, 2, 7);
        let packets: Vec<SharePacket> = (0..7).map(|i| dealt.packet(i)).collect();
        for p in &packets {
            assert!(p.verify(&dealt.root(), 7));
        }
        let secret = reconstruct_committed(&dealt.root(), 2, 7, &packets).unwrap();
        assert_eq!(secret, Fp::new(777));
    }

    #[test]
    fn reconstruct_from_exactly_threshold_plus_one() {
        let dealt = deal(5, 3, 10);
        let packets: Vec<SharePacket> = (0..4).map(|i| dealt.packet(i)).collect();
        assert_eq!(
            reconstruct_committed(&dealt.root(), 3, 10, &packets).unwrap(),
            Fp::new(5)
        );
    }

    #[test]
    fn substituted_share_rejected_by_commitment() {
        let dealt = deal(5, 2, 7);
        let mut bad = dealt.packet(0);
        bad.share.value = Fp::new(999);
        assert!(!bad.verify(&dealt.root(), 7));
        // Reconstruction ignores it; with only 2 other packets we are short.
        let packets = vec![bad, dealt.packet(1), dealt.packet(2)];
        assert_eq!(
            reconstruct_committed(&dealt.root(), 2, 7, &packets),
            Err(VssError::NotEnoughShares { have: 2, need: 3 })
        );
    }

    #[test]
    fn cross_dealer_packets_rejected() {
        let a = deal(1, 2, 7);
        let mut prg = Prg::from_seed_bytes(b"other-dealer");
        let b = CommittedShares::deal(Fp::new(2), 2, 7, &mut prg);
        assert!(!b.packet(0).verify(&a.root(), 7));
    }

    #[test]
    fn wrong_position_rejected() {
        let dealt = deal(5, 2, 7);
        let mut p = dealt.packet(3);
        p.share.index = 5; // claims a different evaluation point
        assert!(!p.verify(&dealt.root(), 7));
    }

    #[test]
    fn inconsistent_dealer_detected_identically() {
        // A corrupt dealer commits to shares NOT on a degree-t polynomial:
        // every honest party must reject it, and reject it the same way.
        let mut prg = Prg::from_seed_bytes(b"bad-dealer");
        let mut shares = shamir::share(Fp::new(9), 2, 7, &mut prg);
        shares[6].value = Fp::new(123456); // breaks consistency
        let tree = MerkleTree::from_leaves(shares.iter().map(|s| leaf_bytes(s.index, s.value)));
        let packets: Vec<SharePacket> = (0..7)
            .map(|i| SharePacket {
                share: shares[i],
                proof: tree.prove(i),
            })
            .collect();
        // All packets verify (the dealer committed to them)...
        for p in &packets {
            assert!(p.verify(&tree.root(), 7));
        }
        // ...but reconstruction flags the dealer.
        assert_eq!(
            reconstruct_committed(&tree.root(), 2, 7, &packets),
            Err(VssError::InconsistentDealer)
        );
        // Any honest subset containing the bad point agrees on the verdict;
        // subsets avoiding it reconstruct the committed polynomial — which
        // is fine: those parties hold a consistent view of the commitment.
        let subset: Vec<SharePacket> = packets[..4].to_vec();
        assert_eq!(
            reconstruct_committed(&tree.root(), 2, 7, &subset).unwrap(),
            Fp::new(9)
        );
    }

    #[test]
    fn duplicate_packets_counted_once() {
        let dealt = deal(5, 2, 7);
        let p = dealt.packet(0);
        let packets = vec![p.clone(), p.clone(), p];
        assert_eq!(
            reconstruct_committed(&dealt.root(), 2, 7, &packets),
            Err(VssError::NotEnoughShares { have: 1, need: 3 })
        );
    }

    #[test]
    fn packet_size_is_logarithmic() {
        let small = deal(1, 2, 8).packet(0).encoded_len();
        let large = deal(1, 2, 64).packet(0).encoded_len();
        // 8x the recipients adds 3 Merkle levels = 96 bytes.
        assert_eq!(large - small, 96);
    }
}
