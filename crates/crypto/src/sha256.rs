//! A from-scratch implementation of SHA-256 (FIPS 180-4).
//!
//! This is the collision-resistant hash underlying every other primitive in
//! the workspace: HMAC, the PRF/PRG, Merkle trees, Lamport/Merkle signatures,
//! and commitments. It supports incremental (streaming) hashing through
//! [`Sha256`] and one-shot hashing through [`Sha256::digest`].
//!
//! # Examples
//!
//! ```
//! use pba_crypto::sha256::Sha256;
//!
//! let d = Sha256::digest(b"abc");
//! assert_eq!(
//!     d.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
//! );
//! ```

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of bytes in a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

/// SHA-256 block size in bytes.
pub const BLOCK_LEN: usize = 64;

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A 32-byte SHA-256 digest.
///
/// Digests are the universal "value" type of the crate: Merkle roots, PRF
/// keys, commitments and node identifiers are all `Digest`s.
///
/// # Examples
///
/// ```
/// use pba_crypto::sha256::{Digest, Sha256};
///
/// let d: Digest = Sha256::digest(b"hello");
/// assert_eq!(d.as_bytes().len(), 32);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// The all-zero digest; used as a sentinel for "empty".
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Creates a digest from raw bytes.
    pub const fn new(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }

    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the digest, returning the underlying array.
    pub fn into_bytes(self) -> [u8; DIGEST_LEN] {
        self.0
    }

    /// Lowercase hexadecimal rendering of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a digest from a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns `None` if the string is not exactly 64 hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != DIGEST_LEN * 2 || !s.is_ascii() {
            return None;
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// Interprets the first 8 bytes as a big-endian `u64`.
    ///
    /// Handy for deriving pseudorandom integers from digests.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has >= 8 bytes"))
    }

    /// XOR of two digests, byte-wise.
    pub fn xor(&self, other: &Digest) -> Digest {
        let mut out = [0u8; DIGEST_LEN];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&other.0)) {
            *o = a ^ b;
        }
        Digest(out)
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }
}

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use pba_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), Sha256::digest(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sha256")
            .field("total_len", &self.total_len)
            .finish_non_exhaustive()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// One-shot convenience: hash `data` and return the digest.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Feeds more data into the hasher.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            let block: [u8; BLOCK_LEN] = data[..BLOCK_LEN].try_into().expect("checked length");
            self.compress(&block);
            data = &data[BLOCK_LEN..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Completes the hash and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        let mut pad = [0u8; BLOCK_LEN * 2];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        // Bypass total_len bookkeeping; it is already final.
        let mut remaining = &pad[..pad_len + 8];
        if self.buf_len > 0 {
            let take = BLOCK_LEN - self.buf_len;
            self.buf[self.buf_len..].copy_from_slice(&remaining[..take]);
            let block = self.buf;
            self.compress(&block);
            remaining = &remaining[take..];
        }
        while remaining.len() >= BLOCK_LEN {
            let block: [u8; BLOCK_LEN] = remaining[..BLOCK_LEN].try_into().expect("checked");
            self.compress(&block);
            remaining = &remaining[BLOCK_LEN..];
        }
        debug_assert!(remaining.is_empty());
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

// ---------------------------------------------------------------------------
// Multi-lane batched engine
// ---------------------------------------------------------------------------

/// Number of independent messages the batched engine compresses per pass.
///
/// Eight `u32` lanes advanced in lockstep fill one 256-bit vector register
/// per working variable, so the compiler can turn every round statement into
/// a single SIMD instruction (two on 128-bit-only targets). The value is a
/// tuning constant, not a correctness parameter: every batch API accepts any
/// input count and falls back to the scalar reference core for ragged tails.
pub const LANES: usize = 8;

/// Digests the batch APIs produced through the 8-lane vector core
/// (process-wide, monotone; see [`engine_stats`]).
static LANE_DIGESTS: AtomicU64 = AtomicU64::new(0);
/// Digests the batch APIs handed to the scalar fallback (ragged run tails
/// and sub-[`LANES`] batches).
static SCALAR_DIGESTS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the batch engine's dispatch counters: how many digests the
/// batch APIs computed on the 8-lane vector core versus the scalar fallback.
///
/// Counters are process-wide and monotone (`Relaxed` atomics — the same
/// idiom as the Merkle/cert cache counters), so concurrent hashing from
/// worker threads is counted without synchronization. Measure a workload by
/// diffing two snapshots with [`EngineStats::since`]; *lane occupancy*
/// (the fraction of batched digests that took the vector path) is the
/// figure the cross-party batching layer exists to raise.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Digests computed by the 8-lane core (counted in groups of [`LANES`]).
    pub lane_digests: u64,
    /// Digests computed by the scalar reference core inside a batch call.
    pub scalar_digests: u64,
}

impl EngineStats {
    /// Total digests the batch APIs produced.
    pub fn total(&self) -> u64 {
        self.lane_digests + self.scalar_digests
    }

    /// Fraction of batched digests that took the lane path (0.0 when no
    /// batched digests were produced).
    pub fn occupancy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.lane_digests as f64 / total as f64
        }
    }

    /// Counter deltas relative to an `earlier` snapshot.
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        EngineStats {
            lane_digests: self.lane_digests - earlier.lane_digests,
            scalar_digests: self.scalar_digests - earlier.scalar_digests,
        }
    }
}

/// Current process-wide batch-engine dispatch counters.
pub fn engine_stats() -> EngineStats {
    EngineStats {
        lane_digests: LANE_DIGESTS.load(Ordering::Relaxed),
        scalar_digests: SCALAR_DIGESTS.load(Ordering::Relaxed),
    }
}

/// A message presented to the lane engine as up to three concatenated
/// segments (`prefix ‖ a ‖ b`), viewed through its FIPS 180-4 padding.
///
/// Keeping segments separate lets callers batch domain-prefixed hashes
/// (Merkle leaves/nodes, PRG counter blocks) without concatenating into
/// per-message buffers first.
#[derive(Clone, Copy)]
struct View<'a> {
    segs: [&'a [u8]; 3],
}

impl<'a> View<'a> {
    fn new(segs: [&'a [u8]; 3]) -> Self {
        View { segs }
    }

    /// Total message length in bytes (before padding).
    fn len(&self) -> usize {
        self.segs.iter().map(|s| s.len()).sum()
    }

    /// Number of 64-byte blocks in the padded message.
    fn nblocks(&self) -> usize {
        (self.len() + 9).div_ceil(BLOCK_LEN)
    }

    /// Materializes the `b`-th padded block (data, then `0x80`, zeros, and —
    /// in the final block — the big-endian bit length).
    fn fill_block(&self, b: usize, out: &mut [u8; BLOCK_LEN]) {
        out.fill(0);
        let start = b * BLOCK_LEN;
        let mut off = 0;
        for seg in self.segs {
            let lo = start.max(off);
            let hi = (start + BLOCK_LEN).min(off + seg.len());
            if lo < hi {
                out[lo - start..hi - start].copy_from_slice(&seg[lo - off..hi - off]);
            }
            off += seg.len();
        }
        if (start..start + BLOCK_LEN).contains(&off) {
            out[off - start] = 0x80;
        }
        if b + 1 == self.nblocks() {
            let bits = (off as u64).wrapping_mul(8);
            out[BLOCK_LEN - 8..].copy_from_slice(&bits.to_be_bytes());
        }
    }

    /// Scalar reference digest of the viewed message (streaming core).
    fn scalar_digest(&self) -> Digest {
        let mut h = Sha256::new();
        for seg in self.segs {
            h.update(seg);
        }
        h.finalize()
    }
}

/// Compresses one block into each of the `LANES` states, in lockstep.
///
/// The structure-of-arrays layout (`state[var][lane]`, `w[round][lane]`)
/// keeps every statement an elementwise loop over the lane dimension, which
/// is exactly the shape LLVM's loop vectorizer turns into packed `u32`
/// arithmetic. No `unsafe`, no explicit intrinsics: the scalar semantics of
/// each lane are literally those of the streaming core's compress loop, so
/// batched output is bit-identical to the scalar path by construction.
fn compress_lanes(state: &mut [[u32; LANES]; 8], blocks: &[[u8; BLOCK_LEN]; LANES]) {
    let mut w = [[0u32; LANES]; 64];
    for t in 0..16 {
        for l in 0..LANES {
            w[t][l] = u32::from_be_bytes([
                blocks[l][t * 4],
                blocks[l][t * 4 + 1],
                blocks[l][t * 4 + 2],
                blocks[l][t * 4 + 3],
            ]);
        }
    }
    for i in 16..64 {
        let (w15, w2, w16, w7) = (w[i - 15], w[i - 2], w[i - 16], w[i - 7]);
        let wi = &mut w[i];
        for l in 0..LANES {
            let s0 = w15[l].rotate_right(7) ^ w15[l].rotate_right(18) ^ (w15[l] >> 3);
            let s1 = w2[l].rotate_right(17) ^ w2[l].rotate_right(19) ^ (w2[l] >> 10);
            wi[l] = w16[l].wrapping_add(s0).wrapping_add(w7[l]).wrapping_add(s1);
        }
    }
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let mut t1 = [0u32; LANES];
        let mut t2 = [0u32; LANES];
        for l in 0..LANES {
            let s1 = e[l].rotate_right(6) ^ e[l].rotate_right(11) ^ e[l].rotate_right(25);
            let ch = (e[l] & f[l]) ^ (!e[l] & g[l]);
            t1[l] = h[l]
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i][l]);
            let s0 = a[l].rotate_right(2) ^ a[l].rotate_right(13) ^ a[l].rotate_right(22);
            let maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
            t2[l] = s0.wrapping_add(maj);
        }
        h = g;
        g = f;
        f = e;
        for l in 0..LANES {
            e[l] = d[l].wrapping_add(t1[l]);
        }
        d = c;
        c = b;
        b = a;
        for l in 0..LANES {
            a[l] = t1[l].wrapping_add(t2[l]);
        }
    }
    let upd = [a, b, c, d, e, f, g, h];
    for k in 0..8 {
        for l in 0..LANES {
            state[k][l] = state[k][l].wrapping_add(upd[k][l]);
        }
    }
}

/// Runs `LANES` equal-block-count views through the lane core, scattering
/// the digests to `out[indices[l]]`.
fn digest_lane_group(views: &[View<'_>; LANES], indices: &[usize; LANES], out: &mut [Digest]) {
    LANE_DIGESTS.fetch_add(LANES as u64, Ordering::Relaxed);
    let nblocks = views[0].nblocks();
    debug_assert!(views.iter().all(|v| v.nblocks() == nblocks));
    let mut state = [[0u32; LANES]; 8];
    for k in 0..8 {
        state[k] = [H0[k]; LANES];
    }
    let mut blocks = [[0u8; BLOCK_LEN]; LANES];
    for b in 0..nblocks {
        for l in 0..LANES {
            views[l].fill_block(b, &mut blocks[l]);
        }
        compress_lanes(&mut state, &blocks);
    }
    for l in 0..LANES {
        let mut bytes = [0u8; DIGEST_LEN];
        for k in 0..8 {
            bytes[k * 4..k * 4 + 4].copy_from_slice(&state[k][l].to_be_bytes());
        }
        out[indices[l]] = Digest(bytes);
    }
}

/// Digests a batch of views, preserving input order in the output.
///
/// Views are grouped by padded block count (lockstep lanes must compress
/// the same number of blocks); full groups of [`LANES`] run through the
/// vector core, every leftover runs through the scalar reference core —
/// so ragged batches are handled without dummy-lane waste and the result
/// is bit-identical to per-input [`Sha256::digest`] in all cases.
fn batch_views(views: &[View<'_>]) -> Vec<Digest> {
    let mut out = Vec::new();
    batch_views_into(views, &mut out);
    out
}

/// [`batch_views`] writing into a caller-supplied buffer (cleared first;
/// capacity is reused across rounds on the hot path).
fn batch_views_into(views: &[View<'_>], out: &mut Vec<Digest>) {
    out.clear();
    out.resize(views.len(), Digest::ZERO);
    if views.len() < LANES {
        SCALAR_DIGESTS.fetch_add(views.len() as u64, Ordering::Relaxed);
        for (o, v) in out.iter_mut().zip(views) {
            *o = v.scalar_digest();
        }
        return;
    }
    let mut order: Vec<usize> = (0..views.len()).collect();
    order.sort_by_key(|&i| views[i].nblocks());
    let mut run_start = 0;
    while run_start < order.len() {
        let nb = views[order[run_start]].nblocks();
        let mut run_end = run_start + 1;
        while run_end < order.len() && views[order[run_end]].nblocks() == nb {
            run_end += 1;
        }
        let run = &order[run_start..run_end];
        let mut chunks = run.chunks_exact(LANES);
        for chunk in &mut chunks {
            let indices: [usize; LANES] = chunk.try_into().expect("exact chunk");
            let group: [View<'_>; LANES] = std::array::from_fn(|l| views[indices[l]]);
            digest_lane_group(&group, &indices, out);
        }
        let tail = chunks.remainder();
        SCALAR_DIGESTS.fetch_add(tail.len() as u64, Ordering::Relaxed);
        for &i in tail {
            out[i] = views[i].scalar_digest();
        }
        run_start = run_end;
    }
}

/// Hashes many independent inputs through the multi-lane engine.
///
/// Output `i` is bit-identical to `Sha256::digest(inputs[i])` for every
/// batch shape — empty inputs, padding-boundary lengths, and batches
/// smaller than [`LANES`] included (those take the scalar reference path).
///
/// # Examples
///
/// ```
/// use pba_crypto::sha256::{batch_digest, Sha256};
///
/// let inputs: Vec<&[u8]> = vec![b"a", b"bc", b""];
/// let digests = batch_digest(&inputs);
/// assert_eq!(digests[1], Sha256::digest(b"bc"));
/// ```
pub fn batch_digest(inputs: &[&[u8]]) -> Vec<Digest> {
    let views: Vec<View<'_>> = inputs.iter().map(|i| View::new([i, &[], &[]])).collect();
    batch_views(&views)
}

/// [`batch_digest`] writing into a caller-supplied scratch buffer.
///
/// `out` is cleared and refilled; its capacity survives across calls, so a
/// machine hashing every round reuses one allocation for the whole phase
/// instead of paying a fresh `Vec<Digest>` per round. Contents are
/// bit-identical to [`batch_digest`].
///
/// # Examples
///
/// ```
/// use pba_crypto::sha256::{batch_digest, batch_digest_into};
///
/// let inputs: Vec<&[u8]> = vec![b"a", b"bc"];
/// let mut scratch = Vec::new();
/// batch_digest_into(&inputs, &mut scratch);
/// assert_eq!(scratch, batch_digest(&inputs));
/// ```
pub fn batch_digest_into(inputs: &[&[u8]], out: &mut Vec<Digest>) {
    let views: Vec<View<'_>> = inputs.iter().map(|i| View::new([i, &[], &[]])).collect();
    batch_views_into(&views, out);
}

/// Hashes `prefix ‖ input` for each input, batched. Used for domain-prefixed
/// hashing (Merkle leaves, PRG counter blocks) without concatenating into
/// per-message buffers.
///
/// Output `i` equals `Sha256::digest(prefix ‖ inputs[i])`.
pub fn batch_digest_prefixed(prefix: &[u8], inputs: &[&[u8]]) -> Vec<Digest> {
    let views: Vec<View<'_>> = inputs.iter().map(|i| View::new([prefix, i, &[]])).collect();
    batch_views(&views)
}

/// The fixed-input fast path: digests of `prefix ‖ a ‖ b` for digest pairs —
/// the 65-byte Merkle-node shape. Every message is exactly two padded blocks
/// with a precomputed padding schedule (the second block carries one data
/// byte, the `0x80` marker, and the constant 520-bit length), so no
/// streaming buffer or per-message length bookkeeping is involved.
///
/// Output `i` equals `Sha256::digest([prefix] ‖ pairs[i].0 ‖ pairs[i].1)`.
pub fn batch_digest_pairs(prefix: u8, pairs: &[(Digest, Digest)]) -> Vec<Digest> {
    let mut out = vec![Digest::ZERO; pairs.len()];
    let scalar_pair = |(a, b): &(Digest, Digest)| {
        let mut h = Sha256::new();
        h.update(&[prefix]);
        h.update(a.as_bytes());
        h.update(b.as_bytes());
        h.finalize()
    };
    let mut chunks = pairs.chunks_exact(LANES);
    let mut base = 0;
    for chunk in &mut chunks {
        LANE_DIGESTS.fetch_add(LANES as u64, Ordering::Relaxed);
        let mut state = [[0u32; LANES]; 8];
        for k in 0..8 {
            state[k] = [H0[k]; LANES];
        }
        // Block 0: prefix byte, the full left digest, 31 bytes of the right.
        let mut blocks = [[0u8; BLOCK_LEN]; LANES];
        for (l, (a, b)) in chunk.iter().enumerate() {
            blocks[l][0] = prefix;
            blocks[l][1..33].copy_from_slice(a.as_bytes());
            blocks[l][33..64].copy_from_slice(&b.as_bytes()[..31]);
        }
        compress_lanes(&mut state, &blocks);
        // Block 1: last right byte, 0x80, zeros, 520-bit length. Constant
        // except for the first byte.
        let mut pad = [0u8; BLOCK_LEN];
        pad[1] = 0x80;
        pad[BLOCK_LEN - 8..].copy_from_slice(&(65u64 * 8).to_be_bytes());
        let mut blocks = [pad; LANES];
        for (l, (_, b)) in chunk.iter().enumerate() {
            blocks[l][0] = b.as_bytes()[31];
        }
        compress_lanes(&mut state, &blocks);
        for l in 0..LANES {
            let mut bytes = [0u8; DIGEST_LEN];
            for k in 0..8 {
                bytes[k * 4..k * 4 + 4].copy_from_slice(&state[k][l].to_be_bytes());
            }
            out[base + l] = Digest(bytes);
        }
        base += LANES;
    }
    let tail = chunks.remainder();
    SCALAR_DIGESTS.fetch_add(tail.len() as u64, Ordering::Relaxed);
    for (o, pair) in out[base..].iter_mut().zip(tail) {
        *o = scalar_pair(pair);
    }
    out
}

// ---------------------------------------------------------------------------
// Cross-party batch grouping
// ---------------------------------------------------------------------------

/// Pools the hash manifests of many independent producers (the parties of
/// one scheduler chunk) into a single batch, so ragged per-party remainders
/// fill full [`LANES`]-wide groups instead of each falling back to the
/// scalar core.
///
/// Usage is two-phase: [`DigestBatcher::enqueue`] each producer's declared
/// inputs (recording a [`BatchJob`] handle per producer), [`DigestBatcher::
/// flush`] once over the pooled set, then hand each producer a
/// [`PrefetchedDigests`] view of its own slice via [`DigestBatcher::job`].
/// A view *serves* digest requests by matching the requested inputs
/// byte-for-byte against the declared manifest in order — a served digest is
/// therefore bit-identical to computing it on the spot, and any mismatch
/// (a producer hashing something it did not declare) simply falls back to
/// on-demand computation at the call site.
///
/// # Examples
///
/// ```
/// use pba_crypto::sha256::{DigestBatcher, Sha256};
///
/// let mut batcher = DigestBatcher::new();
/// let job = batcher
///     .enqueue(vec![b"a".to_vec(), b"bc".to_vec()])
///     .expect("non-empty manifest");
/// batcher.flush();
/// let view = batcher.job(&job);
/// let served = view.serve(&[b"a", b"bc"]).expect("declared in order");
/// assert_eq!(served[1], Sha256::digest(b"bc"));
/// ```
#[derive(Debug, Default)]
pub struct DigestBatcher {
    inputs: Vec<Vec<u8>>,
    digests: Vec<Digest>,
    flushed: bool,
}

/// Handle to one producer's contiguous slice of a [`DigestBatcher`] pool.
#[derive(Clone, Copy, Debug)]
pub struct BatchJob {
    start: usize,
    end: usize,
}

impl DigestBatcher {
    /// An empty batcher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears queued inputs and digests, keeping allocated capacity — one
    /// batcher per worker is reused across every chunk of a phase.
    pub fn reset(&mut self) {
        self.inputs.clear();
        self.digests.clear();
        self.flushed = false;
    }

    /// Queues one producer's declared hash inputs, returning its job handle
    /// (`None` for an empty manifest).
    ///
    /// # Panics
    ///
    /// Panics if called after [`DigestBatcher::flush`] without an
    /// intervening [`DigestBatcher::reset`].
    pub fn enqueue(&mut self, manifest: Vec<Vec<u8>>) -> Option<BatchJob> {
        assert!(!self.flushed, "enqueue after flush; call reset first");
        if manifest.is_empty() {
            return None;
        }
        let start = self.inputs.len();
        self.inputs.extend(manifest);
        Some(BatchJob {
            start,
            end: self.inputs.len(),
        })
    }

    /// Digests the entire pooled set in one multi-lane batch. Grouping by
    /// block count happens across *all* queued producers, which is the
    /// whole point: eight parties with five ragged leftovers each become
    /// five full lane groups.
    pub fn flush(&mut self) {
        let refs: Vec<&[u8]> = self.inputs.iter().map(|i| i.as_slice()).collect();
        batch_digest_into(&refs, &mut self.digests);
        self.flushed = true;
    }

    /// Number of pooled inputs.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// True when no inputs are queued.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// The prefetched view for one producer's job.
    ///
    /// # Panics
    ///
    /// Panics if the pool was not flushed.
    pub fn job(&self, job: &BatchJob) -> PrefetchedDigests<'_> {
        assert!(self.flushed, "job view requested before flush");
        PrefetchedDigests {
            inputs: &self.inputs[job.start..job.end],
            digests: &self.digests[job.start..job.end],
            cursor: Cell::new(0),
        }
    }
}

/// One producer's slice of a flushed [`DigestBatcher`] pool: declared
/// inputs and their digests, consumed in declaration order.
#[derive(Debug)]
pub struct PrefetchedDigests<'a> {
    inputs: &'a [Vec<u8>],
    digests: &'a [Digest],
    cursor: Cell<usize>,
}

impl PrefetchedDigests<'_> {
    /// Serves a digest request against the prefetched sequence: if the next
    /// `requested.len()` declared inputs match the request byte-for-byte,
    /// returns their digests and advances the cursor; otherwise returns
    /// `None` and leaves the cursor untouched, so the caller computes
    /// on demand (and later declared inputs can still be served).
    pub fn serve(&self, requested: &[&[u8]]) -> Option<&[Digest]> {
        let start = self.cursor.get();
        let end = start.checked_add(requested.len())?;
        if end > self.inputs.len() {
            return None;
        }
        let declared = &self.inputs[start..end];
        if declared
            .iter()
            .zip(requested)
            .all(|(have, want)| have.as_slice() == *want)
        {
            self.cursor.set(end);
            Some(&self.digests[start..end])
        } else {
            None
        }
    }

    /// Declared inputs not yet consumed.
    pub fn remaining(&self) -> usize {
        self.inputs.len() - self.cursor.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST FIPS 180-4 / standard test vectors.
    const VECTORS: &[(&[u8], &str)] = &[
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
    ];

    #[test]
    fn nist_vectors() {
        for (input, expected) in VECTORS {
            assert_eq!(Sha256::digest(input).to_hex(), *expected);
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot_at_block_boundaries() {
        let data: Vec<u8> = (0..257u32).map(|i| i as u8).collect();
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 200, 256, 257] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split={split}");
        }
    }

    #[test]
    fn three_way_split_incremental() {
        let data = vec![0xabu8; 300];
        let mut h = Sha256::new();
        h.update(&data[..10]);
        h.update(&data[10..150]);
        h.update(&data[150..]);
        assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn digest_hex_roundtrip() {
        let d = Sha256::digest(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"0".repeat(63)), None);
    }

    #[test]
    fn digest_xor_properties() {
        let a = Sha256::digest(b"a");
        let b = Sha256::digest(b"b");
        assert_eq!(a.xor(&b), b.xor(&a));
        assert_eq!(a.xor(&a), Digest::ZERO);
        assert_eq!(a.xor(&Digest::ZERO), a);
    }

    #[test]
    fn prefix_u64_is_big_endian() {
        let mut bytes = [0u8; 32];
        bytes[7] = 1;
        assert_eq!(Digest(bytes).prefix_u64(), 1);
        bytes[0] = 1;
        assert_eq!(Digest(bytes).prefix_u64(), (1u64 << 56) | 1);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Smoke test, not a collision search.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u32 {
            assert!(seen.insert(Sha256::digest(&i.to_le_bytes())));
        }
    }

    #[test]
    fn batch_digest_matches_scalar_on_uniform_batches() {
        for len in [0usize, 1, 31, 32, 55, 56, 63, 64, 65, 127, 128, 300] {
            let msgs: Vec<Vec<u8>> = (0..2 * LANES + 3)
                .map(|i| (0..len).map(|j| (i * 31 + j) as u8).collect())
                .collect();
            let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
            let batched = batch_digest(&refs);
            for (i, m) in msgs.iter().enumerate() {
                assert_eq!(batched[i], Sha256::digest(m), "len={len} i={i}");
            }
        }
    }

    #[test]
    fn batch_digest_matches_scalar_on_ragged_batches() {
        // Lengths straddling every padding boundary, shuffled together so
        // the engine has to group by block count and scalar-fallback tails.
        let lens = [
            0usize, 55, 56, 63, 64, 65, 119, 120, 128, 7, 200, 55, 64, 1, 2, 3, 65,
        ];
        let msgs: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| (0..len).map(|j| (i * 17 + j * 3) as u8).collect())
            .collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let batched = batch_digest(&refs);
        for (i, m) in msgs.iter().enumerate() {
            assert_eq!(batched[i], Sha256::digest(m), "i={i}");
        }
    }

    #[test]
    fn batch_smaller_than_lane_width_uses_scalar_reference() {
        for count in 0..LANES {
            let msgs: Vec<Vec<u8>> = (0..count).map(|i| vec![i as u8; i * 13]).collect();
            let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
            let batched = batch_digest(&refs);
            assert_eq!(batched.len(), count);
            for (i, m) in msgs.iter().enumerate() {
                assert_eq!(batched[i], Sha256::digest(m));
            }
        }
    }

    #[test]
    fn batch_digest_prefixed_matches_concatenation() {
        let prefix = [0x42u8, 0x99];
        let msgs: Vec<Vec<u8>> = (0..LANES + 2).map(|i| vec![i as u8; 5 + i * 9]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let batched = batch_digest_prefixed(&prefix, &refs);
        for (i, m) in msgs.iter().enumerate() {
            let mut concat = prefix.to_vec();
            concat.extend_from_slice(m);
            assert_eq!(batched[i], Sha256::digest(&concat), "i={i}");
        }
    }

    #[test]
    fn batch_digest_into_matches_and_reuses_capacity() {
        let msgs: Vec<Vec<u8>> = (0..2 * LANES + 3).map(|i| vec![i as u8; i * 7]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let mut scratch = Vec::new();
        batch_digest_into(&refs, &mut scratch);
        assert_eq!(scratch, batch_digest(&refs));
        let cap = scratch.capacity();
        let ptr = scratch.as_ptr();
        batch_digest_into(&refs[..LANES], &mut scratch);
        assert_eq!(scratch, batch_digest(&refs[..LANES]));
        assert_eq!(scratch.capacity(), cap, "no reallocation on smaller batch");
        assert_eq!(scratch.as_ptr(), ptr, "buffer reused in place");
    }

    #[test]
    fn engine_stats_count_lane_and_scalar_dispatch() {
        // Counters are process-wide and monotone; concurrent tests can only
        // add, so assert lower bounds on the deltas.
        let msgs: Vec<Vec<u8>> = (0..LANES + 3).map(|i| vec![i as u8; 20]).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let before = engine_stats();
        let _ = batch_digest(&refs);
        let delta = engine_stats().since(&before);
        assert!(delta.lane_digests >= LANES as u64, "{delta:?}");
        assert!(delta.scalar_digests >= 3, "{delta:?}");
        assert!(delta.occupancy() > 0.0 && delta.occupancy() < 1.0);
        assert_eq!(EngineStats::default().occupancy(), 0.0);
    }

    #[test]
    fn digest_batcher_serves_declared_inputs_bit_identically() {
        let mut batcher = DigestBatcher::new();
        // Three producers with ragged manifests (5 each: all-scalar alone).
        let manifests: Vec<Vec<Vec<u8>>> = (0..3u8)
            .map(|p| (0..5u8).map(|i| vec![p * 16 + i; 20]).collect())
            .collect();
        let jobs: Vec<BatchJob> = manifests
            .iter()
            .map(|m| batcher.enqueue(m.clone()).expect("non-empty"))
            .collect();
        assert_eq!(batcher.len(), 15);
        batcher.flush();
        for (manifest, job) in manifests.iter().zip(&jobs) {
            let view = batcher.job(job);
            // Split the request: two served calls walk the same sequence.
            let first: Vec<&[u8]> = manifest[..2].iter().map(|m| m.as_slice()).collect();
            let rest: Vec<&[u8]> = manifest[2..].iter().map(|m| m.as_slice()).collect();
            let d1 = view.serve(&first).expect("prefix declared").to_vec();
            let d2 = view.serve(&rest).expect("suffix declared").to_vec();
            for (d, m) in d1.iter().chain(&d2).zip(manifest) {
                assert_eq!(*d, Sha256::digest(m));
            }
            assert_eq!(view.remaining(), 0);
        }
        // Reset keeps the batcher reusable.
        batcher.reset();
        assert!(batcher.is_empty());
    }

    #[test]
    fn digest_batcher_mismatch_falls_back_without_advancing() {
        let mut batcher = DigestBatcher::new();
        let declared = vec![b"alpha".to_vec(), b"beta".to_vec()];
        let job = batcher.enqueue(declared).expect("non-empty");
        batcher.flush();
        let view = batcher.job(&job);
        // Undeclared request: not served, cursor untouched.
        assert!(view.serve(&[b"gamma"]).is_none());
        assert_eq!(view.remaining(), 2);
        // Over-long request: not served.
        assert!(view.serve(&[b"alpha", b"beta", b"gamma"]).is_none());
        // The declared sequence still serves afterwards.
        let served = view.serve(&[b"alpha", b"beta"]).expect("still available");
        assert_eq!(served[0], Sha256::digest(b"alpha"));
        // Exhausted: nothing further.
        assert!(view.serve(&[b"alpha"]).is_none());
    }

    #[test]
    fn batch_digest_pairs_matches_streaming() {
        let pairs: Vec<(Digest, Digest)> = (0..2 * LANES + 5)
            .map(|i| {
                (
                    Sha256::digest(&(i as u64).to_le_bytes()),
                    Sha256::digest(&(i as u64 + 1000).to_le_bytes()),
                )
            })
            .collect();
        for prefix in [0x00u8, 0x01, 0xff] {
            let batched = batch_digest_pairs(prefix, &pairs);
            for (i, (a, b)) in pairs.iter().enumerate() {
                let mut h = Sha256::new();
                h.update(&[prefix]);
                h.update(a.as_bytes());
                h.update(b.as_bytes());
                assert_eq!(batched[i], h.finalize(), "prefix={prefix} i={i}");
            }
        }
    }
}
