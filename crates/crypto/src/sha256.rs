//! A from-scratch implementation of SHA-256 (FIPS 180-4).
//!
//! This is the collision-resistant hash underlying every other primitive in
//! the workspace: HMAC, the PRF/PRG, Merkle trees, Lamport/Merkle signatures,
//! and commitments. It supports incremental (streaming) hashing through
//! [`Sha256`] and one-shot hashing through [`Sha256::digest`].
//!
//! # Examples
//!
//! ```
//! use pba_crypto::sha256::Sha256;
//!
//! let d = Sha256::digest(b"abc");
//! assert_eq!(
//!     d.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
//! );
//! ```

use std::fmt;

/// Number of bytes in a SHA-256 digest.
pub const DIGEST_LEN: usize = 32;

/// SHA-256 block size in bytes.
pub const BLOCK_LEN: usize = 64;

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A 32-byte SHA-256 digest.
///
/// Digests are the universal "value" type of the crate: Merkle roots, PRF
/// keys, commitments and node identifiers are all `Digest`s.
///
/// # Examples
///
/// ```
/// use pba_crypto::sha256::{Digest, Sha256};
///
/// let d: Digest = Sha256::digest(b"hello");
/// assert_eq!(d.as_bytes().len(), 32);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// The all-zero digest; used as a sentinel for "empty".
    pub const ZERO: Digest = Digest([0u8; DIGEST_LEN]);

    /// Creates a digest from raw bytes.
    pub const fn new(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }

    /// Returns the digest as a byte slice.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the digest, returning the underlying array.
    pub fn into_bytes(self) -> [u8; DIGEST_LEN] {
        self.0
    }

    /// Lowercase hexadecimal rendering of the digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a digest from a 64-character hex string.
    ///
    /// # Errors
    ///
    /// Returns `None` if the string is not exactly 64 hex characters.
    pub fn from_hex(s: &str) -> Option<Self> {
        if s.len() != DIGEST_LEN * 2 || !s.is_ascii() {
            return None;
        }
        let mut out = [0u8; DIGEST_LEN];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }

    /// Interprets the first 8 bytes as a big-endian `u64`.
    ///
    /// Handy for deriving pseudorandom integers from digests.
    pub fn prefix_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[..8].try_into().expect("digest has >= 8 bytes"))
    }

    /// XOR of two digests, byte-wise.
    pub fn xor(&self, other: &Digest) -> Digest {
        let mut out = [0u8; DIGEST_LEN];
        for (o, (a, b)) in out.iter_mut().zip(self.0.iter().zip(&other.0)) {
            *o = a ^ b;
        }
        Digest(out)
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({}..)", &self.to_hex()[..12])
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; DIGEST_LEN]> for Digest {
    fn from(bytes: [u8; DIGEST_LEN]) -> Self {
        Digest(bytes)
    }
}

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use pba_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), Sha256::digest(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sha256")
            .field("total_len", &self.total_len)
            .finish_non_exhaustive()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// One-shot convenience: hash `data` and return the digest.
    pub fn digest(data: &[u8]) -> Digest {
        let mut h = Sha256::new();
        h.update(data);
        h.finalize()
    }

    /// Feeds more data into the hasher.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (BLOCK_LEN - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            let block: [u8; BLOCK_LEN] = data[..BLOCK_LEN].try_into().expect("checked length");
            self.compress(&block);
            data = &data[BLOCK_LEN..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Completes the hash and returns the digest, consuming the hasher.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        let mut pad = [0u8; BLOCK_LEN * 2];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        // Bypass total_len bookkeeping; it is already final.
        let mut remaining = &pad[..pad_len + 8];
        if self.buf_len > 0 {
            let take = BLOCK_LEN - self.buf_len;
            self.buf[self.buf_len..].copy_from_slice(&remaining[..take]);
            let block = self.buf;
            self.compress(&block);
            remaining = &remaining[take..];
        }
        while remaining.len() >= BLOCK_LEN {
            let block: [u8; BLOCK_LEN] = remaining[..BLOCK_LEN].try_into().expect("checked");
            self.compress(&block);
            remaining = &remaining[BLOCK_LEN..];
        }
        debug_assert!(remaining.is_empty());
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NIST FIPS 180-4 / standard test vectors.
    const VECTORS: &[(&[u8], &str)] = &[
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1",
        ),
    ];

    #[test]
    fn nist_vectors() {
        for (input, expected) in VECTORS {
            assert_eq!(Sha256::digest(input).to_hex(), *expected);
        }
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot_at_block_boundaries() {
        let data: Vec<u8> = (0..257u32).map(|i| i as u8).collect();
        for split in [0, 1, 55, 56, 63, 64, 65, 127, 128, 200, 256, 257] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), Sha256::digest(&data), "split={split}");
        }
    }

    #[test]
    fn three_way_split_incremental() {
        let data = vec![0xabu8; 300];
        let mut h = Sha256::new();
        h.update(&data[..10]);
        h.update(&data[10..150]);
        h.update(&data[150..]);
        assert_eq!(h.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn digest_hex_roundtrip() {
        let d = Sha256::digest(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"0".repeat(63)), None);
    }

    #[test]
    fn digest_xor_properties() {
        let a = Sha256::digest(b"a");
        let b = Sha256::digest(b"b");
        assert_eq!(a.xor(&b), b.xor(&a));
        assert_eq!(a.xor(&a), Digest::ZERO);
        assert_eq!(a.xor(&Digest::ZERO), a);
    }

    #[test]
    fn prefix_u64_is_big_endian() {
        let mut bytes = [0u8; 32];
        bytes[7] = 1;
        assert_eq!(Digest(bytes).prefix_u64(), 1);
        bytes[0] = 1;
        assert_eq!(Digest(bytes).prefix_u64(), (1u64 << 56) | 1);
    }

    #[test]
    fn distinct_inputs_distinct_digests() {
        // Smoke test, not a collision search.
        let mut seen = std::collections::HashSet::new();
        for i in 0..1000u32 {
            assert!(seen.insert(Sha256::digest(&i.to_le_bytes())));
        }
    }
}
