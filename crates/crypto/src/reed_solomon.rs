//! Reed–Solomon decoding over `F_{2^61−1}` via the Berlekamp–Welch
//! algorithm: recovers a degree-`< k` polynomial from `m` evaluations of
//! which up to `e` are adversarially wrong, whenever `m ≥ k + 2e`.
//!
//! This is the error-corrected share reconstruction that makes the
//! committee coin toss robust: with a `2/3`-honest committee of size `c`
//! and sharing threshold `t = ⌊(c−1)/3⌋`, every dealer's secret is
//! recoverable from the echoed shares even when all `t` corrupt members
//! contribute garbage — the classic `c ≥ 3t + 1` regime.
//!
//! # Examples
//!
//! ```
//! use pba_crypto::field::Fp;
//! use pba_crypto::poly::Polynomial;
//! use pba_crypto::reed_solomon::decode;
//!
//! // Degree-1 polynomial, 5 shares, 1 corrupted.
//! let f = Polynomial::new(vec![Fp::new(42), Fp::new(7)]);
//! let mut points: Vec<(Fp, Fp)> = (1..=5u64)
//!     .map(|x| (Fp::new(x), f.eval(Fp::new(x))))
//!     .collect();
//! points[2].1 = Fp::new(999_999); // corruption
//! let recovered = decode(&points, 2, 1).expect("decodable");
//! assert_eq!(recovered.eval(Fp::ZERO), Fp::new(42));
//! ```

use crate::field::Fp;
use crate::poly::Polynomial;
use std::fmt;

/// Errors from Reed–Solomon decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RsError {
    /// Fewer than `k + 2e` points were supplied.
    NotEnoughPoints {
        /// Points supplied.
        have: usize,
        /// Points required.
        need: usize,
    },
    /// Two points share an x-coordinate.
    DuplicateX,
    /// The linear system is inconsistent — more than `e` errors.
    TooManyErrors,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::NotEnoughPoints { have, need } => {
                write!(f, "need {need} points to decode, have {have}")
            }
            RsError::DuplicateX => f.write_str("duplicate x-coordinate"),
            RsError::TooManyErrors => f.write_str("more errors than the code can correct"),
        }
    }
}

impl std::error::Error for RsError {}

/// Solves a square linear system `A·x = b` over `F_p` by Gaussian
/// elimination. Returns `None` if `A` is singular.
#[allow(clippy::needless_range_loop)] // index-based elimination reads clearer here
fn solve_linear(mut a: Vec<Vec<Fp>>, mut b: Vec<Fp>) -> Option<Vec<Fp>> {
    let n = b.len();
    for col in 0..n {
        // Find pivot.
        let pivot = (col..n).find(|&r| !a[r][col].is_zero())?;
        a.swap(col, pivot);
        b.swap(col, pivot);
        let inv = a[col][col].inverse();
        for j in col..n {
            a[col][j] *= inv;
        }
        b[col] *= inv;
        for r in 0..n {
            if r != col && !a[r][col].is_zero() {
                let factor = a[r][col];
                for j in col..n {
                    let v = a[col][j];
                    a[r][j] -= factor * v;
                }
                let bv = b[col];
                b[r] -= factor * bv;
            }
        }
    }
    Some(b)
}

/// Divides polynomial `num` by `den`, returning the quotient if the
/// division is exact.
fn poly_div_exact(num: &[Fp], den: &[Fp]) -> Option<Vec<Fp>> {
    let dn = den.iter().rposition(|c| !c.is_zero())?;
    let nn = match num.iter().rposition(|c| !c.is_zero()) {
        Some(v) => v,
        None => return Some(vec![Fp::ZERO]), // 0 / den = 0
    };
    if nn < dn {
        return None;
    }
    let mut rem: Vec<Fp> = num.to_vec();
    let mut quot = vec![Fp::ZERO; nn - dn + 1];
    let lead_inv = den[dn].inverse();
    for i in (0..quot.len()).rev() {
        let coeff = rem[i + dn] * lead_inv;
        quot[i] = coeff;
        for j in 0..=dn {
            rem[i + j] -= coeff * den[j];
        }
    }
    rem.iter().all(Fp::is_zero).then_some(quot)
}

/// Berlekamp–Welch: decodes the unique degree-`< k` polynomial from
/// `points`, tolerating up to `e` wrong evaluations.
///
/// # Errors
///
/// * [`RsError::NotEnoughPoints`] if `points.len() < k + 2e`;
/// * [`RsError::DuplicateX`] on repeated x-coordinates;
/// * [`RsError::TooManyErrors`] if no consistent codeword exists.
pub fn decode(points: &[(Fp, Fp)], k: usize, e: usize) -> Result<Polynomial, RsError> {
    assert!(k >= 1, "message polynomial needs at least one coefficient");
    let m = points.len();
    if m < k + 2 * e {
        return Err(RsError::NotEnoughPoints {
            have: m,
            need: k + 2 * e,
        });
    }
    {
        let mut xs: Vec<u64> = points.iter().map(|(x, _)| x.value()).collect();
        xs.sort_unstable();
        if xs.windows(2).any(|w| w[0] == w[1]) {
            return Err(RsError::DuplicateX);
        }
    }
    if e == 0 {
        // Plain interpolation on the first k points, then consistency check.
        let poly = interpolate(&points[..k]);
        return if points.iter().all(|&(x, y)| poly.eval(x) == y) {
            Ok(poly)
        } else {
            Err(RsError::TooManyErrors)
        };
    }

    // Berlekamp–Welch: find E (monic, deg e) and Q (deg < k + e) with
    //   Q(x_i) = y_i · E(x_i)  for all i.
    // Unknowns: e coefficients of E (monic) + (k + e) of Q.
    // Try decreasing error counts: with fewer than `e` actual errors the
    // degree-e system can be singular, so fall back gracefully.
    for errs in (0..=e).rev() {
        if m < k + 2 * errs {
            continue;
        }
        let unknowns = errs + k + errs;
        let rows = m.min(unknowns);
        let _ = rows;
        let mut a: Vec<Vec<Fp>> = Vec::with_capacity(unknowns);
        let mut b: Vec<Fp> = Vec::with_capacity(unknowns);
        for &(x, y) in points.iter().take(unknowns) {
            let mut row = Vec::with_capacity(unknowns);
            // E coefficients e_0..e_{errs-1} (monic leading coeff folded into rhs).
            let mut xp = Fp::ONE;
            for _ in 0..errs {
                row.push(y * xp);
                xp *= x;
            }
            let x_to_errs = xp; // x^errs
                                // Q coefficients q_0..q_{k+errs-1}, negated.
            let mut xq = Fp::ONE;
            for _ in 0..(k + errs) {
                row.push(-xq);
                xq *= x;
            }
            a.push(row);
            b.push(-(y * x_to_errs));
        }
        let Some(solution) = solve_linear(a, b) else {
            continue;
        };
        // Rebuild E (monic) and Q.
        let mut e_coeffs: Vec<Fp> = solution[..errs].to_vec();
        e_coeffs.push(Fp::ONE);
        let q_coeffs: Vec<Fp> = solution[errs..].to_vec();
        let Some(f_coeffs) = poly_div_exact(&q_coeffs, &e_coeffs) else {
            continue;
        };
        let mut coeffs = f_coeffs;
        coeffs.truncate(k);
        while coeffs.len() < k {
            coeffs.push(Fp::ZERO);
        }
        let poly = Polynomial::new(coeffs);
        // Accept iff consistent with all but <= e points.
        let wrong = points.iter().filter(|&&(x, y)| poly.eval(x) != y).count();
        if wrong <= e {
            return Ok(poly);
        }
    }
    Err(RsError::TooManyErrors)
}

#[allow(clippy::needless_range_loop)] // coefficient-index arithmetic is clearer by index
fn interpolate(points: &[(Fp, Fp)]) -> Polynomial {
    // Lagrange interpolation, building coefficients.
    let k = points.len();
    let mut coeffs = vec![Fp::ZERO; k];
    for (i, &(xi, yi)) in points.iter().enumerate() {
        // Basis polynomial l_i(x) = prod_{j!=i} (x - x_j) / (x_i - x_j)
        let mut basis = vec![Fp::ZERO; k];
        basis[0] = Fp::ONE;
        let mut deg = 0;
        let mut denom = Fp::ONE;
        for (j, &(xj, _)) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            // basis *= (x - xj)
            let mut next = vec![Fp::ZERO; k];
            for d in 0..=deg {
                next[d + 1] += basis[d];
                next[d] -= basis[d] * xj;
            }
            basis = next;
            deg += 1;
            denom *= xi - xj;
        }
        let scale = yi * denom.inverse();
        for d in 0..k {
            coeffs[d] += basis[d] * scale;
        }
    }
    Polynomial::new(coeffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prg::Prg;

    fn random_poly(k: usize, prg: &mut Prg) -> Polynomial {
        Polynomial::new((0..k).map(|_| Fp::random(prg)).collect())
    }

    fn shares(poly: &Polynomial, m: usize) -> Vec<(Fp, Fp)> {
        (1..=m as u64)
            .map(|x| (Fp::new(x), poly.eval(Fp::new(x))))
            .collect()
    }

    #[test]
    fn decode_without_errors() {
        let mut prg = Prg::from_seed_bytes(b"rs0");
        for k in 1..6 {
            let poly = random_poly(k, &mut prg);
            let pts = shares(&poly, k + 4);
            let got = decode(&pts, k, 0).unwrap();
            assert_eq!(got.coefficients(), poly.coefficients());
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn decode_with_max_errors() {
        let mut prg = Prg::from_seed_bytes(b"rs1");
        for (k, e) in [(1usize, 1usize), (2, 1), (2, 2), (3, 2), (4, 3)] {
            let poly = random_poly(k, &mut prg);
            let m = k + 2 * e;
            let mut pts = shares(&poly, m);
            // Corrupt exactly e positions.
            for i in 0..e {
                pts[i * 2].1 = Fp::random(&mut prg);
            }
            let got = decode(&pts, k, e).unwrap_or_else(|err| panic!("k={k} e={e}: {err}"));
            assert_eq!(got.coefficients(), poly.coefficients(), "k={k} e={e}");
        }
    }

    #[test]
    fn decode_with_fewer_errors_than_budget() {
        let mut prg = Prg::from_seed_bytes(b"rs2");
        let poly = random_poly(3, &mut prg);
        let mut pts = shares(&poly, 3 + 2 * 3);
        pts[1].1 = Fp::random(&mut prg); // only 1 error, budget 3
        let got = decode(&pts, 3, 3).unwrap();
        assert_eq!(got.coefficients(), poly.coefficients());
    }

    #[test]
    fn committee_regime_c_3t_plus_1() {
        // c = 3t+1 members echo a degree-t sharing; t of them lie.
        let mut prg = Prg::from_seed_bytes(b"rs3");
        for t in 1..5usize {
            let c = 3 * t + 1;
            let poly = random_poly(t + 1, &mut prg);
            let mut pts = shares(&poly, c);
            for i in 0..t {
                pts[c - 1 - i].1 = Fp::random(&mut prg);
            }
            let got = decode(&pts, t + 1, t).unwrap();
            assert_eq!(
                got.eval(Fp::ZERO),
                poly.eval(Fp::ZERO),
                "secret mismatch at t={t}"
            );
        }
    }

    #[test]
    fn too_many_errors_detected() {
        let mut prg = Prg::from_seed_bytes(b"rs4");
        let poly = random_poly(2, &mut prg);
        let mut pts = shares(&poly, 6);
        // 3 errors with budget 1: must not silently return a wrong poly
        // consistent with <= 1 errors.
        for pt in pts.iter_mut().take(3) {
            pt.1 = Fp::random(&mut prg);
        }
        match decode(&pts, 2, 1) {
            Err(RsError::TooManyErrors) => {}
            Ok(got) => {
                let wrong = pts.iter().filter(|&&(x, y)| got.eval(x) != y).count();
                assert!(wrong <= 1, "accepted polynomial inconsistent with bound");
            }
            Err(other) => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn not_enough_points() {
        let pts = vec![(Fp::new(1), Fp::new(2))];
        assert_eq!(
            decode(&pts, 2, 1),
            Err(RsError::NotEnoughPoints { have: 1, need: 4 })
        );
    }

    #[test]
    fn duplicate_x_rejected() {
        let pts = vec![
            (Fp::new(1), Fp::new(2)),
            (Fp::new(1), Fp::new(3)),
            (Fp::new(2), Fp::new(4)),
            (Fp::new(3), Fp::new(5)),
        ];
        assert_eq!(decode(&pts, 2, 1), Err(RsError::DuplicateX));
    }

    #[test]
    fn zero_polynomial_decodes() {
        let pts: Vec<(Fp, Fp)> = (1..=5u64).map(|x| (Fp::new(x), Fp::ZERO)).collect();
        let got = decode(&pts, 2, 1).unwrap();
        assert_eq!(got.eval(Fp::new(77)), Fp::ZERO);
    }

    #[test]
    fn interpolate_matches_poly_module() {
        let mut prg = Prg::from_seed_bytes(b"rs5");
        let poly = random_poly(4, &mut prg);
        let pts = shares(&poly, 4);
        let got = interpolate(&pts);
        for x in 0..10u64 {
            assert_eq!(got.eval(Fp::new(x)), poly.eval(Fp::new(x)));
        }
    }
}
