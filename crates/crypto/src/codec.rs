//! A compact, deterministic wire format for protocol messages.
//!
//! Communication complexity is *the* measured quantity in this reproduction,
//! so every message crosses the simulated network as explicit bytes produced
//! by this codec — no in-memory hand-waving. The format is little-endian
//! fixed-width integers, canonical LEB128 varint length prefixes for
//! sequences, and a one-byte tag for options/enums.
//!
//! # Examples
//!
//! ```
//! use pba_crypto::codec::{Decode, Encode, decode_from_slice, encode_to_vec};
//!
//! let v: Vec<u32> = vec![1, 2, 3];
//! let bytes = encode_to_vec(&v);
//! let back: Vec<u32> = decode_from_slice(&bytes)?;
//! assert_eq!(back, v);
//! # Ok::<(), pba_crypto::codec::CodecError>(())
//! ```

use crate::field::Fp;
use crate::lamport::LamportSignature;
use crate::merkle::MerkleProof;
use crate::mss::MssSignature;
use crate::sha256::{Digest, DIGEST_LEN};
use std::fmt;

/// Errors raised while decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A tag byte had no corresponding variant.
    InvalidTag(u8),
    /// A length prefix exceeded the sanity bound.
    LengthOverflow(u64),
    /// Trailing bytes remained after a complete decode.
    TrailingBytes(usize),
    /// A domain-specific invariant failed.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd => f.write_str("unexpected end of input"),
            CodecError::InvalidTag(t) => write!(f, "invalid tag byte {t}"),
            CodecError::LengthOverflow(n) => write!(f, "length prefix {n} exceeds sanity bound"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Sanity bound on decoded sequence lengths (items), to stop hostile inputs
/// from triggering huge allocations.
pub const MAX_SEQ_LEN: u64 = 1 << 24;

/// Maximum byte length of a LEB128-encoded `u64` (⌈64 / 7⌉ groups).
pub const MAX_VARINT_LEN: usize = 10;

/// Appends the canonical LEB128 (base-128, little-endian groups) encoding
/// of `v` to `buf`. Small values — sequence lengths, party indices — cost
/// one byte instead of the eight a fixed-width `u64` costs.
pub fn write_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let group = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(group);
            return;
        }
        buf.push(group | 0x80);
    }
}

/// Byte length of the canonical LEB128 encoding of `v`.
pub fn varint_len(v: u64) -> usize {
    ((64 - v.leading_zeros()).max(1) as usize).div_ceil(7)
}

/// Reads a canonical LEB128-encoded `u64`.
///
/// # Errors
///
/// [`CodecError::UnexpectedEnd`] on truncation; [`CodecError::Invalid`] on
/// encodings that overflow 64 bits or are non-canonical (a redundant
/// trailing zero group).
pub fn read_varint(r: &mut Reader<'_>) -> Result<u64, CodecError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = r.take(1)?[0];
        if shift >= 64 || (shift == 63 && byte > 1) {
            return Err(CodecError::Invalid("varint overflow"));
        }
        if byte == 0 && shift != 0 {
            return Err(CodecError::Invalid("non-canonical varint"));
        }
        value |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

/// A cursor over encoded bytes.
#[derive(Debug)]
pub struct Reader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Takes exactly `n` bytes.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEnd`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEnd);
        }
        let out = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

/// Serialization into the wire format.
pub trait Encode {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Encoded size in bytes (default: encode into a scratch buffer).
    fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }
}

/// Deserialization from the wire format.
pub trait Decode: Sized {
    /// Decodes a value, advancing the reader.
    ///
    /// # Errors
    ///
    /// Any [`CodecError`] on malformed input.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;
}

/// Encodes a value into a fresh byte vector.
pub fn encode_to_vec<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut buf = Vec::new();
    value.encode(&mut buf);
    buf
}

/// Decodes a value from a slice, requiring the input be fully consumed.
///
/// # Errors
///
/// Any [`CodecError`], including [`CodecError::TrailingBytes`].
pub fn decode_from_slice<T: Decode>(data: &[u8]) -> Result<T, CodecError> {
    let mut r = Reader::new(data);
    let v = T::decode(&mut r)?;
    if r.remaining() > 0 {
        return Err(CodecError::TrailingBytes(r.remaining()));
    }
    Ok(v)
}

macro_rules! impl_int {
    ($($ty:ty),*) => {
        $(
            impl Encode for $ty {
                fn encode(&self, buf: &mut Vec<u8>) {
                    buf.extend_from_slice(&self.to_le_bytes());
                }
                fn encoded_len(&self) -> usize {
                    std::mem::size_of::<$ty>()
                }
            }
            impl Decode for $ty {
                fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
                    let bytes = r.take(std::mem::size_of::<$ty>())?;
                    Ok(<$ty>::from_le_bytes(bytes.try_into().expect("sized take")))
                }
            }
        )*
    };
}

impl_int!(u8, u16, u32, u64, i64);

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl Encode for Fp {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.value().encode(buf);
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for Fp {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let v = u64::decode(r)?;
        if v >= crate::field::MODULUS {
            return Err(CodecError::Invalid("non-canonical field element"));
        }
        Ok(Fp::new(v))
    }
}

impl Encode for Digest {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        DIGEST_LEN
    }
}

impl Decode for Digest {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let bytes = r.take(DIGEST_LEN)?;
        Ok(Digest::new(bytes.try_into().expect("sized take")))
    }
}

impl Encode for [u8; 32] {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(self);
    }
    fn encoded_len(&self) -> usize {
        32
    }
}

impl Decode for [u8; 32] {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(r.take(32)?.try_into().expect("sized take"))
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = read_varint(r)?;
        if len > MAX_SEQ_LEN {
            return Err(CodecError::LengthOverflow(len));
        }
        let mut out = Vec::with_capacity((len as usize).min(1024));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Ok(out)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match r.take(1)?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Encode, B: Encode, C: Encode> Encode for (A, B, C) {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.0.encode(buf);
        self.1.encode(buf);
        self.2.encode(buf);
    }
}

impl<A: Decode, B: Decode, C: Decode> Decode for (A, B, C) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.len() as u64);
        buf.extend_from_slice(self.as_bytes());
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let len = read_varint(r)?;
        if len > MAX_SEQ_LEN {
            return Err(CodecError::LengthOverflow(len));
        }
        let bytes = r.take(len as usize)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("utf-8"))
    }
}

impl Encode for MerkleProof {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.leaf_index().encode(buf);
        self.path().to_vec().encode(buf);
    }
}

impl Decode for MerkleProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let leaf_index = u64::decode(r)?;
        let path = Vec::<Digest>::decode(r)?;
        Ok(MerkleProof::from_parts(leaf_index, path))
    }
}

impl Encode for LamportSignature {
    fn encode(&self, buf: &mut Vec<u8>) {
        let (revealed, complements) = self.clone().into_parts();
        revealed.encode(buf);
        complements.encode(buf);
    }
}

impl Decode for LamportSignature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let revealed = Vec::<[u8; 32]>::decode(r)?;
        let complements = Vec::<Digest>::decode(r)?;
        Ok(LamportSignature::from_parts(revealed, complements))
    }
}

impl Encode for MssSignature {
    fn encode(&self, buf: &mut Vec<u8>) {
        let (idx, vk, sig, path) = self.clone().into_parts();
        idx.encode(buf);
        vk.encode(buf);
        sig.encode(buf);
        path.encode(buf);
    }
}

impl Decode for MssSignature {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let idx = u64::decode(r)?;
        let vk = Digest::decode(r)?;
        let sig = LamportSignature::decode(r)?;
        let path = MerkleProof::decode(r)?;
        Ok(MssSignature::from_parts(idx, vk, sig, path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lamport::LamportParams;
    use crate::mss::{MssKeyPair, MssParams};
    use crate::prg::Prg;
    use crate::sha256::Sha256;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        let back: T = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, v);
        assert_eq!(v.encoded_len(), bytes.len());
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(0xdeadu16);
        roundtrip(0xdeadbeefu32);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(true);
        roundtrip(false);
        roundtrip(Sha256::digest(b"d"));
        roundtrip([9u8; 32]);
        roundtrip("hello world".to_string());
        roundtrip(String::new());
    }

    #[test]
    fn composites_roundtrip() {
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(Some(7u64));
        roundtrip(None::<u64>);
        roundtrip((1u8, 2u64));
        roundtrip((1u8, "x".to_string(), vec![true, false]));
        roundtrip(vec![Some(vec![1u16]), None]);
    }

    #[test]
    fn crypto_types_roundtrip() {
        let mut prg = Prg::from_seed_bytes(b"cdc");
        let lparams = LamportParams::new(16);
        let kp = crate::lamport::LamportKeyPair::generate(&lparams, &mut prg);
        roundtrip(kp.sign(b"m"));

        let mparams = MssParams::new(16, 2);
        let mut mkp = MssKeyPair::generate(&mparams, &mut prg);
        let sig = mkp.sign(b"m").unwrap();
        let bytes = encode_to_vec(&sig);
        assert_eq!(bytes.len(), sig.encoded_len());
        let back: MssSignature = decode_from_slice(&bytes).unwrap();
        assert!(mparams.verify(&mkp.verification_key(), b"m", &back));
    }

    #[test]
    fn truncated_input_errors() {
        let bytes = encode_to_vec(&vec![1u64, 2, 3]);
        for cut in 0..bytes.len() {
            let r: Result<Vec<u64>, _> = decode_from_slice(&bytes[..cut]);
            assert!(r.is_err(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_to_vec(&7u64);
        bytes.push(0);
        assert_eq!(
            decode_from_slice::<u64>(&bytes),
            Err(CodecError::TrailingBytes(1))
        );
    }

    #[test]
    fn invalid_bool_tag() {
        assert_eq!(
            decode_from_slice::<bool>(&[2]),
            Err(CodecError::InvalidTag(2))
        );
    }

    #[test]
    fn hostile_length_rejected() {
        let mut bytes = Vec::new();
        write_varint(&mut bytes, MAX_SEQ_LEN + 1);
        assert_eq!(
            decode_from_slice::<Vec<u8>>(&bytes),
            Err(CodecError::LengthOverflow(MAX_SEQ_LEN + 1))
        );
    }

    #[test]
    fn varint_roundtrips_at_group_boundaries() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "v={v}");
            assert!(buf.len() <= MAX_VARINT_LEN);
            let mut r = Reader::new(&buf);
            assert_eq!(read_varint(&mut r).unwrap(), v);
            assert_eq!(r.remaining(), 0);
        }
    }

    #[test]
    fn varint_rejects_truncation_overflow_and_redundancy() {
        // Truncated: continuation bit set but input ends.
        let mut r = Reader::new(&[0x80]);
        assert_eq!(read_varint(&mut r), Err(CodecError::UnexpectedEnd));
        // Overflow: an 11th group, or bits past the 64th.
        let mut r = Reader::new(&[0xff; 11]);
        assert!(read_varint(&mut r).is_err());
        let mut r = Reader::new(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02]);
        assert_eq!(
            read_varint(&mut r),
            Err(CodecError::Invalid("varint overflow"))
        );
        // Non-canonical: redundant trailing zero group for the value 0.
        let mut r = Reader::new(&[0x80, 0x00]);
        assert_eq!(
            read_varint(&mut r),
            Err(CodecError::Invalid("non-canonical varint"))
        );
    }

    #[test]
    fn field_element_roundtrip_and_canonicality() {
        roundtrip(Fp::new(12345));
        roundtrip(Fp::ZERO);
        let bytes = encode_to_vec(&crate::field::MODULUS);
        assert_eq!(
            decode_from_slice::<Fp>(&bytes),
            Err(CodecError::Invalid("non-canonical field element"))
        );
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut bytes = Vec::new();
        write_varint(&mut bytes, 2);
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(
            decode_from_slice::<String>(&bytes),
            Err(CodecError::Invalid("utf-8"))
        );
    }
}
