//! Arithmetic in the prime field `F_p` with `p = 2^61 − 1` (a Mersenne
//! prime), used for Shamir secret sharing inside the coin-tossing
//! functionality `f_ct`.
//!
//! The Mersenne structure gives branch-light reduction; inversion is by
//! Fermat's little theorem.
//!
//! # Examples
//!
//! ```
//! use pba_crypto::field::Fp;
//!
//! let a = Fp::new(5);
//! let b = Fp::new(7);
//! assert_eq!(a * b, Fp::new(35));
//! assert_eq!((a / b) * b, a);
//! ```

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// The field modulus `p = 2^61 − 1`.
pub const MODULUS: u64 = (1u64 << 61) - 1;

/// An element of `F_p`, `p = 2^61 − 1`, stored in canonical form `[0, p)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Fp(u64);

impl Fp {
    /// The additive identity.
    pub const ZERO: Fp = Fp(0);
    /// The multiplicative identity.
    pub const ONE: Fp = Fp(1);

    /// Creates a field element, reducing `v` mod `p`.
    pub const fn new(v: u64) -> Self {
        // Two-step Mersenne reduction handles all u64 inputs.
        let r = (v >> 61) + (v & MODULUS);
        let r = if r >= MODULUS { r - MODULUS } else { r };
        Fp(r)
    }

    /// The canonical representative in `[0, p)`.
    pub const fn value(&self) -> u64 {
        self.0
    }

    /// Samples a uniform field element from a PRG.
    pub fn random(prg: &mut crate::prg::Prg) -> Self {
        Fp(prg.gen_range(MODULUS))
    }

    /// Raises `self` to the power `exp` by square-and-multiply.
    pub fn pow(self, mut exp: u64) -> Fp {
        let mut base = self;
        let mut acc = Fp::ONE;
        while exp > 0 {
            if exp & 1 == 1 {
                acc *= base;
            }
            base *= base;
            exp >>= 1;
        }
        acc
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn inverse(self) -> Fp {
        assert!(self.0 != 0, "zero has no multiplicative inverse");
        self.pow(MODULUS - 2)
    }

    /// Returns true iff this is the zero element.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fp({})", self.0)
    }
}

impl fmt::Display for Fp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Fp {
    fn from(v: u64) -> Self {
        Fp::new(v)
    }
}

impl Add for Fp {
    type Output = Fp;
    fn add(self, rhs: Fp) -> Fp {
        let s = self.0 + rhs.0; // < 2^62, no overflow
        Fp(if s >= MODULUS { s - MODULUS } else { s })
    }
}

impl AddAssign for Fp {
    fn add_assign(&mut self, rhs: Fp) {
        *self = *self + rhs;
    }
}

impl Sub for Fp {
    type Output = Fp;
    fn sub(self, rhs: Fp) -> Fp {
        Fp(if self.0 >= rhs.0 {
            self.0 - rhs.0
        } else {
            self.0 + MODULUS - rhs.0
        })
    }
}

impl SubAssign for Fp {
    fn sub_assign(&mut self, rhs: Fp) {
        *self = *self - rhs;
    }
}

impl Neg for Fp {
    type Output = Fp;
    fn neg(self) -> Fp {
        Fp::ZERO - self
    }
}

impl Mul for Fp {
    type Output = Fp;
    fn mul(self, rhs: Fp) -> Fp {
        let wide = (self.0 as u128) * (rhs.0 as u128);
        // Mersenne reduction: split at bit 61 twice.
        let lo = (wide & MODULUS as u128) as u64;
        let hi = (wide >> 61) as u64;
        Fp::new(lo) + Fp::new(hi)
    }
}

impl MulAssign for Fp {
    fn mul_assign(&mut self, rhs: Fp) {
        *self = *self * rhs;
    }
}

impl Div for Fp {
    type Output = Fp;
    /// # Panics
    ///
    /// Panics on division by zero.
    #[allow(clippy::suspicious_arithmetic_impl)] // field division IS multiplication by the inverse
    fn div(self, rhs: Fp) -> Fp {
        self * rhs.inverse()
    }
}

impl std::iter::Sum for Fp {
    fn sum<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ZERO, |a, b| a + b)
    }
}

impl std::iter::Product for Fp {
    fn product<I: Iterator<Item = Fp>>(iter: I) -> Fp {
        iter.fold(Fp::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prg::Prg;

    #[test]
    fn reduction_of_large_values() {
        assert_eq!(Fp::new(MODULUS), Fp::ZERO);
        assert_eq!(Fp::new(MODULUS + 1), Fp::ONE);
        assert!(Fp::new(u64::MAX).value() < MODULUS);
        // u64::MAX = 2^64 - 1 = 8p + 7  (since p = 2^61 - 1, 8p = 2^64 - 8)
        assert_eq!(Fp::new(u64::MAX), Fp::new(7));
    }

    #[test]
    fn add_sub_inverse() {
        let mut prg = Prg::from_seed_bytes(b"f");
        for _ in 0..100 {
            let a = Fp::random(&mut prg);
            let b = Fp::random(&mut prg);
            assert_eq!(a + b - b, a);
            assert_eq!(a - a, Fp::ZERO);
            assert_eq!(-a + a, Fp::ZERO);
        }
    }

    #[test]
    fn mul_matches_u128_reference() {
        let mut prg = Prg::from_seed_bytes(b"m");
        for _ in 0..200 {
            let a = Fp::random(&mut prg);
            let b = Fp::random(&mut prg);
            let expected = ((a.value() as u128 * b.value() as u128) % MODULUS as u128) as u64;
            assert_eq!((a * b).value(), expected);
        }
    }

    #[test]
    fn field_axioms_sampled() {
        let mut prg = Prg::from_seed_bytes(b"ax");
        for _ in 0..50 {
            let a = Fp::random(&mut prg);
            let b = Fp::random(&mut prg);
            let c = Fp::random(&mut prg);
            assert_eq!((a + b) + c, a + (b + c));
            assert_eq!((a * b) * c, a * (b * c));
            assert_eq!(a * (b + c), a * b + a * c);
            assert_eq!(a * Fp::ONE, a);
            assert_eq!(a + Fp::ZERO, a);
            assert_eq!(a * b, b * a);
        }
    }

    #[test]
    fn inversion() {
        let mut prg = Prg::from_seed_bytes(b"inv");
        for _ in 0..50 {
            let a = Fp::random(&mut prg);
            if !a.is_zero() {
                assert_eq!(a * a.inverse(), Fp::ONE);
                assert_eq!(a / a, Fp::ONE);
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero has no multiplicative inverse")]
    fn zero_inverse_panics() {
        Fp::ZERO.inverse();
    }

    #[test]
    fn pow_edge_cases() {
        let a = Fp::new(12345);
        assert_eq!(a.pow(0), Fp::ONE);
        assert_eq!(a.pow(1), a);
        assert_eq!(a.pow(2), a * a);
        // Fermat: a^(p-1) = 1
        assert_eq!(a.pow(MODULUS - 1), Fp::ONE);
    }

    #[test]
    fn sum_and_product_iters() {
        let v = [Fp::new(1), Fp::new(2), Fp::new(3)];
        assert_eq!(v.iter().copied().sum::<Fp>(), Fp::new(6));
        assert_eq!(v.iter().copied().product::<Fp>(), Fp::new(6));
    }
}
