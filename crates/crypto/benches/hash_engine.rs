//! Criterion benches for the multi-lane batched SHA-256 engine: every
//! group times the scalar reference path against the batched path over
//! identical inputs, so regressions in either the lane core or the
//! batching glue show up as a ratio change.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pba_crypto::lamport::{LamportKeyPair, LamportParams};
use pba_crypto::merkle::{hash_leaf, hash_leaf_batch, MerkleTree};
use pba_crypto::prg::Prg;
use pba_crypto::sha256::{batch_digest, Digest, Sha256, DIGEST_LEN};
use rand::RngCore;

fn bench_batch_digest(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch_digest");
    for count in [64usize, 1024] {
        let inputs: Vec<Vec<u8>> = (0..count as u64)
            .map(|i| {
                let mut v = i.to_le_bytes().to_vec();
                v.resize(DIGEST_LEN, 0x3c);
                v
            })
            .collect();
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        group.throughput(Throughput::Elements(count as u64));
        group.bench_with_input(BenchmarkId::new("scalar", count), &refs, |b, refs| {
            b.iter(|| refs.iter().map(|i| Sha256::digest(i)).collect::<Vec<_>>());
        });
        group.bench_with_input(BenchmarkId::new("batched", count), &refs, |b, refs| {
            b.iter(|| batch_digest(refs));
        });
    }
    group.finish();
}

fn bench_merkle_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle_build");
    for n in [256usize, 4096] {
        let digests: Vec<Digest> = (0..n as u64)
            .map(|i| Sha256::digest(&i.to_le_bytes()))
            .collect();
        group.bench_with_input(BenchmarkId::new("scalar", n), &digests, |b, digests| {
            b.iter(|| MerkleTree::from_leaf_digests_scalar(digests.clone()));
        });
        group.bench_with_input(BenchmarkId::new("batched", n), &digests, |b, digests| {
            b.iter(|| MerkleTree::from_leaf_digests(digests.clone()));
        });
    }
    group.finish();
}

fn bench_leaf_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("leaf_hash");
    let n = 1024usize;
    let payloads: Vec<Vec<u8>> = (0..n as u64).map(|i| i.to_le_bytes().to_vec()).collect();
    let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
    group.throughput(Throughput::Elements(n as u64));
    group.bench_with_input(BenchmarkId::new("scalar", n), &refs, |b, refs| {
        b.iter(|| refs.iter().map(|p| hash_leaf(p)).collect::<Vec<_>>());
    });
    group.bench_with_input(BenchmarkId::new("batched", n), &refs, |b, refs| {
        b.iter(|| hash_leaf_batch(refs));
    });
    group.finish();
}

fn bench_lamport_keygen(c: &mut Criterion) {
    let mut group = c.benchmark_group("lamport_keygen");
    group.sample_size(20);
    let params = LamportParams::new(128);
    let count = 16usize;
    group.bench_function(BenchmarkId::new("scalar", count), |b| {
        b.iter(|| {
            let mut prg = Prg::from_seed_bytes(b"bench-keygen");
            (0..count)
                .map(|_| LamportKeyPair::generate_scalar(&params, &mut prg))
                .collect::<Vec<_>>()
        });
    });
    group.bench_function(BenchmarkId::new("batched", count), |b| {
        b.iter(|| {
            let mut prg = Prg::from_seed_bytes(b"bench-keygen");
            LamportKeyPair::generate_many(&params, &mut prg, count)
        });
    });
    group.finish();
}

fn bench_prg_expand(c: &mut Criterion) {
    let mut group = c.benchmark_group("prg_expand");
    let bytes = 1usize << 20;
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("scalar", |b| {
        let mut out = vec![0u8; bytes];
        b.iter(|| {
            let mut prg = Prg::from_seed_bytes(b"bench-prg");
            prg.fill_bytes_scalar(&mut out);
        });
    });
    group.bench_function("batched", |b| {
        let mut out = vec![0u8; bytes];
        b.iter(|| {
            let mut prg = Prg::from_seed_bytes(b"bench-prg");
            prg.fill_bytes(&mut out);
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_digest,
    bench_merkle_build,
    bench_leaf_hash,
    bench_lamport_keygen,
    bench_prg_expand
);
criterion_main!(benches);
