//! The `f_ae-comm` functionality: supreme-committee → almost-everywhere
//! message dissemination down the communication tree, executed as real
//! metered network traffic with Byzantine committee members.
//!
//! This realizes the reactive functionality of §3.1 at its interface: after
//! the tree is established (see [`charge_establishment`] for how the KSSV
//! build cost is accounted), the root committee can push a value to all
//! parties except those isolated by bad paths. Each committee member relays
//! the value to every member of each child committee; receivers take the
//! **majority** over the copies they process. A good path (all committees
//! `< 1/3` corrupt) therefore delivers the correct value; parties whose leaf
//! memberships all sit under bad paths may receive garbage or nothing —
//! exactly the `o(1)` isolated set the paper tolerates.
//!
//! # Examples
//!
//! ```
//! use pba_aetree::params::TreeParams;
//! use pba_aetree::tree::Tree;
//! use pba_aetree::fae::{disseminate, honest_adversary};
//! use pba_net::Network;
//! use std::collections::BTreeSet;
//!
//! let tree = Tree::build(&TreeParams::scaled(128, 2), b"seed");
//! let mut net = Network::new(128);
//! let result = disseminate(
//!     &mut net,
//!     &tree,
//!     &BTreeSet::new(),
//!     &|_member| Some(b"(y, s)".to_vec()),
//!     &mut honest_adversary(),
//! );
//! assert!((0..128).all(|p| result.party_value(p) == Some(b"(y, s)".as_slice())));
//! ```

use crate::tree::Tree;
use pba_net::wire;
use pba_net::{Network, PartyId};
use std::collections::{BTreeSet, HashMap};
use std::rc::Rc;

/// What a corrupted committee member sends toward one child committee:
/// `None` = stays silent, `Some(bytes)` = sends those bytes (possibly
/// different per child — equivocation).
pub type AdversaryFn<'a> = dyn FnMut(DisseminationStep<'_>) -> Option<Vec<u8>> + 'a;

/// Context handed to the dissemination adversary for each corrupt relay
/// decision.
#[derive(Clone, Copy, Debug)]
pub struct DisseminationStep<'a> {
    /// Level of the relaying node (root level … 1).
    pub level: usize,
    /// Node index within the level.
    pub node: usize,
    /// The corrupted member doing the relaying.
    pub member: PartyId,
    /// Child node index (at `level − 1`) being addressed.
    pub child: usize,
    /// The value the member *would* relay if honest (its current majority
    /// view), if any.
    pub honest_value: Option<&'a [u8]>,
}

/// An adversary whose corrupt members behave honestly (relay their view).
pub fn honest_adversary() -> impl FnMut(DisseminationStep<'_>) -> Option<Vec<u8>> {
    |step: DisseminationStep<'_>| step.honest_value.map(|v| v.to_vec())
}

/// An adversary whose corrupt members always push `garbage`.
pub fn constant_adversary(
    garbage: Vec<u8>,
) -> impl FnMut(DisseminationStep<'_>) -> Option<Vec<u8>> {
    move |_| Some(garbage.clone())
}

/// An adversary whose corrupt members stay silent.
pub fn silent_adversary() -> impl FnMut(DisseminationStep<'_>) -> Option<Vec<u8>> {
    |_| None
}

/// Outcome of one dissemination.
///
/// Values are `Rc`-shared: most slots and parties receive the same handful
/// of distinct payloads, so deep-copying one `Vec<u8>` per slot would cost
/// memory linear in `total_slots × payload` (hundreds of MB at n = 2^20).
#[derive(Clone, Debug)]
pub struct DisseminationResult {
    /// Value received at each virtual slot (leaf-committee seat).
    pub per_slot: Vec<Option<Rc<Vec<u8>>>>,
    /// Majority value per real party across its slots.
    pub per_party: Vec<Option<Rc<Vec<u8>>>>,
}

impl DisseminationResult {
    /// The value party `p` received, as a byte slice.
    pub fn party_value(&self, p: usize) -> Option<&[u8]> {
        self.per_party[p].as_deref().map(|v| v.as_slice())
    }
}

/// Strict-majority vote over byte strings; `None` on no strict majority.
fn majority(values: &[Rc<Vec<u8>>]) -> Option<Rc<Vec<u8>>> {
    if values.is_empty() {
        return None;
    }
    let mut counts: HashMap<&[u8], (usize, &Rc<Vec<u8>>)> = HashMap::new();
    for v in values {
        let entry = counts.entry(v.as_slice()).or_insert((0, v));
        entry.0 += 1;
    }
    let (count, best) = counts.values().max_by_key(|(c, _)| *c)?;
    if 2 * count > values.len() {
        Some(Rc::clone(best))
    } else {
        None
    }
}

/// Adds one copy of `value` to a per-seat tally. The tally holds one entry
/// per *distinct* payload with a multiplicity, instead of one `Rc` per
/// copy: a seat receives `committee_size` copies per relaying committee,
/// which at scale made the per-level inboxes the largest transient
/// allocation of the whole run.
fn tally_push(tally: &mut Vec<(Rc<Vec<u8>>, usize)>, value: &Rc<Vec<u8>>) {
    if let Some(entry) = tally
        .iter_mut()
        .find(|(v, _)| Rc::ptr_eq(v, value) || v.as_slice() == value.as_slice())
    {
        entry.1 += 1;
    } else {
        tally.push((Rc::clone(value), 1));
    }
}

/// Strict-majority vote over a tally — same semantics as [`majority`] over
/// the expanded copy list: a value wins iff its multiplicity exceeds half
/// the total copy count (at most one value can, so the winner is
/// independent of tally order).
fn majority_tally(tally: &[(Rc<Vec<u8>>, usize)]) -> Option<Rc<Vec<u8>>> {
    let total: usize = tally.iter().map(|(_, c)| *c).sum();
    let (best, count) = tally.iter().map(|(v, c)| (v, *c)).max_by_key(|&(_, c)| c)?;
    if 2 * count > total {
        Some(Rc::clone(best))
    } else {
        None
    }
}

/// Runs one top-down dissemination from the supreme committee.
///
/// `root_values` gives each root-committee member its initial value (honest
/// members of the supreme committee hold the agreed `(y, s)`; `None` models
/// a member that has nothing). `adversary` chooses what corrupted relays
/// send at every step.
///
/// All traffic is staged on `net` and charged to senders; receivers are
/// charged for every copy they process (they must read all copies to take
/// the majority — this is the `polylog(n)` per-party cost of Fig. 3
/// steps 3/6).
#[allow(clippy::needless_range_loop)] // node/seat indices address parallel per-level tables
pub fn disseminate(
    net: &mut Network,
    tree: &Tree,
    corrupt: &BTreeSet<PartyId>,
    root_values: &dyn Fn(PartyId) -> Option<Vec<u8>>,
    adversary: &mut AdversaryFn<'_>,
) -> DisseminationResult {
    let h = tree.height();
    let root_level = h - 1;

    // views[node][member_idx] = current value at that committee seat.
    // Values are Rc-shared: dissemination fan-out would otherwise clone the
    // payload once per recipient seat.
    let mut views: Vec<Vec<Option<Rc<Vec<u8>>>>> = (0..tree.nodes_at_level(root_level))
        .map(|node| {
            tree.committee(root_level, node)
                .iter()
                .map(|&m| root_values(m).map(Rc::new))
                .collect()
        })
        .collect();

    for level in (1..=root_level).rev() {
        let child_level = level - 1;

        // inbox[child node][seat] = tally of copies received this level
        // (distinct payload → multiplicity).
        #[allow(clippy::type_complexity)]
        let mut inbox: Vec<Vec<Vec<(Rc<Vec<u8>>, usize)>>> = (0..tree.nodes_at_level(child_level))
            .map(|node| vec![Vec::new(); tree.committee(child_level, node).len()])
            .collect();

        // Relay: every member of every node sends its value to every seat of
        // each child committee. Metrics are recorded per copy on both sides
        // (receivers must process all copies to majority-vote). The message
        // is addressed to the *seat*; routing is by seat so a party holding
        // several seats receives one copy per seat.
        for node in 0..tree.nodes_at_level(level) {
            let members = tree.committee(level, node).to_vec();
            for (mi, &member) in members.iter().enumerate() {
                for child in tree.children(level, node) {
                    let value: Option<Rc<Vec<u8>>> = if corrupt.contains(&member) {
                        adversary(DisseminationStep {
                            level,
                            node,
                            member,
                            child,
                            honest_value: views[node][mi].as_ref().map(|v| v.as_slice()),
                        })
                        .map(Rc::new)
                    } else {
                        views[node][mi].clone()
                    };
                    if let Some(bytes) = value {
                        let committee = tree.committee(child_level, child).to_vec();
                        // Relay copies keep their typed headers, so the
                        // per-copy charge lands in the payload's own
                        // tag/step bucket (ValueSeed → step 3,
                        // Certificate → step 6, headerless → untyped).
                        let relay_tag = wire::peek_tag(&bytes);
                        for (si, &recipient) in committee.iter().enumerate() {
                            net.metrics_mut().record_send_tagged(
                                member,
                                recipient,
                                bytes.len(),
                                relay_tag,
                            );
                            net.metrics_mut().record_receive_tagged(
                                recipient,
                                member,
                                bytes.len(),
                                relay_tag,
                            );
                            tally_push(&mut inbox[child][si], &bytes);
                        }
                    }
                }
            }
        }
        net.bump_round();

        views = (0..tree.nodes_at_level(child_level))
            .map(|node| {
                inbox[node]
                    .iter()
                    .map(|copies| majority_tally(copies))
                    .collect()
            })
            .collect();
    }

    // Leaf seats are the virtual slots, in order.
    let leaf_slots = tree.params().leaf_slots;
    let mut per_slot_rc: Vec<Option<Rc<Vec<u8>>>> = Vec::with_capacity(tree.params().total_slots());
    for leaf in 0..tree.params().leaf_count {
        for seat in 0..leaf_slots {
            per_slot_rc.push(views[leaf][seat].clone());
        }
    }

    let per_party: Vec<Option<Rc<Vec<u8>>>> = (0..tree.params().n)
        .map(|p| {
            let slots = tree.party_slots(PartyId::from(p));
            let values: Vec<Rc<Vec<u8>>> = slots
                .iter()
                .filter_map(|&s| per_slot_rc[s as usize].clone())
                .collect();
            if values.len() * 2 <= slots.len() {
                return None; // fewer than half the seats delivered anything
            }
            majority(&values)
        })
        .collect();

    DisseminationResult {
        per_slot: per_slot_rc,
        per_party,
    }
}

/// Charges every party the communication cost of establishing the tree via
/// the interactive KSSV'06 protocol, which this crate realizes structurally
/// rather than message-by-message (DESIGN.md §2, substitution 5).
///
/// The charge is the documented per-party cost of KSSV \[48\]: `polylog(n)`
/// bits and messages — instantiated as
/// `committee_size · height · 64` bytes and `committee_size · height`
/// messages per party.
pub fn charge_establishment(net: &mut Network, tree: &Tree) {
    let params = tree.params();
    let bytes = (params.committee_size * params.height * 64) as u64;
    let msgs = (params.committee_size * params.height) as u64;
    for p in 0..params.n {
        net.metrics_mut().charge_synthetic_tagged(
            PartyId::from(p),
            bytes,
            msgs,
            wire::tag::ESTABLISH,
        );
    }
    for _ in 0..params.height {
        net.bump_round();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::TreeAnalysis;
    use crate::params::TreeParams;
    use pba_crypto::prg::Prg;
    use pba_net::corruption::{max_corruptions, CorruptionPlan};

    fn setup(n: usize, z: usize) -> (Tree, Network) {
        let tree = Tree::build(&TreeParams::scaled(n, z), b"fae-seed");
        let net = Network::new(n);
        (tree, net)
    }

    #[test]
    fn honest_dissemination_reaches_everyone() {
        let (tree, mut net) = setup(128, 2);
        let result = disseminate(
            &mut net,
            &tree,
            &BTreeSet::new(),
            &|_| Some(b"value".to_vec()),
            &mut honest_adversary(),
        );
        for p in 0..128 {
            assert_eq!(
                result.party_value(p),
                Some(b"value".as_slice()),
                "party {p}"
            );
        }
        assert!(net.report().total_bytes > 0);
    }

    #[test]
    fn per_party_cost_is_balanced() {
        let (tree, mut net) = setup(256, 2);
        disseminate(
            &mut net,
            &tree,
            &BTreeSet::new(),
            &|_| Some(vec![7u8; 40]),
            &mut honest_adversary(),
        );
        let report = net.report();
        let avg = report.total_bytes as f64 / 256.0;
        // No party should carry more than ~a polylog multiple of the mean.
        assert!(
            (report.max_bytes_per_party as f64) < 200.0 * avg.max(1.0),
            "max {} vs avg {avg}",
            report.max_bytes_per_party
        );
    }

    #[test]
    fn byzantine_minority_cannot_corrupt_good_paths() {
        let mut prg = Prg::from_seed_bytes(b"byz");
        let (tree, mut net) = setup(256, 3);
        let t = max_corruptions(256, 0.2);
        let corrupt = CorruptionPlan::Random { t }.materialize(256, &mut prg);
        let analysis = TreeAnalysis::analyze(&tree, &corrupt);
        let result = disseminate(
            &mut net,
            &tree,
            &corrupt,
            &|_| Some(b"true-value".to_vec()),
            &mut constant_adversary(b"evil-value".to_vec()),
        );
        // Every non-isolated honest party must receive the true value.
        for p in 0..256u64 {
            let party = PartyId(p);
            if corrupt.contains(&party) || analysis.isolated().contains(&party) {
                continue;
            }
            assert_eq!(
                result.party_value(p as usize),
                Some(b"true-value".as_slice()),
                "party {party} on good paths got wrong value"
            );
        }
    }

    #[test]
    fn silent_adversary_still_delivers_on_good_paths() {
        let mut prg = Prg::from_seed_bytes(b"sil");
        let (tree, mut net) = setup(128, 2);
        let corrupt = CorruptionPlan::Random { t: 20 }.materialize(128, &mut prg);
        let analysis = TreeAnalysis::analyze(&tree, &corrupt);
        let result = disseminate(
            &mut net,
            &tree,
            &corrupt,
            &|_| Some(b"v".to_vec()),
            &mut silent_adversary(),
        );
        for p in 0..128u64 {
            let party = PartyId(p);
            if corrupt.contains(&party) || analysis.isolated().contains(&party) {
                continue;
            }
            assert_eq!(result.party_value(p as usize), Some(b"v".as_slice()));
        }
    }

    #[test]
    fn equivocating_adversary_cannot_split_good_path_parties() {
        let mut prg = Prg::from_seed_bytes(b"eq");
        let (tree, mut net) = setup(128, 2);
        let corrupt = CorruptionPlan::Random { t: 15 }.materialize(128, &mut prg);
        let analysis = TreeAnalysis::analyze(&tree, &corrupt);
        // Equivocate: different junk per child.
        let mut adversary = |step: DisseminationStep<'_>| Some(vec![step.child as u8; 8]);
        let result = disseminate(
            &mut net,
            &tree,
            &corrupt,
            &|_| Some(b"agreed".to_vec()),
            &mut adversary,
        );
        let mut delivered: BTreeSet<Vec<u8>> = BTreeSet::new();
        for p in 0..128u64 {
            let party = PartyId(p);
            if corrupt.contains(&party) || analysis.isolated().contains(&party) {
                continue;
            }
            if let Some(v) = result.party_value(p as usize) {
                delivered.insert(v.to_vec());
            }
        }
        assert_eq!(
            delivered.len(),
            1,
            "good-path parties disagree: {delivered:?}"
        );
        assert!(delivered.contains(b"agreed".as_slice()));
    }

    #[test]
    fn majority_helper() {
        let rc = |v: Vec<u8>| std::rc::Rc::new(v);
        assert_eq!(majority(&[]), None);
        assert_eq!(
            majority(&[rc(vec![1]), rc(vec![1]), rc(vec![2])]).map(|r| (*r).clone()),
            Some(vec![1])
        );
        assert_eq!(majority(&[rc(vec![1]), rc(vec![2])]), None); // tie
        assert_eq!(
            majority(&[rc(vec![3])]).map(|r| (*r).clone()),
            Some(vec![3])
        );
    }

    #[test]
    fn tally_matches_expanded_majority() {
        // The tallied inbox must agree with the naive copy-list vote on
        // every mix of strict-majority / tie / minority outcomes.
        let rc = |v: Vec<u8>| std::rc::Rc::new(v);
        let cases: Vec<Vec<Rc<Vec<u8>>>> = vec![
            vec![],
            vec![rc(vec![1])],
            vec![rc(vec![1]), rc(vec![1]), rc(vec![2])],
            vec![rc(vec![1]), rc(vec![2])],
            vec![
                rc(vec![1]),
                rc(vec![2]),
                rc(vec![2]),
                rc(vec![2]),
                rc(vec![3]),
            ],
            vec![rc(vec![1]), rc(vec![1]), rc(vec![2]), rc(vec![2])],
        ];
        for copies in cases {
            let mut tally = Vec::new();
            for c in &copies {
                tally_push(&mut tally, c);
            }
            assert_eq!(
                majority_tally(&tally).map(|r| (*r).clone()),
                majority(&copies).map(|r| (*r).clone()),
                "copies: {copies:?}"
            );
        }
    }

    #[test]
    fn establishment_charge_is_polylog_per_party() {
        let (tree, mut net) = setup(1024, 2);
        charge_establishment(&mut net, &tree);
        let report = net.report();
        assert!(report.max_bytes_per_party > 0);
        // polylog: far below n bytes for n=1024.
        assert!(
            report.max_bytes_per_party < 1024 * 32,
            "establishment charge too large: {}",
            report.max_bytes_per_party
        );
        assert_eq!(report.rounds, tree.height() as u64);
    }
}
