//! Tree parameters: the polylog constants of Definitions 2.3 and 3.4.
//!
//! The paper's constants (`log n` branching, `log³n` committees, `log⁵n`
//! parties per leaf, `z = O(log⁴n)` leaf memberships) only separate
//! asymptotically at astronomically large `n` — `log₂⁵(4096) ≈ 248k > n`.
//! As any implementation of this protocol family must, we expose the
//! constants as parameters:
//!
//! * [`TreeParams::scaled`] — defaults usable at simulation scale, chosen so
//!   every *structural* invariant of Def. 2.3/3.4 holds exactly and committee
//!   honest-majority holds with overwhelming probability;
//! * [`TreeParams::paper_exact`] — the literal log-power constants, used by
//!   structural property tests.

/// Parameters of an almost-everywhere communication tree.
///
/// Level numbering follows the implementation convention: level `0` holds
/// the leaf nodes (the paper's level 1), level `height − 1` is the root.
/// The paper's "level 0" (the parties themselves) is represented by the
/// virtual-slot assignment, not by tree nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeParams {
    /// Number of real parties `n`.
    pub n: usize,
    /// Leaf memberships per party (`z` in Def. 3.4; `1` recovers Def. 2.3).
    pub z: usize,
    /// Children per internal node (the paper's `log n`).
    pub branching: usize,
    /// Parties per internal-node committee (the paper's `log³ n`).
    pub committee_size: usize,
    /// Virtual slots (= assigned parties) per leaf (the paper's `log⁵ n`).
    pub leaf_slots: usize,
    /// Number of leaf nodes (the paper's `n / log⁵ n`), a power of
    /// `branching`.
    pub leaf_count: usize,
    /// Number of node levels including leaves and root:
    /// `branching^(height−1) = leaf_count`.
    pub height: usize,
}

fn log2_ceil(n: usize) -> usize {
    (usize::BITS - n.saturating_sub(1).leading_zeros()) as usize
}

impl TreeParams {
    /// Scaled-down defaults for simulation-size `n` with `z` leaf
    /// memberships per party.
    ///
    /// Committee sizes grow as `Θ(log n)` with constants large enough that a
    /// `β < 1/3` random corruption keeps committees `< 1/3`-corrupt with
    /// overwhelming probability at the benchmarked sizes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4` or `z == 0`.
    pub fn scaled(n: usize, z: usize) -> Self {
        assert!(n >= 4, "need at least 4 parties, got {n}");
        assert!(z >= 1, "z must be positive");
        let logn = log2_ceil(n).max(2);
        // Binary branching keeps leaf committees within 2x of the target;
        // a larger arity would let power-of-b quantization inflate them by
        // up to b x (and the step-5b exchange is quadratic in leaf size).
        // Heights stay O(log n).
        let branching = 2;
        let committee_size = (3 * logn).min(n);
        // Aim for leaf committees comparable to internal committees.
        let leaf_target = committee_size.max(4);
        let total_slots = n * z;
        // Smallest power of `branching` with per-leaf slots <= leaf_target.
        let mut leaf_count = 1usize;
        while total_slots.div_ceil(leaf_count) > leaf_target {
            leaf_count *= branching;
        }
        let leaf_slots = total_slots.div_ceil(leaf_count);
        let height = {
            let mut h = 1;
            let mut c = 1;
            while c < leaf_count {
                c *= branching;
                h += 1;
            }
            h
        };
        TreeParams {
            n,
            z,
            branching,
            committee_size,
            leaf_slots,
            leaf_count,
            height,
        }
    }

    /// The paper's literal constants: branching `⌈log₂n⌉`, committees
    /// `⌈log₂³n⌉`, leaf slots `⌈log₂⁵n⌉`, `z = ⌈log₂⁴n⌉`.
    ///
    /// At simulation scales these degenerate (one or two tree levels, leaf
    /// committees larger than `n`); they exist so property tests can check
    /// the structural invariants under the exact parameterization.
    ///
    /// # Panics
    ///
    /// Panics if `n < 4`.
    pub fn paper_exact(n: usize) -> Self {
        assert!(n >= 4, "need at least 4 parties, got {n}");
        let logn = log2_ceil(n).max(2);
        let branching = logn;
        let committee_size = logn.pow(3).min(n * logn.pow(4));
        let z = logn.pow(4);
        let leaf_slots_target = logn.pow(5);
        let total_slots = n * z;
        let mut leaf_count = 1usize;
        while leaf_count * branching * leaf_slots_target <= total_slots {
            leaf_count *= branching;
        }
        let leaf_slots = total_slots.div_ceil(leaf_count);
        let mut height = 1;
        let mut c = 1;
        while c < leaf_count {
            c *= branching;
            height += 1;
        }
        TreeParams {
            n,
            z,
            branching,
            committee_size,
            leaf_slots,
            leaf_count,
            height,
        }
    }

    /// Total virtual slots `leaf_count · leaf_slots` (≥ `n · z`; the excess
    /// is padded round-robin).
    pub fn total_slots(&self) -> usize {
        self.leaf_count * self.leaf_slots
    }

    /// Parameters for the SRDS security experiments (Figures 1–2), where
    /// every tree slot *is* an SRDS party laid out in identity order:
    /// `n = total_slots`, `z = 1`, shape taken from [`TreeParams::scaled`]
    /// at the requested size.
    pub fn for_slots(n_requested: usize) -> Self {
        let base = Self::scaled(n_requested, 1);
        TreeParams {
            n: base.total_slots(),
            z: 1,
            ..base
        }
    }

    /// Number of nodes at a level (level 0 = leaves).
    ///
    /// # Panics
    ///
    /// Panics if `level >= height`.
    pub fn nodes_at_level(&self, level: usize) -> usize {
        assert!(level < self.height, "level {level} out of range");
        let mut count = self.leaf_count;
        for _ in 0..level {
            count /= self.branching;
        }
        count
    }

    /// Validates internal consistency (power-of-branching leaf count, slot
    /// coverage, etc.).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.branching < 2 {
            return Err(format!("branching {} < 2", self.branching));
        }
        let expected_leaves = self.branching.pow(self.height as u32 - 1);
        if expected_leaves != self.leaf_count {
            return Err(format!(
                "leaf_count {} != branching^(height-1) = {expected_leaves}",
                self.leaf_count
            ));
        }
        if self.total_slots() < self.n * self.z {
            return Err(format!(
                "total slots {} cannot host {} parties x {} memberships",
                self.total_slots(),
                self.n,
                self.z
            ));
        }
        if self.committee_size == 0 || self.leaf_slots == 0 {
            return Err("empty committees".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_params_valid_across_sizes() {
        for n in [4usize, 8, 16, 64, 100, 256, 1000, 1024, 4096, 10_000, 16384] {
            for z in [1usize, 3, 8] {
                let p = TreeParams::scaled(n, z);
                p.validate().unwrap_or_else(|e| panic!("n={n} z={z}: {e}"));
                assert!(p.total_slots() >= n * z);
                assert_eq!(p.nodes_at_level(p.height - 1), 1, "single root");
            }
        }
    }

    #[test]
    fn paper_exact_params_valid() {
        for n in [16usize, 64, 256] {
            let p = TreeParams::paper_exact(n);
            p.validate().unwrap_or_else(|e| panic!("n={n}: {e}"));
            let logn = log2_ceil(n);
            assert_eq!(p.branching, logn);
            assert_eq!(p.z, logn.pow(4));
        }
    }

    #[test]
    fn committee_sizes_are_polylog() {
        // committee_size / log2(n) bounded by a constant across a sweep.
        for n in [64usize, 256, 1024, 4096, 16384] {
            let p = TreeParams::scaled(n, 1);
            let logn = log2_ceil(n) as f64;
            assert!((p.committee_size as f64) <= 3.0 * logn + 1.0);
            assert!((p.branching as f64) <= logn);
        }
    }

    #[test]
    fn nodes_at_level_partition() {
        let p = TreeParams::scaled(1024, 4);
        let mut total = 0;
        for level in 0..p.height {
            total += p.nodes_at_level(level);
        }
        // Geometric series: strictly fewer than 2x leaves.
        assert!(total < 2 * p.leaf_count + p.height);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_n_panics() {
        TreeParams::scaled(3, 1);
    }

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(4), 2);
        assert_eq!(log2_ceil(5), 3);
        assert_eq!(log2_ceil(1024), 10);
        assert_eq!(log2_ceil(1025), 11);
    }
}
