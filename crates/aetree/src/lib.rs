#![warn(missing_docs)]
//! # pba-aetree
//!
//! Almost-everywhere communication trees — the combinatorial substrate of
//! *Boyle–Cohen–Goel (PODC 2021)*, originally from King–Saia–Sanwalani–Vee
//! (SODA '06):
//!
//! * [`params`] — the polylog constants of Definitions 2.3/3.4 (scaled and
//!   paper-exact variants);
//! * [`tree`] — the `(n, I)`-party almost-everywhere communication tree
//!   with contiguous virtual-ID ranges and repeated-party assignment;
//! * [`analysis`] — good nodes, good paths, isolated parties;
//! * [`fae`] — the `f_ae-comm` functionality: metered Byzantine-tolerant
//!   dissemination from the supreme committee, plus KSSV establishment
//!   accounting;
//! * [`robust`] — byzantine-robust redundant-path aggregation: node values
//!   ascend via full committees with per-child strict-majority voting.
pub mod analysis;
pub mod fae;
pub mod params;
pub mod robust;
pub mod tree;

pub use analysis::TreeAnalysis;
pub use params::TreeParams;
pub use tree::Tree;
