//! The `(n, I)`-party almost-everywhere communication tree (Def. 2.3) and
//! its repeated-parties variant (Def. 3.4).
//!
//! This is the combinatorial object of King–Saia–Sanwalani–Vee (SODA '06)
//! that both the SRDS robustness experiment (Fig. 1) and the BA protocol
//! (Fig. 3) are built on:
//!
//! * a `branching`-ary rooted tree of `height` levels; level 0 holds the
//!   leaf nodes, the top level the root;
//! * every internal node is assigned a committee of parties;
//! * every leaf is assigned `leaf_slots` **virtual slots**; virtual IDs are
//!   laid out contiguously left-to-right, so the virtual IDs under any node
//!   form one contiguous range (the planar/increasing-ID property the
//!   paper's `range(v)` checks rely on);
//! * each real party occupies `z` virtual slots (`z = 1` is Def. 2.3's
//!   one-leaf-per-party assignment).
//!
//! # Examples
//!
//! ```
//! use pba_aetree::params::TreeParams;
//! use pba_aetree::tree::Tree;
//!
//! let params = TreeParams::scaled(256, 2);
//! let tree = Tree::build(&params, b"setup-seed");
//! assert_eq!(tree.node_range(tree.height() - 1, 0), 0..params.total_slots() as u64);
//! assert!(!tree.root_committee().is_empty());
//! ```

use crate::params::TreeParams;
use pba_crypto::prg::Prg;
use pba_net::PartyId;

/// A node address: `(level, index)` with level 0 = leaves.
pub type NodeAddr = (usize, usize);

/// A built almost-everywhere communication tree.
#[derive(Clone, Debug)]
pub struct Tree {
    params: TreeParams,
    /// `committees[level][node]` → committee members. For level 0 (leaves)
    /// this is the multiset of parties occupying the leaf's virtual slots.
    committees: Vec<Vec<Vec<PartyId>>>,
    /// Virtual slot → real party; length `params.total_slots()`.
    slot_party: Vec<PartyId>,
    /// Real party → its virtual slots (sorted), CSR layout: party `p`
    /// owns `party_slot_values[offsets[p] .. offsets[p+1]]`. One flat
    /// arena instead of `n` tiny `Vec`s — at n = 2^20 the per-party
    /// `Vec<Vec<u64>>` layout costs a million allocations plus 24 bytes
    /// of header each, which dominated the tree's footprint.
    party_slot_offsets: Vec<u32>,
    party_slot_values: Vec<u64>,
}

/// Builds the CSR `(offsets, values)` arena mapping each party to its
/// sorted slot list, by counting sort over the slot assignment (two
/// passes, zero per-party allocations). Values come out sorted per party
/// because slots are visited in increasing order.
fn party_slots_csr(n: usize, slot_party: &[PartyId]) -> (Vec<u32>, Vec<u64>) {
    assert!(
        u32::try_from(slot_party.len()).is_ok(),
        "slot count exceeds CSR offset width"
    );
    let mut offsets = vec![0u32; n + 1];
    for &p in slot_party {
        offsets[p.index() + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    let mut values = vec![0u64; slot_party.len()];
    for (slot, &p) in slot_party.iter().enumerate() {
        let c = &mut cursor[p.index()];
        values[*c as usize] = slot as u64;
        *c += 1;
    }
    (offsets, values)
}

impl Tree {
    /// Builds the tree from setup randomness.
    ///
    /// The slot assignment is a PRG shuffle of each party repeated `z`
    /// times (padded round-robin up to `total_slots`); internal committees
    /// are PRG-sampled. Crucially — matching the paper's corruption model —
    /// callers must derive `seed` from randomness fixed *after* the
    /// adversary commits to its corruption set (the tree is built online by
    /// the KSSV protocol, not by the trusted setup).
    ///
    /// # Panics
    ///
    /// Panics if `params` fails validation.
    pub fn build(params: &TreeParams, seed: &[u8]) -> Self {
        params.validate().expect("invalid tree parameters");
        let mut prg = Prg::from_seed_label(seed, "aetree-build");

        // Virtual slot assignment: each party z times, padding round-robin.
        let total = params.total_slots();
        let mut slot_party: Vec<PartyId> = Vec::with_capacity(total);
        for rep in 0..params.z {
            let _ = rep;
            for i in 0..params.n {
                slot_party.push(PartyId::from(i));
            }
        }
        let mut pad = 0usize;
        while slot_party.len() < total {
            slot_party.push(PartyId::from(pad % params.n));
            pad += 1;
        }
        prg.shuffle(&mut slot_party);

        let (party_slot_offsets, party_slot_values) = party_slots_csr(params.n, &slot_party);

        // Leaf committees = parties of their slots.
        let mut committees: Vec<Vec<Vec<PartyId>>> = Vec::with_capacity(params.height);
        let mut leaves = Vec::with_capacity(params.leaf_count);
        for leaf in 0..params.leaf_count {
            let start = leaf * params.leaf_slots;
            let members: Vec<PartyId> = slot_party[start..start + params.leaf_slots].to_vec();
            leaves.push(members);
        }
        committees.push(leaves);

        // Internal committees sampled from all parties.
        for level in 1..params.height {
            let count = params.nodes_at_level(level);
            let mut level_committees = Vec::with_capacity(count);
            for node in 0..count {
                let mut node_prg =
                    prg.child("committee", (level * params.leaf_count + node) as u64);
                let members: Vec<PartyId> = node_prg
                    .sample_distinct(params.n as u64, params.committee_size.min(params.n))
                    .into_iter()
                    .map(PartyId)
                    .collect();
                level_committees.push(members);
            }
            committees.push(level_committees);
        }

        Tree {
            params: *params,
            committees,
            slot_party,
            party_slot_offsets,
            party_slot_values,
        }
    }

    /// Builds a tree whose slot assignment is the **identity**: slot `i` is
    /// party `i`. This is the layout of the SRDS security experiments
    /// (Figures 1–2), where "level-0 nodes are indexed and ordered by the
    /// parties … in increasing order". Internal committees are still
    /// PRG-sampled from `seed`.
    ///
    /// # Panics
    ///
    /// Panics unless `params.z == 1` and `params.total_slots() == params.n`
    /// (use [`crate::params::TreeParams::for_slots`]).
    pub fn build_identity(params: &TreeParams, seed: &[u8]) -> Self {
        assert_eq!(params.z, 1, "identity layout requires z = 1");
        assert_eq!(
            params.total_slots(),
            params.n,
            "identity layout requires exactly one slot per party"
        );
        let random = Self::build(params, seed);
        let slot_party: Vec<PartyId> = (0..params.n).map(PartyId::from).collect();
        let mut committees = random.committees;
        // Rebuild leaf committees to match the identity assignment.
        for (leaf, committee) in committees[0].iter_mut().enumerate() {
            let start = leaf * params.leaf_slots;
            *committee = slot_party[start..start + params.leaf_slots].to_vec();
        }
        Tree::from_parts(params, committees, slot_party)
    }

    /// Builds a tree with **explicit committees and slot assignment** — the
    /// constructor adversaries use in the Fig. 1 robustness experiment,
    /// where the adversary chooses the tree (subject to Def. 2.3, which the
    /// experiment validates separately via [`crate::analysis`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches (level/node counts, slot counts).
    pub fn from_parts(
        params: &TreeParams,
        committees: Vec<Vec<Vec<PartyId>>>,
        slot_party: Vec<PartyId>,
    ) -> Self {
        params.validate().expect("invalid tree parameters");
        assert_eq!(committees.len(), params.height, "level count mismatch");
        for (level, nodes) in committees.iter().enumerate() {
            assert_eq!(
                nodes.len(),
                params.nodes_at_level(level),
                "node count mismatch at level {level}"
            );
        }
        assert_eq!(
            slot_party.len(),
            params.total_slots(),
            "slot count mismatch"
        );
        let (party_slot_offsets, party_slot_values) = party_slots_csr(params.n, &slot_party);
        Tree {
            params: *params,
            committees,
            slot_party,
            party_slot_offsets,
            party_slot_values,
        }
    }

    /// The parameters this tree was built with.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }

    /// Number of node levels (level 0 = leaves, `height−1` = root).
    pub fn height(&self) -> usize {
        self.params.height
    }

    /// Number of nodes at `level`.
    pub fn nodes_at_level(&self, level: usize) -> usize {
        self.committees[level].len()
    }

    /// Committee of node `(level, node)`.
    ///
    /// # Panics
    ///
    /// Panics if the address is out of range.
    pub fn committee(&self, level: usize, node: usize) -> &[PartyId] {
        &self.committees[level][node]
    }

    /// The supreme committee (root).
    pub fn root_committee(&self) -> &[PartyId] {
        let root_level = self.params.height - 1;
        &self.committees[root_level][0]
    }

    /// Children of an internal node, as indices at `level − 1`.
    ///
    /// # Panics
    ///
    /// Panics if `level == 0` (leaves have no node children).
    pub fn children(&self, level: usize, node: usize) -> std::ops::Range<usize> {
        assert!(level > 0, "leaves have no children nodes");
        let b = self.params.branching;
        node * b..(node + 1) * b
    }

    /// Parent index (at `level + 1`) of a non-root node.
    ///
    /// # Panics
    ///
    /// Panics if `level` is the root level.
    pub fn parent(&self, level: usize, node: usize) -> usize {
        assert!(level + 1 < self.params.height, "root has no parent");
        node / self.params.branching
    }

    /// Contiguous range of virtual slot IDs under node `(level, node)` —
    /// the paper's `range(v)`.
    pub fn node_range(&self, level: usize, node: usize) -> std::ops::Range<u64> {
        let leaves_under = self.params.branching.pow(level as u32);
        let first_leaf = node * leaves_under;
        let start = (first_leaf * self.params.leaf_slots) as u64;
        let end = start + (leaves_under * self.params.leaf_slots) as u64;
        start..end
    }

    /// Virtual-slot range of a single leaf.
    pub fn leaf_range(&self, leaf: usize) -> std::ops::Range<u64> {
        self.node_range(0, leaf)
    }

    /// The leaf containing a virtual slot.
    pub fn slot_leaf(&self, slot: u64) -> usize {
        slot as usize / self.params.leaf_slots
    }

    /// Real party occupying a virtual slot.
    pub fn slot_party(&self, slot: u64) -> PartyId {
        self.slot_party[slot as usize]
    }

    /// All virtual slots of a real party (its `z` leaf memberships).
    pub fn party_slots(&self, party: PartyId) -> &[u64] {
        let i = party.index();
        let (start, end) = (
            self.party_slot_offsets[i] as usize,
            self.party_slot_offsets[i + 1] as usize,
        );
        &self.party_slot_values[start..end]
    }

    /// The distinct leaves a party belongs to.
    pub fn party_leaves(&self, party: PartyId) -> Vec<usize> {
        let mut leaves: Vec<usize> = self
            .party_slots(party)
            .iter()
            .map(|&s| self.slot_leaf(s))
            .collect();
        leaves.sort_unstable();
        leaves.dedup();
        leaves
    }

    /// A committee-takeover corruption plan: corrupt up to `max` of the
    /// distinct parties serving in `leaf`'s committee (slot order, so the
    /// choice is deterministic for a given tree).
    ///
    /// This is the structured placement the chaos sweep uses to
    /// concentrate the adversary's budget on one a.e.-tree leaf — the
    /// attack the tree's goodness analysis is supposed to absorb.
    ///
    /// # Panics
    ///
    /// Panics if `leaf` is out of range.
    pub fn leaf_takeover(&self, leaf: usize, max: usize) -> pba_net::corruption::CorruptionPlan {
        let mut chosen: Vec<PartyId> = Vec::new();
        for &member in self.committee(0, leaf) {
            if chosen.len() == max {
                break;
            }
            if !chosen.contains(&member) {
                chosen.push(member);
            }
        }
        pba_net::corruption::CorruptionPlan::Explicit(chosen.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(n: usize, z: usize) -> Tree {
        Tree::build(&TreeParams::scaled(n, z), b"test-seed")
    }

    #[test]
    fn every_party_has_z_slots() {
        let t = tree(100, 3);
        let mut total = 0;
        for p in 0..100 {
            let slots = t.party_slots(PartyId(p));
            assert!(slots.len() >= 3, "party {p} has {} slots", slots.len());
            total += slots.len();
        }
        assert_eq!(total, t.params().total_slots());
    }

    #[test]
    fn party_slots_are_sorted() {
        // The CSR arena must preserve the documented sorted-ascending
        // order the per-party Vec layout produced.
        let t = tree(100, 3);
        for p in 0..100u64 {
            let slots = t.party_slots(PartyId(p));
            assert!(slots.windows(2).all(|w| w[0] < w[1]), "party {p}");
        }
    }

    #[test]
    fn slot_party_consistency() {
        let t = tree(64, 2);
        for p in 0..64u64 {
            for &s in t.party_slots(PartyId(p)) {
                assert_eq!(t.slot_party(s), PartyId(p));
            }
        }
    }

    #[test]
    fn node_ranges_are_contiguous_and_nested() {
        let t = tree(256, 2);
        let h = t.height();
        // Root covers everything.
        assert_eq!(t.node_range(h - 1, 0), 0..t.params().total_slots() as u64);
        // Children partition parents.
        for level in 1..h {
            for node in 0..t.nodes_at_level(level) {
                let parent_range = t.node_range(level, node);
                let mut cursor = parent_range.start;
                for child in t.children(level, node) {
                    let cr = t.node_range(level - 1, child);
                    assert_eq!(cr.start, cursor, "gap at level {level} node {node}");
                    cursor = cr.end;
                }
                assert_eq!(cursor, parent_range.end);
            }
        }
    }

    #[test]
    fn parent_child_inverse() {
        let t = tree(256, 1);
        for level in 1..t.height() {
            for node in 0..t.nodes_at_level(level) {
                for child in t.children(level, node) {
                    assert_eq!(t.parent(level - 1, child), node);
                }
            }
        }
    }

    #[test]
    fn leaf_committees_match_slots() {
        let t = tree(128, 2);
        for leaf in 0..t.params().leaf_count {
            let committee = t.committee(0, leaf);
            let range = t.leaf_range(leaf);
            assert_eq!(committee.len(), t.params().leaf_slots);
            for (i, slot) in range.enumerate() {
                assert_eq!(committee[i], t.slot_party(slot));
            }
        }
    }

    #[test]
    fn leaf_takeover_targets_leaf_committee() {
        use pba_net::corruption::CorruptionPlan;
        let t = tree(128, 2);
        let leaf = 3;
        let plan = t.leaf_takeover(leaf, 4);
        let CorruptionPlan::Explicit(set) = &plan else {
            panic!("takeover plan must be explicit");
        };
        assert!(!set.is_empty());
        assert!(set.len() <= 4);
        let committee: std::collections::BTreeSet<PartyId> =
            t.committee(0, leaf).iter().copied().collect();
        assert!(
            set.iter().all(|p| committee.contains(p)),
            "takeover corrupted a party outside the leaf committee"
        );
        // Uncapped: every distinct committee member.
        let full = t.leaf_takeover(leaf, usize::MAX);
        let CorruptionPlan::Explicit(full_set) = &full else {
            panic!("takeover plan must be explicit");
        };
        assert_eq!(full_set, &committee);
    }

    #[test]
    fn internal_committees_have_distinct_members() {
        let t = tree(512, 1);
        for level in 1..t.height() {
            for node in 0..t.nodes_at_level(level) {
                let c = t.committee(level, node);
                let set: std::collections::HashSet<_> = c.iter().collect();
                assert_eq!(set.len(), c.len());
            }
        }
    }

    #[test]
    fn deterministic_build() {
        let p = TreeParams::scaled(64, 2);
        let a = Tree::build(&p, b"s");
        let b = Tree::build(&p, b"s");
        assert_eq!(a.root_committee(), b.root_committee());
        let c = Tree::build(&p, b"other");
        // Different seeds give different assignments (overwhelmingly).
        assert_ne!(
            (0..p.total_slots() as u64)
                .map(|s| a.slot_party(s))
                .collect::<Vec<_>>(),
            (0..p.total_slots() as u64)
                .map(|s| c.slot_party(s))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn party_leaves_dedup() {
        let t = tree(64, 4);
        for p in 0..64u64 {
            let leaves = t.party_leaves(PartyId(p));
            let mut sorted = leaves.clone();
            sorted.dedup();
            assert_eq!(leaves, sorted);
            assert!(!leaves.is_empty());
        }
    }

    #[test]
    fn from_parts_roundtrip() {
        let t = tree(64, 1);
        let rebuilt = Tree::from_parts(t.params(), t.committees.clone(), t.slot_party.clone());
        assert_eq!(rebuilt.root_committee(), t.root_committee());
    }

    #[test]
    #[should_panic(expected = "slot count mismatch")]
    fn from_parts_validates_slots() {
        let t = tree(64, 1);
        Tree::from_parts(t.params(), t.committees.clone(), vec![PartyId(0)]);
    }
}
