//! Byzantine-robust redundant-path aggregation up the tree.
//!
//! The single-copy ascent (one representative per node forwards one
//! aggregate to the parent) lets a corrupted node *withhold* and erase its
//! whole subtree from the final certificate: a third of one committee
//! silences `leaf_slots · branching^level` virtual identities. This module
//! implements the King–Saia-style fix — **redundant-path routing**:
//!
//! * every distinct member of a node's committee carries its own copy of
//!   the node's value;
//! * a child's full committee transmits its copies to the parent's full
//!   committee (a metered bipartite exchange — the *communication
//!   dilution* of the redundancy factor);
//! * each honest parent member takes, per child, the value held by a
//!   **strict majority** of the child's distinct members, then combines
//!   the per-child winners with a caller-supplied closure (SRDS
//!   aggregation in `π_ba`, another strict-majority vote for plain
//!   values).
//!
//! Goodness is thereby upgraded from the 1/3 threshold of
//! [`crate::analysis::committee_good`] to a strict-minority bound: a
//! node's honest value survives whenever corrupted members are **fewer
//! than half** of its distinct committee, and a fully-corrupted node can
//! still only withhold or inject copies that the caller's `combine`
//! validation drops — never forge consensus on its own.
//!
//! The engine is generic over the carried value `T` so the same machinery
//! ascends SRDS signatures (certification, Fig. 3 step 5) and plain bytes
//! (committee-input fan-in).

use crate::tree::Tree;
use pba_net::wire::tag;
use pba_net::{Network, PartyId};
use std::collections::BTreeSet;

/// Outcome of one robust ascent.
#[derive(Clone, Debug)]
pub struct AscentOutcome<T> {
    /// The value a strict majority of the root's distinct committee
    /// members hold after the ascent (`None` when no strict majority
    /// exists — e.g. the adversary split or silenced the root).
    pub root_value: Option<T>,
    /// `honest_values[level][node]`: the value honest members of that node
    /// hold (level 0 = the caller-supplied leaf values).
    pub honest_values: Vec<Vec<Option<T>>>,
    /// Total redundant copies transmitted child→parent — the dilution
    /// factor the metrics table was charged for.
    pub copies_sent: u64,
}

/// The distinct members of a committee, in sorted order (leaf committees
/// list one entry per virtual slot, so parties holding several slots
/// repeat; votes are counted per distinct member).
pub fn dedup_committee(members: &[PartyId]) -> Vec<PartyId> {
    let set: BTreeSet<PartyId> = members.iter().copied().collect();
    set.into_iter().collect()
}

/// The value held by a **strict majority** of `copies` (`None` entries are
/// silent members and count against every value).
pub fn strict_majority<T: Clone + PartialEq>(copies: &[Option<T>]) -> Option<T> {
    let total = copies.len();
    let mut tally: Vec<(&T, usize)> = Vec::new();
    for copy in copies.iter().flatten() {
        if let Some(entry) = tally.iter_mut().find(|(v, _)| *v == copy) {
            entry.1 += 1;
        } else {
            tally.push((copy, 1));
        }
    }
    tally
        .into_iter()
        .find(|(_, count)| 2 * count > total)
        .map(|(v, _)| v.clone())
}

/// Ascends per-leaf values to the root over redundant committee paths.
///
/// * `leaf_honest[leaf]` — the value every *honest* member of that leaf's
///   committee holds (`None` = the leaf produced nothing);
/// * `combine(net, level, node, winners)` — computes the node's honest
///   value from the per-child strict-majority winners (`winners[i]`
///   corresponds to the `i`-th child; the network handle is passed through
///   so the closure can meter its own sub-protocol cost);
/// * `corrupt_copy(level, node, member)` — the copy a corrupted member of
///   node `(level, node)` transmits upward (`None` = withhold);
/// * `len_of` — the metered wire size of a copy;
/// * `copy_tag` — the wire tag the child→parent copies are charged under
///   ([`tag::AGGR_SHARE`] for the SRDS signature ascent,
///   [`tag::FANIN`] for the plain input fan-in).
///
/// Every honest member's copy travels to every distinct parent-committee
/// member and is charged on the metrics table as a real envelope, so the
/// locality and max-bytes columns reflect the redundancy factor.
///
/// # Panics
///
/// Panics if `leaf_honest` does not have one entry per leaf.
#[allow(clippy::too_many_arguments)] // the ascent is parameterized over value, adversary, metering, and wire tag
pub fn ascend<T, F, G, L>(
    net: &mut Network,
    tree: &Tree,
    corrupt: &BTreeSet<PartyId>,
    leaf_honest: Vec<Option<T>>,
    mut combine: F,
    mut corrupt_copy: G,
    len_of: L,
    copy_tag: u8,
) -> AscentOutcome<T>
where
    T: Clone + PartialEq,
    F: FnMut(&mut Network, usize, usize, &[Option<T>]) -> Option<T>,
    G: FnMut(usize, usize, PartyId) -> Option<T>,
    L: Fn(&T) -> usize,
{
    assert_eq!(
        leaf_honest.len(),
        tree.nodes_at_level(0),
        "one honest value per leaf"
    );
    let height = tree.height();
    let mut honest_values: Vec<Vec<Option<T>>> = Vec::with_capacity(height);
    honest_values.push(leaf_honest);
    let mut copies_sent = 0u64;

    for level in 1..height {
        let mut row: Vec<Option<T>> = Vec::with_capacity(tree.nodes_at_level(level));
        for node in 0..tree.nodes_at_level(level) {
            let parent_committee = dedup_committee(tree.committee(level, node));
            let mut winners: Vec<Option<T>> = Vec::new();
            for child in tree.children(level, node) {
                let child_committee = dedup_committee(tree.committee(level - 1, child));
                let child_value = &honest_values[level - 1][child];
                let copies: Vec<Option<T>> = child_committee
                    .iter()
                    .map(|&member| {
                        if corrupt.contains(&member) {
                            corrupt_copy(level - 1, child, member)
                        } else {
                            child_value.clone()
                        }
                    })
                    .collect();
                for (i, &sender) in child_committee.iter().enumerate() {
                    if corrupt.contains(&sender) {
                        continue;
                    }
                    let Some(copy) = &copies[i] else { continue };
                    let bytes = len_of(copy);
                    for &receiver in &parent_committee {
                        if receiver == sender {
                            continue;
                        }
                        net.metrics_mut()
                            .record_send_tagged(sender, receiver, bytes, copy_tag);
                        net.metrics_mut()
                            .record_receive_tagged(receiver, sender, bytes, copy_tag);
                        copies_sent += 1;
                    }
                }
                winners.push(strict_majority(&copies));
            }
            row.push(combine(net, level, node, &winners));
        }
        // One synchronous round per level for the copy transmission.
        net.bump_round();
        honest_values.push(row);
    }

    let root_level = height - 1;
    let root_committee = dedup_committee(tree.committee(root_level, 0));
    let root_honest = &honest_values[root_level][0];
    let root_copies: Vec<Option<T>> = root_committee
        .iter()
        .map(|&member| {
            if corrupt.contains(&member) {
                corrupt_copy(root_level, 0, member)
            } else {
                root_honest.clone()
            }
        })
        .collect();
    let root_value = strict_majority(&root_copies);

    AscentOutcome {
        root_value,
        honest_values,
        copies_sent,
    }
}

/// Robust fan-in of one byte per party: each leaf takes the strict
/// majority over its distinct members' inputs, and internal nodes combine
/// child winners again by **strict majority** — for an adversarial value
/// to ascend, the adversary must out-vote a majority of committees on a
/// majority of sibling branches at every level, not just poison one
/// subtree. Corrupted parties uniformly vote `corrupt_value`
/// (`None` = silent) — the colluding worst case for a vote.
///
/// This is the `certification/coin fan-in` path of `π_ba`: the supreme
/// committee's inputs arrive through the same redundant routing as the
/// certificates, instead of each member trusting its own local view.
pub fn robust_input_fanin(
    net: &mut Network,
    tree: &Tree,
    corrupt: &BTreeSet<PartyId>,
    inputs: &[u8],
    corrupt_value: Option<u8>,
) -> AscentOutcome<u8> {
    robust_input_fanin_with(net, tree, corrupt, inputs, corrupt_value, |_| 1, tag::FANIN)
}

/// [`robust_input_fanin`] generalised over the voted value type, the
/// per-copy wire size, and the charge tag.
///
/// The bit fan-in is the `T = u8`, one-byte-per-copy, [`tag::FANIN`]
/// instantiation. Multi-value BA routes each party's ℓ-byte input through
/// the same strict-majority ascent with `T = Vec<u8>`, copies charged at
/// their framed `MvInput` size under [`tag::MV_INPUT`] — whole values are
/// voted, not individual bytes, so a winner is always some party's input.
pub fn robust_input_fanin_with<T: Clone + PartialEq>(
    net: &mut Network,
    tree: &Tree,
    corrupt: &BTreeSet<PartyId>,
    inputs: &[T],
    corrupt_value: Option<T>,
    len_of: impl Fn(&T) -> usize,
    copy_tag: u8,
) -> AscentOutcome<T> {
    assert_eq!(inputs.len(), tree.params().n, "one input value per party");
    let leaf_honest: Vec<Option<T>> = (0..tree.nodes_at_level(0))
        .map(|leaf| {
            let members = dedup_committee(tree.committee(0, leaf));
            let copies: Vec<Option<T>> = members
                .iter()
                .map(|&m| {
                    if corrupt.contains(&m) {
                        corrupt_value.clone()
                    } else {
                        Some(inputs[m.index()].clone())
                    }
                })
                .collect();
            strict_majority(&copies)
        })
        .collect();
    let corrupt_copy = corrupt_value;
    ascend(
        net,
        tree,
        corrupt,
        leaf_honest,
        |_net, _level, _node, winners| strict_majority(winners),
        move |_, _, _| corrupt_copy.clone(),
        len_of,
        copy_tag,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TreeParams;

    fn tree(n: usize, z: usize) -> Tree {
        Tree::build(&TreeParams::scaled(n, z), b"robust-seed")
    }

    /// Median over *present* child winners — models the SRDS combine,
    /// which keeps whatever valid children delivered and drops the rest
    /// (partial coverage instead of failure). Only sound when evil copies
    /// cannot survive to this point (the SRDS combine validates and drops
    /// them), so tests using it model Byzantine members as withholding.
    fn median_combine(
        _net: &mut Network,
        _level: usize,
        _node: usize,
        winners: &[Option<u64>],
    ) -> Option<u64> {
        let mut present: Vec<u64> = winners.iter().flatten().copied().collect();
        if present.is_empty() {
            return None;
        }
        present.sort_unstable();
        Some(present[present.len() / 2])
    }

    /// Strict-majority vote over child winners — the plain-value combine
    /// of [`robust_input_fanin`], safe against unvalidated evil copies.
    fn vote_combine(
        _net: &mut Network,
        _level: usize,
        _node: usize,
        winners: &[Option<u64>],
    ) -> Option<u64> {
        strict_majority(winners)
    }

    #[test]
    fn strict_majority_thresholds() {
        // 2-of-3 is a strict majority; 2-of-4 is not.
        assert_eq!(strict_majority(&[Some(7u64), Some(7), None]), Some(7));
        assert_eq!(strict_majority(&[Some(7u64), Some(7), None, None]), None);
        // A silent-majority committee elects nothing.
        assert_eq!(strict_majority::<u64>(&[None, None, Some(1)]), None);
        // Splits elect nothing.
        assert_eq!(
            strict_majority(&[Some(1u64), Some(2), Some(1), Some(2)]),
            None
        );
        assert_eq!(strict_majority::<u64>(&[]), None);
    }

    #[test]
    fn honest_ascent_delivers_leaf_value() {
        let t = tree(64, 2);
        let mut net = Network::new(64);
        let leaves = t.nodes_at_level(0);
        let out = ascend(
            &mut net,
            &t,
            &BTreeSet::new(),
            vec![Some(42u64); leaves],
            median_combine,
            |_, _, _| None,
            |_| 8,
            tag::FANIN,
        );
        assert_eq!(out.root_value, Some(42));
        for row in &out.honest_values {
            assert!(row.iter().all(|v| *v == Some(42)));
        }
        assert!(out.copies_sent > 0);
    }

    #[test]
    fn ascent_meters_redundant_copies() {
        let t = tree(64, 2);
        let mut net = Network::new(64);
        let leaves = t.nodes_at_level(0);
        let out = ascend(
            &mut net,
            &t,
            &BTreeSet::new(),
            vec![Some(1u64); leaves],
            median_combine,
            |_, _, _| None,
            |_| 8,
            tag::FANIN,
        );
        // Every copy was charged as a real envelope: totals and locality
        // both reflect the dilution factor.
        let report = net.report();
        assert_eq!(report.total_bytes, out.copies_sent * 8);
        assert!(report.max_locality > 1, "copies invisible to locality");
        assert_eq!(report.rounds, (t.height() - 1) as u64);
    }

    #[test]
    fn minority_corruption_cannot_flip_or_withhold() {
        let t = tree(96, 2);
        // A quarter of all parties collude and vote an evil value at
        // every node they sit on.
        let corrupt: BTreeSet<PartyId> = (0..24).map(PartyId).collect();
        let mut net = Network::new(96);
        let leaves = t.nodes_at_level(0);
        let out = ascend(
            &mut net,
            &t,
            &corrupt,
            vec![Some(5u64); leaves],
            vote_combine,
            |_, _, _| Some(666), // colluding evil copy everywhere
            |_| 8,
            tag::FANIN,
        );
        // Under the voting combine the evil value can never become the
        // root's value: forging it requires out-voting a majority of
        // committees on *every* sibling branch of some level, far beyond
        // a quarter of the parties. The worst the minority achieves is a
        // split (`None`), which callers resolve by falling back to each
        // member's own view.
        assert!(
            matches!(out.root_value, Some(5) | None),
            "evil minority forged the root: {:?}",
            out.root_value
        );
    }

    #[test]
    fn majority_corrupted_leaf_is_contained() {
        let t = tree(64, 2);
        // Fully corrupt leaf 0's distinct members. In the SRDS ascent
        // their forged copies fail validation at the parent (modeled here
        // as withholding), so the leaf's subtree is simply absent and the
        // siblings carry the combine — the run loses coverage, not the
        // certificate.
        let corrupt: BTreeSet<PartyId> = dedup_committee(t.committee(0, 0)).into_iter().collect();
        let mut net = Network::new(64);
        let leaves = t.nodes_at_level(0);
        let mut leaf_honest = vec![Some(9u64); leaves];
        leaf_honest[0] = None; // honest members of leaf 0 are outvoted anyway
        let out = ascend(
            &mut net,
            &t,
            &corrupt,
            leaf_honest,
            median_combine,
            |_, _, _| None,
            |_| 8,
            tag::FANIN,
        );
        assert_eq!(
            out.root_value,
            Some(9),
            "one lost leaf must not break the root under redundant paths"
        );
    }

    #[test]
    fn withholding_minority_does_not_silence_a_node() {
        let t = tree(64, 2);
        // Corrupt a strict minority of leaf 3's members; they withhold.
        let members = dedup_committee(t.committee(0, 3));
        let take = (members.len() - 1) / 2; // strictly below half
        let corrupt: BTreeSet<PartyId> = members.into_iter().take(take).collect();
        let mut net = Network::new(64);
        let leaves = t.nodes_at_level(0);
        let out = ascend(
            &mut net,
            &t,
            &corrupt,
            vec![Some(3u64); leaves],
            median_combine,
            |_, _, _| None,
            |_| 8,
            tag::FANIN,
        );
        assert_eq!(out.root_value, Some(3));
        // The level-1 parent of leaf 3 still computed the honest value.
        assert_eq!(out.honest_values[1][3 / t.params().branching], Some(3));
    }

    #[test]
    fn input_fanin_carries_unanimous_byte() {
        let t = tree(48, 2);
        let mut net = Network::new(48);
        let corrupt: BTreeSet<PartyId> = (0..4).map(PartyId).collect();
        let out = robust_input_fanin(&mut net, &t, &corrupt, &[1u8; 48], Some(0xaa));
        assert_eq!(out.root_value, Some(1));
    }

    #[test]
    fn input_fanin_is_deterministic() {
        let t = tree(48, 2);
        let corrupt: BTreeSet<PartyId> = (10..16).map(PartyId).collect();
        let inputs: Vec<u8> = (0..48).map(|i| (i % 2) as u8).collect();
        let run = || {
            let mut net = Network::new(48);
            robust_input_fanin(&mut net, &t, &corrupt, &inputs, None).root_value
        };
        assert_eq!(run(), run());
    }
}
