//! Goodness analysis of a tree against a corruption set: Definitions 2.3
//! and 3.4's properties, computed exactly.
//!
//! * a node is **good** iff strictly fewer than a third of its assigned
//!   parties are corrupt (leaf assignment = its virtual slots);
//! * a leaf has a **good path** iff every node on its root path (leaf
//!   included) is good;
//! * a party is **isolated** (Def. 3.4 / the set `N` in Fig. 1) iff at most
//!   half of its leaf memberships lie on good paths.
//!
//! # Examples
//!
//! ```
//! use pba_aetree::params::TreeParams;
//! use pba_aetree::tree::Tree;
//! use pba_aetree::analysis::TreeAnalysis;
//! use std::collections::BTreeSet;
//!
//! let tree = Tree::build(&TreeParams::scaled(256, 2), b"seed");
//! let analysis = TreeAnalysis::analyze(&tree, &BTreeSet::new());
//! assert!(analysis.root_good());
//! assert_eq!(analysis.good_leaf_fraction(), 1.0);
//! assert!(analysis.isolated().is_empty());
//! ```

use crate::robust::dedup_committee;
use crate::tree::{NodeAddr, Tree};
use pba_crypto::prg::Prg;
use pba_net::PartyId;
use std::collections::BTreeSet;

/// Result of analyzing a tree against a corrupt set.
#[derive(Clone, Debug)]
pub struct TreeAnalysis {
    /// `good[level][node]`.
    good: Vec<Vec<bool>>,
    /// Per leaf: every node on the path to the root is good.
    good_path: Vec<bool>,
    /// Parties without a majority of good-path leaf memberships.
    isolated: BTreeSet<PartyId>,
}

/// Returns true iff strictly fewer than one third of `members` are corrupt.
pub fn committee_good(members: &[PartyId], corrupt: &BTreeSet<PartyId>) -> bool {
    let bad = members.iter().filter(|p| corrupt.contains(p)).count();
    3 * bad < members.len()
}

impl TreeAnalysis {
    /// Analyzes `tree` against `corrupt`.
    pub fn analyze(tree: &Tree, corrupt: &BTreeSet<PartyId>) -> Self {
        let h = tree.height();
        let mut good: Vec<Vec<bool>> = Vec::with_capacity(h);
        for level in 0..h {
            let row: Vec<bool> = (0..tree.nodes_at_level(level))
                .map(|node| committee_good(tree.committee(level, node), corrupt))
                .collect();
            good.push(row);
        }

        // Propagate path-goodness top-down.
        let mut path_good_at: Vec<Vec<bool>> = good.clone();
        for level in (0..h - 1).rev() {
            for node in 0..tree.nodes_at_level(level) {
                let parent = tree.parent(level, node);
                path_good_at[level][node] = good[level][node] && path_good_at[level + 1][parent];
            }
        }
        let good_path = path_good_at[0].clone();

        // Isolated parties: at most half of their leaf slots on good paths.
        let mut isolated = BTreeSet::new();
        for p in 0..tree.params().n {
            let party = PartyId::from(p);
            let slots = tree.party_slots(party);
            if slots.is_empty() {
                isolated.insert(party);
                continue;
            }
            let good_slots = slots
                .iter()
                .filter(|&&s| good_path[tree.slot_leaf(s)])
                .count();
            if 2 * good_slots <= slots.len() {
                isolated.insert(party);
            }
        }

        TreeAnalysis {
            good,
            good_path,
            isolated,
        }
    }

    /// Whether node `(level, node)` is good.
    pub fn is_good(&self, level: usize, node: usize) -> bool {
        self.good[level][node]
    }

    /// Whether the root (supreme committee) is good.
    pub fn root_good(&self) -> bool {
        *self
            .good
            .last()
            .expect("nonempty tree")
            .first()
            .expect("root")
    }

    /// Whether leaf `leaf` lies on an all-good path to the root.
    pub fn leaf_has_good_path(&self, leaf: usize) -> bool {
        self.good_path[leaf]
    }

    /// Fraction of leaves with good paths.
    pub fn good_leaf_fraction(&self) -> f64 {
        let good = self.good_path.iter().filter(|&&g| g).count();
        good as f64 / self.good_path.len() as f64
    }

    /// The isolated parties (the paper's sets `D` / `N`-candidates).
    pub fn isolated(&self) -> &BTreeSet<PartyId> {
        &self.isolated
    }

    /// Checks the Def. 2.3 guarantees that a tree built *after* corruption
    /// must satisfy for the SRDS robustness game to be well-posed:
    /// the root is good, and at least `1 − slack` of leaves have good paths
    /// (the paper's slack is `3/log n`).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated guarantee.
    pub fn check_ae_guarantees(&self, slack: f64) -> Result<(), String> {
        if !self.root_good() {
            return Err("supreme committee is not 2/3-honest".into());
        }
        let frac = self.good_leaf_fraction();
        if frac < 1.0 - slack {
            return Err(format!(
                "only {frac:.3} of leaves on good paths (need >= {:.3})",
                1.0 - slack
            ));
        }
        Ok(())
    }
}

/// One entry of the adaptive adversary's target ranking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TakeoverTarget {
    /// The ranked node.
    pub node: NodeAddr,
    /// Distinct committee members still needed for a **strict majority**
    /// of the node's committee (the cost of taking it over under
    /// redundant-path voting).
    pub cost: usize,
    /// Leaves whose root path runs through this node (the coverage
    /// destroyed by a takeover — the node's load).
    pub load: usize,
}

/// Ranks every tree node by takeover value for a **post-setup adaptive
/// adversary**: load-bearing nodes (many leaves route through them) with
/// small committees (cheap to majority-corrupt) come first. Ties break
/// toward lower levels, then lower node indices, so the ranking is a pure
/// function of the tree.
pub fn takeover_ranking(tree: &Tree) -> Vec<TakeoverTarget> {
    let branching = tree.params().branching;
    let mut targets: Vec<TakeoverTarget> = Vec::new();
    for level in 0..tree.height() {
        let load = branching.pow(level as u32);
        for node in 0..tree.nodes_at_level(level) {
            let members = dedup_committee(tree.committee(level, node));
            targets.push(TakeoverTarget {
                node: (level, node),
                cost: members.len() / 2 + 1,
                load,
            });
        }
    }
    // Value = load per corrupted party; compare load·cost' vs load'·cost
    // to stay in integers.
    targets.sort_by(|a, b| {
        (b.load * a.cost)
            .cmp(&(a.load * b.cost))
            .then(a.node.0.cmp(&b.node.0))
            .then(a.node.1.cmp(&b.node.1))
    });
    targets
}

/// Spends an adaptive post-setup corruption `budget` against an
/// established tree: walks [`takeover_ranking`] greedily, majority-
/// corrupting every node it can still afford (members already corrupted
/// by an earlier takeover count toward the majority), then spends any
/// leftover budget on `prg`-sampled fillers. Deterministic for a fixed
/// tree and `prg` state; the result never exceeds `min(budget, n)`
/// parties.
pub fn adaptive_targets(tree: &Tree, budget: usize, prg: &mut Prg) -> BTreeSet<PartyId> {
    let n = tree.params().n;
    let budget = budget.min(n);
    let mut corrupt: BTreeSet<PartyId> = BTreeSet::new();
    for target in takeover_ranking(tree) {
        let (level, node) = target.node;
        let members = dedup_committee(tree.committee(level, node));
        let majority = members.len() / 2 + 1;
        let already = members.iter().filter(|m| corrupt.contains(m)).count();
        let needed: Vec<PartyId> = members
            .iter()
            .filter(|m| !corrupt.contains(m))
            .take(majority.saturating_sub(already))
            .copied()
            .collect();
        if needed.len() + corrupt.len() <= budget {
            corrupt.extend(needed);
        }
    }
    // Leftover budget: pseudorandom fillers (a real adversary never
    // leaves budget on the table).
    while corrupt.len() < budget {
        corrupt.insert(PartyId(prg.gen_range(n as u64)));
    }
    corrupt
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TreeParams;
    use pba_net::corruption::{max_corruptions, CorruptionPlan};

    fn tree(n: usize, z: usize) -> Tree {
        Tree::build(&TreeParams::scaled(n, z), b"analysis-seed")
    }

    #[test]
    fn committee_good_thresholds() {
        let corrupt: BTreeSet<PartyId> = [PartyId(0), PartyId(1)].into();
        // 6 members, 2 corrupt: 3*2 = 6 not < 6 → NOT good (exactly a third).
        let members: Vec<PartyId> = (0..6).map(PartyId).collect();
        assert!(!committee_good(&members, &corrupt));
        // 7 members, 2 corrupt: good.
        let members: Vec<PartyId> = (0..7).map(PartyId).collect();
        assert!(committee_good(&members, &corrupt));
    }

    #[test]
    fn no_corruption_all_good() {
        let t = tree(128, 2);
        let a = TreeAnalysis::analyze(&t, &BTreeSet::new());
        assert!(a.root_good());
        assert_eq!(a.good_leaf_fraction(), 1.0);
        assert!(a.isolated().is_empty());
        assert!(a.check_ae_guarantees(0.1).is_ok());
    }

    #[test]
    fn random_tenth_corruption_keeps_guarantees() {
        // NOTE: at simulation scale, committees of ~3 log n keep their
        // 2/3-honest majority w.h.p. only for beta comfortably below 1/3
        // (the Chernoff gap between beta and 1/3 is what the paper's
        // asymptotics hide). Experiments therefore default to beta = 0.1;
        // see EXPERIMENTS.md.
        let mut prg = Prg::from_seed_bytes(b"corrupt");
        for n in [256usize, 1024] {
            let t = tree(n, 3);
            let tcount = max_corruptions(n, 0.10);
            let corrupt = CorruptionPlan::Random { t: tcount }.materialize(n, &mut prg);
            let a = TreeAnalysis::analyze(&t, &corrupt);
            assert!(
                a.root_good(),
                "n={n}: root bad under random 1/10 corruption"
            );
            assert!(
                a.good_leaf_fraction() > 0.6,
                "n={n}: good-leaf fraction {}",
                a.good_leaf_fraction()
            );
            // Isolated honest parties are a small minority.
            let honest_isolated = a.isolated().iter().filter(|p| !corrupt.contains(p)).count();
            assert!(
                (honest_isolated as f64) < 0.35 * n as f64,
                "n={n}: {honest_isolated} honest isolated"
            );
        }
    }

    #[test]
    fn targeted_root_corruption_detected() {
        let t = tree(128, 1);
        // Corrupt the entire supreme committee (adversary chose AFTER seeing
        // the tree — exactly the trivialization Def. 2.3 exists to prevent).
        let corrupt: BTreeSet<PartyId> = t.root_committee().iter().copied().collect();
        let a = TreeAnalysis::analyze(&t, &corrupt);
        assert!(!a.root_good());
        assert!(a.check_ae_guarantees(0.5).is_err());
    }

    #[test]
    fn corrupting_a_leaf_isolates_its_singleton_parties() {
        let t = tree(64, 1);
        // Corrupt enough parties of leaf 0 to make it bad.
        let leaf0: Vec<PartyId> = t.committee(0, 0).to_vec();
        let take = leaf0.len() / 3 + 1;
        let corrupt: BTreeSet<PartyId> = leaf0.iter().take(take).copied().collect();
        let a = TreeAnalysis::analyze(&t, &corrupt);
        if !a.is_good(0, 0) {
            // With z=1, honest parties assigned only to leaf 0 are isolated.
            for p in t.committee(0, 0) {
                if !corrupt.contains(p) && t.party_leaves(*p) == vec![0] {
                    assert!(a.isolated().contains(p));
                }
            }
        }
    }

    #[test]
    fn repeated_assignment_reduces_isolation() {
        // With z=4, killing one leaf should isolate (almost) nobody.
        let t = tree(256, 4);
        let leaf0: Vec<PartyId> = t.committee(0, 0).to_vec();
        let corrupt: BTreeSet<PartyId> = leaf0.into_iter().collect();
        let a = TreeAnalysis::analyze(&t, &corrupt);
        let honest_isolated = a.isolated().iter().filter(|p| !corrupt.contains(p)).count();
        assert!(
            honest_isolated < 20,
            "{honest_isolated} honest parties isolated by one bad leaf"
        );
    }

    #[test]
    fn paper_exact_structure_analyzes() {
        let t = Tree::build(&TreeParams::paper_exact(64), b"paper");
        let a = TreeAnalysis::analyze(&t, &BTreeSet::new());
        assert!(a.root_good());
        assert_eq!(a.good_leaf_fraction(), 1.0);
    }

    #[test]
    fn takeover_ranking_covers_every_node_and_prefers_value() {
        let t = tree(128, 2);
        let ranking = takeover_ranking(&t);
        let total_nodes: usize = (0..t.height()).map(|l| t.nodes_at_level(l)).sum();
        assert_eq!(ranking.len(), total_nodes);
        // Value (load/cost) is non-increasing down the ranking.
        for pair in ranking.windows(2) {
            assert!(
                pair[0].load * pair[1].cost >= pair[1].load * pair[0].cost,
                "ranking not sorted by takeover value: {pair:?}"
            );
        }
        // Costs are strict majorities of the deduped committees.
        for target in &ranking {
            let members = dedup_committee(t.committee(target.node.0, target.node.1));
            assert_eq!(target.cost, members.len() / 2 + 1);
        }
    }

    #[test]
    fn adaptive_targets_deterministic_and_bounded() {
        let t = tree(96, 2);
        for budget in [0usize, 1, 7, 15, 31, 200] {
            let a = adaptive_targets(&t, budget, &mut Prg::from_seed_bytes(b"adv"));
            let b = adaptive_targets(&t, budget, &mut Prg::from_seed_bytes(b"adv"));
            assert_eq!(a, b, "budget {budget} not deterministic");
            assert_eq!(a.len(), budget.min(96), "budget {budget} misspent");
            assert!(a.iter().all(|p| p.index() < 96));
        }
    }

    #[test]
    fn adaptive_targets_majority_corrupt_their_best_node() {
        let t = tree(96, 2);
        let ranking = takeover_ranking(&t);
        let best = &ranking[0];
        let corrupt = adaptive_targets(&t, best.cost, &mut Prg::from_seed_bytes(b"adv"));
        let members = dedup_committee(t.committee(best.node.0, best.node.1));
        let bad = members.iter().filter(|m| corrupt.contains(m)).count();
        assert!(
            2 * bad > members.len(),
            "budget {} bought only {bad}/{} of the top-value node",
            best.cost,
            members.len()
        );
        // The classical 1/3 analysis flags the node as bad too.
        let analysis = TreeAnalysis::analyze(&t, &corrupt);
        assert!(!analysis.is_good(best.node.0, best.node.1));
    }
}
