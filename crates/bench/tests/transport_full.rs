//! Full-tier differential test: real `node` processes over loopback TCP,
//! diffed against the in-process deterministic oracle by transcript
//! digest (see DESIGN.md §3c and `tests/transport_differential.rs` for
//! the fast in-thread tier).
//!
//! The default run keeps CI cheap (n=16, two processes). Set
//! `PBA_SOCKET_FULL=1` to sweep the acceptance matrix — n ∈ {16, 64} ×
//! {2, 3} processes.

use pba_bench::socket::{json_str_field, json_u64_field, launch_processes, SocketSpec};
use std::path::Path;

fn node_exe() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_node"))
}

fn diff_processes(n: usize, k: usize) {
    let spec = SocketSpec::new(n, k, &format!("full/{n}/{k}"));
    let summary = launch_processes(&spec, node_exe());
    assert!(
        !summary.sim_digest.is_empty(),
        "oracle produced no transcript"
    );
    assert_eq!(summary.process_digests.len(), k);
    for (e, digest) in summary.process_digests.iter().enumerate() {
        assert_eq!(
            digest, &summary.sim_digest,
            "process {e} diverged from oracle at n={n}, k={k}: {}",
            summary.lines[e]
        );
    }
    assert!(summary.all_match);
    // Every process reports the same logical accounting as the oracle
    // simulation (the metering replicates deterministically), and real
    // bytes crossed the process boundary.
    let sim = spec.run_sim();
    let sim_line = pba_bench::socket::endpoint_json(0, &sim);
    let logical = json_u64_field(&sim_line, "logical_total_bytes").expect("oracle bytes");
    for line in &summary.lines {
        assert_eq!(json_str_field(line, "backend").as_deref(), Some("tcp"));
        assert_eq!(json_u64_field(line, "logical_total_bytes"), Some(logical));
        assert!(json_u64_field(line, "socket_bytes_sent").expect("stats") > 0);
        assert_eq!(
            json_str_field(line, "completed"),
            None,
            "completed is a bare literal, not a string"
        );
        assert!(line.contains("\"completed\":true"), "process not completed");
    }
}

#[test]
fn two_processes_match_oracle_n16() {
    diff_processes(16, 2);
}

#[test]
fn full_matrix_when_enabled() {
    if std::env::var("PBA_SOCKET_FULL").is_err() {
        eprintln!("PBA_SOCKET_FULL not set; skipping the full process matrix");
        return;
    }
    for (n, k) in [(16, 3), (64, 2), (64, 3)] {
        diff_processes(n, k);
    }
}
