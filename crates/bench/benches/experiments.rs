//! Criterion benches for the SRDS security games (experiments E2/E3,
//! Figures 1–2): how fast a full robustness/forgery game runs, per scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pba_bench::bench_owf;
use pba_srds::experiments::{
    run_forgery, run_robustness, AggregateForgeryAdversary, DefaultRobustnessAdversary,
};
use pba_srds::snark::SnarkSrds;

fn bench_fig1_robustness(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_robustness");
    group.sample_size(10);
    let n = 200;
    let t = 20;
    group.bench_function(BenchmarkId::new("owf", n), |b| {
        let scheme = bench_owf();
        b.iter(|| {
            let out =
                run_robustness(&scheme, n, t, &mut DefaultRobustnessAdversary, b"bench").unwrap();
            assert!(out.verified);
        });
    });
    group.bench_function(BenchmarkId::new("snark", n), |b| {
        let scheme = SnarkSrds::with_defaults();
        b.iter(|| {
            let out =
                run_robustness(&scheme, n, t, &mut DefaultRobustnessAdversary, b"bench").unwrap();
            assert!(out.verified);
        });
    });
    group.finish();
}

fn bench_fig2_forgery(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_forgery");
    group.sample_size(10);
    let n = 200;
    let t = 20;
    group.bench_function(BenchmarkId::new("owf", n), |b| {
        let scheme = bench_owf();
        b.iter(|| {
            let out = run_forgery(
                &scheme,
                n,
                t,
                &mut AggregateForgeryAdversary::default(),
                b"bench",
            )
            .unwrap();
            assert!(!out.forged);
        });
    });
    group.bench_function(BenchmarkId::new("snark", n), |b| {
        let scheme = SnarkSrds::with_defaults();
        b.iter(|| {
            let out = run_forgery(
                &scheme,
                n,
                t,
                &mut AggregateForgeryAdversary::default(),
                b"bench",
            )
            .unwrap();
            assert!(!out.forged);
        });
    });
    group.finish();
}

criterion_group!(experiments, bench_fig1_robustness, bench_fig2_forgery);
criterion_main!(experiments);
