//! Criterion benches for the substrate layers: the CRH, Merkle trees, the
//! almost-everywhere communication tree, committee phase-king, and the
//! subset-task SNARG (experiment E7).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pba_aetree::params::TreeParams;
use pba_aetree::tree::Tree;
use pba_core::baselines::all_to_all_ba_real;
use pba_crypto::merkle::MerkleTree;
use pba_crypto::prg::Prg;
use pba_crypto::sha256::Sha256;
use pba_snark::subset::{subset_snarg, SubsetInstance, SubsetOp};
use pba_snark::system::SnarkCrs;

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16384] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, data| {
            b.iter(|| Sha256::digest(data));
        });
    }
    group.finish();
}

fn bench_merkle(c: &mut Criterion) {
    let mut group = c.benchmark_group("merkle");
    for n in [256usize, 4096] {
        let leaves: Vec<Vec<u8>> = (0..n).map(|i| i.to_le_bytes().to_vec()).collect();
        group.bench_with_input(BenchmarkId::new("build", n), &leaves, |b, leaves| {
            b.iter(|| MerkleTree::from_leaves(leaves.iter()));
        });
        let tree = MerkleTree::from_leaves(leaves.iter());
        group.bench_with_input(BenchmarkId::new("prove+verify", n), &tree, |b, tree| {
            b.iter(|| {
                let proof = tree.prove(n / 2);
                assert!(proof.verify(&tree.root(), &leaves[n / 2]));
            });
        });
    }
    group.finish();
}

fn bench_ae_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("ae_tree_build");
    for n in [1024usize, 8192] {
        let params = TreeParams::scaled(n, 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &params, |b, params| {
            b.iter(|| Tree::build(params, b"bench-seed"));
        });
    }
    group.finish();
}

fn bench_phase_king(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase_king_committee");
    group.sample_size(20);
    for n in [16usize, 31] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| all_to_all_ba_real(n, n / 4, 1));
        });
    }
    group.finish();
}

fn bench_subset_snarg(c: &mut Criterion) {
    let mut group = c.benchmark_group("subset_snarg");
    let snarg = subset_snarg(SnarkCrs::setup(b"bench-crs"));
    for k in [64usize, 1024] {
        let mut prg = Prg::from_seed_bytes(b"subset-bench");
        let (instance, witness) = SubsetInstance::sample_planted(SubsetOp::Sum, k, &mut prg);
        group.bench_with_input(
            BenchmarkId::new("prove", k),
            &(&instance, &witness),
            |b, (instance, witness)| {
                b.iter(|| snarg.prove(instance, witness).unwrap());
            },
        );
        let proof = snarg.prove(&instance, &witness).unwrap();
        group.bench_with_input(
            BenchmarkId::new("verify", k),
            &(&instance, &proof),
            |b, (instance, proof)| {
                b.iter(|| assert!(snarg.verify(instance, proof)));
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sha256,
    bench_merkle,
    bench_ae_tree,
    bench_phase_king,
    bench_subset_snarg
);
criterion_main!(benches);
