//! Criterion benches for SRDS primitive operations: key generation,
//! signing, batch aggregation, and verification — for both paper
//! constructions and the multisignature baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pba_crypto::prg::Prg;
use pba_srds::multisig::MultisigSrds;
use pba_srds::owf::OwfSrds;
use pba_srds::snark::SnarkSrds;
use pba_srds::traits::{PkiBoard, Srds};

fn bench_scheme<S>(c: &mut Criterion, name: &str, scheme: &S, n: usize)
where
    S: Srds,
{
    let mut group = c.benchmark_group(format!("srds/{name}"));
    group.sample_size(20);
    let mut prg = Prg::from_seed_bytes(b"srds-ops");
    let board = PkiBoard::establish(scheme, n, &mut prg);
    let keys = board.prepare(scheme);
    let message = b"bench-message";

    group.bench_function(BenchmarkId::new("keygen", n), |b| {
        b.iter(|| {
            let mut kprg = prg.child("kg", 0);
            scheme.keygen(&board.pp, &mut kprg)
        });
    });

    // Pick a signer that actually can sign (OWF sortition losers return ⊥).
    let signer = (0..n as u64)
        .find(|&i| {
            scheme
                .sign(&board.pp, i, &board.sks[i as usize], message)
                .is_some()
        })
        .expect("at least one signer");
    group.bench_function(BenchmarkId::new("sign", n), |b| {
        b.iter(|| scheme.sign(&board.pp, signer, &board.sks[signer as usize], message));
    });

    let sigs: Vec<S::Signature> = (0..n as u64)
        .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], message))
        .collect();
    group.bench_function(BenchmarkId::new("aggregate_batch16", n), |b| {
        let batch = &sigs[..sigs.len().min(16)];
        b.iter(|| scheme.aggregate(&board.pp, &keys, message, batch).is_some());
    });

    let agg = scheme
        .aggregate(&board.pp, &keys, message, &sigs)
        .expect("aggregate");
    group.bench_function(BenchmarkId::new("verify", n), |b| {
        b.iter(|| assert!(scheme.verify(&board.pp, &keys, message, &agg)));
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_scheme(c, "owf", &OwfSrds::with_defaults(), 256);
    bench_scheme(c, "snark", &SnarkSrds::with_defaults(), 256);
    bench_scheme(c, "multisig", &MultisigSrds::with_defaults(), 256);
}

criterion_group!(srds_ops, benches);
criterion_main!(srds_ops);
