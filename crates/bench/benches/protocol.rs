//! Criterion benches for the end-to-end `π_ba` protocol (experiment E4 /
//! Figure 3) and the Table 1 rows at a fixed size (experiment E1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pba_bench::{bench_owf, measure, Protocol};
use pba_core::broadcast::run_broadcasts;
use pba_core::protocol::{run_ba, BaConfig};
use pba_net::PartyId;
use pba_srds::snark::{SnarkSrds, SnarkSrdsConfig};

fn bench_fig3_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_pi_ba");
    group.sample_size(10);
    let n = 128;
    for (name, byzantine) in [("honest", false), ("byzantine", true)] {
        group.bench_function(BenchmarkId::new("snark", name), |b| {
            let scheme = SnarkSrds::with_defaults();
            b.iter(|| {
                let config = if byzantine {
                    BaConfig::byzantine(n, 12, b"bench-fig3")
                } else {
                    BaConfig::honest(n, b"bench-fig3")
                };
                let out = run_ba(&scheme, &config, &vec![1u8; n]);
                assert!(out.agreement);
            });
        });
        group.bench_function(BenchmarkId::new("owf", name), |b| {
            let scheme = bench_owf();
            b.iter(|| {
                let config = if byzantine {
                    BaConfig::byzantine(n, 12, b"bench-fig3")
                } else {
                    BaConfig::honest(n, b"bench-fig3")
                };
                let out = run_ba(&scheme, &config, &vec![1u8; n]);
                assert!(out.agreement);
            });
        });
    }
    group.finish();
}

fn bench_table1_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_row_n128");
    group.sample_size(10);
    for protocol in [
        Protocol::PiBaSnark,
        Protocol::MultisigBoost,
        Protocol::SqrtSampling,
        Protocol::AllToAll,
    ] {
        group.bench_function(protocol.label(), |b| {
            b.iter(|| measure(protocol, 128, b"bench-table1"));
        });
    }
    group.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("cor12_broadcast");
    group.sample_size(10);
    let scheme = SnarkSrds::new(SnarkSrdsConfig {
        mss_bits: 32,
        mss_height: 2,
    });
    for ell in [1usize, 4] {
        group.bench_function(BenchmarkId::from_parameter(ell), |b| {
            let values: Vec<u8> = (0..ell).map(|i| (i % 2) as u8).collect();
            b.iter(|| {
                let config = BaConfig::honest(64, b"bench-bc");
                let out = run_broadcasts(&scheme, &config, PartyId(3), &values);
                assert!(out.all_delivered);
            });
        });
    }
    group.finish();
}

criterion_group!(
    protocol,
    bench_fig3_protocol,
    bench_table1_rows,
    bench_broadcast
);
criterion_main!(protocol);
