//! Pipelined BA-as-a-service throughput (§E-pipeline).
//!
//! Measures what the [`Service`]/instance split buys: one establishment
//! (tree + CSR layout, MSS capacity keys, CRS, peer state) serving a
//! stream of `k` BA instances, against `k` fully independent runs that
//! each pay establishment again. Per `(n, k)` cell the harness records
//! wall time, decisions/sec (decisions per wall-clock second *including*
//! setup — the number an operator of a BA service actually sees), the
//! amortized speedup, and how many deferred-certification rounds the
//! Fast-HotStuff-style chaining hid inside successor committee phases.
//! The binary (`cargo run -p pba-bench --bin pipeline --release`)
//! renders the result as `BENCH_9.json`.
//!
//! `--smoke` restricts the grid to `n = 64, k ∈ {1, 4}` for the CI
//! `pipeline-smoke` job. All timings are measured, never synthesized;
//! the ≥ 2× amortization target is only asserted on the full grid's
//! `n = 1024, k = 16` cell, where establishment dominance makes it
//! physically meaningful.

use pba_core::protocol::{BaConfig, Service, StreamMode, StreamOutcome};
use pba_srds::snark::{SnarkSrds, SnarkSrdsConfig};
use std::time::Instant;

/// Parameters of one pipeline sweep.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Party counts to run.
    pub sizes: Vec<usize>,
    /// Stream lengths (`k` = instances per service).
    pub streams: Vec<usize>,
}

impl PipelineConfig {
    /// The full grid of ISSUE 9: k ∈ {1, 4, 16} × n ∈ {64, 256, 1024}.
    pub fn full() -> Self {
        PipelineConfig {
            sizes: vec![64, 256, 1024],
            streams: vec![1, 4, 16],
        }
    }

    /// CI smoke variant: n = 64, k ∈ {1, 4}.
    pub fn smoke() -> Self {
        PipelineConfig {
            sizes: vec![64],
            streams: vec![1, 4],
        }
    }
}

/// One measured `(n, k)` cell.
#[derive(Clone, Debug)]
pub struct PipelineCell {
    /// Number of parties.
    pub n: usize,
    /// Instances streamed through one service.
    pub k: usize,
    /// Wall milliseconds of the one-time establishment.
    pub setup_ms: f64,
    /// Wall milliseconds of the pipelined stream after establishment.
    pub stream_ms: f64,
    /// Establishment + stream: the streamed service end to end.
    pub streamed_total_ms: f64,
    /// `k` independent full runs (each pays establishment again).
    pub independent_total_ms: f64,
    /// Decisions per second of the streamed service, setup included.
    pub streamed_decisions_per_sec: f64,
    /// Decisions per second of the independent runs.
    pub independent_decisions_per_sec: f64,
    /// `independent_total_ms / streamed_total_ms` — the headline
    /// setup-amortization ratio.
    pub amortized_speedup: f64,
    /// Clock rounds the streamed service consumed (excludes setup).
    pub streamed_rounds: u64,
    /// Deferred-certification rounds hidden inside successor committee
    /// phases by the pipelined chaining.
    pub overlapped_rounds: u64,
    /// Certificate-cache hits on entries born in an *earlier* instance —
    /// cross-instance reuse the independent runs can never have.
    pub warm_cache_hits: u64,
}

/// The full report rendered into `BENCH_9.json`.
#[derive(Clone, Debug)]
pub struct PipelineReport {
    /// Whether this was the `--smoke` variant.
    pub smoke: bool,
    /// Engine lane width ([`pba_crypto::sha256::LANES`]) of the build.
    pub lanes: usize,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_cores: usize,
    /// All measured cells.
    pub cells: Vec<PipelineCell>,
}

impl PipelineReport {
    /// Hand-rolled JSON (no serde in the tree — same convention as
    /// [`pba_net::Report::to_json`]).
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    concat!(
                        "{{\"n\":{},\"k\":{},\"setup_ms\":{:.2},",
                        "\"stream_ms\":{:.2},\"streamed_total_ms\":{:.2},",
                        "\"independent_total_ms\":{:.2},",
                        "\"streamed_decisions_per_sec\":{:.2},",
                        "\"independent_decisions_per_sec\":{:.2},",
                        "\"amortized_speedup\":{:.3},",
                        "\"streamed_rounds\":{},\"overlapped_rounds\":{},",
                        "\"warm_cache_hits\":{}}}"
                    ),
                    c.n,
                    c.k,
                    c.setup_ms,
                    c.stream_ms,
                    c.streamed_total_ms,
                    c.independent_total_ms,
                    c.streamed_decisions_per_sec,
                    c.independent_decisions_per_sec,
                    c.amortized_speedup,
                    c.streamed_rounds,
                    c.overlapped_rounds,
                    c.warm_cache_hits,
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"bench\":\"pipelined-ba-service\",\"smoke\":{},",
                "\"lanes\":{},\"host_cores\":{},\"cells\":[{}]}}"
            ),
            self.smoke,
            self.lanes,
            self.host_cores,
            cells.join(","),
        )
    }
}

/// The bench scheme for a `k`-instance stream: the MSS tree must hold at
/// least `k` one-time epoch slots, so the height is `⌈log₂ k⌉` (min 1).
fn bench_scheme(k: usize) -> SnarkSrds {
    let mss_height = usize::max(1, k.next_power_of_two().trailing_zeros() as usize);
    SnarkSrds::new(SnarkSrdsConfig {
        mss_bits: 32,
        mss_height,
    })
}

/// Eager keygen: the one-time MSS key material is genuinely paid at
/// establishment — exactly the cost the Service amortizes across the
/// stream (a Lazy policy would smear it into every signature and hide
/// the thing being measured).
fn bench_config(n: usize) -> BaConfig {
    BaConfig::honest(n, b"pipeline-bench")
}

fn assert_all_decided(out: &StreamOutcome, k: usize, what: &str) {
    assert_eq!(
        out.decisions, k,
        "{what}: {} of {k} instances decided",
        out.decisions
    );
    for inst in &out.instances {
        let mv = inst
            .result
            .as_ref()
            .unwrap_or_else(|e| panic!("{what}: instance {} failed: {e}", inst.index));
        assert!(mv.agreement && mv.validity, "{what}: verdicts degraded");
    }
}

/// Measures one `(n, k)` cell: one service streaming `k` pipelined
/// instances vs. `k` independent establish-and-run executions.
pub fn run_cell(n: usize, k: usize) -> PipelineCell {
    let instances: Vec<Vec<Vec<u8>>> = vec![vec![vec![1u8]; n]; k];

    // One establishment, k pipelined instances.
    let scheme = bench_scheme(k);
    let config = bench_config(n);
    let setup_start = Instant::now();
    let mut service = Service::try_establish(&scheme, &config).expect("establishment");
    let setup_ms = setup_start.elapsed().as_secs_f64() * 1e3;
    let stream_start = Instant::now();
    let out = service.try_run_stream(&instances, StreamMode::Pipelined);
    let stream_ms = stream_start.elapsed().as_secs_f64() * 1e3;
    assert_all_decided(&out, k, "streamed");
    let warm_cache_hits = service
        .instance_reports()
        .iter()
        .filter_map(|r| r.cache.as_ref())
        .map(|c| c.warm_hits)
        .sum();
    let streamed_total_ms = setup_ms + stream_ms;

    // k independent full runs of the *same deployment*: identical scheme
    // config and key policy, but a fresh scheme instance (cold caches)
    // and a fresh establishment every time — the baseline an operator
    // without the Service split actually pays.
    let independent_start = Instant::now();
    for _ in 0..k {
        let scheme = bench_scheme(k);
        let mut service = Service::try_establish(&scheme, &config).expect("establishment");
        let one = service.try_run_stream(&instances[..1], StreamMode::Sequential);
        assert_all_decided(&one, 1, "independent");
    }
    let independent_total_ms = independent_start.elapsed().as_secs_f64() * 1e3;

    PipelineCell {
        n,
        k,
        setup_ms,
        stream_ms,
        streamed_total_ms,
        independent_total_ms,
        streamed_decisions_per_sec: k as f64 / (streamed_total_ms / 1e3),
        independent_decisions_per_sec: k as f64 / (independent_total_ms / 1e3),
        amortized_speedup: independent_total_ms / streamed_total_ms,
        streamed_rounds: out.total_rounds,
        overlapped_rounds: out.overlapped_rounds,
        warm_cache_hits,
    }
}

/// Runs the grid.
///
/// # Panics
///
/// Panics when any instance fails to decide, or when a `k > 1` stream
/// shows no cross-instance reuse (zero warm cache hits or zero
/// overlapped rounds — the pipelining would be decorative).
pub fn run_pipeline(config: &PipelineConfig, smoke: bool) -> PipelineReport {
    let mut cells = Vec::new();
    for &n in &config.sizes {
        for &k in &config.streams {
            let cell = run_cell(n, k);
            eprintln!(
                "pipeline: n={:<5} k={:<3} streamed {:>8.1}ms ({:>7.2} dec/s) \
                 vs independent {:>8.1}ms ({:>7.2} dec/s)  x{:.2}  \
                 overlapped {} rounds, warm hits {}",
                cell.n,
                cell.k,
                cell.streamed_total_ms,
                cell.streamed_decisions_per_sec,
                cell.independent_total_ms,
                cell.independent_decisions_per_sec,
                cell.amortized_speedup,
                cell.overlapped_rounds,
                cell.warm_cache_hits,
            );
            if k > 1 {
                assert!(
                    cell.overlapped_rounds > 0,
                    "n={n} k={k}: pipelining hid no rounds"
                );
                assert!(
                    cell.warm_cache_hits > 0,
                    "n={n} k={k}: no cross-instance certificate-cache reuse"
                );
            }
            cells.push(cell);
        }
    }
    PipelineReport {
        smoke,
        lanes: pba_crypto::sha256::LANES,
        host_cores: std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cell_amortizes_setup() {
        let cell = run_cell(64, 4);
        assert_eq!(cell.k, 4);
        assert!(cell.streamed_decisions_per_sec > 0.0);
        assert!(cell.overlapped_rounds > 0, "pipelining hid no rounds");
        assert!(cell.warm_cache_hits > 0, "no cross-instance cache reuse");
        // One setup amortized over 4 instances must beat 4 setups. The
        // margin is left loose: CI hosts are noisy; BENCH_9.json records
        // the measured ratio.
        assert!(
            cell.amortized_speedup > 1.0,
            "streaming slower than independent runs (x{:.2})",
            cell.amortized_speedup
        );
    }

    #[test]
    fn report_renders_json() {
        let report = PipelineReport {
            smoke: true,
            lanes: pba_crypto::sha256::LANES,
            host_cores: 1,
            cells: vec![run_cell(64, 1)],
        };
        let json = report.to_json();
        assert!(json.contains("\"bench\":\"pipelined-ba-service\""));
        assert!(json.contains("\"lanes\":8"));
        assert!(json.contains("\"host_cores\":1"));
        assert!(json.contains("\"amortized_speedup\""));
        assert!(json.contains("\"n\":64,\"k\":1"));
    }

    #[test]
    fn scheme_capacity_covers_the_stream() {
        for k in [1usize, 4, 16] {
            let scheme = bench_scheme(k);
            let config = bench_config(64);
            let service = Service::try_establish(&scheme, &config).expect("establishment");
            let budget = service.budget().expect("snark scheme has a budget");
            assert!(
                budget.capacity() >= k as u64,
                "k={k}: capacity {} too small",
                budget.capacity()
            );
        }
    }
}
