//! Perf baseline for the deterministic parallel round engine (§E-perf).
//!
//! Times [`pba_net::run_phase_threaded`] over a compute-bound synchronous
//! workload at several party counts with one worker and with all available
//! workers, checks that every thread count reproduces the *same* staged
//! transcript (the engine's determinism contract), and reports the hit
//! rates of the two hot-path caches (Merkle proof memoization and the
//! SRDS verified-certificate cache). The binary
//! (`cargo run -p pba-bench --bin perf --release`) renders the result as
//! `BENCH_3.json`.

use pba_crypto::merkle::{proof_cache_stats, reset_proof_cache_stats, MerkleTree};
use pba_crypto::prg::Prg;
use pba_crypto::sha256::{Digest, Sha256};
use pba_net::runner::run_phase_threaded;
use pba_net::{Envelope, Machine, Network, PartyId, SilentAdversary};
use pba_srds::cache::{cert_cache_stats, reset_cert_cache_stats};
use pba_srds::snark::SnarkSrds;
use pba_srds::traits::{PkiBoard, Srds};
use std::collections::BTreeMap;
use std::time::Instant;

/// Parameters of one perf sweep.
#[derive(Clone, Debug)]
pub struct PerfConfig {
    /// Party counts to time.
    pub sizes: Vec<usize>,
    /// Synchronous rounds per case.
    pub rounds: u64,
    /// SHA-256 chaining iterations each party grinds per round — the
    /// compute load that parallelism is supposed to hide.
    pub hash_iters: u32,
}

impl PerfConfig {
    /// The full sweep of ISSUE 3: n ∈ {64, 256, 1024}.
    pub fn full() -> Self {
        PerfConfig {
            sizes: vec![64, 256, 1024],
            rounds: 12,
            hash_iters: 256,
        }
    }

    /// CI smoke variant: n = 64 only, fewer rounds.
    pub fn smoke() -> Self {
        PerfConfig {
            sizes: vec![64],
            rounds: 6,
            hash_iters: 128,
        }
    }
}

/// One timed `(n, threads)` cell.
#[derive(Clone, Debug)]
pub struct PerfCase {
    /// Number of parties.
    pub n: usize,
    /// Worker threads handed to the round engine.
    pub threads: usize,
    /// Wall-clock milliseconds for the phase.
    pub wall_ms: f64,
    /// Rounds executed.
    pub rounds: u64,
    /// Rounds per second.
    pub rounds_per_sec: f64,
}

/// Sequential-vs-parallel ratio for one party count.
#[derive(Clone, Debug)]
pub struct Speedup {
    /// Number of parties.
    pub n: usize,
    /// The parallel thread count being compared against one worker.
    pub threads: usize,
    /// `wall(1 thread) / wall(threads)`; exactly 1.0 on single-core
    /// hosts where only the sequential cell is measured.
    pub speedup: f64,
}

/// Process-wide hit/miss totals of one cache after the exercise pass.
#[derive(Clone, Copy, Debug)]
pub struct CacheStats {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The full perf report rendered into `BENCH_3.json`.
#[derive(Clone, Debug)]
pub struct PerfReport {
    /// Whether this was the `--smoke` variant.
    pub smoke: bool,
    /// Engine lane width ([`pba_crypto::sha256::LANES`]) of the build.
    pub lanes: usize,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_cores: usize,
    /// Sweep parameters.
    pub config: PerfConfig,
    /// All timed cells.
    pub cases: Vec<PerfCase>,
    /// Per-`n` sequential-vs-parallel ratios.
    pub speedups: Vec<Speedup>,
    /// Merkle proof cache totals after the cache exercise.
    pub merkle_cache: CacheStats,
    /// SRDS certificate cache totals after the cache exercise.
    pub cert_cache: CacheStats,
    /// True when every thread count reproduced the one-worker transcript.
    pub deterministic: bool,
}

impl PerfReport {
    /// Renders the report as a JSON object (serde-free, like
    /// [`pba_net::Report::to_json`]).
    pub fn to_json(&self) -> String {
        let cases: Vec<String> = self
            .cases
            .iter()
            .map(|c| {
                format!(
                    "{{\"n\":{},\"threads\":{},\"wall_ms\":{:.3},\"rounds\":{},\"rounds_per_sec\":{:.3}}}",
                    c.n, c.threads, c.wall_ms, c.rounds, c.rounds_per_sec
                )
            })
            .collect();
        let speedups: Vec<String> = self
            .speedups
            .iter()
            .map(|s| {
                format!(
                    "{{\"n\":{},\"threads\":{},\"speedup\":{:.4}}}",
                    s.n, s.threads, s.speedup
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"bench\":\"parallel-round-engine\",",
                "\"smoke\":{},",
                "\"lanes\":{},",
                "\"host_cores\":{},",
                "\"rounds_per_case\":{},",
                "\"hash_iters_per_round\":{},",
                "\"deterministic\":{},",
                "\"cases\":[{}],",
                "\"speedups\":[{}],",
                "\"caches\":{{",
                "\"merkle_proof\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.4}}},",
                "\"srds_cert\":{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.4}}}",
                "}}}}"
            ),
            self.smoke,
            self.lanes,
            self.host_cores,
            self.config.rounds,
            self.config.hash_iters,
            self.deterministic,
            cases.join(","),
            speedups.join(","),
            self.merkle_cache.hits,
            self.merkle_cache.misses,
            self.merkle_cache.hit_rate(),
            self.cert_cache.hits,
            self.cert_cache.misses,
            self.cert_cache.hit_rate(),
        )
    }
}

/// The timed workload: every party chains `iters` SHA-256 compressions
/// over its state and last round's neighbour digests, then gossips the
/// result to two ring neighbours. Compute-bound and fully deterministic.
struct HashGrind {
    id: PartyId,
    n: usize,
    iters: u32,
    rounds_left: u64,
    state: Digest,
}

impl Machine for HashGrind {
    fn on_round(&mut self, ctx: &mut pba_net::Ctx<'_>, inbox: &[Envelope]) {
        let mut h = Sha256::new();
        h.update(self.state.as_bytes());
        for env in inbox {
            if let Some(d) = ctx.read::<Digest>(env) {
                h.update(d.as_bytes());
            }
        }
        let mut acc = h.finalize();
        for _ in 0..self.iters {
            acc = Sha256::digest(acc.as_bytes());
        }
        self.state = acc;
        if self.rounds_left > 1 {
            let next = PartyId(((self.id.0 as usize + 1) % self.n) as u64);
            let far = PartyId(((self.id.0 as usize + 7) % self.n) as u64);
            ctx.send(next, &acc);
            ctx.send(far, &acc);
        }
        self.rounds_left = self.rounds_left.saturating_sub(1);
    }

    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

/// Runs one `(n, threads)` cell and returns `(wall_ms, rounds, transcript)`.
fn run_cell(n: usize, threads: usize, rounds: u64, iters: u32) -> (f64, u64, Vec<Digest>) {
    let mut net = Network::new(n);
    net.enable_transcript();
    let mut machines: Vec<HashGrind> = (0..n)
        .map(|i| HashGrind {
            id: PartyId(i as u64),
            n,
            iters,
            rounds_left: rounds,
            state: Sha256::digest(&(i as u64).to_le_bytes()),
        })
        .collect();
    let mut adversary = SilentAdversary::new([]);
    let start = Instant::now();
    let outcome = {
        let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
            .iter_mut()
            .map(|m| (m.id, Box::new(m) as Box<dyn Machine + Send + '_>))
            .collect();
        run_phase_threaded(&mut net, &mut erased, &mut adversary, rounds + 2, threads)
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(outcome.completed, "perf workload must terminate");
    let transcript = net.transcript().expect("transcript enabled").to_vec();
    (wall_ms, outcome.rounds, transcript)
}

/// Exercises both hot-path caches and returns their process-wide totals
/// (`(merkle, cert)`). Resets the counters first, so perf runs report a
/// clean hit rate.
pub fn exercise_caches() -> (CacheStats, CacheStats) {
    // Serialize concurrent exercisers (tests in one binary): the reset
    // below must not zero a sibling's in-flight measurement.
    static EXERCISE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = EXERCISE_LOCK.lock().expect("exercise lock poisoned");
    reset_proof_cache_stats();
    reset_cert_cache_stats();

    // Merkle: MSS-style signing cycles through a small slot set, proving
    // the same leaves over and over.
    let leaves: Vec<Vec<u8>> = (0..128u64).map(|i| i.to_le_bytes().to_vec()).collect();
    let tree = MerkleTree::from_leaves(leaves.iter());
    for pass in 0..4 {
        for (i, leaf) in leaves.iter().enumerate() {
            let proof = tree.prove(i);
            assert!(proof.verify(&tree.root(), leaf), "pass {pass}");
        }
    }

    // SRDS: aggregate a signature set up a small tree and verify the root
    // certificate once per "receiving party", as the PRF spread does.
    let scheme = SnarkSrds::with_defaults();
    let n = 24usize;
    let mut prg = Prg::from_seed_label(b"perf-cert-cache", "srds");
    let board = PkiBoard::establish(&scheme, n, &mut prg);
    let keys = board.prepare(&scheme);
    let message = b"perf-cert-cache-message";
    let sigs: Vec<_> = (0..n as u64)
        .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], message))
        .collect();
    let mut level: Vec<_> = sigs
        .chunks(8)
        .filter_map(|c| scheme.aggregate(&board.pp, &keys, message, c))
        .collect();
    while level.len() > 1 {
        level = level
            .chunks(8)
            .filter_map(|c| scheme.aggregate(&board.pp, &keys, message, c))
            .collect();
    }
    let root = level.pop().expect("root certificate");
    for party in 0..n {
        assert!(
            scheme.verify(&board.pp, &keys, message, &root),
            "root certificate rejected at receiver {party}"
        );
    }

    let (mh, mm) = proof_cache_stats();
    let (ch, cm) = cert_cache_stats();
    (
        CacheStats {
            hits: mh,
            misses: mm,
        },
        CacheStats {
            hits: ch,
            misses: cm,
        },
    )
}

/// Runs the sweep: every size with one worker, then (on multicore hosts)
/// with all available workers, checking transcript equality across thread
/// counts.
pub fn run_perf(config: &PerfConfig, smoke: bool) -> PerfReport {
    let host_cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let mut cases = Vec::new();
    let mut speedups = Vec::new();
    let mut deterministic = true;
    for &n in &config.sizes {
        let (seq_ms, seq_rounds, seq_transcript) = run_cell(n, 1, config.rounds, config.hash_iters);
        cases.push(PerfCase {
            n,
            threads: 1,
            wall_ms: seq_ms,
            rounds: seq_rounds,
            rounds_per_sec: seq_rounds as f64 / (seq_ms / 1e3),
        });
        if host_cores > 1 {
            let (par_ms, par_rounds, par_transcript) =
                run_cell(n, host_cores, config.rounds, config.hash_iters);
            deterministic &= par_transcript == seq_transcript && par_rounds == seq_rounds;
            cases.push(PerfCase {
                n,
                threads: host_cores,
                wall_ms: par_ms,
                rounds: par_rounds,
                rounds_per_sec: par_rounds as f64 / (par_ms / 1e3),
            });
            speedups.push(Speedup {
                n,
                threads: host_cores,
                speedup: seq_ms / par_ms,
            });
        } else {
            // Only the sequential cell exists; the ratio is 1 by
            // definition, never a fabricated parallel timing.
            speedups.push(Speedup {
                n,
                threads: 1,
                speedup: 1.0,
            });
        }
    }
    let (merkle_cache, cert_cache) = exercise_caches();
    PerfReport {
        smoke,
        lanes: pba_crypto::sha256::LANES,
        host_cores,
        config: config.clone(),
        cases,
        speedups,
        merkle_cache,
        cert_cache,
        deterministic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_deterministic_and_renders_json() {
        let config = PerfConfig {
            sizes: vec![8],
            rounds: 3,
            hash_iters: 4,
        };
        let report = run_perf(&config, true);
        assert!(report.deterministic);
        assert_eq!(report.speedups.len(), 1);
        let json = report.to_json();
        for key in [
            "\"lanes\"",
            "\"host_cores\"",
            "\"cases\"",
            "\"speedups\"",
            "\"merkle_proof\"",
            "\"srds_cert\"",
            "\"deterministic\":true",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn thread_counts_reproduce_the_same_transcript() {
        let (_, rounds1, t1) = run_cell(12, 1, 4, 2);
        for threads in [2, 3, 5] {
            let (_, rounds_k, tk) = run_cell(12, threads, 4, 2);
            assert_eq!(rounds1, rounds_k);
            assert_eq!(t1, tk, "transcript diverged at {threads} threads");
        }
    }

    #[test]
    fn cache_exercise_reports_high_hit_rates() {
        let (merkle, cert) = exercise_caches();
        // 4 passes over 128 leaves: first pass misses, the rest hit. Other
        // tests share the process-wide counters, so bound from below only.
        assert!(merkle.hits >= 3 * 128);
        assert!(cert.hits >= 1, "repeated root verification must hit");
        // Unrelated tests in this binary also drive the process-wide
        // counters, so only a loose positive rate can be asserted here.
        assert!(merkle.hit_rate() > 0.0);
    }
}
