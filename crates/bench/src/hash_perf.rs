//! Scalar-vs-batched baseline of the multi-lane SHA-256 engine (§E-hash).
//!
//! Two layers of measurement, both *measured* (never synthesized), both
//! hard-gated on bit-identical output between the scalar reference core
//! and the batched lane engine:
//!
//! * **per-primitive microbenches** — Merkle tree build, Lamport keygen,
//!   PRG expansion, and leaf hashing, each timed through its scalar
//!   reference path and its batched path over identical inputs;
//! * **end-to-end round engine** — the [`BatchGrind`] workload (one inbox
//!   digest plus `hash_iters` *independent* per-round digests per party,
//!   XOR-folded; unlike `perf::HashGrind`'s chained grind, the per-round
//!   digests carry no data dependency, which is exactly the workload shape
//!   π_ba produces and the engine batches) at n ∈ {64, 256, 1024}, run
//!   once hashing through the scalar core and once through
//!   [`pba_net::Ctx::hash_batch`], with transcript equality asserted.
//!
//! The binary (`cargo run -p pba-bench --bin hash_perf --release`) renders
//! the result as `BENCH_5.json`.

use pba_crypto::lamport::{LamportKeyPair, LamportParams};
use pba_crypto::merkle::{hash_leaf, hash_leaf_batch, MerkleTree};
use pba_crypto::prg::Prg;
use pba_crypto::sha256::{Digest, Sha256, DIGEST_LEN, LANES};
use pba_net::runner::run_phase_threaded;
use pba_net::{Envelope, Machine, Network, PartyId, SilentAdversary};
use rand::RngCore;
use std::collections::BTreeMap;
use std::time::Instant;

/// Parameters of one scalar-vs-batched sweep.
#[derive(Clone, Debug)]
pub struct HashPerfConfig {
    /// Party counts for the end-to-end cells.
    pub sizes: Vec<usize>,
    /// Synchronous rounds per end-to-end cell.
    pub rounds: u64,
    /// Independent digests each party computes per round.
    pub hash_iters: u32,
    /// Leaf count for the Merkle-build microbench.
    pub merkle_leaves: usize,
    /// Key count for the Lamport-keygen microbench (128-bit params).
    pub lamport_keys: usize,
    /// Byte count for the PRG-expansion microbench.
    pub prg_bytes: usize,
    /// Repetitions of each microbench (totals are reported).
    pub micro_reps: usize,
}

impl HashPerfConfig {
    /// The full sweep of ISSUE 5: e2e n ∈ {64, 256, 1024}, microbenches
    /// sized so each side runs long enough to time stably on one core.
    pub fn full() -> Self {
        HashPerfConfig {
            sizes: vec![64, 256, 1024],
            rounds: 12,
            hash_iters: 256,
            merkle_leaves: 4096,
            lamport_keys: 64,
            prg_bytes: 1 << 22,
            micro_reps: 8,
        }
    }

    /// CI smoke variant: small sizes, same equivalence gates.
    pub fn smoke() -> Self {
        HashPerfConfig {
            sizes: vec![64],
            rounds: 6,
            hash_iters: 128,
            merkle_leaves: 512,
            lamport_keys: 8,
            prg_bytes: 1 << 18,
            micro_reps: 2,
        }
    }
}

/// One scalar-vs-batched microbench result.
#[derive(Clone, Debug)]
pub struct MicroBench {
    /// Primitive label (`merkle-build`, `lamport-keygen`, …).
    pub name: &'static str,
    /// Total wall milliseconds through the scalar reference path.
    pub scalar_ms: f64,
    /// Total wall milliseconds through the batched engine.
    pub batched_ms: f64,
    /// True when both paths produced bit-identical output (hard gate).
    pub identical: bool,
}

impl MicroBench {
    /// `scalar_ms / batched_ms`.
    pub fn speedup(&self) -> f64 {
        self.scalar_ms / self.batched_ms
    }
}

/// One end-to-end `(n)` cell: the same deterministic workload timed with
/// scalar hashing and with batched hashing.
#[derive(Clone, Debug)]
pub struct E2eCase {
    /// Number of parties.
    pub n: usize,
    /// Rounds executed (identical for both runs by construction).
    pub rounds: u64,
    /// Rounds per second hashing through the scalar core.
    pub scalar_rounds_per_sec: f64,
    /// Rounds per second hashing through the multi-lane engine.
    pub batched_rounds_per_sec: f64,
    /// True when the two runs produced identical network transcripts.
    pub identical: bool,
}

impl E2eCase {
    /// `batched / scalar` throughput ratio.
    pub fn speedup(&self) -> f64 {
        self.batched_rounds_per_sec / self.scalar_rounds_per_sec
    }
}

/// The full report rendered into `BENCH_5.json`.
#[derive(Clone, Debug)]
pub struct HashPerfReport {
    /// Whether this was the `--smoke` variant.
    pub smoke: bool,
    /// Engine lane width ([`pba_crypto::sha256::LANES`]).
    pub lanes: usize,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_cores: usize,
    /// Sweep parameters.
    pub config: HashPerfConfig,
    /// Per-primitive microbench rows.
    pub micro: Vec<MicroBench>,
    /// End-to-end cells.
    pub e2e: Vec<E2eCase>,
}

impl HashPerfReport {
    /// True only when *every* micro and e2e comparison was bit-identical
    /// between the scalar and batched paths — the report-level hard gate.
    pub fn digests_identical(&self) -> bool {
        self.micro.iter().all(|m| m.identical) && self.e2e.iter().all(|c| c.identical)
    }

    /// Renders the report as a JSON object (serde-free, like
    /// [`crate::perf::PerfReport::to_json`]).
    pub fn to_json(&self) -> String {
        let micro: Vec<String> = self
            .micro
            .iter()
            .map(|m| {
                format!(
                    "{{\"name\":\"{}\",\"scalar_ms\":{:.3},\"batched_ms\":{:.3},\"speedup\":{:.3},\"identical\":{}}}",
                    m.name, m.scalar_ms, m.batched_ms, m.speedup(), m.identical
                )
            })
            .collect();
        let e2e: Vec<String> = self
            .e2e
            .iter()
            .map(|c| {
                format!(
                    "{{\"n\":{},\"rounds\":{},\"scalar_rounds_per_sec\":{:.3},\"batched_rounds_per_sec\":{:.3},\"speedup\":{:.3},\"identical\":{}}}",
                    c.n, c.rounds, c.scalar_rounds_per_sec, c.batched_rounds_per_sec, c.speedup(), c.identical
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"bench\":\"multi-lane-hash-engine\",",
                "\"smoke\":{},",
                "\"lanes\":{},",
                "\"host_cores\":{},",
                "\"rounds_per_case\":{},",
                "\"hash_iters_per_round\":{},",
                "\"digests_identical\":{},",
                "\"micro\":[{}],",
                "\"e2e\":[{}]}}"
            ),
            self.smoke,
            self.lanes,
            self.host_cores,
            self.config.rounds,
            self.config.hash_iters,
            self.digests_identical(),
            micro.join(","),
            e2e.join(","),
        )
    }
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

/// Merkle build: `from_leaf_digests_scalar` vs the batched
/// `from_leaf_digests`, same leaf digests, roots compared per rep.
fn bench_merkle_build(config: &HashPerfConfig) -> MicroBench {
    let digests: Vec<Digest> = (0..config.merkle_leaves as u64)
        .map(|i| Sha256::digest(&i.to_le_bytes()))
        .collect();
    let mut scalar_roots = Vec::with_capacity(config.micro_reps);
    let mut batched_roots = Vec::with_capacity(config.micro_reps);
    let scalar_ms = time_ms(|| {
        for _ in 0..config.micro_reps {
            scalar_roots.push(MerkleTree::from_leaf_digests_scalar(digests.clone()).root());
        }
    });
    let batched_ms = time_ms(|| {
        for _ in 0..config.micro_reps {
            batched_roots.push(MerkleTree::from_leaf_digests(digests.clone()).root());
        }
    });
    MicroBench {
        name: "merkle-build",
        scalar_ms,
        batched_ms,
        identical: scalar_roots == batched_roots,
    }
}

/// Lamport keygen: per-key `generate_scalar` loop vs the cross-key
/// `generate_many` batch, same PRG seed, keys compared in full.
fn bench_lamport_keygen(config: &HashPerfConfig) -> MicroBench {
    let params = LamportParams::new(128);
    let mut scalar_keys = Vec::new();
    let mut batched_keys = Vec::new();
    let scalar_ms = time_ms(|| {
        for rep in 0..config.micro_reps {
            let mut prg = Prg::from_seed_label(&(rep as u64).to_le_bytes(), "hash-perf-keygen");
            for _ in 0..config.lamport_keys {
                scalar_keys.push(LamportKeyPair::generate_scalar(&params, &mut prg));
            }
        }
    });
    let batched_ms = time_ms(|| {
        for rep in 0..config.micro_reps {
            let mut prg = Prg::from_seed_label(&(rep as u64).to_le_bytes(), "hash-perf-keygen");
            batched_keys.extend(LamportKeyPair::generate_many(
                &params,
                &mut prg,
                config.lamport_keys,
            ));
        }
    });
    let identical = scalar_keys.len() == batched_keys.len()
        && scalar_keys
            .iter()
            .zip(&batched_keys)
            .all(|(a, b)| a.verification_key() == b.verification_key());
    MicroBench {
        name: "lamport-keygen",
        scalar_ms,
        batched_ms,
        identical,
    }
}

/// PRG expansion: `fill_bytes_scalar` vs the bulk lane path in
/// `fill_bytes`, same seed, streams compared byte-for-byte.
fn bench_prg_expand(config: &HashPerfConfig) -> MicroBench {
    let mut scalar_out = vec![0u8; config.prg_bytes];
    let mut batched_out = vec![0u8; config.prg_bytes];
    let mut identical = true;
    let mut scalar_ms = 0.0;
    let mut batched_ms = 0.0;
    for rep in 0..config.micro_reps {
        let seed = (rep as u64).to_le_bytes();
        let mut scalar_prg = Prg::from_seed_label(&seed, "hash-perf-prg");
        let mut batched_prg = Prg::from_seed_label(&seed, "hash-perf-prg");
        scalar_ms += time_ms(|| scalar_prg.fill_bytes_scalar(&mut scalar_out));
        batched_ms += time_ms(|| batched_prg.fill_bytes(&mut batched_out));
        identical &= scalar_out == batched_out;
    }
    MicroBench {
        name: "prg-expand",
        scalar_ms,
        batched_ms,
        identical,
    }
}

/// Leaf hashing: per-leaf `hash_leaf` vs `hash_leaf_batch` over the same
/// payload set.
fn bench_leaf_hash(config: &HashPerfConfig) -> MicroBench {
    let payloads: Vec<Vec<u8>> = (0..config.merkle_leaves as u64)
        .map(|i| {
            let mut p = i.to_le_bytes().to_vec();
            p.resize(DIGEST_LEN, 0x5a);
            p
        })
        .collect();
    let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
    let mut scalar_digests = Vec::new();
    let mut batched_digests = Vec::new();
    let scalar_ms = time_ms(|| {
        for _ in 0..config.micro_reps {
            scalar_digests = refs.iter().map(|p| hash_leaf(p)).collect();
        }
    });
    let batched_ms = time_ms(|| {
        for _ in 0..config.micro_reps {
            batched_digests = hash_leaf_batch(&refs);
        }
    });
    MicroBench {
        name: "leaf-hash",
        scalar_ms,
        batched_ms,
        identical: scalar_digests == batched_digests,
    }
}

/// The end-to-end workload: every party digests its inbox into a round
/// seed, computes `iters` *independent* digests `H(seed ‖ i)` (batched
/// through [`pba_net::Ctx::hash_batch`] or one by one through the scalar
/// core), XOR-folds them into its state, and gossips the state to two
/// ring neighbours. Identical message traffic in both modes — only the
/// hashing engine differs, so transcript equality is exactly the
/// scalar-equivalence gate.
struct BatchGrind {
    id: PartyId,
    n: usize,
    iters: u32,
    rounds_left: u64,
    state: Digest,
    batched: bool,
}

impl Machine for BatchGrind {
    fn on_round(&mut self, ctx: &mut pba_net::Ctx<'_>, inbox: &[Envelope]) {
        let mut h = Sha256::new();
        h.update(self.state.as_bytes());
        for env in inbox {
            if let Some(d) = ctx.read::<Digest>(env) {
                h.update(d.as_bytes());
            }
        }
        let seed = h.finalize();
        let msgs: Vec<[u8; DIGEST_LEN + 4]> = (0..self.iters)
            .map(|i| {
                let mut m = [0u8; DIGEST_LEN + 4];
                m[..DIGEST_LEN].copy_from_slice(seed.as_bytes());
                m[DIGEST_LEN..].copy_from_slice(&i.to_le_bytes());
                m
            })
            .collect();
        let digests: Vec<Digest> = if self.batched {
            let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
            ctx.hash_batch(&refs)
        } else {
            msgs.iter().map(|m| Sha256::digest(m)).collect()
        };
        let mut acc = [0u8; DIGEST_LEN];
        for d in &digests {
            for (a, b) in acc.iter_mut().zip(d.as_bytes()) {
                *a ^= b;
            }
        }
        self.state = Digest::new(acc);
        if self.rounds_left > 1 {
            let next = PartyId(((self.id.0 as usize + 1) % self.n) as u64);
            let far = PartyId(((self.id.0 as usize + 7) % self.n) as u64);
            ctx.send(next, &self.state);
            ctx.send(far, &self.state);
        }
        self.rounds_left = self.rounds_left.saturating_sub(1);
    }

    fn is_done(&self) -> bool {
        self.rounds_left == 0
    }
}

/// Runs one `(n, batched)` cell and returns `(wall_ms, rounds, transcript)`.
fn run_cell(n: usize, batched: bool, rounds: u64, iters: u32) -> (f64, u64, Vec<Digest>) {
    let mut net = Network::new(n);
    net.enable_transcript();
    let mut machines: Vec<BatchGrind> = (0..n)
        .map(|i| BatchGrind {
            id: PartyId(i as u64),
            n,
            iters,
            rounds_left: rounds,
            state: Sha256::digest(&(i as u64).to_le_bytes()),
            batched,
        })
        .collect();
    let mut adversary = SilentAdversary::new([]);
    let start = Instant::now();
    let outcome = {
        let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
            .iter_mut()
            .map(|m| (m.id, Box::new(m) as Box<dyn Machine + Send + '_>))
            .collect();
        run_phase_threaded(&mut net, &mut erased, &mut adversary, rounds + 2, 1)
    };
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(outcome.completed, "hash-perf workload must terminate");
    let transcript = net.transcript().expect("transcript enabled").to_vec();
    (wall_ms, outcome.rounds, transcript)
}

/// Runs the full scalar-vs-batched sweep.
pub fn run_hash_perf(config: &HashPerfConfig, smoke: bool) -> HashPerfReport {
    let host_cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let micro = vec![
        bench_merkle_build(config),
        bench_lamport_keygen(config),
        bench_prg_expand(config),
        bench_leaf_hash(config),
    ];
    let mut e2e = Vec::new();
    for &n in &config.sizes {
        let (scalar_ms, scalar_rounds, scalar_t) =
            run_cell(n, false, config.rounds, config.hash_iters);
        let (batched_ms, batched_rounds, batched_t) =
            run_cell(n, true, config.rounds, config.hash_iters);
        e2e.push(E2eCase {
            n,
            rounds: batched_rounds,
            scalar_rounds_per_sec: scalar_rounds as f64 / (scalar_ms / 1e3),
            batched_rounds_per_sec: batched_rounds as f64 / (batched_ms / 1e3),
            identical: scalar_t == batched_t && scalar_rounds == batched_rounds,
        });
    }
    HashPerfReport {
        smoke,
        lanes: LANES,
        host_cores,
        config: config.clone(),
        micro,
        e2e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_is_identical_and_renders_json() {
        let config = HashPerfConfig {
            sizes: vec![8],
            rounds: 3,
            hash_iters: 16,
            merkle_leaves: 64,
            lamport_keys: 2,
            prg_bytes: 4096,
            micro_reps: 1,
        };
        let report = run_hash_perf(&config, true);
        assert!(
            report.digests_identical(),
            "batched and scalar paths diverged: {report:?}"
        );
        assert_eq!(report.micro.len(), 4);
        assert_eq!(report.e2e.len(), 1);
        let json = report.to_json();
        for key in [
            "\"bench\":\"multi-lane-hash-engine\"",
            "\"digests_identical\":true",
            "\"merkle-build\"",
            "\"lamport-keygen\"",
            "\"prg-expand\"",
            "\"leaf-hash\"",
            "\"e2e\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn e2e_modes_share_one_transcript() {
        let (_, r_s, t_s) = run_cell(12, false, 4, 32);
        let (_, r_b, t_b) = run_cell(12, true, 4, 32);
        assert_eq!(r_s, r_b);
        assert_eq!(t_s, t_b, "hash engine changed the protocol transcript");
    }
}
