//! Million-party scaling harness (§E-scale).
//!
//! Runs one full honest `π_ba` round (SNARK SRDS, charged establishment,
//! lazy key instantiation) at party counts up to `n = 2^20` and records,
//! per size: max/avg bits per party, wall time, the process peak RSS
//! after the case, and how many sparse metrics cells actually
//! materialized. A King–Saia'09-style `√n` column — the *measured*
//! bits/party of [`sqrt_sampling_boost`] at the anchor size `n₀ = 2^10`,
//! extrapolated by `√(n/n₀)` — rides along so the polylog bend is visible
//! against the barrier the paper breaks. The binary
//! (`cargo run -p pba-bench --bin scale --release`) renders the result as
//! `BENCH_8.json`.
//!
//! `--smoke` restricts the sweep to n ∈ {2^10, 2^16} and asserts a peak
//! RSS budget at the top size — the memory regression gate of the CI
//! `scale-smoke` job: a reintroduced dense per-party table or an eager
//! keygen pass blows the budget long before it reaches 2^20.
//!
//! The √n column is anchored by *measurement*, not by formula: the
//! King–Saia boost actually runs at every power of two n ∈ {2^6 … 2^10}
//! and the measured bits/party of each anchor land in the JSON
//! (`sqrt_anchors`), so the ~0.5 growth exponent of the baseline is
//! itself a measured quantity; only sizes above the largest anchor are
//! extrapolated by `√(n/n₀)`.

use pba_core::baselines::sqrt_sampling_boost;
use pba_core::protocol::{BaConfig, KeyPolicy, Session};
use pba_srds::snark::SnarkSrds;
use std::time::Instant;

/// Parameters of one scaling sweep.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Party counts to run (ascending).
    pub sizes: Vec<usize>,
    /// Peak-RSS budget in MiB asserted after the *largest* size, when
    /// set. `None` disables the gate (full sweep: measurement, not CI).
    pub rss_budget_mib: Option<f64>,
}

impl ScaleConfig {
    /// The full sweep of ISSUE 8: n = 2^10 … 2^20 in ×4 steps.
    pub fn full() -> Self {
        ScaleConfig {
            sizes: (5..=10).map(|e| 1usize << (2 * e)).collect(),
            rss_budget_mib: None,
        }
    }

    /// CI smoke variant: n ∈ {2^10, 2^16} with the memory regression
    /// budget armed. The budget is deliberately generous (≈3× the
    /// ~1.26 GiB measured peak on the reference host) so it only trips
    /// on asymptotic regressions — an O(n²) metrics table or eager
    /// keygen at 2^16 overshoots it by an order of magnitude.
    pub fn smoke() -> Self {
        ScaleConfig {
            sizes: vec![1 << 10, 1 << 16],
            rss_budget_mib: Some(4096.0),
        }
    }
}

/// One measured size.
#[derive(Clone, Debug)]
pub struct ScaleCase {
    /// Number of parties.
    pub n: usize,
    /// Max honest bits sent+received per party.
    pub max_bits_per_party: u64,
    /// Average honest bits per party.
    pub avg_bits_per_party: u64,
    /// Total honest bytes on the wire.
    pub total_bytes: u64,
    /// Synchronous rounds.
    pub rounds: u64,
    /// Wall-clock milliseconds for the whole case (establishment + round).
    pub wall_ms: f64,
    /// Process peak RSS in MiB *after* this case (`VmHWM`, monotone
    /// across the ascending sweep — the largest size dominates).
    pub peak_rss_mib: f64,
    /// Sparse metrics cells that materialized (parties actually charged).
    pub metrics_cells: usize,
    /// King–Saia √n baseline bits/party: measured at the anchor size and
    /// extrapolated as `anchor · √(n/n₀)`.
    pub sqrt_baseline_bits: u64,
}

/// One *measured* King–Saia √n-sampling anchor: the boost protocol
/// actually ran at this size and this is what an honest party paid.
#[derive(Clone, Copy, Debug)]
pub struct SqrtAnchor {
    /// Party count the baseline ran at.
    pub n: usize,
    /// Measured max bits per party.
    pub bits_per_party: u64,
}

/// The full scaling report rendered into `BENCH_8.json`.
#[derive(Clone, Debug)]
pub struct ScaleReport {
    /// Whether this was the `--smoke` variant.
    pub smoke: bool,
    /// Engine lane width ([`pba_crypto::sha256::LANES`]) of the build.
    pub lanes: usize,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_cores: usize,
    /// Measured √n anchors at n ∈ {2^6, 2^7, 2^8, 2^9, 2^10} (ascending).
    pub sqrt_anchors: Vec<SqrtAnchor>,
    /// Measured √n-baseline bits/party at the anchor size `n₀ = 2^10`
    /// (the last entry of [`Self::sqrt_anchors`]).
    pub anchor_sqrt_bits: u64,
    /// All measured sizes.
    pub cases: Vec<ScaleCase>,
    /// `(k, R²)` of the polylog fit `bits ≈ c·(log₂ n)^k` over max
    /// bits/party.
    pub polylog_fit: (f64, f64),
    /// `(α, R²)` of the power fit `bits ≈ c·n^α` — near 0 for `π_ba`,
    /// 0.5 by construction for the baseline column.
    pub power_fit: (f64, f64),
}

impl ScaleReport {
    /// Hand-rolled JSON (no serde in the tree — same convention as
    /// [`pba_net::Report::to_json`]).
    pub fn to_json(&self) -> String {
        let cases: Vec<String> = self
            .cases
            .iter()
            .map(|c| {
                format!(
                    concat!(
                        "{{\"n\":{},\"max_bits_per_party\":{},",
                        "\"avg_bits_per_party\":{},\"total_bytes\":{},",
                        "\"rounds\":{},\"wall_ms\":{:.1},\"peak_rss_mib\":{:.1},",
                        "\"metrics_cells\":{},\"sqrt_baseline_bits\":{}}}"
                    ),
                    c.n,
                    c.max_bits_per_party,
                    c.avg_bits_per_party,
                    c.total_bytes,
                    c.rounds,
                    c.wall_ms,
                    c.peak_rss_mib,
                    c.metrics_cells,
                    c.sqrt_baseline_bits,
                )
            })
            .collect();
        let anchors: Vec<String> = self
            .sqrt_anchors
            .iter()
            .map(|a| format!("{{\"n\":{},\"bits_per_party\":{}}}", a.n, a.bits_per_party))
            .collect();
        format!(
            concat!(
                "{{\"bench\":\"million-party-scaling\",",
                "\"smoke\":{},",
                "\"lanes\":{},",
                "\"host_cores\":{},",
                "\"sqrt_anchors\":[{}],",
                "\"anchor_sqrt_bits\":{},",
                "\"polylog_fit\":{{\"k\":{:.4},\"r2\":{:.4}}},",
                "\"power_fit\":{{\"alpha\":{:.4},\"r2\":{:.4}}},",
                "\"cases\":[{}]}}"
            ),
            self.smoke,
            self.lanes,
            self.host_cores,
            anchors.join(","),
            self.anchor_sqrt_bits,
            self.polylog_fit.0,
            self.polylog_fit.1,
            self.power_fit.0,
            self.power_fit.1,
            cases.join(","),
        )
    }
}

/// Process peak RSS (`VmHWM`) in MiB, from `/proc/self/status`; 0.0 where
/// procfs is unavailable (non-Linux hosts — the budget gate is skipped
/// there rather than asserted against a fabricated number).
pub fn peak_rss_mib() -> f64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0.0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kib: f64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0.0);
            return kib / 1024.0;
        }
    }
    0.0
}

/// Anchor size for the √n baseline column (the largest measured anchor).
const SQRT_ANCHOR_N: usize = 1 << 10;

/// Sizes the King–Saia baseline is actually *run* at: every power of two
/// from 2^6 up to the 2^10 anchor, so the √n fit rests on five measured
/// points rather than three.
const SQRT_ANCHOR_SIZES: [usize; 5] = [64, 128, 256, 512, SQRT_ANCHOR_N];

/// Runs the King–Saia √n-sampling boost at each anchor size and records
/// the measured max bits/party.
pub fn measure_sqrt_anchors() -> Vec<SqrtAnchor> {
    SQRT_ANCHOR_SIZES
        .iter()
        .map(|&n| {
            let t = pba_net::corruption::max_corruptions(n, crate::BETA);
            let ks = sqrt_sampling_boost(n, t, 0.05, 3.0, b"scale-ks-anchor");
            assert!(
                ks.correct_fraction > 0.98,
                "sqrt-sampling anchor failed at n={n}"
            );
            SqrtAnchor {
                n,
                bits_per_party: ks.report.max_bytes_per_party * 8,
            }
        })
        .collect()
}

/// Runs one honest `π_ba` case at size `n` and measures it.
fn run_case(n: usize, anchor_sqrt_bits: u64) -> ScaleCase {
    let config = BaConfig::honest(n, b"scale-sweep").with_key_policy(KeyPolicy::Lazy);
    let scheme = SnarkSrds::with_defaults();
    let inputs = vec![1u8; n];
    let start = Instant::now();
    let mut session = Session::try_establish(&scheme, &config).expect("honest establishment");
    let committee_inputs = session.robust_committee_inputs(&inputs);
    let round = session
        .try_certified_round(&committee_inputs)
        .expect("honest certified round");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(
        round.outputs.iter().all(|o| *o == Some(1)),
        "honest run at n={n} failed to deliver the unanimous input to everyone"
    );
    let report = session.report();
    let metrics_cells = session.net.metrics().allocated_cells();
    let parties = report.parties.max(1);
    ScaleCase {
        n,
        max_bits_per_party: report.max_bytes_per_party * 8,
        avg_bits_per_party: report.total_bytes / parties * 8,
        total_bytes: report.total_bytes,
        rounds: report.rounds,
        wall_ms,
        peak_rss_mib: peak_rss_mib(),
        metrics_cells,
        sqrt_baseline_bits: ((anchor_sqrt_bits as f64) * (n as f64 / SQRT_ANCHOR_N as f64).sqrt())
            as u64,
    }
}

/// Runs the sweep.
///
/// # Panics
///
/// Panics when any case fails to reach unanimous agreement, or — with a
/// budget armed — when the process peak RSS after the largest size
/// exceeds it (the memory regression gate).
pub fn run_scale(config: &ScaleConfig, smoke: bool) -> ScaleReport {
    let sqrt_anchors = measure_sqrt_anchors();
    for a in &sqrt_anchors {
        eprintln!(
            "scale: sqrt-anchor n={:<5} measured {:>9} bits/party",
            a.n, a.bits_per_party
        );
    }
    let anchor_sqrt_bits = sqrt_anchors
        .last()
        .expect("at least one anchor")
        .bits_per_party;

    let mut cases = Vec::new();
    for &n in &config.sizes {
        let case = run_case(n, anchor_sqrt_bits);
        eprintln!(
            "scale: n=2^{:<2} max {:>9} bits/party (sqrt-baseline {:>10})  wall {:>9.0}ms  rss {:>7.1}MiB  cells {}/{}",
            n.trailing_zeros(),
            case.max_bits_per_party,
            case.sqrt_baseline_bits,
            case.wall_ms,
            case.peak_rss_mib,
            case.metrics_cells,
            n,
        );
        cases.push(case);
    }

    if let Some(budget) = config.rss_budget_mib {
        let peak = cases.last().map(|c| c.peak_rss_mib).unwrap_or(0.0);
        if peak > 0.0 {
            assert!(
                peak <= budget,
                "memory regression: peak RSS {peak:.1} MiB exceeds the {budget:.1} MiB budget \
                 at n={}",
                cases.last().map(|c| c.n).unwrap_or(0),
            );
        }
    }

    let points: Vec<(usize, u64)> = cases
        .iter()
        .map(|c| (c.n, c.max_bits_per_party / 8))
        .collect();
    ScaleReport {
        smoke,
        lanes: pba_crypto::sha256::LANES,
        host_cores: std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1),
        sqrt_anchors,
        anchor_sqrt_bits,
        polylog_fit: crate::polylog_fit(&points),
        power_fit: crate::power_fit(&points),
        cases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_case_is_polylog_sized_and_sparse() {
        let case = run_case(1 << 10, 1_000_000);
        assert!(case.max_bits_per_party > 0);
        // Lazy keygen + sparse metrics: a full honest run still touches
        // every party (dissemination reaches everyone), so cells == n —
        // the sparsity win is at the *table construction* and in partial
        // runs; what we pin here is that the count is exact, not padded.
        assert!(case.metrics_cells <= 1 << 10);
        assert_eq!(case.sqrt_baseline_bits, 1_000_000);
    }

    #[test]
    fn report_renders_json() {
        let report = ScaleReport {
            smoke: true,
            lanes: pba_crypto::sha256::LANES,
            host_cores: 1,
            sqrt_anchors: vec![SqrtAnchor {
                n: 64,
                bits_per_party: 512,
            }],
            anchor_sqrt_bits: 8,
            cases: vec![],
            polylog_fit: (2.0, 0.99),
            power_fit: (0.1, 0.9),
        };
        let json = report.to_json();
        assert!(json.contains("\"bench\":\"million-party-scaling\""));
        assert!(json.contains("\"lanes\":8"));
        assert!(json.contains("\"host_cores\":1"));
        assert!(json.contains("\"polylog_fit\""));
        assert!(json.contains("\"sqrt_anchors\":[{\"n\":64,\"bits_per_party\":512}]"));
    }

    #[test]
    fn measured_anchors_grow_like_sqrt() {
        let anchors = measure_sqrt_anchors();
        assert_eq!(
            anchors.iter().map(|a| a.n).collect::<Vec<_>>(),
            vec![64, 128, 256, 512, 1024]
        );
        let points: Vec<(usize, u64)> = anchors
            .iter()
            .map(|a| (a.n, a.bits_per_party / 8))
            .collect();
        let (alpha, _) = crate::power_fit(&points);
        assert!(
            (0.25..=0.75).contains(&alpha),
            "measured King-Saia growth exponent {alpha:.3} strayed from ~0.5"
        );
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_mib() > 0.0);
        }
    }
}
