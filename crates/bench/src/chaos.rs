//! The chaos sweep engine: drives `π_ba` through a matrix of
//! fault-injection strategies × corruption placements × network sizes and
//! classifies every outcome.
//!
//! The invariants checked per case:
//!
//! * **no honest-side panic** — any panic escaping the protocol is a
//!   [`ChaosVerdict::Violation`];
//! * **agreement + validity on completion** — a run that completes with
//!   honest parties disagreeing (or violating unanimous-input validity)
//!   is a violation;
//! * **graceful degradation** — runs past the design fault bound (or
//!   jammed by the adversary) must end as structured
//!   [`RunOutcome::Failed`] values, classified here as
//!   [`ChaosVerdict::Degraded`].
//!
//! The matrix covers content faults (equivocation, garbling, floods, …)
//! and timing faults (seeded per-link latency, healing and permanent
//! partitions, crash-recovery churn). The pinned expectations: every
//! latency-only row and every partition-that-heals row agrees; permanent
//! partitions and churn past the catch-up window degrade gracefully; no
//! timing row ever violates safety.
//!
//! Every case carries its exact seed and configuration;
//! [`ChaosCase::repro`] prints a one-line recipe that reproduces the run
//! bit-for-bit.

use pba_aetree::params::TreeParams;
use pba_aetree::tree::Tree;
use pba_core::protocol::{
    try_run_ba, AdversaryProfile, BaConfig, Establishment, KeyPolicy, ProtocolError, ProtocolPhase,
    RunOutcome,
};
use pba_net::corruption::{max_corruptions, CorruptionPlan};
use pba_net::faults::{GarbleMode, LatencyDist, StrategySpec};
use pba_srds::snark::SnarkSrds;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One cell of the sweep matrix.
#[derive(Clone, Debug)]
pub struct ChaosCase {
    /// Number of parties.
    pub n: usize,
    /// How the communication tree is established.
    pub establishment: Establishment,
    /// Corruption placement.
    pub plan: CorruptionPlan,
    /// Fault-injection strategy.
    pub spec: StrategySpec,
    /// Execution seed (drives the whole run, adversary included).
    pub seed: Vec<u8>,
}

impl ChaosCase {
    /// A single line that fully reproduces this case.
    pub fn repro(&self) -> String {
        let seed_hex: String = self.seed.iter().map(|b| format!("{b:02x}")).collect();
        format!(
            "CHAOS-REPRO n={} est={} plan={} spec={} seed=0x{} spec_debug={:?} plan_debug={:?}",
            self.n,
            self.establishment.label(),
            self.plan.label(),
            self.spec.label(),
            seed_hex,
            self.spec,
            self.plan,
        )
    }

    /// True when this case stays strictly below the `n/3` design bound
    /// (so the protocol is *required* to complete with agreement).
    pub fn honest_majority(&self) -> bool {
        3 * self.plan.budget() < self.n
    }

    /// The `n plan strategy` key used by the golden outcome table.
    pub fn key(&self) -> String {
        format!(
            "{} {} {} {}",
            self.n,
            self.establishment.label(),
            self.plan.label(),
            self.spec.label()
        )
    }
}

/// Classification of one chaos run.
#[derive(Clone, Debug)]
pub enum ChaosVerdict {
    /// The protocol completed with agreement and validity intact.
    Agreed {
        /// The common honest output.
        output: Option<u8>,
        /// Max per-honest-party bytes (flood-resistance signal).
        max_bytes_per_party: u64,
    },
    /// The protocol stopped with a structured failure — the graceful
    /// path for runs past the fault bound or jammed sub-protocols.
    Degraded {
        /// The phase that failed.
        phase: ProtocolPhase,
        /// The structured reason.
        reason: ProtocolError,
    },
    /// An invariant was broken: honest-side panic, disagreement, or a
    /// validity violation. `detail` explains which; the case's
    /// [`ChaosCase::repro`] line reproduces it.
    Violation {
        /// What went wrong.
        detail: String,
    },
}

impl ChaosVerdict {
    /// True for [`ChaosVerdict::Violation`].
    pub fn is_violation(&self) -> bool {
        matches!(self, ChaosVerdict::Violation { .. })
    }

    /// Short label for tables.
    pub fn label(&self) -> String {
        match self {
            ChaosVerdict::Agreed { output, .. } => format!("agreed({output:?})"),
            ChaosVerdict::Degraded { phase, .. } => format!("degraded({phase})"),
            ChaosVerdict::Violation { .. } => "VIOLATION".into(),
        }
    }
}

/// A case together with its verdict.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// The executed case.
    pub case: ChaosCase,
    /// Its classification.
    pub verdict: ChaosVerdict,
}

fn panic_detail(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs one case with the SNARK-based SRDS (the cheaper scheme) on
/// unanimous input `1` and classifies the outcome.
pub fn run_case(case: &ChaosCase) -> ChaosVerdict {
    let config = BaConfig {
        n: case.n,
        z: 2,
        corruption: case.plan.clone(),
        profile: AdversaryProfile::Byzantine,
        seed: case.seed.clone(),
        establishment: case.establishment,
        chaos: Some(case.spec.clone()),
        threads: 1,
        key_policy: KeyPolicy::Eager,
        dense_shadow: false,
    };
    let inputs = vec![1u8; case.n];
    let scheme = SnarkSrds::with_defaults();
    let run = catch_unwind(AssertUnwindSafe(|| try_run_ba(&scheme, &config, &inputs)));
    match run {
        Err(payload) => ChaosVerdict::Violation {
            detail: format!("honest-side panic: {}", panic_detail(payload)),
        },
        Ok(RunOutcome::Failed { phase, reason }) => {
            if case.honest_majority() && matches!(reason, ProtocolError::CorruptionBound { .. }) {
                // An under-bound plan must never trip the bound check.
                ChaosVerdict::Violation {
                    detail: format!("spurious corruption-bound failure: {reason}"),
                }
            } else {
                ChaosVerdict::Degraded { phase, reason }
            }
        }
        Ok(RunOutcome::Completed(out)) => {
            if !out.agreement {
                ChaosVerdict::Violation {
                    detail: format!("honest disagreement: outputs {:?}", out.outputs),
                }
            } else if !out.validity {
                ChaosVerdict::Violation {
                    detail: format!("validity broken: output {:?} on unanimous 1", out.output),
                }
            } else {
                ChaosVerdict::Agreed {
                    output: out.output,
                    max_bytes_per_party: out.report.max_bytes_per_party,
                }
            }
        }
    }
}

/// The committee-takeover corruption plan for the tree this case's seed
/// will build: corrupt (up to the fault bound) the distinct members of
/// leaf 0's committee.
pub fn takeover_plan(n: usize, seed: &[u8]) -> CorruptionPlan {
    let params = TreeParams::scaled(n, 2);
    // Mirror Session::establish's tree derivation exactly.
    let mut tree_seed = seed.to_vec();
    tree_seed.extend_from_slice(b"/ae-tree");
    let tree = Tree::build(&params, &tree_seed);
    tree.leaf_takeover(0, (n - 1) / 3)
}

fn case_seed(
    base: &[u8],
    n: usize,
    establishment: Establishment,
    plan: &CorruptionPlan,
    spec: &StrategySpec,
) -> Vec<u8> {
    let mut seed = base.to_vec();
    seed.extend_from_slice(format!("/{n}").as_bytes());
    // The charged column predates the establishment axis; its seeds keep
    // the legacy shape so the golden table stays comparable run-over-run.
    if establishment == Establishment::Interactive {
        seed.extend_from_slice(b"/interactive");
    }
    seed.extend_from_slice(format!("/{}/{}", plan.label(), spec.label()).as_bytes());
    seed
}

/// The default sweep matrix: ≥ 30 strategy × placement × establishment ×
/// size combos, including structured placements (suffix/stride), a
/// committee takeover of an a.e.-tree leaf, the [`Adaptive`] post-setup
/// adversary, interactive establishment, and over-bound plans that must
/// degrade gracefully.
///
/// [`Adaptive`]: CorruptionPlan::Adaptive
pub fn default_cases(base_seed: &[u8]) -> Vec<ChaosCase> {
    let mut cases = Vec::new();

    // Full strategy catalogue at n = 48 against a light random placement
    // (agreement expected despite active faults) and the leaf-committee
    // takeover (an aggressive placement that may stall — gracefully).
    let n = 48;
    let est = Establishment::Charged;
    let t = max_corruptions(n, 0.10).max(1);
    for spec in StrategySpec::catalogue() {
        for plan in [
            CorruptionPlan::Random { t },
            takeover_plan(
                n,
                &case_seed(base_seed, n, est, &CorruptionPlan::None, &spec),
            ),
        ] {
            let seed = case_seed(base_seed, n, est, &plan, &spec);
            cases.push(ChaosCase {
                n,
                establishment: est,
                plan,
                spec: spec.clone(),
                seed,
            });
        }
    }

    // A lighter cross at n = 64 stressing the structured placements.
    let n = 64;
    let t = max_corruptions(n, 0.25).max(1);
    for spec in [
        StrategySpec::Equivocate,
        StrategySpec::Garble(GarbleMode::Both),
        StrategySpec::Flood {
            victim: None,
            payload_len: 512,
            per_round: 8,
        },
        StrategySpec::Compose(vec![
            StrategySpec::Equivocate,
            StrategySpec::Replay { per_round: 2 },
        ]),
    ] {
        for plan in [
            CorruptionPlan::Suffix { t },
            CorruptionPlan::Stride {
                t,
                step: 3,
                offset: 1,
            },
        ] {
            let seed = case_seed(base_seed, n, est, &plan, &spec);
            cases.push(ChaosCase {
                n,
                establishment: est,
                plan,
                spec: spec.clone(),
                seed,
            });
        }
    }

    // Interactive-establishment column at n = 48: the tournament election
    // runs with real metered messages, then the same chaos strategies hit
    // the committee sub-protocols. Crossed with every placement family —
    // random, structured, and adaptive — so no strategy axis exists only
    // under charged establishment.
    let n = 48;
    let est = Establishment::Interactive;
    let t = max_corruptions(n, 0.10).max(1);
    for spec in [
        StrategySpec::Silent,
        StrategySpec::Equivocate,
        StrategySpec::Garble(GarbleMode::Both),
    ] {
        for plan in [
            CorruptionPlan::Random { t },
            CorruptionPlan::Suffix { t },
            CorruptionPlan::Stride {
                t,
                step: 3,
                offset: 1,
            },
            CorruptionPlan::Adaptive { t: 8 },
        ] {
            let seed = case_seed(base_seed, n, est, &plan, &spec);
            cases.push(ChaosCase {
                n,
                establishment: est,
                plan,
                spec: spec.clone(),
                seed,
            });
        }
    }

    // Adaptive post-setup adversary under charged establishment. Budget 8
    // affords a majority of the cheapest leaf committee; budget 15 buys
    // the most load-bearing internal node yet stays under the n/3 bound —
    // both must stay safe (agree or degrade, never violate).
    let est = Establishment::Charged;
    for (spec, t) in [
        (StrategySpec::Silent, 8),
        (StrategySpec::Equivocate, 8),
        (StrategySpec::Garble(GarbleMode::Both), 8),
        (StrategySpec::Equivocate, 15),
    ] {
        let plan = CorruptionPlan::Adaptive { t };
        let seed = case_seed(base_seed, n, est, &plan, &spec);
        cases.push(ChaosCase {
            n,
            establishment: est,
            plan,
            spec,
            seed,
        });
    }

    // Over-bound plans: the protocol must fail gracefully, never panic.
    // The adaptive plan at t = n/3 is rejected before it ever ranks a
    // target — the bound check cannot depend on placement cleverness.
    let n = 48;
    for (spec, plan) in [
        (StrategySpec::Silent, CorruptionPlan::Random { t: n / 3 }),
        (
            StrategySpec::Equivocate,
            CorruptionPlan::Random { t: n / 3 },
        ),
        (StrategySpec::Silent, CorruptionPlan::Adaptive { t: n / 3 }),
    ] {
        let seed = case_seed(base_seed, n, est, &plan, &spec);
        cases.push(ChaosCase {
            n,
            establishment: est,
            plan,
            spec,
            seed,
        });
    }

    // Timing faults beyond the catalogue sweep above (which already runs
    // every timing strategy against the random and takeover placements):
    // a fixed-lag link model, a partition that never heals (must degrade,
    // never violate), churn that rejoins too late to catch up, churn that
    // keeps a supermajority-threatening slice of honest parties dark for
    // the whole run, and latency composed with content equivocation.
    let t = max_corruptions(n, 0.10).max(1);
    for spec in [
        StrategySpec::Delay {
            dist: LatencyDist::Fixed { delay: 1 },
            budget: 2,
        },
        StrategySpec::Partition {
            split: 24,
            heal_at: None,
        },
        StrategySpec::Churn {
            count: 4,
            down: 6,
            up: 18,
        },
        StrategySpec::Churn {
            count: 20,
            down: 0,
            up: 4096,
        },
        StrategySpec::Compose(vec![
            StrategySpec::Delay {
                dist: LatencyDist::Uniform { max: 1 },
                budget: 2,
            },
            StrategySpec::Equivocate,
        ]),
    ] {
        let plan = CorruptionPlan::Random { t };
        let seed = case_seed(base_seed, n, est, &plan, &spec);
        cases.push(ChaosCase {
            n,
            establishment: est,
            plan,
            spec,
            seed,
        });
    }

    // Timing under interactive establishment: the delay queue installs
    // after the metered election, and the lazy tick base keeps the link
    // schedule identical to the charged column.
    let spec = StrategySpec::Delay {
        dist: LatencyDist::Uniform { max: 1 },
        budget: 2,
    };
    let plan = CorruptionPlan::Random { t };
    let seed = case_seed(base_seed, n, Establishment::Interactive, &plan, &spec);
    cases.push(ChaosCase {
        n,
        establishment: Establishment::Interactive,
        plan,
        spec,
        seed,
    });

    cases
}

/// One mid-stream arming case: a `k`-instance sequential stream over a
/// single establishment that runs clean until instance `arm_at`, at which
/// point `spec` is armed via [`Service::set_chaos`] — the adversary shows
/// up *between* decisions of a long-lived service. Earlier instances have
/// already settled; their verdicts must be unaffected.
///
/// [`Service::set_chaos`]: pba_core::protocol::Service::set_chaos
#[derive(Clone, Debug)]
pub struct StreamChaosCase {
    /// Number of parties.
    pub n: usize,
    /// Instances in the stream.
    pub k: usize,
    /// Instance index the spec is armed before (0-based).
    pub arm_at: usize,
    /// The strategy armed mid-stream.
    pub spec: StrategySpec,
    /// Execution seed.
    pub seed: Vec<u8>,
}

impl StreamChaosCase {
    /// The `n stream-k arm@i strategy` key used by the golden table.
    pub fn key(&self) -> String {
        format!(
            "{} stream-{} arm@{} {}",
            self.n,
            self.k,
            self.arm_at,
            self.spec.label()
        )
    }
}

/// A stream case with its per-instance verdict labels, joined by `;` in
/// instance order.
#[derive(Clone, Debug)]
pub struct StreamChaosReport {
    /// The executed case.
    pub case: StreamChaosCase,
    /// One verdict label per instance, `;`-joined.
    pub verdicts: String,
}

/// The default mid-stream arming cases: content-fault strategies only
/// (timing axes are establishment-scoped and cannot be re-armed on a
/// running service), each arming at instance 2 of a 4-instance stream.
pub fn default_stream_cases(base_seed: &[u8]) -> Vec<StreamChaosCase> {
    let specs = [
        StrategySpec::Equivocate,
        StrategySpec::Garble(GarbleMode::Both),
        StrategySpec::Replay { per_round: 3 },
        StrategySpec::Flood {
            victim: None,
            payload_len: 512,
            per_round: 8,
        },
    ];
    specs
        .into_iter()
        .map(|spec| {
            let mut seed = base_seed.to_vec();
            seed.extend_from_slice(format!("/stream/{}", spec.label()).as_bytes());
            StreamChaosCase {
                n: 48,
                k: 4,
                arm_at: 2,
                spec,
                seed,
            }
        })
        .collect()
}

/// Runs one mid-stream arming case: establishes a [`Service`] with no
/// chaos, streams instances sequentially, and swaps the strategy in via
/// [`Service::set_chaos`] immediately before instance `arm_at`.
///
/// [`Service`]: pba_core::protocol::Service
/// [`Service::set_chaos`]: pba_core::protocol::Service::set_chaos
pub fn run_stream_case(case: &StreamChaosCase) -> StreamChaosReport {
    use pba_core::protocol::{Service, StreamMode};
    use pba_srds::snark::SnarkSrdsConfig;

    let config = BaConfig {
        n: case.n,
        z: 2,
        corruption: CorruptionPlan::Random { t: case.n / 8 },
        profile: AdversaryProfile::Byzantine,
        seed: case.seed.clone(),
        establishment: Establishment::Charged,
        chaos: None,
        threads: 1,
        key_policy: KeyPolicy::Eager,
        dense_shadow: false,
    };
    let mss_height = usize::max(1, case.k.next_power_of_two().trailing_zeros() as usize);
    let scheme = SnarkSrds::new(SnarkSrdsConfig {
        mss_bits: 32,
        mss_height,
    });
    let inputs = vec![vec![1u8]; case.n];
    let run = catch_unwind(AssertUnwindSafe(|| {
        let mut service = match Service::try_establish(&scheme, &config) {
            Ok(s) => s,
            Err(reason) => return vec![format!("establishment-failed({reason})")],
        };
        let mut labels = Vec::with_capacity(case.k);
        for i in 0..case.k {
            if i == case.arm_at {
                service.set_chaos(Some(case.spec.clone()));
            }
            let out = service.try_run_stream(std::slice::from_ref(&inputs), StreamMode::Sequential);
            let inst = out.instances.into_iter().next().expect("one instance ran");
            labels.push(match inst.result {
                Ok(mv) if mv.agreement && mv.validity => {
                    format!("agreed({:?})", mv.value.first().copied())
                }
                Ok(mv) => format!(
                    "VIOLATION(agreement={}, validity={})",
                    mv.agreement, mv.validity
                ),
                Err(reason) => format!("degraded({})", reason.phase()),
            });
        }
        labels
    }));
    let verdicts = match run {
        Ok(labels) => labels.join(";"),
        Err(payload) => format!("VIOLATION(panic: {})", panic_detail(payload)),
    };
    StreamChaosReport {
        case: case.clone(),
        verdicts,
    }
}

/// Runs every case and returns the reports, in order.
pub fn run_sweep(cases: &[ChaosCase]) -> Vec<ChaosReport> {
    cases
        .iter()
        .map(|case| ChaosReport {
            case: case.clone(),
            verdict: run_case(case),
        })
        .collect()
}

/// Renders the sweep as an aligned text table with repro lines for every
/// violation.
pub fn render_sweep(reports: &[ChaosReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:>4}  {:<11}  {:<16}  {:<34}  {}\n",
        "n", "est", "plan", "strategy", "verdict"
    ));
    for r in reports {
        out.push_str(&format!(
            "{:>4}  {:<11}  {:<16}  {:<34}  {}\n",
            r.case.n,
            r.case.establishment.label(),
            r.case.plan.label(),
            r.case.spec.label(),
            r.verdict.label()
        ));
        if let ChaosVerdict::Violation { detail } = &r.verdict {
            out.push_str(&format!("      !! {detail}\n      !! {}\n", r.case.repro()));
        }
    }
    let violations = reports.iter().filter(|r| r.verdict.is_violation()).count();
    let degraded = reports
        .iter()
        .filter(|r| matches!(r.verdict, ChaosVerdict::Degraded { .. }))
        .count();
    out.push_str(&format!(
        "{} cases: {} agreed, {} degraded gracefully, {} violations\n",
        reports.len(),
        reports.len() - violations - degraded,
        degraded,
        violations
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_covers_required_combos() {
        let cases = default_cases(b"chaos-unit");
        assert!(cases.len() >= 30, "only {} combos", cases.len());
        // Strategy diversity.
        let specs: std::collections::BTreeSet<String> =
            cases.iter().map(|c| c.spec.label()).collect();
        assert!(specs.len() >= 8, "only {} distinct strategies", specs.len());
        // Placement diversity, including a takeover (explicit) plan and
        // the adaptive post-setup plan.
        let plans: std::collections::BTreeSet<String> =
            cases.iter().map(|c| c.plan.label()).collect();
        assert!(plans.len() >= 5, "only {} distinct plans", plans.len());
        assert!(cases
            .iter()
            .any(|c| matches!(c.plan, CorruptionPlan::Explicit(_))));
        assert!(cases
            .iter()
            .any(|c| matches!(c.plan, CorruptionPlan::Adaptive { .. })));
        // Both establishment modes, and adaptive under both of them.
        for est in [Establishment::Charged, Establishment::Interactive] {
            assert!(
                cases
                    .iter()
                    .any(|c| c.establishment == est
                        && matches!(c.plan, CorruptionPlan::Adaptive { .. })),
                "no adaptive case under {}",
                est.label()
            );
        }
        // Size diversity and over-bound coverage (three over-bound cases,
        // one of them adaptive).
        let sizes: std::collections::BTreeSet<usize> = cases.iter().map(|c| c.n).collect();
        assert!(sizes.len() >= 2);
        let over: Vec<_> = cases.iter().filter(|c| !c.honest_majority()).collect();
        assert_eq!(over.len(), 3, "expected exactly three over-bound cases");
        assert!(over
            .iter()
            .any(|c| matches!(c.plan, CorruptionPlan::Adaptive { .. })));
        // Timing coverage: ≥ 10 timing rows spanning latency, healing and
        // permanent partitions, churn, a timing × content composition, and
        // at least one timing row under interactive establishment.
        let timing: Vec<_> = cases
            .iter()
            .filter(|c| {
                let l = c.spec.label();
                l.contains("delay") || l.contains("partition") || l.contains("churn")
            })
            .collect();
        assert!(timing.len() >= 10, "only {} timing rows", timing.len());
        assert!(timing.iter().any(|c| c.spec.label().contains("heal")));
        assert!(timing.iter().any(|c| c.spec.label().contains("forever")));
        assert!(timing.iter().any(|c| c.spec.label().starts_with("churn")));
        assert!(timing
            .iter()
            .any(|c| c.spec.label().contains("compose") && c.spec.label().contains("delay")));
        assert!(timing
            .iter()
            .any(|c| c.establishment == Establishment::Interactive));
    }

    #[test]
    fn takeover_plan_is_under_bound_and_deterministic() {
        let p1 = takeover_plan(48, b"s");
        let p2 = takeover_plan(48, b"s");
        assert_eq!(p1, p2);
        let CorruptionPlan::Explicit(set) = &p1 else {
            panic!("takeover must be explicit")
        };
        assert!(!set.is_empty());
        assert!(3 * set.len() < 48);
    }

    #[test]
    fn over_bound_case_degrades() {
        for plan in [
            CorruptionPlan::Random { t: 16 },
            CorruptionPlan::Adaptive { t: 16 },
        ] {
            let case = ChaosCase {
                n: 48,
                establishment: Establishment::Charged,
                plan,
                spec: StrategySpec::Silent,
                seed: b"chaos-over".to_vec(),
            };
            match run_case(&case) {
                ChaosVerdict::Degraded { phase, .. } => {
                    assert_eq!(phase, ProtocolPhase::Establishment)
                }
                other => panic!("expected graceful degradation, got {other:?}"),
            }
        }
    }

    #[test]
    fn repro_line_is_complete() {
        let case = ChaosCase {
            n: 48,
            establishment: Establishment::Interactive,
            plan: CorruptionPlan::Suffix { t: 4 },
            spec: StrategySpec::Garble(GarbleMode::Truncate),
            seed: vec![0xab, 0xcd],
        };
        let line = case.repro();
        assert!(line.contains("n=48"));
        assert!(line.contains("est=interactive"));
        assert!(line.contains("suffix-4"));
        assert!(line.contains("garble-truncate"));
        assert!(line.contains("seed=0xabcd"));
    }
}
