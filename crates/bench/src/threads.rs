//! Compound threads × lanes scaling of the work-stealing round engine
//! (§E-threads) — emits `BENCH_10.json`.
//!
//! One deterministic hash-bound workload (the [`LaneGrind`] machine:
//! `hash_iters` *ragged* independent digests per party per round,
//! XOR-folded and gossiped to two ring neighbours) is run through every
//! cell of a `(threads, lanes)` grid:
//!
//! * **lanes = 1** — every digest goes through the scalar core one at a
//!   time (`Sha256::digest`), no batch engine involvement;
//! * **lanes = 8** — digests go through [`pba_net::Ctx::hash_batch_into`].
//!   At `threads = 1` this is the *per-party* batched baseline: each
//!   party's ragged batch leaves `hash_iters mod LANES` scalar
//!   remainders. At `threads ≥ 2` the machine's declared
//!   [`pba_net::Machine::hash_manifest`] routes the same inputs through
//!   the scheduler's cross-party `DigestBatcher`, which pools whole
//!   chunks before flushing — the remainders collapse to at most one
//!   ragged tail per *chunk* instead of one per *party*.
//!
//! Every cell's transcript is compared against the sequential reference
//! (the determinism anchor: bit-identical for every thread count and
//! every hashing mode, because the digests themselves are bit-identical
//! either way). Lane occupancy per cell is measured from the process-wide
//! [`pba_crypto::sha256::engine_stats`] counter deltas, and the report
//! stamps the measuring host's core count so a 1-core CI runner and a
//! many-core bare-metal host are distinguishable in the artifact.
//!
//! The binary (`cargo run -p pba-bench --bin thread_scale --release
//! [-- --smoke]`) renders the result as `BENCH_10.json`. Wall-clock
//! speedup targets are only asserted where physically attainable (4+
//! hardware threads, full sweep); the occupancy gate — pooled strictly
//! above per-party — holds on any host, 1-core included.

use pba_crypto::sha256::{engine_stats, Digest, Sha256, LANES};
use pba_net::runner::run_phase_threaded;
use pba_net::{Envelope, Machine, Network, PartyId, SilentAdversary};
use std::collections::BTreeMap;
use std::time::Instant;

/// Parameters of one threads × lanes sweep.
#[derive(Clone, Debug)]
pub struct ThreadScaleConfig {
    /// Party counts for the grid.
    pub sizes: Vec<usize>,
    /// Synchronous rounds per cell.
    pub rounds: u64,
    /// Independent digests each party computes per round. Deliberately
    /// ragged (`hash_iters % LANES != 0`) so per-party batches leave
    /// scalar remainders for the cross-party pool to absorb.
    pub hash_iters: usize,
    /// Thread counts measured (always includes 1, the baseline column).
    pub threads: Vec<usize>,
}

impl ThreadScaleConfig {
    /// Thread counts for a host with `host_cores` hardware threads:
    /// {1, 2, 4} always (over-subscription is harmless and keeps the
    /// grid comparable across hosts), plus the full core count when it
    /// adds a new column.
    fn threads_for(host_cores: usize) -> Vec<usize> {
        let mut threads = vec![1, 2, 4];
        if host_cores > 4 {
            threads.push(host_cores.min(16));
        }
        threads
    }

    /// The full grid: n ∈ {256, 1024}, ragged 61-digest workload.
    pub fn full(host_cores: usize) -> Self {
        ThreadScaleConfig {
            sizes: vec![256, 1024],
            rounds: 12,
            hash_iters: 61,
            threads: Self::threads_for(host_cores),
        }
    }

    /// CI smoke variant: n = 64, same gates, minutes → seconds.
    pub fn smoke(host_cores: usize) -> Self {
        ThreadScaleConfig {
            sizes: vec![64],
            rounds: 6,
            hash_iters: 13,
            threads: Self::threads_for(host_cores.min(4)),
        }
    }
}

/// One measured `(n, threads, lanes)` cell.
#[derive(Clone, Debug)]
pub struct ThreadCell {
    /// Number of parties.
    pub n: usize,
    /// Worker threads requested (1 = sequential path).
    pub threads: usize,
    /// Hashing mode: 1 = scalar core per digest, [`LANES`] = batch engine.
    pub lanes: usize,
    /// Rounds executed.
    pub rounds: u64,
    /// Wall milliseconds for the whole phase.
    pub wall_ms: f64,
    /// Rounds per second.
    pub rounds_per_sec: f64,
    /// Digests the 8-lane core produced during this cell.
    pub lane_digests: u64,
    /// Digests the scalar core produced *inside batch calls* during this
    /// cell (lanes = 1 cells hash outside the batch engine and count 0).
    pub scalar_digests: u64,
    /// `lane / (lane + scalar)` for this cell (0.0 when nothing batched).
    pub occupancy: f64,
    /// True when this cell's transcript matched the sequential reference.
    pub identical: bool,
}

/// Per-`n` end-to-end comparison: best multi-threaded batched cell vs the
/// 1-thread 8-lane baseline, with the occupancy gap alongside.
#[derive(Clone, Debug)]
pub struct ThreadSpeedup {
    /// Number of parties.
    pub n: usize,
    /// Thread count of the fastest batched cell.
    pub threads: usize,
    /// `best batched rounds/sec ÷ 1-thread 8-lane rounds/sec`.
    pub speedup: f64,
    /// Lane occupancy of the per-party baseline (threads = 1, lanes = 8).
    pub per_party_occupancy: f64,
    /// Lowest lane occupancy across the pooled cells (threads ≥ 2,
    /// lanes = 8) — the conservative side of the strict gate.
    pub pooled_occupancy: f64,
}

/// The full report rendered into `BENCH_10.json`.
#[derive(Clone, Debug)]
pub struct ThreadScaleReport {
    /// Whether this was the `--smoke` variant.
    pub smoke: bool,
    /// Engine lane width ([`LANES`]).
    pub engine_lanes: usize,
    /// `std::thread::available_parallelism()` of the measuring host.
    pub host_cores: usize,
    /// Sweep parameters.
    pub config: ThreadScaleConfig,
    /// Every measured `(n, threads, lanes)` cell.
    pub cells: Vec<ThreadCell>,
    /// Per-`n` speedup + occupancy summaries.
    pub speedups: Vec<ThreadSpeedup>,
}

impl ThreadScaleReport {
    /// True when every cell reproduced the sequential transcript — the
    /// report-level determinism gate.
    pub fn transcripts_identical(&self) -> bool {
        self.cells.iter().all(|c| c.identical)
    }

    /// True when, at every `n`, every pooled cell (threads ≥ 2,
    /// lanes = 8) achieved strictly higher lane occupancy than the
    /// per-party baseline (threads = 1, lanes = 8).
    pub fn pooled_occupancy_exceeds_per_party(&self) -> bool {
        self.speedups
            .iter()
            .all(|s| s.pooled_occupancy > s.per_party_occupancy)
    }

    /// Renders the report as a JSON object (serde-free, like
    /// [`crate::perf::PerfReport::to_json`]).
    pub fn to_json(&self) -> String {
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                format!(
                    concat!(
                        "{{\"n\":{},\"threads\":{},\"lanes\":{},\"rounds\":{},",
                        "\"wall_ms\":{:.3},\"rounds_per_sec\":{:.3},",
                        "\"lane_digests\":{},\"scalar_digests\":{},",
                        "\"occupancy\":{:.4},\"identical\":{}}}"
                    ),
                    c.n,
                    c.threads,
                    c.lanes,
                    c.rounds,
                    c.wall_ms,
                    c.rounds_per_sec,
                    c.lane_digests,
                    c.scalar_digests,
                    c.occupancy,
                    c.identical
                )
            })
            .collect();
        let speedups: Vec<String> = self
            .speedups
            .iter()
            .map(|s| {
                format!(
                    concat!(
                        "{{\"n\":{},\"threads\":{},\"speedup\":{:.3},",
                        "\"per_party_occupancy\":{:.4},\"pooled_occupancy\":{:.4}}}"
                    ),
                    s.n, s.threads, s.speedup, s.per_party_occupancy, s.pooled_occupancy
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"bench\":\"thread-scale\",",
                "\"smoke\":{},",
                "\"engine_lanes\":{},",
                "\"host_cores\":{},",
                "\"rounds_per_case\":{},",
                "\"hash_iters_per_round\":{},",
                "\"transcripts_identical\":{},",
                "\"pooled_occupancy_exceeds_per_party\":{},",
                "\"cells\":[{}],",
                "\"speedups\":[{}]}}"
            ),
            self.smoke,
            self.engine_lanes,
            self.host_cores,
            self.config.rounds,
            self.config.hash_iters,
            self.transcripts_identical(),
            self.pooled_occupancy_exceeds_per_party(),
            cells.join(","),
            speedups.join(","),
        )
    }
}

/// The grid workload: each round every party mixes its round counter, id,
/// and inbox shape into a seed, derives `iters` *independent* ragged
/// inputs, digests them through the mode under test, XOR-folds the
/// digests, and gossips the fold to ring neighbours `+1` and `+7` — so
/// any wrong digest, wrong order, or stale prefetch corrupts the
/// transcript the determinism gate compares.
struct LaneGrind {
    id: PartyId,
    n: usize,
    iters: usize,
    rounds_done: u64,
    quota: u64,
    /// 1 = scalar core per digest; [`LANES`] = batch engine (and, under
    /// the work-stealing pool, the declared manifest below).
    lanes: usize,
    scratch: Vec<Digest>,
}

impl LaneGrind {
    fn workload(&self, inbox: &[Envelope]) -> Vec<Vec<u8>> {
        let mut acc: u64 = self.rounds_done.wrapping_mul(0x9e37_79b9) ^ self.id.0;
        for env in inbox {
            acc ^= (env.payload.len() as u64).rotate_left(17) ^ env.from.0;
        }
        (0..self.iters)
            .map(|i| {
                let mut input = Vec::with_capacity(20);
                input.extend_from_slice(&acc.to_le_bytes());
                input.extend_from_slice(&(i as u64).to_le_bytes());
                input.extend_from_slice(&(self.id.0 as u32).to_le_bytes());
                input
            })
            .collect()
    }
}

impl Machine for LaneGrind {
    fn on_round(&mut self, ctx: &mut pba_net::Ctx<'_>, inbox: &[Envelope]) {
        let inputs = self.workload(inbox);
        let mut digests = std::mem::take(&mut self.scratch);
        if self.lanes >= LANES {
            let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
            ctx.hash_batch_into(&refs, &mut digests);
        } else {
            digests.clear();
            digests.extend(inputs.iter().map(|m| Sha256::digest(m)));
        }
        let fold = digests.iter().fold(Digest::ZERO, |acc, d| acc.xor(d));
        self.scratch = digests;
        let next = PartyId(((self.id.0 as usize + 1) % self.n) as u64);
        let far = PartyId(((self.id.0 as usize + 7) % self.n) as u64);
        ctx.send_raw(next, fold.as_bytes().to_vec());
        ctx.send_raw(far, fold.as_bytes().to_vec());
        self.rounds_done += 1;
    }

    fn is_done(&self) -> bool {
        self.rounds_done >= self.quota
    }

    fn hash_manifest(&self, inbox: &[Envelope]) -> Vec<Vec<u8>> {
        if self.lanes >= LANES {
            self.workload(inbox)
        } else {
            Vec::new()
        }
    }
}

fn grind_machines(
    n: usize,
    lanes: usize,
    quota: u64,
    iters: usize,
) -> BTreeMap<PartyId, Box<dyn Machine + Send>> {
    (0..n as u64)
        .map(|i| {
            (
                PartyId(i),
                Box::new(LaneGrind {
                    id: PartyId(i),
                    n,
                    iters,
                    rounds_done: 0,
                    quota,
                    lanes,
                    scratch: Vec::new(),
                }) as Box<dyn Machine + Send>,
            )
        })
        .collect()
}

/// Runs one `(n, threads, lanes)` cell and returns the timed cell plus
/// its transcript (for the caller's identity cross-check).
fn run_cell(
    n: usize,
    threads: usize,
    lanes: usize,
    rounds: u64,
    iters: usize,
) -> (ThreadCell, Vec<Digest>) {
    let mut net = Network::new(n);
    net.enable_transcript();
    let mut machines = grind_machines(n, lanes, rounds, iters);
    let mut adversary = SilentAdversary::default();
    let before = engine_stats();
    let start = Instant::now();
    let outcome = run_phase_threaded(&mut net, &mut machines, &mut adversary, rounds + 2, threads);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(outcome.completed, "thread-scale workload must terminate");
    let delta = engine_stats().since(&before);
    let transcript = net.transcript().expect("transcript enabled").to_vec();
    (
        ThreadCell {
            n,
            threads,
            lanes,
            rounds: outcome.rounds,
            wall_ms,
            rounds_per_sec: outcome.rounds as f64 / (wall_ms / 1e3),
            lane_digests: delta.lane_digests,
            scalar_digests: delta.scalar_digests,
            occupancy: delta.occupancy(),
            identical: true, // overwritten by the caller's cross-check
        },
        transcript,
    )
}

/// Runs the full threads × lanes grid, cross-checking every cell's
/// transcript against the sequential reference.
pub fn run_thread_scale(config: &ThreadScaleConfig, smoke: bool) -> ThreadScaleReport {
    let host_cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let mut cells = Vec::new();
    let mut speedups = Vec::new();
    for &n in &config.sizes {
        // Sequential scalar-core run: the reference transcript every other
        // cell — any thread count, either hashing mode — must reproduce.
        let (mut reference_cell, reference) = run_cell(n, 1, 1, config.rounds, config.hash_iters);
        reference_cell.identical = true;
        cells.push(reference_cell);
        let mut baseline: Option<ThreadCell> = None;
        let mut best: Option<ThreadCell> = None;
        let mut pooled_floor = f64::INFINITY;
        for &threads in &config.threads {
            for lanes in [1, LANES] {
                if threads == 1 && lanes == 1 {
                    continue; // already measured as the reference
                }
                let (mut cell, transcript) =
                    run_cell(n, threads, lanes, config.rounds, config.hash_iters);
                cell.identical = transcript == reference;
                if lanes == LANES {
                    if threads == 1 {
                        baseline = Some(cell.clone());
                    } else {
                        pooled_floor = pooled_floor.min(cell.occupancy);
                        if best
                            .as_ref()
                            .map(|b| cell.rounds_per_sec > b.rounds_per_sec)
                            .unwrap_or(true)
                        {
                            best = Some(cell.clone());
                        }
                    }
                }
                cells.push(cell);
            }
        }
        let baseline = baseline.expect("threads = 1 is always in the grid");
        let best = best.expect("a threads >= 2 batched cell is always in the grid");
        speedups.push(ThreadSpeedup {
            n,
            threads: best.threads,
            speedup: best.rounds_per_sec / baseline.rounds_per_sec,
            per_party_occupancy: baseline.occupancy,
            pooled_occupancy: pooled_floor,
        });
    }
    ThreadScaleReport {
        smoke,
        engine_lanes: LANES,
        host_cores,
        config: config.clone(),
        cells,
        speedups,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_grid_is_identical_and_renders_json() {
        let config = ThreadScaleConfig {
            sizes: vec![12],
            rounds: 4,
            hash_iters: 13,
            threads: vec![1, 2, 7],
        };
        let report = run_thread_scale(&config, true);
        assert!(
            report.transcripts_identical(),
            "a (threads, lanes) cell diverged from sequential: {report:?}"
        );
        // reference + (3 thread counts × 2 lane modes − the reference).
        assert_eq!(report.cells.len(), 6);
        assert_eq!(report.speedups.len(), 1);
        // Occupancy is a process-wide counter delta — concurrent tests in
        // this binary can inflate it, so the strict pooled > per-party
        // gate lives in the (single-orchestrator) binary and CI, not
        // here. Shape checks only:
        for cell in &report.cells {
            assert!((0.0..=1.0).contains(&cell.occupancy), "{cell:?}");
            assert!(cell.rounds_per_sec > 0.0, "{cell:?}");
        }
        let json = report.to_json();
        for key in [
            "\"bench\":\"thread-scale\"",
            "\"host_cores\":",
            "\"engine_lanes\":8",
            "\"transcripts_identical\":true",
            "\"cells\":[",
            "\"speedups\":[",
            "\"pooled_occupancy\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn threads_grid_adapts_to_host_width() {
        assert_eq!(ThreadScaleConfig::threads_for(1), vec![1, 2, 4]);
        assert_eq!(ThreadScaleConfig::threads_for(4), vec![1, 2, 4]);
        assert_eq!(ThreadScaleConfig::threads_for(8), vec![1, 2, 4, 8]);
        assert_eq!(ThreadScaleConfig::threads_for(64), vec![1, 2, 4, 16]);
    }
}
