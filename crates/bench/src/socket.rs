//! Multi-process socket deployment of `π_ba` (§E-socket).
//!
//! Every endpoint runs the *full* deterministic simulation — all protocol
//! state derives from the shared `(seed, config)` — and a
//! [`pba_net::TcpTransport`] substitutes authoritative socket bytes for
//! the locally staged envelopes at every exchange. The in-process run
//! over [`pba_net::LocalTransport`] is therefore a golden oracle: a
//! correct deployment produces the **same chained delivery-transcript
//! digest** on every backend, and any in-flight divergence (corruption,
//! reordering, version skew) changes the digest at the first affected
//! exchange.
//!
//! Three deployment shapes, all driven from the `node` binary
//! (`cargo run -p pba-bench --bin node -- <sim|run|launch|table>`):
//!
//! * **sim** — the oracle: one process, [`pba_net::LocalTransport`];
//! * **loopback fleet** — `k` endpoints as threads of one process, real
//!   TCP over `127.0.0.1` ([`run_loopback_fleet`]);
//! * **multi-process** — `k` `node run` processes launched by
//!   [`launch_processes`], digests diffed against the oracle.

use pba_core::protocol::{try_run_ba_over, BaConfig, Establishment, RunOutcome, TransportRun};
use pba_crypto::sha256::Digest;
use pba_net::{
    genesis_digest, LocalTransport, PeerMap, TcpTransport, Transport, TransportError, TransportOpts,
};
use pba_srds::snark::SnarkSrds;
use std::net::TcpListener;
use std::process::{Command, Stdio};

/// SRDS scheme selector for socket runs (string-addressable so it can
/// cross a process boundary on the command line).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeKind {
    /// SNARK/bare-PKI SRDS — the default: cheap enough to replicate the
    /// full simulation per endpoint.
    Snark,
    /// OWF/trusted-PKI SRDS (compute-heavy; small `n` only).
    Owf,
}

impl SchemeKind {
    /// Short label (also the genesis-binding scheme string).
    pub fn label(&self) -> &'static str {
        match self {
            SchemeKind::Snark => "snark",
            SchemeKind::Owf => "owf",
        }
    }

    /// Parses a label produced by [`SchemeKind::label`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "snark" => Some(SchemeKind::Snark),
            "owf" => Some(SchemeKind::Owf),
            _ => None,
        }
    }
}

/// Parses an establishment label (`charged` / `interactive`).
pub fn parse_establishment(s: &str) -> Option<Establishment> {
    match s {
        "charged" => Some(Establishment::Charged),
        "interactive" => Some(Establishment::Interactive),
        _ => None,
    }
}

/// The shared deployment contract: everything every endpoint must agree
/// on for the replicas to stay in lockstep. Bound into the genesis digest
/// exchanged in the transport hello, so a misconfigured endpoint is
/// rejected at connection time instead of diverging mid-run.
#[derive(Clone, Debug)]
pub struct SocketSpec {
    /// Parties in the simulated protocol.
    pub n: usize,
    /// Deployment endpoints (processes or threads).
    pub k: usize,
    /// Protocol seed (UTF-8; crosses the command line).
    pub seed: String,
    /// SRDS scheme.
    pub scheme: SchemeKind,
    /// Establishment mode.
    pub establishment: Establishment,
    /// Agreed tick base for round numbering (hello-validated so
    /// partial-synchrony drivers in different processes cannot skew).
    pub tick_base: u64,
}

impl SocketSpec {
    /// A fault-free spec with the default scheme and establishment.
    pub fn new(n: usize, k: usize, seed: &str) -> Self {
        SocketSpec {
            n,
            k,
            seed: seed.to_string(),
            scheme: SchemeKind::Snark,
            establishment: Establishment::Charged,
            tick_base: 0,
        }
    }

    /// The `π_ba` configuration every replica runs.
    pub fn config(&self) -> BaConfig {
        let mut config = BaConfig::honest(self.n, self.seed.as_bytes());
        config.establishment = self.establishment;
        config
    }

    /// Deterministic per-party inputs (mixed, so the certified value is
    /// data-dependent and a diverged replica cannot agree by accident).
    pub fn inputs(&self) -> Vec<u8> {
        (0..self.n).map(|i| (i % 2) as u8).collect()
    }

    /// The genesis digest endpoints must present in their hello.
    pub fn genesis(&self, map: &PeerMap) -> Digest {
        genesis_digest(
            self.seed.as_bytes(),
            self.establishment.label(),
            self.scheme.label(),
            map,
        )
    }

    /// Runs the full protocol over an explicit transport.
    pub fn run_over(&self, transport: Box<dyn Transport>) -> TransportRun {
        let config = self.config();
        let inputs = self.inputs();
        match self.scheme {
            SchemeKind::Snark => {
                try_run_ba_over(&SnarkSrds::with_defaults(), &config, &inputs, transport)
            }
            SchemeKind::Owf => try_run_ba_over(&crate::bench_owf(), &config, &inputs, transport),
        }
    }

    /// The in-process oracle run.
    pub fn run_sim(&self) -> TransportRun {
        self.run_over(Box::new(LocalTransport::new()))
    }

    /// Runs one socket endpoint: binds `map.addr(map.self_idx())`,
    /// meshes with the peers, and executes the full protocol.
    ///
    /// # Errors
    ///
    /// [`TransportError`] if the mesh cannot be established (bind/dial
    /// failure, hello timeout or mismatch). Protocol-level failures are
    /// reported inside the returned [`TransportRun`].
    pub fn run_endpoint(&self, map: PeerMap) -> Result<TransportRun, TransportError> {
        let genesis = self.genesis(&map);
        let transport =
            TcpTransport::connect(map, genesis, self.tick_base, TransportOpts::default())?;
        Ok(self.run_over(Box::new(transport)))
    }
}

/// Reserves `k` distinct loopback addresses by binding OS-assigned ports
/// and immediately releasing them. There is an inherent reuse window
/// between release and the endpoint's own bind; [`launch_processes`]
/// retries the whole deployment on a bind failure.
pub fn reserve_loopback_addrs(k: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..k)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect()
}

/// Runs a `k`-endpoint deployment as threads of this process over real
/// loopback TCP. Listeners are bound *before* the threads start (no
/// reuse race), and the peer map is built from the OS-assigned ports.
/// Returns one [`TransportRun`] per endpoint, in endpoint order.
pub fn run_loopback_fleet(spec: &SocketSpec) -> Vec<TransportRun> {
    let listeners: Vec<TcpListener> = (0..spec.k)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let addrs: Vec<String> = listeners
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect();
    let handles: Vec<std::thread::JoinHandle<TransportRun>> = listeners
        .into_iter()
        .enumerate()
        .map(|(e, listener)| {
            let spec = spec.clone();
            let addrs = addrs.clone();
            std::thread::Builder::new()
                .name(format!("pba-endpoint-{e}"))
                .spawn(move || {
                    let map = PeerMap::contiguous(spec.n, addrs, e);
                    let genesis = spec.genesis(&map);
                    let transport = TcpTransport::with_listener(
                        map,
                        genesis,
                        spec.tick_base,
                        TransportOpts::default(),
                        listener,
                    )
                    .expect("loopback mesh");
                    spec.run_over(Box::new(transport))
                })
                .expect("spawn endpoint thread")
        })
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("endpoint thread"))
        .collect()
}

/// Renders one endpoint's run as a single JSON line (the `node run`
/// stdout contract parsed by [`launch_processes`]).
pub fn endpoint_json(endpoint: usize, run: &TransportRun) -> String {
    let digest = run.final_digest().map(|d| d.to_hex()).unwrap_or_default();
    match &run.outcome {
        RunOutcome::Completed(out) => format!(
            concat!(
                "{{\"endpoint\":{},\"backend\":\"{}\",\"completed\":true,",
                "\"digest\":\"{}\",\"agreement\":{},\"output\":{},",
                "\"logical_total_bytes\":{},\"logical_max_bytes_per_party\":{},",
                "\"rounds\":{},\"tags_conserved\":{},",
                "\"exchanges\":{},\"socket_bytes_sent\":{},\"socket_bytes_received\":{},",
                "\"frames_sent\":{},\"frames_received\":{}}}"
            ),
            endpoint,
            run.kind,
            digest,
            out.agreement,
            out.output
                .map(|b| b.to_string())
                .unwrap_or_else(|| "null".into()),
            out.report.total_bytes,
            out.report.max_bytes_per_party,
            out.report.rounds,
            out.tags_conserved,
            run.stats.exchanges,
            run.stats.bytes_sent,
            run.stats.bytes_received,
            run.stats.frames_sent,
            run.stats.frames_received,
        ),
        RunOutcome::Failed { phase, reason } => format!(
            concat!(
                "{{\"endpoint\":{},\"backend\":\"{}\",\"completed\":false,",
                "\"digest\":\"{}\",\"phase\":\"{}\",\"reason\":\"{}\"}}"
            ),
            endpoint,
            run.kind,
            digest,
            phase,
            reason.to_string().replace('"', "'"),
        ),
    }
}

/// Extracts a string field from a one-line JSON object produced by
/// [`endpoint_json`] (hand-rolled like the rest of the repo's JSON — the
/// values it reads back never contain escapes).
pub fn json_str_field(line: &str, field: &str) -> Option<String> {
    let needle = format!("\"{field}\":\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Extracts an unsigned integer field from a one-line JSON object.
pub fn json_u64_field(line: &str, field: &str) -> Option<u64> {
    let needle = format!("\"{field}\":");
    let start = line.find(&needle)? + needle.len();
    let digits: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Result of a multi-process deployment.
#[derive(Clone, Debug)]
pub struct LaunchSummary {
    /// The oracle's final transcript digest (hex).
    pub sim_digest: String,
    /// Every process's final transcript digest (hex), endpoint order.
    pub process_digests: Vec<String>,
    /// One raw JSON report line per endpoint.
    pub lines: Vec<String>,
    /// Whether every process digest equals the oracle digest.
    pub all_match: bool,
    /// Deployment attempts used (bind races retry the whole fleet).
    pub attempts: usize,
}

/// Launches `spec.k` real `node run` processes over loopback TCP, waits
/// for them, and diffs every process's transcript digest against the
/// in-process oracle. `node_exe` is the path to the `node` binary
/// (typically `std::env::current_exe()` or `CARGO_BIN_EXE_node`).
///
/// Port reservation is racy by nature (the listener is released before
/// the child binds it), so a deployment where any child fails to bind is
/// retried with fresh ports, up to three attempts.
///
/// # Panics
///
/// Panics if the children cannot be spawned or a child fails for a
/// non-bind reason (those are deployment bugs, not races).
pub fn launch_processes(spec: &SocketSpec, node_exe: &std::path::Path) -> LaunchSummary {
    let sim_digest = spec
        .run_sim()
        .final_digest()
        .map(|d| d.to_hex())
        .unwrap_or_default();

    let mut attempts = 0;
    loop {
        attempts += 1;
        let addrs = reserve_loopback_addrs(spec.k);
        let endpoints = addrs.join(",");
        let children: Vec<std::process::Child> = (0..spec.k)
            .map(|e| {
                Command::new(node_exe)
                    .args([
                        "run",
                        "--n",
                        &spec.n.to_string(),
                        "--seed",
                        &spec.seed,
                        "--scheme",
                        spec.scheme.label(),
                        "--establishment",
                        spec.establishment.label(),
                        "--tick-base",
                        &spec.tick_base.to_string(),
                        "--endpoints",
                        &endpoints,
                        "--self-idx",
                        &e.to_string(),
                    ])
                    .stdout(Stdio::piped())
                    .stderr(Stdio::piped())
                    .spawn()
                    .expect("spawn node run")
            })
            .collect();

        let mut lines = Vec::with_capacity(spec.k);
        let mut bind_race = false;
        for child in children {
            let out = child.wait_with_output().expect("wait node run");
            let stdout = String::from_utf8_lossy(&out.stdout).trim().to_string();
            let stderr = String::from_utf8_lossy(&out.stderr);
            if !out.status.success() && stderr.contains("bind ") {
                bind_race = true;
            } else if !out.status.success() {
                panic!("node run failed (not a bind race): {stdout}\n{stderr}");
            }
            lines.push(stdout);
        }
        if bind_race {
            assert!(attempts < 3, "loopback port reservation lost 3 races");
            continue;
        }

        let process_digests: Vec<String> = lines
            .iter()
            .map(|l| json_str_field(l, "digest").unwrap_or_default())
            .collect();
        let all_match = !sim_digest.is_empty() && process_digests.iter().all(|d| *d == sim_digest);
        return LaunchSummary {
            sim_digest,
            process_digests,
            lines,
            all_match,
            attempts,
        };
    }
}

/// One row of the §E-socket sim-vs-socket measurement table.
#[derive(Clone, Debug)]
pub struct SocketRow {
    /// Parties simulated.
    pub n: usize,
    /// Deployment endpoints.
    pub k: usize,
    /// Logical (metered) max bytes per simulated party — the paper's
    /// headline measure, identical on both backends by construction.
    pub logical_max_bytes_per_party: u64,
    /// Logical total bytes across all parties.
    pub logical_total_bytes: u64,
    /// Physical bytes written to sockets, summed over endpoints (framed
    /// envelopes + round markers; only cross-endpoint traffic).
    pub socket_bytes: u64,
    /// Frames carried on the wire, summed over endpoints.
    pub socket_frames: u64,
    /// Whether every endpoint's transcript digest matched the oracle.
    pub digests_match: bool,
}

/// Measures the §E-socket table: for each `n`, one oracle run and one
/// `k`-endpoint loopback-TCP fleet, diffing transcript digests and
/// recording logical vs physical bytes.
pub fn socket_table(sizes: &[usize], k: usize, seed: &str) -> Vec<SocketRow> {
    sizes
        .iter()
        .map(|&n| {
            let spec = SocketSpec::new(n, k, &format!("{seed}/n{n}"));
            let sim = spec.run_sim();
            let fleet = run_loopback_fleet(&spec);
            let sim_digest = sim.final_digest();
            let digests_match =
                sim_digest.is_some() && fleet.iter().all(|r| r.final_digest() == sim_digest);
            let out = match &sim.outcome {
                RunOutcome::Completed(out) => out,
                RunOutcome::Failed { phase, reason } => {
                    panic!("oracle run failed at n={n} in {phase}: {reason}")
                }
            };
            SocketRow {
                n,
                k,
                logical_max_bytes_per_party: out.report.max_bytes_per_party,
                logical_total_bytes: out.report.total_bytes,
                socket_bytes: fleet.iter().map(|r| r.stats.bytes_sent).sum(),
                socket_frames: fleet.iter().map(|r| r.stats.frames_sent).sum(),
                digests_match,
            }
        })
        .collect()
}

/// Renders the §E-socket table.
pub fn render_socket_table(rows: &[SocketRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:<3} {:>18} {:>16} {:>14} {:>12} {:>8}\n",
        "n", "k", "logical max B/pty", "logical total B", "socket B", "frames", "digest"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<6} {:<3} {:>18} {:>16} {:>14} {:>12} {:>8}\n",
            row.n,
            row.k,
            row.logical_max_bytes_per_party,
            row.logical_total_bytes,
            row.socket_bytes,
            row.socket_frames,
            if row.digests_match { "match" } else { "DIFF" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_oracle_is_deterministic() {
        let spec = SocketSpec::new(16, 2, "socket-unit");
        let a = spec.run_sim();
        let b = spec.run_sim();
        assert_eq!(a.final_digest(), b.final_digest());
        assert!(a.final_digest().is_some());
        assert_eq!(a.kind, "sim");
        assert_eq!(a.stats.bytes_sent, 0, "sim backend touches no socket");
    }

    #[test]
    fn loopback_fleet_matches_oracle() {
        let spec = SocketSpec::new(16, 2, "socket-unit-fleet");
        let sim = spec.run_sim();
        let fleet = run_loopback_fleet(&spec);
        assert_eq!(fleet.len(), 2);
        for run in &fleet {
            assert_eq!(run.kind, "tcp");
            assert_eq!(run.final_digest(), sim.final_digest());
            assert!(run.stats.bytes_sent > 0, "cross-endpoint traffic flowed");
        }
    }

    #[test]
    fn endpoint_json_roundtrips_fields() {
        let spec = SocketSpec::new(16, 1, "socket-unit-json");
        let run = spec.run_sim();
        let line = endpoint_json(0, &run);
        assert_eq!(
            json_str_field(&line, "digest").as_deref(),
            Some(run.final_digest().expect("digest").to_hex().as_str())
        );
        assert_eq!(json_u64_field(&line, "endpoint"), Some(0));
        assert_eq!(
            json_u64_field(&line, "logical_total_bytes"),
            Some(match &run.outcome {
                RunOutcome::Completed(out) => out.report.total_bytes,
                _ => panic!("completed"),
            })
        );
    }
}
