#![warn(missing_docs)]
//! # pba-bench
//!
//! The measurement harness that regenerates the paper's evaluation
//! artifacts as *measured* quantities (see DESIGN.md §4 for the
//! experiment index):
//!
//! * **Table 1** (`cargo run -p pba-bench --bin table1 --release`) — max
//!   communication per party, rounds, and locality for the paper's two
//!   protocols and the baselines, across an `n` sweep, with fitted growth
//!   exponents;
//! * **Figures 1–3 and the corollaries**
//!   (`cargo run -p pba-bench --bin figures --release -- <fig1|fig2|fig3|cor12|lb>`);
//! * **the chaos sweep** (`cargo run -p pba-bench --bin chaos --release`)
//!   — fault-injection strategies × corruption placements × sizes, with
//!   agreement/validity invariants checked per case (see [`chaos`]);
//! * **the parallel-round-engine perf baseline**
//!   (`cargo run -p pba-bench --bin perf --release [-- --smoke]`) —
//!   sequential vs. all-core wall time, determinism cross-check, and
//!   hot-path cache hit rates, emitted as `BENCH_3.json` (see [`perf`]);
//! * **the multi-lane hash-engine baseline**
//!   (`cargo run -p pba-bench --bin hash_perf --release [-- --smoke]`) —
//!   scalar vs. batched per-primitive microbenches and end-to-end
//!   rounds/sec, bit-identity gated, emitted as `BENCH_5.json` (see
//!   [`hash_perf`]);
//! * **the socket deployment harness**
//!   (`cargo run -p pba-bench --bin node --release -- <sim|run|launch|table>`)
//!   — real-TCP endpoints diffed against the deterministic in-process
//!   oracle by transcript digest, and the §E-socket sim-vs-socket byte
//!   table (see [`socket`]);
//! * **the million-party scaling sweep**
//!   (`cargo run -p pba-bench --bin scale --release [-- --smoke]`) —
//!   full honest `π_ba` rounds up to `n = 2^20` with sparse metrics and
//!   lazy keygen, bits/party vs. the King–Saia `√n` baseline (anchored by
//!   measured runs at every power of two n ∈ {2^6 … 2^10}), wall time,
//!   and peak RSS,
//!   emitted as `BENCH_8.json` (see [`scale`]);
//! * **the pipelined BA-as-a-service throughput grid**
//!   (`cargo run -p pba-bench --bin pipeline --release [-- --smoke]`) —
//!   decisions/sec of one establishment streaming `k` chained instances
//!   vs. `k` independent full runs, with the setup-amortization ratio and
//!   the rounds hidden by certification chaining, emitted as
//!   `BENCH_9.json` (see [`pipeline`]);
//! * **the compound threads × lanes grid**
//!   (`cargo run -p pba-bench --bin thread_scale --release [-- --smoke]`)
//!   — the work-stealing round engine swept over `(threads, lanes)`
//!   cells with sequential-transcript identity gated per cell, lane
//!   occupancy measured per cell, and the host core count stamped into
//!   the artifact, emitted as `BENCH_10.json` (see [`threads`]);
//! * criterion micro/macro benches under `benches/`.

pub mod chaos;
pub mod hash_perf;
pub mod perf;
pub mod pipeline;
pub mod scale;
pub mod socket;
pub mod threads;

use pba_core::baselines::{all_to_all_ba, committee_flood_ba, sqrt_sampling_boost};
use pba_core::protocol::{run_ba, BaConfig};
use pba_crypto::codec::{Decode, Encode};
use pba_net::{Report, TagBreakdown};
use pba_srds::multisig::MultisigSrds;
use pba_srds::owf::{OwfSrds, OwfSrdsConfig};
use pba_srds::snark::SnarkSrds;
use pba_srds::traits::Srds;

/// One measured row: protocol name, `n`, and the honest-party report.
#[derive(Clone, Debug)]
pub struct Row {
    /// Protocol label.
    pub protocol: &'static str,
    /// Setup assumption column of Table 1.
    pub setup: &'static str,
    /// Cryptographic assumption column of Table 1.
    pub assumptions: &'static str,
    /// Number of parties.
    pub n: usize,
    /// The measured communication report.
    pub report: Report,
    /// Certificate size, when the protocol produces one.
    pub certificate: Option<usize>,
    /// Per-(wire tag) honest byte attribution — populated for the `π_ba`
    /// stacks, `None` for the analytic baselines.
    pub breakdown: Option<TagBreakdown>,
}

/// The protocols measured for Table 1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Protocol {
    /// `π_ba` with the OWF/trusted-PKI SRDS (this work, Cor. 3.2).
    PiBaOwf,
    /// `π_ba` with the SNARK/bare-PKI SRDS (this work, Cor. 3.3).
    PiBaSnark,
    /// `π_ba` with the Θ(n) multisignature certificate (BGT'13-style).
    MultisigBoost,
    /// King–Saia'09-style √n sampling boost.
    SqrtSampling,
    /// CM'19-style committee flood: amortized Õ(1), max Θ(n) (unbalanced).
    CommitteeFlood,
    /// Phase-king over the complete graph.
    AllToAll,
}

impl Protocol {
    /// All measured protocols.
    pub const ALL: [Protocol; 6] = [
        Protocol::PiBaOwf,
        Protocol::PiBaSnark,
        Protocol::MultisigBoost,
        Protocol::SqrtSampling,
        Protocol::CommitteeFlood,
        Protocol::AllToAll,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Protocol::PiBaOwf => "this work (OWF SRDS)",
            Protocol::PiBaSnark => "this work (SNARK SRDS)",
            Protocol::MultisigBoost => "BGT'13-style multisig",
            Protocol::SqrtSampling => "KS'09-style sqrt-sampling",
            Protocol::CommitteeFlood => "CM'19-style committee flood",
            Protocol::AllToAll => "all-to-all phase-king",
        }
    }

    /// Table 1 "setup" column.
    pub fn setup(&self) -> &'static str {
        match self {
            Protocol::PiBaOwf => "trusted pki",
            Protocol::PiBaSnark => "pki+crs",
            Protocol::MultisigBoost => "pki",
            Protocol::SqrtSampling => "-",
            Protocol::CommitteeFlood => "trusted pki",
            Protocol::AllToAll => "-",
        }
    }

    /// Table 1 "cryptographic assumptions" column.
    pub fn assumptions(&self) -> &'static str {
        match self {
            Protocol::PiBaOwf => "owf",
            Protocol::PiBaSnark => "snarks*+crh",
            Protocol::MultisigBoost => "multisig (owf here)",
            Protocol::SqrtSampling => "-",
            Protocol::CommitteeFlood => "unique-sig (owf here)",
            Protocol::AllToAll => "-",
        }
    }

    /// The paper's asymptotic max-communication-per-party for this row.
    pub fn paper_asymptotic(&self) -> &'static str {
        match self {
            Protocol::PiBaOwf | Protocol::PiBaSnark => "~O(1) (polylog)",
            Protocol::MultisigBoost => "~O(n)",
            Protocol::SqrtSampling => "~O(sqrt n)",
            Protocol::CommitteeFlood => "~O(n) max, ~O(1) avg",
            Protocol::AllToAll => "~O(n t)",
        }
    }
}

/// Corruption fraction used across the sweep (see EXPERIMENTS.md for why
/// 0.1 and not 1/3 − ε at simulation scale).
pub const BETA: f64 = 0.10;

/// The OWF scheme configuration used in benches: 16-bit Lamport digests
/// keep the (polylog but κ-heavy) certificates small enough to sweep.
pub fn bench_owf() -> OwfSrds {
    OwfSrds::new(OwfSrdsConfig {
        lamport_bits: 16,
        signer_factor: 8,
        min_signers: 40,
    })
}

fn run_pi_ba<S>(scheme: &S, protocol: Protocol, n: usize, seed: &[u8]) -> Row
where
    S: Srds,
    S::Signature: Encode + Decode,
{
    let t = pba_net::corruption::max_corruptions(n, BETA);
    let mut config = BaConfig::honest(n, seed);
    config.corruption = pba_net::corruption::CorruptionPlan::Random { t };
    let inputs = vec![1u8; n];
    let out = run_ba(scheme, &config, &inputs);
    assert!(
        out.agreement,
        "{} n={n}: agreement failed",
        protocol.label()
    );
    assert!(out.validity, "{} n={n}: validity failed", protocol.label());
    assert!(
        out.tags_conserved,
        "{} n={n}: per-tag attribution drifted from per-party totals",
        protocol.label()
    );
    Row {
        protocol: protocol.label(),
        setup: protocol.setup(),
        assumptions: protocol.assumptions(),
        n,
        report: out.report,
        certificate: out.certificate_len,
        breakdown: Some(out.breakdown),
    }
}

/// Measures one protocol at one size.
pub fn measure(protocol: Protocol, n: usize, seed: &[u8]) -> Row {
    let t = pba_net::corruption::max_corruptions(n, BETA);
    match protocol {
        Protocol::PiBaOwf => run_pi_ba(&bench_owf(), protocol, n, seed),
        Protocol::PiBaSnark => run_pi_ba(&SnarkSrds::with_defaults(), protocol, n, seed),
        Protocol::MultisigBoost => run_pi_ba(&MultisigSrds::with_defaults(), protocol, n, seed),
        Protocol::SqrtSampling => {
            let out = sqrt_sampling_boost(n, t, 0.05, 3.0, seed);
            assert!(out.correct_fraction > 0.98, "sqrt boost failed at n={n}");
            Row {
                protocol: protocol.label(),
                setup: protocol.setup(),
                assumptions: protocol.assumptions(),
                n,
                report: out.report,
                certificate: None,
                breakdown: None,
            }
        }
        Protocol::CommitteeFlood => {
            let out = committee_flood_ba(n, t, 1, seed);
            assert!(
                out.correct_fraction > 0.98,
                "committee flood failed at n={n}"
            );
            Row {
                protocol: protocol.label(),
                setup: protocol.setup(),
                assumptions: protocol.assumptions(),
                n,
                report: out.report,
                certificate: None,
                breakdown: None,
            }
        }
        Protocol::AllToAll => Row {
            protocol: protocol.label(),
            setup: protocol.setup(),
            assumptions: protocol.assumptions(),
            n,
            report: all_to_all_ba(n, 0, 1),
            certificate: None,
            breakdown: None,
        },
    }
}

/// Least-squares fit of `ln y = a + b·x` returning `(slope b, R²)`.
fn linear_fit(xy: &[(f64, f64)]) -> (f64, f64) {
    let n = xy.len() as f64;
    let sx: f64 = xy.iter().map(|(x, _)| x).sum();
    let sy: f64 = xy.iter().map(|(_, y)| y).sum();
    let sxx: f64 = xy.iter().map(|(x, _)| x * x).sum();
    let sxy: f64 = xy.iter().map(|(x, y)| x * y).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = xy.iter().map(|(_, y)| (y - mean_y).powi(2)).sum();
    let ss_res: f64 = xy
        .iter()
        .map(|(x, y)| (y - (intercept + slope * x)).powi(2))
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (slope, r2)
}

/// Least-squares slope of `ln(bytes)` against `ln(n)` — the empirical
/// growth exponent `alpha` in `bytes ≈ c·n^alpha`. Polylog protocols show
/// `alpha` near 0 (and shrinking with scale); √n shows ~0.5; linear ~1.
pub fn growth_exponent(points: &[(usize, u64)]) -> f64 {
    power_fit(points).0
}

/// Fits `bytes ≈ c·n^alpha`, returning `(alpha, R²)` of the log-log
/// regression.
pub fn power_fit(points: &[(usize, u64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two points to fit");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(n, b)| ((n as f64).ln(), (b.max(1) as f64).ln()))
        .collect();
    linear_fit(&logs)
}

/// Fits the *polylog* model `bytes ≈ c·(log₂ n)^k`, returning `(k, R²)`.
/// For the paper's protocols this is the right model — the measured
/// per-party cost tracks the `(c·log n)²` committee exchanges, so `k ≈ 2`
/// with high R² while the power fit degrades; for √n/linear baselines the
/// power model wins instead.
pub fn polylog_fit(points: &[(usize, u64)]) -> (f64, f64) {
    assert!(points.len() >= 2, "need at least two points to fit");
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(n, b)| (((n as f64).log2()).ln(), (b.max(1) as f64).ln()))
        .collect();
    linear_fit(&logs)
}

/// Renders a measured sweep as a Table 1-style text table.
pub fn render_table(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>6} {:>16} {:>14} {:>16} {:>7} {:>9} {:>9}\n",
        "protocol",
        "n",
        "max bytes/party",
        "avg bytes/pty",
        "total bytes",
        "rounds",
        "locality",
        "cert(B)"
    ));
    for row in rows {
        let avg = row.report.total_bytes / row.report.parties.max(1);
        out.push_str(&format!(
            "{:<26} {:>6} {:>16} {:>14} {:>16} {:>7} {:>9} {:>9}\n",
            row.protocol,
            row.n,
            row.report.max_bytes_per_party,
            avg,
            row.report.total_bytes,
            row.report.rounds,
            row.report.max_locality,
            row.certificate
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
        ));
    }
    out
}

/// Renders the per-step byte attribution of the `π_ba` rows: for every
/// row carrying a [`TagBreakdown`], one block of Fig. 3-step lines with
/// the honest sent bytes and their share of the row's total. The step
/// rows sum exactly to the row's `total bytes` column (conservation is
/// asserted when the row is measured).
pub fn render_breakdown(rows: &[Row]) -> String {
    let mut out = String::new();
    for row in rows {
        let Some(breakdown) = &row.breakdown else {
            continue;
        };
        let total = breakdown.total_sent().max(1);
        out.push_str(&format!("{}, n={}:\n", row.protocol, row.n));
        for (label, bytes) in breakdown.sent_by_step_label() {
            out.push_str(&format!(
                "  {:<16} {:>14} B  ({:>5.1}%)\n",
                label,
                bytes,
                100.0 * bytes as f64 / total as f64
            ));
        }
        out.push_str(&format!(
            "  {:<16} {:>14} B\n",
            "total",
            breakdown.total_sent()
        ));
    }
    out
}

/// Measures the *certificate size* (the object whose description length is
/// what separates the Table 1 rows asymptotically) by flat tree-style
/// aggregation outside the protocol: everyone signs, batches of 16
/// aggregate, then the batches join.
///
/// Returns the wire size of the verified root certificate.
pub fn certificate_size<S>(scheme: &S, n: usize, seed: &[u8]) -> usize
where
    S: Srds,
{
    let mut prg = pba_crypto::prg::Prg::from_seed_label(seed, "cert-sweep");
    let board = pba_srds::traits::PkiBoard::establish(scheme, n, &mut prg);
    let keys = board.prepare(scheme);
    let message = b"certificate-sweep";
    let sigs: Vec<S::Signature> = (0..n as u64)
        .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], message))
        .collect();
    let leaf_aggs: Vec<S::Signature> = sigs
        .chunks(16)
        .filter_map(|chunk| scheme.aggregate(&board.pp, &keys, message, chunk))
        .collect();
    let mut level = leaf_aggs;
    while level.len() > 1 {
        level = level
            .chunks(16)
            .filter_map(|chunk| scheme.aggregate(&board.pp, &keys, message, chunk))
            .collect();
    }
    let root = level.pop().expect("root certificate");
    assert!(
        scheme.verify(&board.pp, &keys, message, &root),
        "certificate failed to verify at n={n}"
    );
    scheme.signature_len(&root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_exponent_recovers_known_shapes() {
        let linear: Vec<(usize, u64)> = (1..=5).map(|k| (100 * k, (100 * k) as u64)).collect();
        assert!((growth_exponent(&linear) - 1.0).abs() < 1e-9);
        let sqrt: Vec<(usize, u64)> = (1..=5)
            .map(|k| {
                let n = 100 * k;
                (n, ((n as f64).sqrt() * 1000.0) as u64)
            })
            .collect();
        assert!((growth_exponent(&sqrt) - 0.5).abs() < 0.01);
        let flat: Vec<(usize, u64)> = (1..=5).map(|k| (100 * k, 42)).collect();
        assert!(growth_exponent(&flat).abs() < 1e-9);
    }

    #[test]
    fn polylog_fit_recovers_log_square() {
        let logsq: Vec<(usize, u64)> = (6..=13)
            .map(|e| {
                let n = 1usize << e;
                (n, ((e * e) as u64) * 1000)
            })
            .collect();
        let (k, r2) = polylog_fit(&logsq);
        assert!((k - 2.0).abs() < 0.01, "k = {k}");
        assert!(r2 > 0.999);
        // The power fit of a log-square curve has a poor exponent near 0.3
        // but the polylog fit is exact — R² tells them apart.
        let (alpha, _) = power_fit(&logsq);
        assert!(alpha < 0.5);
    }

    #[test]
    fn measure_small_rows() {
        for protocol in [
            Protocol::PiBaSnark,
            Protocol::SqrtSampling,
            Protocol::AllToAll,
        ] {
            let row = measure(protocol, 64, b"bench-test");
            assert!(row.report.max_bytes_per_party > 0, "{:?}", protocol);
        }
    }

    #[test]
    fn render_contains_rows() {
        let row = measure(Protocol::AllToAll, 64, b"bench-test");
        let table = render_table(&[row]);
        assert!(table.contains("all-to-all"));
        assert!(table.contains("64"));
    }

    #[test]
    fn pi_ba_rows_carry_step_breakdown() {
        let row = measure(Protocol::PiBaSnark, 64, b"bench-test");
        let breakdown = row.breakdown.as_ref().expect("pi_ba row has breakdown");
        assert_eq!(breakdown.total_sent(), row.report.total_bytes);
        let rendered = render_breakdown(std::slice::from_ref(&row));
        for label in ["1:establish", "3:disseminate", "5:aggregate", "7-8:spread"] {
            assert!(rendered.contains(label), "missing step row {label}");
        }
        // Baseline rows carry no breakdown and render to nothing.
        let a2a = measure(Protocol::AllToAll, 64, b"bench-test");
        assert!(a2a.breakdown.is_none());
        assert!(render_breakdown(std::slice::from_ref(&a2a)).is_empty());
    }
}
