//! Perf baseline of the deterministic parallel round engine — emits
//! `BENCH_3.json` (wall time per `(n, threads)` cell, rounds/sec,
//! sequential-vs-parallel speedup, cache hit rates).
//!
//! ```sh
//! cargo run -p pba-bench --bin perf --release [-- --smoke] [-- --out PATH]
//! ```
//!
//! `--smoke` restricts the sweep to n = 64 for CI. All timings are
//! measured, never synthesized: on single-core hosts only the sequential
//! cell exists and the reported speedup is 1.0 by definition; the ≥ 2×
//! parallel target is only asserted where it is physically attainable
//! (4+ hardware threads, full sweep).

use pba_bench::perf::{run_perf, PerfConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_3.json".to_string());
    let config = if smoke {
        PerfConfig::smoke()
    } else {
        PerfConfig::full()
    };

    eprintln!(
        "perf: sizes {:?}, {} rounds/case, host parallelism {}",
        config.sizes,
        config.rounds,
        std::thread::available_parallelism()
            .map(|v| v.get())
            .unwrap_or(1)
    );
    let report = run_perf(&config, smoke);

    for case in &report.cases {
        eprintln!(
            "perf: n={:<5} threads={:<3} wall={:>9.2}ms rounds/s={:>8.1}",
            case.n, case.threads, case.wall_ms, case.rounds_per_sec
        );
    }
    for s in &report.speedups {
        eprintln!(
            "perf: n={:<5} speedup x{:.2} ({} threads)",
            s.n, s.speedup, s.threads
        );
    }
    eprintln!(
        "perf: merkle cache {:.1}% hit, cert cache {:.1}% hit, deterministic={}",
        report.merkle_cache.hit_rate() * 100.0,
        report.cert_cache.hit_rate() * 100.0,
        report.deterministic
    );

    assert!(report.deterministic, "thread counts diverged — engine bug");
    for s in &report.speedups {
        assert!(
            s.speedup >= 0.9,
            "parallel engine slower than sequential at n={} (x{:.2})",
            s.n,
            s.speedup
        );
        if !report.smoke && report.host_cores >= 4 && s.n >= 1024 {
            assert!(
                s.speedup >= 2.0,
                "expected >= 2x at n={} with {} threads, got x{:.2}",
                s.n,
                report.host_cores,
                s.speedup
            );
        }
    }

    let json = report.to_json();
    std::fs::write(&out_path, format!("{json}\n")).expect("write BENCH_3.json");
    println!("{json}");
    eprintln!("perf: wrote {out_path}");
}
