//! Regenerates the paper's figures as executable measurements:
//!
//! * `fig1` — the SRDS robustness experiment (Figure 1) across schemes,
//!   sizes and adversaries: accept rate (must be 1.0) and certificate size;
//! * `fig2` — the SRDS forgery experiment (Figure 2): forgery rate (must
//!   be 0.0);
//! * `fig3` — the `π_ba` protocol (Figure 3): per-step communication
//!   breakdown;
//! * `cor12` — the broadcast corollary (Cor. 1.2(1)): amortization over ℓ
//!   executions;
//! * `lb` — the lower-bound isolation attack (Theorems 1.3/1.4);
//! * `e9` — the FHE-based MPC corollary (Cor. 1.2(2)): total communication
//!   vs input length.
//!
//! ```sh
//! cargo run -p pba-bench --bin figures --release -- fig1 fig2 fig3 cor12 lb e9
//! ```

use pba_bench::bench_owf;
use pba_core::lowerbound::{isolation_attack_crs, isolation_attack_with_srds};
use pba_core::protocol::{run_ba, BaConfig};
use pba_net::corruption::max_corruptions;
use pba_net::PartyId;
use pba_srds::experiments::{
    run_forgery, run_robustness, AggregateForgeryAdversary, DefaultRobustnessAdversary,
    ReplayRobustnessAdversary,
};
use pba_srds::snark::{SnarkSrds, SnarkSrdsConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted = |name: &str| args.is_empty() || args.iter().any(|a| a == name);

    if wanted("fig1") {
        fig1();
    }
    if wanted("fig2") {
        fig2();
    }
    if wanted("fig3") {
        fig3();
    }
    if wanted("cor12") {
        cor12();
    }
    if wanted("lb") {
        lb();
    }
    if wanted("e9") {
        e9();
    }
}

fn fig1() {
    println!("== Figure 1: SRDS robustness experiment Expt^robust ==\n");
    println!(
        "{:<14} {:>6} {:>4} {:<10} {:>8} {:>9} {:>9} {:>8}",
        "scheme", "n", "t", "adversary", "verified", "isolated", "goodleaf", "cert(B)"
    );
    for n in [128usize, 256, 512] {
        let t = max_corruptions(n, 0.10);
        for (adv_name, replay) in [("default", false), ("replay", true)] {
            let seed = format!("fig1/{n}/{adv_name}");
            let owf = bench_owf();
            let out = if replay {
                run_robustness(&owf, n, t, &mut ReplayRobustnessAdversary, seed.as_bytes())
            } else {
                run_robustness(&owf, n, t, &mut DefaultRobustnessAdversary, seed.as_bytes())
            }
            .expect("well-posed robustness run");
            print_fig1_row("owf", n, t, adv_name, &out);

            let snark = SnarkSrds::with_defaults();
            let out = if replay {
                run_robustness(
                    &snark,
                    n,
                    t,
                    &mut ReplayRobustnessAdversary,
                    seed.as_bytes(),
                )
            } else {
                run_robustness(
                    &snark,
                    n,
                    t,
                    &mut DefaultRobustnessAdversary,
                    seed.as_bytes(),
                )
            }
            .expect("well-posed robustness run");
            print_fig1_row("snark", n, t, adv_name, &out);
        }
    }
    println!("\nexpected: verified = true on every row (accept rate 1.0).\n");
}

fn print_fig1_row(
    scheme: &str,
    n: usize,
    t: usize,
    adv: &str,
    out: &pba_srds::experiments::RobustnessOutcome,
) {
    println!(
        "{:<14} {:>6} {:>4} {:<10} {:>8} {:>9} {:>9.3} {:>8}",
        scheme,
        n,
        t,
        adv,
        out.verified,
        out.isolated_honest,
        out.good_leaf_fraction,
        out.root_signature_len.unwrap_or(0)
    );
}

fn fig2() {
    println!("== Figure 2: SRDS forgery experiment Expt^forge ==\n");
    println!(
        "{:<14} {:>6} {:>4} {:>8} {:>8}",
        "scheme", "n", "t", "seduced", "forged"
    );
    for n in [120usize, 240, 480] {
        let t = n / 10;
        let seed = format!("fig2/{n}");
        let owf = bench_owf();
        let out = run_forgery(
            &owf,
            n,
            t,
            &mut AggregateForgeryAdversary::default(),
            seed.as_bytes(),
        )
        .expect("well-posed forgery run");
        println!(
            "{:<14} {:>6} {:>4} {:>8} {:>8}",
            "owf", n, t, out.seduced, out.forged
        );
        let snark = SnarkSrds::with_defaults();
        let out = run_forgery(
            &snark,
            n,
            t,
            &mut AggregateForgeryAdversary::default(),
            seed.as_bytes(),
        )
        .expect("well-posed forgery run");
        println!(
            "{:<14} {:>6} {:>4} {:>8} {:>8}",
            "snark", n, t, out.seduced, out.forged
        );
    }
    println!("\nexpected: forged = false on every row (forgery rate 0.0).\n");
}

fn fig3() {
    println!("== Figure 3: pi_ba per-step communication breakdown ==\n");
    for n in [256usize, 1024] {
        let t = max_corruptions(n, 0.10);
        let scheme = SnarkSrds::new(SnarkSrdsConfig::default());
        let config = BaConfig::byzantine(n, t, format!("fig3/{n}").as_bytes());
        let out = run_ba(&scheme, &config, &vec![1u8; n]);
        assert!(out.agreement && out.validity);
        println!(
            "--- SNARK SRDS, n = {n}, t = {t} Byzantine: max bytes/party = {} ---",
            out.report.max_bytes_per_party
        );
        println!(
            "{:<30} {:>14} {:>18}",
            "step", "total bytes", "max/party so far"
        );
        for step in &out.steps {
            println!(
                "{:<30} {:>14} {:>18}",
                step.label, step.total_bytes, step.max_bytes_after
            );
        }
        println!();
    }
}

fn cor12() {
    println!("== Corollary 1.2(1): broadcast amortization over one session ==\n");
    let n = 256;
    let t = max_corruptions(n, 0.10);
    println!("n = {n}, t = {t} Byzantine, sender = P18\n");
    println!(
        "{:<6} {:>18} {:>22}",
        "ell", "max bytes/party", "amortized per exec"
    );
    for ell in [1usize, 2, 4, 8] {
        let scheme = SnarkSrds::new(SnarkSrdsConfig {
            mss_bits: 32,
            mss_height: 3,
        });
        let config = BaConfig::byzantine(n, t, format!("cor12/{ell}").as_bytes());
        let values: Vec<u8> = (0..ell).map(|i| (i % 2) as u8).collect();
        let out = pba_core::broadcast::run_broadcasts(&scheme, &config, PartyId(17), &values);
        assert!(out.all_delivered, "broadcast failed at ell={ell}");
        println!(
            "{:<6} {:>18} {:>22.0}",
            ell,
            out.final_report.max_bytes_per_party,
            out.amortized_max_bytes_per_party()
        );
    }
    println!("\nexpected: amortized per-execution cost roughly flat in ell.\n");
}

fn e9() {
    println!("== Corollary 1.2(2): FHE-based MPC — total communication vs input length ==\n");
    let n = 96;
    let t = max_corruptions(n, 0.10);
    println!("n = {n}, t = {t} Byzantine, XOR functional\n");
    println!(
        "{:<12} {:>16} {:>16} {:>10}",
        "ell_in (B)", "total bytes", "max bytes/party", "included"
    );
    for len in [4usize, 32, 256, 1024] {
        let scheme = SnarkSrds::with_defaults();
        let config = BaConfig::byzantine(n, t, format!("e9/{len}").as_bytes());
        let inputs: Vec<Vec<u8>> = (0..n).map(|i| vec![(i % 251) as u8; len]).collect();
        let out = pba_core::mpc::run_mpc(&scheme, &config, &inputs, |map| {
            let mut acc = vec![0u8; len];
            for v in map.values() {
                for (a, b) in acc.iter_mut().zip(v) {
                    *a ^= b;
                }
            }
            acc
        });
        println!(
            "{:<12} {:>16} {:>16} {:>9}/{n}",
            len, out.report.total_bytes, out.report.max_bytes_per_party, out.inputs_included
        );
    }
    println!("\nexpected: total grows ~linearly in ell_in on top of the polylog\nmachinery floor — the n*polylog*(ell_in+ell_out) bound.\n");
}

fn lb() {
    println!("== Theorems 1.3/1.4: isolation attack on a one-shot o(n) boost ==\n");
    let n = 300;
    let t = 90;
    println!("n = {n}, t = {t}; victim isolated; honest parties send to k peers\n");
    println!("--- CRS model (no PKI) ---");
    println!(
        "{:<6} {:>8} {:>12} {:>8}",
        "k", "honest", "adversarial", "fooled"
    );
    for k in [4usize, 8, 16, 64, 250] {
        let out = isolation_attack_crs(n, t, k, b"lb");
        println!(
            "{:<6} {:>8} {:>12} {:>8}",
            k, out.honest_msgs, out.adversarial_msgs, out.victim_fooled
        );
    }
    println!("\n--- with SRDS certificates (PKI + OWF) ---");
    println!(
        "{:<6} {:>8} {:>12} {:>8}",
        "k", "verified", "forged-ok", "fooled"
    );
    let scheme = bench_owf();
    for k in [4usize, 8] {
        let out = isolation_attack_with_srds(&scheme, n, t, k, b"lb");
        println!(
            "{:<6} {:>8} {:>12} {:>8}",
            k, out.honest_msgs, out.adversarial_msgs, out.victim_fooled
        );
    }
    println!("\nexpected: fooled = true in the CRS model for k << t; never with SRDS.\n");
}
