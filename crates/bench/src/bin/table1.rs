//! Regenerates **Table 1** of the paper as measured quantities:
//! max communication per party across almost-everywhere → everywhere
//! protocols, with empirical growth exponents.
//!
//! ```sh
//! cargo run -p pba-bench --bin table1 --release [-- --max-n 2048]
//! ```

use pba_bench::{
    bench_owf, certificate_size, growth_exponent, measure, polylog_fit, power_fit,
    render_breakdown, render_table, Protocol, Row, BETA,
};
use pba_srds::multisig::MultisigSrds;
use pba_srds::snark::SnarkSrds;

fn main() {
    let max_n: usize = std::env::args()
        .skip_while(|a| a != "--max-n")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(2048);
    let sizes: Vec<usize> = [
        64usize, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048, 3072, 4096,
    ]
    .into_iter()
    .filter(|&n| n <= max_n)
    .collect();

    println!("== Table 1 (measured): almost-everywhere -> everywhere agreement ==");
    println!("   corruption: beta = {BETA} random; honest inputs unanimous\n");

    type Fit = (Protocol, (f64, f64), (f64, f64), f64);
    let mut all_rows: Vec<Row> = Vec::new();
    let mut fits: Vec<Fit> = Vec::new();
    for protocol in Protocol::ALL {
        let mut rows = Vec::new();
        for &n in &sizes {
            // The OWF scheme is compute-heavy; cap its sweep.
            if protocol == Protocol::PiBaOwf && n > 2048 {
                continue;
            }
            let seed = format!("table1/{}/{}", protocol.label(), n);
            rows.push(measure(protocol, n, seed.as_bytes()));
        }
        let max_points: Vec<(usize, u64)> = rows
            .iter()
            .map(|r| (r.n, r.report.max_bytes_per_party))
            .collect();
        let total_points: Vec<(usize, u64)> =
            rows.iter().map(|r| (r.n, r.report.total_bytes)).collect();
        fits.push((
            protocol,
            power_fit(&max_points),
            polylog_fit(&max_points),
            growth_exponent(&total_points),
        ));
        all_rows.extend(rows);
    }

    println!("{}", render_table(&all_rows));

    println!("== model fits for max bytes/party ==\n");
    println!("   power model:   bytes ~ c * n^alpha          (right for sqrt/linear protocols)");
    println!("   polylog model: bytes ~ c * (log2 n)^k       (right for this work's protocols)\n");
    println!(
        "{:<26} {:>18} {:>12} {:>10} {:>12} {:>10} {:>12}",
        "protocol", "paper", "alpha", "R2", "k(polylog)", "R2", "alpha(total)"
    );
    for (protocol, (a_max, r2_max), (k_poly, r2_poly), a_total) in &fits {
        println!(
            "{:<26} {:>18} {:>12.3} {:>10.3} {:>12.2} {:>10.3} {:>12.3}",
            protocol.label(),
            protocol.paper_asymptotic(),
            a_max,
            r2_max,
            k_poly,
            r2_poly,
            a_total
        );
    }
    breakdown_table(&all_rows);
    certificate_table(max_n);

    println!(
        "\nreference rows (lower bounds, not protocols):\n\
           HKK'08:    >= Omega(n^(1/3)) messages for some party, crs, static filtering\n\
           this work: >= Omega(n) for one-shot boost in crs model (Thm 1.3); owf needed with pki (Thm 1.4)\n\
         \nexpected shape: the two SRDS rows stay near-flat (polylog), the\n\
         sqrt-sampling row grows ~n^0.5, multisig boost and all-to-all grow ~n."
    );
}

/// Where the bytes of the Table 1 totals go: the per-(Fig. 3 step) wire
/// attribution of the SNARK and multisig `π_ba` stacks at the largest
/// measured size. Step rows sum exactly to the `total bytes` column —
/// conservation against the untyped per-party counters is asserted at
/// measurement time.
fn breakdown_table(all_rows: &[Row]) {
    println!("\n== per-step byte attribution (honest sent bytes, Fig. 3 steps) ==\n");
    for protocol in [Protocol::PiBaSnark, Protocol::MultisigBoost] {
        let row = all_rows
            .iter()
            .filter(|r| r.protocol == protocol.label() && r.breakdown.is_some())
            .max_by_key(|r| r.n);
        if let Some(row) = row {
            println!("{}", render_breakdown(std::slice::from_ref(row)));
        }
    }
    println!(
        "expected shape: step 5 (tree aggregation) dominates both stacks --\n\
         every internal node's committee runs the aggregation exchange; the\n\
         multisig stack's 6:certify bytes grow faster with n (the Theta(n)\n\
         bitmap certificate descends the tree) while the SNARK stack's\n\
         track the constant 121 B proof."
    );
}

/// The certificate is the object whose description length drives the
/// asymptotic separation; sweep it to larger n than full protocol runs.
fn certificate_table(max_n: usize) {
    println!("\n== certificate sizes (bytes) vs n ==\n");
    let sizes: Vec<usize> = [64usize, 256, 1024, 4096, 16384]
        .into_iter()
        .filter(|&n| n <= max_n.max(4096) * 16)
        .collect();
    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "n", "OWF SRDS", "SNARK SRDS", "multisig"
    );
    let mut owf_points = Vec::new();
    let mut snark_points = Vec::new();
    let mut multi_points = Vec::new();
    for &n in &sizes {
        let seed = format!("cert/{n}");
        let owf = certificate_size(&bench_owf(), n, seed.as_bytes());
        let snark = certificate_size(&SnarkSrds::with_defaults(), n, seed.as_bytes());
        let multi = certificate_size(&MultisigSrds::with_defaults(), n, seed.as_bytes());
        println!("{:<10} {:>14} {:>14} {:>14}", n, owf, snark, multi);
        owf_points.push((n, owf as u64));
        snark_points.push((n, snark as u64));
        multi_points.push((n, multi as u64));
    }
    println!(
        "\nfitted certificate growth alpha: owf {:.3} (polylog*poly(kappa)), \
         snark {:.3} (constant), multisig {:.3} (-> 1, the Theta(n) signer set)",
        growth_exponent(&owf_points),
        growth_exponent(&snark_points),
        growth_exponent(&multi_points)
    );
}
