//! Chaos sweep CLI: runs the fault-injection matrix and prints a verdict
//! table. Exits non-zero when any invariant is violated.
//!
//! ```text
//! cargo run -p pba-bench --bin chaos --release -- [SEED]
//! ```
//!
//! `SEED` (optional, default `chaos-cli`) is mixed into every case's
//! execution seed, so two invocations with the same seed produce
//! identical sweeps. Violations print a `CHAOS-REPRO` line with the
//! exact configuration to replay.

use pba_bench::chaos::{
    default_cases, default_stream_cases, render_sweep, run_case, run_stream_case, ChaosReport,
};

fn main() {
    let seed = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "chaos-cli".into());
    let cases = default_cases(seed.as_bytes());
    eprintln!(
        "chaos sweep: {} cases (seed base {seed:?}); each line prints as it finishes",
        cases.len()
    );
    let mut reports = Vec::with_capacity(cases.len());
    for case in &cases {
        let verdict = run_case(case);
        eprintln!(
            "  {:>4}  {:<11}  {:<16}  {:<34}  {}",
            case.n,
            case.establishment.label(),
            case.plan.label(),
            case.spec.label(),
            verdict.label()
        );
        reports.push(ChaosReport {
            case: case.clone(),
            verdict,
        });
    }
    print!("{}", render_sweep(&reports));

    // Mid-stream arming: a strategy switched on between instances of a
    // long-lived service (the golden rows of tests/chaos_sweep.rs).
    let stream_cases = default_stream_cases(seed.as_bytes());
    eprintln!(
        "chaos stream: {} mid-stream arming cases",
        stream_cases.len()
    );
    let mut stream_violation = false;
    for case in &stream_cases {
        let report = run_stream_case(case);
        println!("{:<50}  {}", report.case.key(), report.verdicts);
        stream_violation |= report.verdicts.contains("VIOLATION");
    }

    if reports.iter().any(|r| r.verdict.is_violation()) || stream_violation {
        std::process::exit(1);
    }
}
