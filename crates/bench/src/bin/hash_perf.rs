//! Scalar-vs-batched baseline of the multi-lane SHA-256 engine — emits
//! `BENCH_5.json` (per-primitive microbenches, end-to-end rounds/sec with
//! scalar and batched hashing, bit-identity gate).
//!
//! ```sh
//! cargo run -p pba-bench --bin hash_perf --release [-- --smoke] [-- --out PATH]
//! ```
//!
//! `--smoke` shrinks every dimension for CI but keeps the equivalence
//! gates: the run fails if the batched engine and the scalar reference
//! ever disagree on a single digest or transcript. The ≥ 1.5× speedup
//! targets are asserted only on full runs (smoke sizes are too small to
//! time meaningfully).

use pba_bench::hash_perf::{run_hash_perf, HashPerfConfig};

/// The measured BENCH_3 end-to-end baseline at n=1024 (chained scalar
/// grind, one worker): the batched engine must beat it.
const BENCH3_N1024_ROUNDS_PER_SEC: f64 = 11.627;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_5.json".to_string());
    let config = if smoke {
        HashPerfConfig::smoke()
    } else {
        HashPerfConfig::full()
    };

    eprintln!(
        "hash_perf: e2e sizes {:?}, {} rounds/case, {} digests/round, micro reps {}",
        config.sizes, config.rounds, config.hash_iters, config.micro_reps
    );
    let report = run_hash_perf(&config, smoke);

    for m in &report.micro {
        eprintln!(
            "hash_perf: {:<16} scalar={:>9.2}ms batched={:>9.2}ms x{:.2} identical={}",
            m.name,
            m.scalar_ms,
            m.batched_ms,
            m.speedup(),
            m.identical
        );
    }
    for c in &report.e2e {
        eprintln!(
            "hash_perf: n={:<5} scalar={:>8.2} r/s batched={:>8.2} r/s x{:.2} identical={}",
            c.n,
            c.scalar_rounds_per_sec,
            c.batched_rounds_per_sec,
            c.speedup(),
            c.identical
        );
    }

    // The hard gate, smoke or full: batched output must be bit-identical
    // to the scalar reference everywhere it was compared.
    assert!(
        report.digests_identical(),
        "batched and scalar digests diverged — engine bug"
    );

    if !smoke {
        for m in &report.micro {
            if matches!(m.name, "merkle-build" | "lamport-keygen") {
                assert!(
                    m.speedup() >= 1.5,
                    "{} below the 1.5x acceptance bar (x{:.2})",
                    m.name,
                    m.speedup()
                );
            }
        }
        for c in &report.e2e {
            if c.n >= 1024 {
                assert!(
                    c.batched_rounds_per_sec > BENCH3_N1024_ROUNDS_PER_SEC,
                    "n={} batched {:.3} r/s not above the BENCH_3 baseline {:.3}",
                    c.n,
                    c.batched_rounds_per_sec,
                    BENCH3_N1024_ROUNDS_PER_SEC
                );
            }
        }
    }

    let json = report.to_json();
    std::fs::write(&out_path, format!("{json}\n")).expect("write BENCH_5.json");
    println!("{json}");
    eprintln!("hash_perf: wrote {out_path}");
}
