//! `pba node` — runs `π_ba` endpoints over real TCP sockets, with the
//! deterministic in-process simulation as differential oracle (§E-socket;
//! see DESIGN.md §3c).
//!
//! ```sh
//! # oracle run (in-process, LocalTransport): prints the transcript digest
//! cargo run -p pba-bench --bin node --release -- sim --n 16
//!
//! # one socket endpoint of a multi-process deployment
//! cargo run -p pba-bench --bin node --release -- run \
//!     --n 16 --endpoints 127.0.0.1:9101,127.0.0.1:9102 --self-idx 0
//!
//! # launch a k-process deployment over loopback and diff vs the oracle
//! cargo run -p pba-bench --bin node --release -- launch --n 16 --k 2
//!
//! # the §E-socket sim-vs-socket measurement table
//! cargo run -p pba-bench --bin node --release -- table --sizes 16,64,256
//! ```
//!
//! `run` prints one JSON line on stdout (see
//! [`pba_bench::socket::endpoint_json`]) and exits nonzero on transport
//! or protocol failure — never hangs (every socket wait is bounded by
//! [`pba_net::TransportOpts`] timeouts).

use pba_bench::socket::{
    endpoint_json, launch_processes, parse_establishment, render_socket_table, socket_table,
    SchemeKind, SocketSpec,
};
use pba_net::PeerMap;
use std::process::ExitCode;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn spec_from_args(args: &[String], k: usize) -> Result<SocketSpec, String> {
    let n: usize = flag(args, "--n").and_then(|v| v.parse().ok()).unwrap_or(16);
    let seed = flag(args, "--seed").unwrap_or_else(|| "e-socket".into());
    let mut spec = SocketSpec::new(n, k, &seed);
    if let Some(s) = flag(args, "--scheme") {
        spec.scheme = SchemeKind::parse(&s).ok_or(format!("unknown scheme {s} (snark|owf)"))?;
    }
    if let Some(e) = flag(args, "--establishment") {
        spec.establishment = parse_establishment(&e)
            .ok_or(format!("unknown establishment {e} (charged|interactive)"))?;
    }
    if let Some(t) = flag(args, "--tick-base") {
        spec.tick_base = t
            .parse()
            .map_err(|_| format!("--tick-base: not a number: {t}"))?;
    }
    Ok(spec)
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("run `node` with no arguments for usage");
    ExitCode::from(64)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    match cmd {
        "sim" => {
            let spec = match spec_from_args(&args, 1) {
                Ok(spec) => spec,
                Err(e) => return usage_error(&e),
            };
            let run = spec.run_sim();
            println!("{}", endpoint_json(0, &run));
            if run.outcome.is_completed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        "run" => {
            let endpoints: Vec<String> = match flag(&args, "--endpoints") {
                Some(list) => list.split(',').map(str::to_string).collect(),
                None => return usage_error("--endpoints a,b,... is required"),
            };
            let self_idx: usize = match flag(&args, "--self-idx").map(|v| v.parse()) {
                Some(Ok(i)) if i < endpoints.len() => i,
                _ => return usage_error("--self-idx must name one of the --endpoints"),
            };
            let spec = match spec_from_args(&args, endpoints.len()) {
                Ok(spec) => spec,
                Err(e) => return usage_error(&e),
            };
            let map = PeerMap::contiguous(spec.n, endpoints, self_idx);
            match spec.run_endpoint(map) {
                Ok(run) => {
                    println!("{}", endpoint_json(self_idx, &run));
                    if run.outcome.is_completed() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(2)
                    }
                }
                Err(e) => {
                    eprintln!("endpoint {self_idx}: {e}");
                    ExitCode::from(3)
                }
            }
        }
        "launch" => {
            let k: usize = flag(&args, "--k").and_then(|v| v.parse().ok()).unwrap_or(2);
            let spec = match spec_from_args(&args, k) {
                Ok(spec) => spec,
                Err(e) => return usage_error(&e),
            };
            let exe = std::env::current_exe().expect("current exe");
            let summary = launch_processes(&spec, &exe);
            for line in &summary.lines {
                println!("{line}");
            }
            println!(
                "oracle={} processes={} attempts={} verdict={}",
                summary.sim_digest,
                summary.process_digests.len(),
                summary.attempts,
                if summary.all_match {
                    "MATCH"
                } else {
                    "DIVERGED"
                }
            );
            if summary.all_match {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(4)
            }
        }
        "table" => {
            let raw = flag(&args, "--sizes").unwrap_or_else(|| "16,64,256".into());
            let sizes: Vec<usize> = match raw.split(',').map(str::parse).collect() {
                Ok(sizes) => sizes,
                Err(_) => return usage_error(&format!("--sizes: not a number list: {raw}")),
            };
            let k: usize = flag(&args, "--k").and_then(|v| v.parse().ok()).unwrap_or(2);
            let rows = socket_table(&sizes, k, "e-socket-table");
            println!("== E-socket: sim oracle vs loopback-TCP deployment (k={k}) ==\n");
            print!("{}", render_socket_table(&rows));
            if rows.iter().all(|r| r.digests_match) {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(4)
            }
        }
        _ => {
            eprintln!("usage: node <sim|run|launch|table> [flags]");
            eprintln!("  sim    --n N [--seed S] [--scheme snark|owf] [--establishment charged|interactive]");
            eprintln!(
                "  run    --n N --endpoints a,b,.. --self-idx I [shared flags] [--tick-base T]"
            );
            eprintln!("  launch --n N --k K [shared flags]");
            eprintln!("  table  [--sizes 16,64,256] [--k 2]");
            ExitCode::from(64)
        }
    }
}
