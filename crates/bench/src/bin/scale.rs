//! Million-party scaling sweep — emits `BENCH_8.json` (max/avg bits per
//! party, wall time, peak RSS, sparse-metrics cell counts, and the
//! King–Saia `√n` baseline column, per size).
//!
//! ```sh
//! cargo run -p pba-bench --bin scale --release [-- --smoke] [-- --out PATH]
//! ```
//!
//! The full sweep runs one honest `π_ba` round at n = 2^10 … 2^20;
//! `--smoke` restricts it to n ∈ {2^10, 2^16} and arms the peak-RSS
//! budget assertion (the CI memory regression gate).

use pba_bench::scale::{run_scale, ScaleConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_8.json".to_string());
    let config = if smoke {
        ScaleConfig::smoke()
    } else {
        ScaleConfig::full()
    };

    eprintln!(
        "scale: sizes {:?}, rss budget {:?} MiB",
        config.sizes, config.rss_budget_mib
    );
    let report = run_scale(&config, smoke);

    eprintln!(
        "scale: polylog fit k={:.2} (R²={:.3}); power fit alpha={:.3} (R²={:.3})",
        report.polylog_fit.0, report.polylog_fit.1, report.power_fit.0, report.power_fit.1
    );
    let json = report.to_json();
    std::fs::write(&out_path, &json).expect("write BENCH_8.json");
    eprintln!("scale: wrote {out_path}");
    println!("{json}");
}
