//! Ablations over the design choices DESIGN.md calls out: what each knob
//! of the construction buys, measured.
//!
//! ```sh
//! cargo run -p pba-bench --bin ablations --release
//! ```
//!
//! * **A1 — repeated leaf membership (`z`, Def. 3.4):** how many honest
//!   parties end up isolated as `z` grows, under random corruption. This
//!   is the reason the paper assigns each party to `O(log⁴n)` leaves
//!   instead of one.
//! * **A2 — committee size:** the probability that some committee loses
//!   its 2/3-honest majority, as a function of the size factor — the
//!   concentration reality behind the β = 0.1 benchmarking regime.
//! * **A3 — OWF sortition size (`s`):** empirical forgery rate of the
//!   sortition SRDS against a maximal `n/3` coalition vs the expected
//!   signer count — the concrete-security margin finding (DESIGN.md §4b).
//! * **A4 — base-signature size (κ knob):** SRDS base/aggregate signature
//!   sizes vs the Lamport digest width.

use pba_aetree::analysis::TreeAnalysis;
use pba_aetree::params::TreeParams;
use pba_aetree::tree::Tree;
use pba_crypto::prg::Prg;
use pba_net::corruption::CorruptionPlan;
use pba_srds::experiments::{run_forgery, AggregateForgeryAdversary};
use pba_srds::owf::{OwfSrds, OwfSrdsConfig};
use pba_srds::snark::{SnarkSrds, SnarkSrdsConfig};
use pba_srds::traits::{PkiBoard, Srds};

fn main() {
    ablation_z();
    ablation_committee_size();
    ablation_sortition();
    ablation_kappa();
}

fn ablation_z() {
    println!("== A1: repeated leaf membership z (Def. 3.4) ==\n");
    println!("n = 1024, beta = 0.15 random corruption, 10 trials per cell\n");
    println!(
        "{:<4} {:>18} {:>22}",
        "z", "avg bad-leaf frac", "avg isolated honest"
    );
    let n = 1024;
    let t = (n as f64 * 0.15) as usize;
    for z in [1usize, 2, 4, 8] {
        let params = TreeParams::scaled(n, z);
        let mut bad_frac = 0.0;
        let mut isolated = 0usize;
        let trials = 10;
        for trial in 0..trials {
            let seed = format!("ablation-z/{z}/{trial}");
            let tree = Tree::build(&params, seed.as_bytes());
            let mut prg = Prg::from_seed_bytes(seed.as_bytes());
            let corrupt = CorruptionPlan::Random { t }.materialize(n, &mut prg);
            let analysis = TreeAnalysis::analyze(&tree, &corrupt);
            bad_frac += 1.0 - analysis.good_leaf_fraction();
            isolated += analysis
                .isolated()
                .iter()
                .filter(|p| !corrupt.contains(p))
                .count();
        }
        println!(
            "{:<4} {:>18.4} {:>22.1}",
            z,
            bad_frac / trials as f64,
            isolated as f64 / trials as f64
        );
    }
    println!(
        "\nexpected: isolated honest parties drop rapidly with z once past the\n\
         parity artifact — Def. 3.4's criterion is a STRICT majority of good\n\
         leaf memberships, so even z is harsher than z-1 (at z = 2 a single\n\
         bad leaf already isolates). The protocol recovers isolated parties\n\
         in steps 7-8 regardless; z buys them the direct certified path.\n"
    );
}

fn ablation_committee_size() {
    println!("== A2: committee size vs honest-supermajority failure ==\n");
    println!("n = 1024, 40 trees per cell; \"fail\" = any internal committee >= 1/3 corrupt\n");
    println!(
        "{:<10} {:>10} {:>16} {:>16}",
        "factor", "size", "fail @ beta=0.10", "fail @ beta=0.25"
    );
    let n = 1024usize;
    let logn = 11usize; // ceil(log2 1024) + 1 margin matches scaled()
    for factor in [1usize, 2, 3, 5, 8] {
        let mut params = TreeParams::scaled(n, 2);
        params.committee_size = (factor * logn).min(n);
        let mut fails = [0usize; 2];
        let trials = 40;
        for (bi, beta) in [0.10f64, 0.25].into_iter().enumerate() {
            let t = (n as f64 * beta) as usize;
            for trial in 0..trials {
                let seed = format!("ablation-c/{factor}/{beta}/{trial}");
                let tree = Tree::build(&params, seed.as_bytes());
                let mut prg = Prg::from_seed_bytes(seed.as_bytes());
                let corrupt = CorruptionPlan::Random { t }.materialize(n, &mut prg);
                let analysis = TreeAnalysis::analyze(&tree, &corrupt);
                let any_bad = (1..tree.height())
                    .any(|lvl| (0..tree.nodes_at_level(lvl)).any(|nd| !analysis.is_good(lvl, nd)));
                if any_bad {
                    fails[bi] += 1;
                }
            }
        }
        println!(
            "{:<10} {:>10} {:>15.0}% {:>15.0}%",
            factor,
            params.committee_size,
            100.0 * fails[0] as f64 / trials as f64,
            100.0 * fails[1] as f64 / trials as f64
        );
    }
    println!("\nexpected: failures vanish with committee size at beta = 0.10 but\npersist at beta = 0.25 — the asymptotic-vs-concrete gap of DESIGN.md §4b.\n");
}

fn ablation_sortition() {
    println!("== A3: OWF sortition size s vs forgery margin ==\n");
    println!("n = 240, maximal n/3 coalition, 30 forgery games per cell\n");
    println!(
        "{:<18} {:>12} {:>14} {:>14}",
        "signer config", "s (approx)", "forgeries", "cert bytes"
    );
    let n = 240;
    let t = n / 10;
    for (factor, min_s) in [(2usize, 8usize), (4, 16), (6, 24), (10, 48), (20, 120)] {
        let scheme = OwfSrds::new(OwfSrdsConfig {
            lamport_bits: 16,
            signer_factor: factor,
            min_signers: min_s,
        });
        let mut forged = 0usize;
        let trials = 30;
        for trial in 0..trials {
            let seed = format!("ablation-s/{factor}/{trial}");
            let out = run_forgery(
                &scheme,
                n,
                t,
                &mut AggregateForgeryAdversary::default(),
                seed.as_bytes(),
            )
            .expect("well-posed");
            if out.forged {
                forged += 1;
            }
        }
        // Certificate size from a flat aggregation.
        let cert = pba_bench::certificate_size(&scheme, n, b"ablation-s-cert");
        let s_approx = (factor * 8).max(min_s); // log2(240) ~ 8
        println!(
            "{:<18} {:>12} {:>11}/{trials} {:>14}",
            format!("factor={factor},min={min_s}"),
            s_approx,
            forged,
            cert
        );
    }
    println!("\nexpected: forgeries at small s (the √(3s)/6-sigma margin), zero at\nthe widened defaults — certificate size is the price.\n");
}

fn ablation_kappa() {
    println!("== A4: Lamport digest width (kappa knob) vs signature sizes ==\n");
    println!(
        "{:<8} {:>20} {:>20} {:>22}",
        "bits", "owf base sig (B)", "owf cert (B)", "snark base sig (B)"
    );
    for bits in [16usize, 32, 64, 128] {
        let owf = OwfSrds::new(OwfSrdsConfig {
            lamport_bits: bits,
            signer_factor: 6,
            min_signers: 24,
        });
        let mut prg = Prg::from_seed_bytes(b"ablation-k");
        let board = PkiBoard::establish(&owf, 128, &mut prg);
        let base = (0..128u64)
            .find_map(|i| owf.sign(&board.pp, i, &board.sks[i as usize], b"m"))
            .expect("a signer exists");
        let owf_base = owf.signature_len(&base);
        let owf_cert = pba_bench::certificate_size(&owf, 128, b"ablation-k-cert");

        let snark = SnarkSrds::new(SnarkSrdsConfig {
            mss_bits: bits,
            mss_height: 1,
        });
        let sboard = PkiBoard::establish(&snark, 16, &mut prg);
        let ssig = snark
            .sign(&sboard.pp, 0, &sboard.sks[0], b"m")
            .expect("snark signs");
        println!(
            "{:<8} {:>20} {:>20} {:>22}",
            bits,
            owf_base,
            owf_cert,
            snark.signature_len(&ssig)
        );
    }
    println!("\nexpected: base signatures scale linearly with the digest width; the\nSNARK *aggregate* stays 121 B regardless (not shown: it is constant).\n");
}
