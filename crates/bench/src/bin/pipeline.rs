//! Pipelined BA-as-a-service throughput — emits `BENCH_9.json`
//! (decisions/sec and setup amortization per `(n, k)` cell, streamed vs.
//! independent, plus the rounds hidden by certification chaining).
//!
//! ```sh
//! cargo run -p pba-bench --bin pipeline --release [-- --smoke] [-- --out PATH]
//! ```
//!
//! `--smoke` restricts the grid to n = 64, k ∈ {1, 4} for the CI
//! `pipeline-smoke` job. The ≥ 2× amortization gate is asserted only on
//! the full grid's n = 1024, k = 16 cell.

use pba_bench::pipeline::{run_pipeline, PipelineConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_9.json".to_string());
    let config = if smoke {
        PipelineConfig::smoke()
    } else {
        PipelineConfig::full()
    };

    eprintln!(
        "pipeline: sizes {:?} x streams {:?}",
        config.sizes, config.streams
    );
    let report = run_pipeline(&config, smoke);

    if !smoke {
        let headline = report
            .cells
            .iter()
            .find(|c| c.n == 1024 && c.k == 16)
            .expect("full grid contains the n=1024, k=16 cell");
        assert!(
            headline.amortized_speedup >= 2.0,
            "amortization target missed: x{:.2} at n=1024, k=16",
            headline.amortized_speedup
        );
        eprintln!(
            "pipeline: headline n=1024 k=16 — {:.2} decisions/sec streamed, x{:.2} amortized",
            headline.streamed_decisions_per_sec, headline.amortized_speedup
        );
    }

    let json = report.to_json();
    std::fs::write(&out_path, format!("{json}\n")).expect("write BENCH_9.json");
    println!("{json}");
    eprintln!("pipeline: wrote {out_path}");
}
