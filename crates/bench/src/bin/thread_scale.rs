//! Compound threads × lanes baseline of the work-stealing round engine —
//! emits `BENCH_10.json` (wall time and rounds/sec per `(threads, lanes)`
//! cell, sequential-transcript identity, lane-occupancy deltas, host core
//! count).
//!
//! ```sh
//! cargo run -p pba-bench --bin thread_scale --release [-- --smoke] [-- --out PATH]
//! ```
//!
//! `--smoke` restricts the grid to n = 64 for CI. All timings are
//! measured, never synthesized: on single-core hosts every cell still
//! runs (the pool is over-subscription safe), the determinism and
//! occupancy gates still bind, and only the wall-clock speedup target is
//! waived — ≥ 1.5× over the 1-thread 8-lane baseline is asserted where
//! it is physically attainable (4+ hardware threads, full sweep,
//! n ≥ 1024).

use pba_bench::threads::{run_thread_scale, ThreadScaleConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_10.json".to_string());
    let host_cores = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1);
    let config = if smoke {
        ThreadScaleConfig::smoke(host_cores)
    } else {
        ThreadScaleConfig::full(host_cores)
    };

    eprintln!(
        "thread_scale: sizes {:?}, threads {:?}, {} rounds/cell, {} ragged digests/party/round, host cores {}",
        config.sizes, config.threads, config.rounds, config.hash_iters, host_cores
    );
    let report = run_thread_scale(&config, smoke);

    for cell in &report.cells {
        eprintln!(
            "thread_scale: n={:<5} threads={:<3} lanes={} wall={:>9.2}ms rounds/s={:>8.1} occupancy={:.3} identical={}",
            cell.n, cell.threads, cell.lanes, cell.wall_ms, cell.rounds_per_sec, cell.occupancy, cell.identical
        );
    }
    for s in &report.speedups {
        eprintln!(
            "thread_scale: n={:<5} speedup x{:.2} ({} threads); occupancy per-party {:.3} -> pooled {:.3}",
            s.n, s.speedup, s.threads, s.per_party_occupancy, s.pooled_occupancy
        );
    }

    assert!(
        report.transcripts_identical(),
        "a (threads, lanes) cell diverged from the sequential transcript — scheduler bug"
    );
    assert!(
        report.pooled_occupancy_exceeds_per_party(),
        "cross-party batching failed to beat per-party lane occupancy"
    );
    for s in &report.speedups {
        if !report.smoke && report.host_cores >= 4 && s.n >= 1024 {
            assert!(
                s.speedup >= 1.5,
                "expected >= 1.5x over 1-thread 8-lane at n={} with {} cores, got x{:.2}",
                s.n,
                report.host_cores,
                s.speedup
            );
        }
    }

    let json = report.to_json();
    std::fs::write(&out_path, format!("{json}\n")).expect("write BENCH_10.json");
    println!("{json}");
    eprintln!("thread_scale: wrote {out_path}");
}
