//! Exact per-party communication accounting.
//!
//! Communication complexity is the quantity the paper optimizes, so the
//! simulator meters every envelope: bytes and messages, sent and received,
//! plus *locality* (the number of distinct parties each party exchanges
//! messages with — the degree of the effective communication graph).
//!
//! [`MetricsTable::report`] aggregates into the columns of Table 1:
//! max-per-party communication, totals, and maximum locality.
//!
//! # Sparse layout
//!
//! The table is *sparse*: `new(n)` allocates one pointer-sized slot per
//! party and nothing else. A party's counters ([`PartyCell`], private) are
//! boxed on its **first** charge, so establishment-only runs and the
//! million-party sweeps (`--bin scale`) pay memory proportional to the
//! parties that actually communicate, not to `n`. Peer sets and per-tag
//! marginals live in sorted vectors inside the cell (committee-sized, so
//! binary-search insertion beats a `BTreeMap`'s per-node allocations).
//!
//! A pre-aggregated [`Totals`] row is maintained on every charge, which
//! keeps the global conservation check
//! ([`MetricsTable::tags_conserve_totals`]) and the per-step attribution in
//! `--bin table1` exact without a full scan.
//!
//! # Differential oracle
//!
//! The previous dense implementation is kept verbatim as
//! [`DenseMetricsTable`]. [`MetricsTable::enable_shadow`] attaches a dense
//! shadow that receives every charge first; [`MetricsTable::shadow_divergence`]
//! then asserts exact equality on every counter, peer set, tag marginal,
//! report column and conservation check. The chaos catalogue runs under
//! this shadow in `tests/proptest_metrics_sparse.rs` — the acceptance gate
//! for this rewrite.

use crate::envelope::PartyId;
use crate::wire;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Communication counters for a single party.
///
/// Returned by [`MetricsTable::party`] as an owned snapshot (the sparse
/// table stores sorted vectors internally); [`DenseMetricsTable::party`]
/// hands out references to the same type.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PartyMetrics {
    /// Bytes of payload sent.
    pub bytes_sent: u64,
    /// Bytes of payload received *and processed* (after filtering).
    pub bytes_received: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received and processed.
    pub msgs_received: u64,
    /// Distinct peers this party sent to.
    pub peers_out: BTreeSet<PartyId>,
    /// Distinct peers this party processed messages from.
    pub peers_in: BTreeSet<PartyId>,
    /// Sent bytes by wire tag ([`crate::wire::tag`]). Marginals over this
    /// map sum exactly to `bytes_sent` — every recording path is tagged
    /// (untagged paths charge [`crate::wire::tag::RAW`]).
    pub sent_by_tag: BTreeMap<u8, u64>,
    /// Received-and-processed bytes by wire tag; sums to `bytes_received`.
    pub recv_by_tag: BTreeMap<u8, u64>,
}

impl PartyMetrics {
    /// Total bytes communicated (sent + received).
    pub fn bytes_total(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Locality: distinct peers in either direction.
    pub fn locality(&self) -> usize {
        self.peers_out.union(&self.peers_in).count()
    }
}

/// Sparse per-party counters: allocated on a party's first charge.
///
/// Peer sets and tag marginals are sorted vectors — the working sets are
/// committee-sized (polylog n), where binary-search insertion into a flat
/// vector is both smaller and faster than tree maps.
#[derive(Clone, Debug, Default)]
struct PartyCell {
    bytes_sent: u64,
    bytes_received: u64,
    msgs_sent: u64,
    msgs_received: u64,
    /// Sorted, deduplicated peer ids (outbound).
    peers_out: Vec<u64>,
    /// Sorted, deduplicated peer ids (inbound).
    peers_in: Vec<u64>,
    /// Sorted `(tag, bytes)` marginals for sent traffic.
    sent_by_tag: Vec<(u8, u64)>,
    /// Sorted `(tag, bytes)` marginals for received traffic.
    recv_by_tag: Vec<(u8, u64)>,
}

fn insert_sorted(v: &mut Vec<u64>, x: u64) {
    if let Err(pos) = v.binary_search(&x) {
        v.insert(pos, x);
    }
}

fn bump_tag(v: &mut Vec<(u8, u64)>, tag: u8, bytes: u64) {
    match v.binary_search_by_key(&tag, |e| e.0) {
        Ok(i) => v[i].1 += bytes,
        Err(i) => v.insert(i, (tag, bytes)),
    }
}

/// Count of the union of two sorted, deduplicated slices.
fn union_len(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
        n += 1;
    }
    n + (a.len() - i) + (b.len() - j)
}

impl PartyCell {
    fn bytes_total(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    fn locality(&self) -> usize {
        union_len(&self.peers_out, &self.peers_in)
    }

    fn conserves(&self) -> bool {
        self.sent_by_tag.iter().map(|(_, b)| b).sum::<u64>() == self.bytes_sent
            && self.recv_by_tag.iter().map(|(_, b)| b).sum::<u64>() == self.bytes_received
    }

    /// Owned dense-shaped view of this cell.
    fn snapshot(&self) -> PartyMetrics {
        PartyMetrics {
            bytes_sent: self.bytes_sent,
            bytes_received: self.bytes_received,
            msgs_sent: self.msgs_sent,
            msgs_received: self.msgs_received,
            peers_out: self.peers_out.iter().map(|&p| PartyId(p)).collect(),
            peers_in: self.peers_in.iter().map(|&p| PartyId(p)).collect(),
            sent_by_tag: self.sent_by_tag.iter().copied().collect(),
            recv_by_tag: self.recv_by_tag.iter().copied().collect(),
        }
    }
}

/// Pre-aggregated global counters, maintained incrementally on every
/// charge so whole-table invariants need no scan over `n` cells.
#[derive(Clone, Debug, Default)]
struct Totals {
    bytes_sent: u64,
    bytes_received: u64,
    msgs_sent: u64,
    msgs_received: u64,
    sent_by_tag: BTreeMap<u8, u64>,
    recv_by_tag: BTreeMap<u8, u64>,
}

impl Totals {
    fn is_zero(&self) -> bool {
        self.bytes_sent == 0
            && self.bytes_received == 0
            && self.msgs_sent == 0
            && self.msgs_received == 0
            && self.sent_by_tag.is_empty()
            && self.recv_by_tag.is_empty()
    }

    fn conserves(&self) -> bool {
        self.sent_by_tag.values().sum::<u64>() == self.bytes_sent
            && self.recv_by_tag.values().sum::<u64>() == self.bytes_received
    }
}

/// Metrics for all parties in one protocol execution (sparse layout; see
/// the module docs).
#[derive(Clone, Debug)]
pub struct MetricsTable {
    /// One slot per party; `None` until the party's first charge.
    cells: Vec<Option<Box<PartyCell>>>,
    totals: Totals,
    rounds: u64,
    /// Dense differential oracle; every mutation is mirrored here first
    /// when attached (see [`MetricsTable::enable_shadow`]).
    shadow: Option<Box<DenseMetricsTable>>,
}

impl MetricsTable {
    /// Creates a table for `n` parties. O(n) pointer slots, zero cells:
    /// per-party storage materializes on first charge, so tables for runs
    /// that never charge most parties (establishment-only, huge-n sweeps)
    /// stay proportional to the touched set.
    pub fn new(n: usize) -> Self {
        MetricsTable {
            cells: vec![None; n],
            totals: Totals::default(),
            rounds: 0,
            shadow: None,
        }
    }

    /// Number of parties.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True if the table tracks no parties.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Number of parties whose counters have materialized (i.e. that were
    /// charged at least once). Memory scales with this, not with `len()`.
    pub fn allocated_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.is_some()).count()
    }

    /// Per-party metrics, as an owned snapshot. Parties never charged
    /// report all-zero counters. Panics if `id` is out of range.
    pub fn party(&self, id: PartyId) -> PartyMetrics {
        match self.cells[id.index()].as_deref() {
            Some(cell) => cell.snapshot(),
            None => PartyMetrics::default(),
        }
    }

    /// Attaches the dense reference implementation as a differential
    /// shadow. Must be called before any charge lands (the shadow cannot
    /// replay history); panics otherwise.
    pub fn enable_shadow(&mut self) {
        assert!(
            self.totals.is_zero() && self.rounds == 0,
            "metrics shadow must be enabled before any charge"
        );
        self.shadow = Some(Box::new(DenseMetricsTable::new(self.cells.len())));
    }

    /// True if a dense shadow is attached.
    pub fn shadow_enabled(&self) -> bool {
        self.shadow.is_some()
    }

    /// Differential check against the dense shadow: `None` when no shadow
    /// is attached **or** every counter, peer set, tag marginal, report
    /// column and conservation check agrees exactly; otherwise a
    /// description of the first divergence found.
    pub fn shadow_divergence(&self) -> Option<String> {
        let dense = self.shadow.as_deref()?;
        if dense.len() != self.len() {
            return Some(format!(
                "party count: sparse {} != dense {}",
                self.len(),
                dense.len()
            ));
        }
        if dense.rounds() != self.rounds {
            return Some(format!(
                "rounds: sparse {} != dense {}",
                self.rounds,
                dense.rounds()
            ));
        }
        for i in 0..self.len() {
            let id = PartyId::from(i);
            let sparse = self.party(id);
            let dense_m = dense.party(id);
            if &sparse != dense_m {
                return Some(format!("party {i}: sparse {sparse:?} != dense {dense_m:?}"));
            }
        }
        if self.report() != dense.report() {
            return Some(format!(
                "report: sparse {:?} != dense {:?}",
                self.report(),
                dense.report()
            ));
        }
        let ids = || (0..self.len()).map(PartyId::from);
        if self.breakdown_for(ids()) != dense.breakdown_for(ids()) {
            return Some("tag breakdown diverged".into());
        }
        if self.tags_conserve_totals() != dense.tags_conserve_totals() {
            return Some("conservation verdicts diverged".into());
        }
        None
    }

    fn cell_mut(&mut self, index: usize) -> &mut PartyCell {
        self.cells[index].get_or_insert_with(Default::default)
    }

    /// Records a sent envelope, attributed to [`crate::wire::tag::RAW`].
    pub fn record_send(&mut self, from: PartyId, to: PartyId, bytes: usize) {
        self.record_send_tagged(from, to, bytes, wire::tag::RAW);
    }

    /// Records a sent envelope, attributing its bytes to a wire tag.
    pub fn record_send_tagged(&mut self, from: PartyId, to: PartyId, bytes: usize, tag: u8) {
        if let Some(shadow) = self.shadow.as_deref_mut() {
            shadow.record_send_tagged(from, to, bytes, tag);
        }
        let m = self.cell_mut(from.index());
        m.bytes_sent += bytes as u64;
        m.msgs_sent += 1;
        insert_sorted(&mut m.peers_out, to.0);
        bump_tag(&mut m.sent_by_tag, tag, bytes as u64);
        self.totals.bytes_sent += bytes as u64;
        self.totals.msgs_sent += 1;
        *self.totals.sent_by_tag.entry(tag).or_insert(0) += bytes as u64;
    }

    /// Records a received-and-processed envelope, attributed to
    /// [`crate::wire::tag::RAW`].
    pub fn record_receive(&mut self, to: PartyId, from: PartyId, bytes: usize) {
        self.record_receive_tagged(to, from, bytes, wire::tag::RAW);
    }

    /// Records a received-and-processed envelope, attributing its bytes to
    /// a wire tag.
    pub fn record_receive_tagged(&mut self, to: PartyId, from: PartyId, bytes: usize, tag: u8) {
        if let Some(shadow) = self.shadow.as_deref_mut() {
            shadow.record_receive_tagged(to, from, bytes, tag);
        }
        let m = self.cell_mut(to.index());
        m.bytes_received += bytes as u64;
        m.msgs_received += 1;
        insert_sorted(&mut m.peers_in, from.0);
        bump_tag(&mut m.recv_by_tag, tag, bytes as u64);
        self.totals.bytes_received += bytes as u64;
        self.totals.msgs_received += 1;
        *self.totals.recv_by_tag.entry(tag).or_insert(0) += bytes as u64;
    }

    /// Charges synthetic communication to a party — used when a
    /// sub-functionality is costed analytically rather than executed
    /// message-by-message (see DESIGN.md §2, substitution 5).
    ///
    /// This variant has no addressee: the bytes count toward `bytes_sent`
    /// but touch neither peer set, so they are invisible to
    /// [`PartyMetrics::locality`] and to the receiver's
    /// [`PartyMetrics::bytes_total`]. Synthetic traffic with a known
    /// committee topology (e.g. redundant-path aggregation copies) must use
    /// [`MetricsTable::charge_synthetic_link`] instead, or Table 1's
    /// locality and max-bytes columns silently under-report the redundancy
    /// factor.
    pub fn charge_synthetic(&mut self, party: PartyId, bytes: u64, msgs: u64) {
        self.charge_synthetic_tagged(party, bytes, msgs, wire::tag::RAW);
    }

    /// [`MetricsTable::charge_synthetic`] with an explicit wire tag for the
    /// per-tag byte attribution.
    pub fn charge_synthetic_tagged(&mut self, party: PartyId, bytes: u64, msgs: u64, tag: u8) {
        if let Some(shadow) = self.shadow.as_deref_mut() {
            shadow.charge_synthetic_tagged(party, bytes, msgs, tag);
        }
        let m = self.cell_mut(party.index());
        m.bytes_sent += bytes;
        m.msgs_sent += msgs;
        bump_tag(&mut m.sent_by_tag, tag, bytes);
        self.totals.bytes_sent += bytes;
        self.totals.msgs_sent += msgs;
        *self.totals.sent_by_tag.entry(tag).or_insert(0) += bytes;
    }

    /// Charges synthetic communication over a concrete `from → to` link:
    /// the sender's `bytes_sent`/`msgs_sent` and the receiver's
    /// `bytes_received`/`msgs_received` both move, and the pair enters each
    /// other's peer sets so [`PartyMetrics::locality`] and
    /// [`PartyMetrics::bytes_total`] account the traffic exactly like a
    /// real envelope.
    ///
    /// Use this for analytically-costed protocols whose communication graph
    /// is known (committee exchanges, redundant-path copies); use
    /// [`MetricsTable::charge_synthetic`] only when no addressee exists.
    pub fn charge_synthetic_link(&mut self, from: PartyId, to: PartyId, bytes: u64, msgs: u64) {
        self.charge_synthetic_link_tagged(from, to, bytes, msgs, wire::tag::RAW);
    }

    /// [`MetricsTable::charge_synthetic_link`] with an explicit wire tag
    /// for the per-tag byte attribution (both endpoints).
    pub fn charge_synthetic_link_tagged(
        &mut self,
        from: PartyId,
        to: PartyId,
        bytes: u64,
        msgs: u64,
        tag: u8,
    ) {
        if let Some(shadow) = self.shadow.as_deref_mut() {
            shadow.charge_synthetic_link_tagged(from, to, bytes, msgs, tag);
        }
        let sender = self.cell_mut(from.index());
        sender.bytes_sent += bytes;
        sender.msgs_sent += msgs;
        insert_sorted(&mut sender.peers_out, to.0);
        bump_tag(&mut sender.sent_by_tag, tag, bytes);
        let receiver = self.cell_mut(to.index());
        receiver.bytes_received += bytes;
        receiver.msgs_received += msgs;
        insert_sorted(&mut receiver.peers_in, from.0);
        bump_tag(&mut receiver.recv_by_tag, tag, bytes);
        self.totals.bytes_sent += bytes;
        self.totals.msgs_sent += msgs;
        *self.totals.sent_by_tag.entry(tag).or_insert(0) += bytes;
        self.totals.bytes_received += bytes;
        self.totals.msgs_received += msgs;
        *self.totals.recv_by_tag.entry(tag).or_insert(0) += bytes;
    }

    /// Advances the round counter.
    pub fn bump_round(&mut self) {
        if let Some(shadow) = self.shadow.as_deref_mut() {
            shadow.bump_round();
        }
        self.rounds += 1;
    }

    /// Rounds elapsed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Aggregated report over a set of parties (typically the honest ones —
    /// the adversary may inflate its own counters arbitrarily).
    pub fn report_for<I: IntoIterator<Item = PartyId>>(&self, ids: I) -> Report {
        let mut report = Report {
            rounds: self.rounds,
            ..Report::default()
        };
        let mut count = 0u64;
        for id in ids {
            count += 1;
            let Some(m) = self.cells[id.index()].as_deref() else {
                continue;
            };
            let total = m.bytes_total();
            report.max_bytes_per_party = report.max_bytes_per_party.max(total);
            report.max_bytes_sent = report.max_bytes_sent.max(m.bytes_sent);
            report.total_bytes += m.bytes_sent;
            report.total_msgs += m.msgs_sent;
            report.max_msgs_per_party =
                report.max_msgs_per_party.max(m.msgs_sent + m.msgs_received);
            report.max_locality = report.max_locality.max(m.locality() as u64);
        }
        report.parties = count;
        report
    }

    /// Aggregated report over all parties.
    pub fn report(&self) -> Report {
        self.report_for((0..self.cells.len()).map(PartyId::from))
    }

    /// Per-tag byte breakdown aggregated over a set of parties (typically
    /// the honest ones) — the per-step attribution dimension behind
    /// Table 1's totals.
    pub fn breakdown_for<I: IntoIterator<Item = PartyId>>(&self, ids: I) -> TagBreakdown {
        let mut out = TagBreakdown::default();
        for id in ids {
            let Some(m) = self.cells[id.index()].as_deref() else {
                continue;
            };
            for &(t, b) in &m.sent_by_tag {
                *out.sent.entry(t).or_insert(0) += b;
            }
            for &(t, b) in &m.recv_by_tag {
                *out.received.entry(t).or_insert(0) += b;
            }
        }
        out
    }

    /// Exact conservation of the per-tag attribution: for **every**
    /// materialized party, the per-tag sent/received marginals sum to the
    /// party's untyped `bytes_sent`/`bytes_received` totals — and the
    /// pre-aggregated global marginals conserve independently (an O(tags)
    /// cross-check that needs no cell scan). Holds by construction — every
    /// recording path goes through a `_tagged` variant — and is asserted by
    /// tests after full protocol runs. Unmaterialized parties are all-zero
    /// and conserve trivially.
    pub fn tags_conserve_totals(&self) -> bool {
        self.totals.conserves() && self.cells.iter().flatten().all(|m| m.conserves())
    }
}

/// The dense reference implementation the sparse [`MetricsTable`] is
/// checked against: one eagerly-allocated [`PartyMetrics`] per party,
/// exactly the pre-refactor layout. O(n) memory at construction — kept
/// only as the differential oracle (see [`MetricsTable::enable_shadow`])
/// and for small-n unit tests; production paths use the sparse table.
#[derive(Clone, Debug)]
pub struct DenseMetricsTable {
    parties: Vec<PartyMetrics>,
    rounds: u64,
}

impl DenseMetricsTable {
    /// Creates a table for `n` parties, allocating all cells up front.
    pub fn new(n: usize) -> Self {
        DenseMetricsTable {
            parties: vec![PartyMetrics::default(); n],
            rounds: 0,
        }
    }

    /// Number of parties.
    pub fn len(&self) -> usize {
        self.parties.len()
    }

    /// True if the table tracks no parties.
    pub fn is_empty(&self) -> bool {
        self.parties.is_empty()
    }

    /// Per-party metrics.
    pub fn party(&self, id: PartyId) -> &PartyMetrics {
        &self.parties[id.index()]
    }

    /// Records a sent envelope, attributed to [`crate::wire::tag::RAW`].
    pub fn record_send(&mut self, from: PartyId, to: PartyId, bytes: usize) {
        self.record_send_tagged(from, to, bytes, wire::tag::RAW);
    }

    /// Records a sent envelope, attributing its bytes to a wire tag.
    pub fn record_send_tagged(&mut self, from: PartyId, to: PartyId, bytes: usize, tag: u8) {
        let m = &mut self.parties[from.index()];
        m.bytes_sent += bytes as u64;
        m.msgs_sent += 1;
        m.peers_out.insert(to);
        *m.sent_by_tag.entry(tag).or_insert(0) += bytes as u64;
    }

    /// Records a received-and-processed envelope, attributed to
    /// [`crate::wire::tag::RAW`].
    pub fn record_receive(&mut self, to: PartyId, from: PartyId, bytes: usize) {
        self.record_receive_tagged(to, from, bytes, wire::tag::RAW);
    }

    /// Records a received-and-processed envelope, attributing its bytes to
    /// a wire tag.
    pub fn record_receive_tagged(&mut self, to: PartyId, from: PartyId, bytes: usize, tag: u8) {
        let m = &mut self.parties[to.index()];
        m.bytes_received += bytes as u64;
        m.msgs_received += 1;
        m.peers_in.insert(from);
        *m.recv_by_tag.entry(tag).or_insert(0) += bytes as u64;
    }

    /// See [`MetricsTable::charge_synthetic`].
    pub fn charge_synthetic(&mut self, party: PartyId, bytes: u64, msgs: u64) {
        self.charge_synthetic_tagged(party, bytes, msgs, wire::tag::RAW);
    }

    /// See [`MetricsTable::charge_synthetic_tagged`].
    pub fn charge_synthetic_tagged(&mut self, party: PartyId, bytes: u64, msgs: u64, tag: u8) {
        let m = &mut self.parties[party.index()];
        m.bytes_sent += bytes;
        m.msgs_sent += msgs;
        *m.sent_by_tag.entry(tag).or_insert(0) += bytes;
    }

    /// See [`MetricsTable::charge_synthetic_link`].
    pub fn charge_synthetic_link(&mut self, from: PartyId, to: PartyId, bytes: u64, msgs: u64) {
        self.charge_synthetic_link_tagged(from, to, bytes, msgs, wire::tag::RAW);
    }

    /// See [`MetricsTable::charge_synthetic_link_tagged`].
    pub fn charge_synthetic_link_tagged(
        &mut self,
        from: PartyId,
        to: PartyId,
        bytes: u64,
        msgs: u64,
        tag: u8,
    ) {
        let sender = &mut self.parties[from.index()];
        sender.bytes_sent += bytes;
        sender.msgs_sent += msgs;
        sender.peers_out.insert(to);
        *sender.sent_by_tag.entry(tag).or_insert(0) += bytes;
        let receiver = &mut self.parties[to.index()];
        receiver.bytes_received += bytes;
        receiver.msgs_received += msgs;
        receiver.peers_in.insert(from);
        *receiver.recv_by_tag.entry(tag).or_insert(0) += bytes;
    }

    /// Advances the round counter.
    pub fn bump_round(&mut self) {
        self.rounds += 1;
    }

    /// Rounds elapsed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// See [`MetricsTable::report_for`].
    pub fn report_for<I: IntoIterator<Item = PartyId>>(&self, ids: I) -> Report {
        let mut report = Report {
            rounds: self.rounds,
            ..Report::default()
        };
        let mut count = 0u64;
        for id in ids {
            let m = &self.parties[id.index()];
            let total = m.bytes_total();
            report.max_bytes_per_party = report.max_bytes_per_party.max(total);
            report.max_bytes_sent = report.max_bytes_sent.max(m.bytes_sent);
            report.total_bytes += m.bytes_sent;
            report.total_msgs += m.msgs_sent;
            report.max_msgs_per_party =
                report.max_msgs_per_party.max(m.msgs_sent + m.msgs_received);
            report.max_locality = report.max_locality.max(m.locality() as u64);
            count += 1;
        }
        report.parties = count;
        report
    }

    /// Aggregated report over all parties.
    pub fn report(&self) -> Report {
        self.report_for((0..self.parties.len()).map(PartyId::from))
    }

    /// See [`MetricsTable::breakdown_for`].
    pub fn breakdown_for<I: IntoIterator<Item = PartyId>>(&self, ids: I) -> TagBreakdown {
        let mut out = TagBreakdown::default();
        for id in ids {
            let m = &self.parties[id.index()];
            for (&t, &b) in &m.sent_by_tag {
                *out.sent.entry(t).or_insert(0) += b;
            }
            for (&t, &b) in &m.recv_by_tag {
                *out.received.entry(t).or_insert(0) += b;
            }
        }
        out
    }

    /// See [`MetricsTable::tags_conserve_totals`].
    pub fn tags_conserve_totals(&self) -> bool {
        self.parties.iter().all(|m| {
            m.sent_by_tag.values().sum::<u64>() == m.bytes_sent
                && m.recv_by_tag.values().sum::<u64>() == m.bytes_received
        })
    }
}

/// Per-tag byte totals over a party set (see
/// [`MetricsTable::breakdown_for`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TagBreakdown {
    /// Sent bytes per wire tag.
    pub sent: BTreeMap<u8, u64>,
    /// Received-and-processed bytes per wire tag.
    pub received: BTreeMap<u8, u64>,
}

impl TagBreakdown {
    /// Sent bytes aggregated per step label ([`crate::wire::step_label_for`]),
    /// in registry order — the rows of the per-step breakdown column in
    /// the `table1` harness.
    pub fn sent_by_step_label(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = Vec::new();
        for (&t, &b) in &self.sent {
            let label = crate::wire::step_label_for(t);
            if let Some(entry) = out.iter_mut().find(|(l, _)| *l == label) {
                entry.1 += b;
            } else {
                out.push((label, b));
            }
        }
        out
    }

    /// Total sent bytes across all tags.
    pub fn total_sent(&self) -> u64 {
        self.sent.values().sum()
    }
}

/// Aggregate communication statistics for one execution — the measured
/// analogues of Table 1's columns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Parties included in the aggregation.
    pub parties: u64,
    /// Maximum over parties of (bytes sent + bytes received).
    pub max_bytes_per_party: u64,
    /// Maximum over parties of bytes sent.
    pub max_bytes_sent: u64,
    /// Sum over parties of bytes sent (= total network traffic).
    pub total_bytes: u64,
    /// Sum over parties of messages sent.
    pub total_msgs: u64,
    /// Maximum over parties of messages sent + received.
    pub max_msgs_per_party: u64,
    /// Maximum communication-graph degree over parties.
    pub max_locality: u64,
    /// Synchronous rounds elapsed.
    pub rounds: u64,
}

impl Report {
    /// Maximum bits per party — the paper's headline measure.
    pub fn max_bits_per_party(&self) -> u64 {
        self.max_bytes_per_party * 8
    }

    /// Renders the report as a JSON object — used by the perf harness to
    /// embed metric snapshots in `BENCH_*.json` without a serde dependency
    /// (the container is offline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"parties\":{},\"max_bytes_per_party\":{},\"max_bytes_sent\":{},\
             \"total_bytes\":{},\"total_msgs\":{},\"max_msgs_per_party\":{},\
             \"max_locality\":{},\"rounds\":{}}}",
            self.parties,
            self.max_bytes_per_party,
            self.max_bytes_sent,
            self.total_bytes,
            self.total_msgs,
            self.max_msgs_per_party,
            self.max_locality,
            self.rounds
        )
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parties={} rounds={} max_bytes/party={} total_bytes={} max_msgs/party={} max_locality={}",
            self.parties,
            self.rounds,
            self.max_bytes_per_party,
            self.total_bytes,
            self.max_msgs_per_party,
            self.max_locality
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_report() {
        let mut t = MetricsTable::new(3);
        t.record_send(PartyId(0), PartyId(1), 100);
        t.record_receive(PartyId(1), PartyId(0), 100);
        t.record_send(PartyId(0), PartyId(2), 50);
        t.record_receive(PartyId(2), PartyId(0), 50);
        t.bump_round();

        assert_eq!(t.party(PartyId(0)).bytes_sent, 150);
        assert_eq!(t.party(PartyId(0)).locality(), 2);
        assert_eq!(t.party(PartyId(1)).bytes_received, 100);
        assert_eq!(t.party(PartyId(1)).locality(), 1);

        let r = t.report();
        assert_eq!(r.parties, 3);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.max_bytes_per_party, 150);
        assert_eq!(r.total_bytes, 150);
        assert_eq!(r.max_locality, 2);
        assert_eq!(r.max_bits_per_party(), 1200);
    }

    #[test]
    fn report_for_subset_excludes_others() {
        let mut t = MetricsTable::new(3);
        t.record_send(PartyId(0), PartyId(1), 1000);
        t.record_send(PartyId(2), PartyId(1), 5);
        let r = t.report_for([PartyId(2)]);
        assert_eq!(r.parties, 1);
        assert_eq!(r.max_bytes_per_party, 5);
    }

    #[test]
    fn synthetic_charge() {
        let mut t = MetricsTable::new(1);
        t.charge_synthetic(PartyId(0), 42, 3);
        assert_eq!(t.party(PartyId(0)).bytes_sent, 42);
        assert_eq!(t.party(PartyId(0)).msgs_sent, 3);
    }

    #[test]
    fn synthetic_link_charge_reaches_locality_and_totals() {
        // The silent-metrics gap: addressee-less charge_synthetic left
        // redundant-path copies out of locality() and out of the
        // receiver's bytes_total(). The link variant must surface both.
        let mut t = MetricsTable::new(3);
        t.charge_synthetic_link(PartyId(0), PartyId(1), 64, 1);
        t.charge_synthetic_link(PartyId(0), PartyId(2), 64, 1);

        // Sender side: bytes, messages, and *locality* all move.
        assert_eq!(t.party(PartyId(0)).bytes_sent, 128);
        assert_eq!(t.party(PartyId(0)).msgs_sent, 2);
        assert_eq!(
            t.party(PartyId(0)).locality(),
            2,
            "synthetic copies must count toward the sender's locality"
        );

        // Receiver side: the copy shows up in bytes_total and locality —
        // this is exactly what the addressee-less variant fails to do.
        assert_eq!(t.party(PartyId(1)).bytes_received, 64);
        assert_eq!(t.party(PartyId(1)).bytes_total(), 64);
        assert_eq!(t.party(PartyId(1)).locality(), 1);

        // Contrast with the legacy charge: no locality, no receiver bytes.
        let mut legacy = MetricsTable::new(3);
        legacy.charge_synthetic(PartyId(0), 128, 2);
        assert_eq!(legacy.party(PartyId(0)).locality(), 0);
        assert_eq!(legacy.party(PartyId(1)).bytes_total(), 0);

        // Aggregate view: the report's locality column sees the links.
        let r = t.report();
        assert_eq!(r.max_locality, 2);
        assert_eq!(r.max_bytes_per_party, 128);
    }

    #[test]
    fn tagged_marginals_conserve_untyped_totals() {
        use crate::wire::tag;
        let mut t = MetricsTable::new(3);
        t.record_send_tagged(PartyId(0), PartyId(1), 10, tag::VALUE_SEED);
        t.record_receive_tagged(PartyId(1), PartyId(0), 10, tag::VALUE_SEED);
        t.record_send(PartyId(0), PartyId(2), 5); // untyped → RAW bucket
        t.charge_synthetic_tagged(PartyId(2), 7, 1, tag::ESTABLISH);
        t.charge_synthetic_link_tagged(PartyId(1), PartyId(2), 3, 1, tag::SPREAD);
        assert!(t.tags_conserve_totals());

        assert_eq!(t.party(PartyId(0)).sent_by_tag[&tag::VALUE_SEED], 10);
        assert_eq!(t.party(PartyId(0)).sent_by_tag[&tag::RAW], 5);
        assert_eq!(t.party(PartyId(0)).bytes_sent, 15);

        let bd = t.breakdown_for((0..3u64).map(PartyId));
        assert_eq!(bd.total_sent(), t.report().total_bytes);
        assert_eq!(bd.sent[&tag::SPREAD], 3);
        assert_eq!(bd.received[&tag::SPREAD], 3);
        assert!(bd
            .sent_by_step_label()
            .iter()
            .any(|(l, b)| *l == "3:disseminate" && *b == 10));
    }

    #[test]
    fn locality_counts_union_not_sum() {
        let mut t = MetricsTable::new(2);
        t.record_send(PartyId(0), PartyId(1), 1);
        t.record_receive(PartyId(0), PartyId(1), 1);
        assert_eq!(t.party(PartyId(0)).locality(), 1);
    }

    #[test]
    fn cells_materialize_on_first_charge_only() {
        // The O(n²)-shaped waste this rewrite removes: a table for a
        // million parties must cost pointer slots only until charged.
        let mut t = MetricsTable::new(1 << 20);
        assert_eq!(t.allocated_cells(), 0);
        t.record_send(PartyId(7), PartyId(9), 10);
        assert_eq!(t.allocated_cells(), 1);
        t.record_receive(PartyId(9), PartyId(7), 10);
        assert_eq!(t.allocated_cells(), 2);
        // Re-charging an existing cell allocates nothing new.
        t.record_send(PartyId(7), PartyId(9), 10);
        assert_eq!(t.allocated_cells(), 2);
        // Untouched parties still report exact zeros.
        assert_eq!(t.party(PartyId(500_000)), PartyMetrics::default());
        let r = t.report();
        assert_eq!(r.parties, 1 << 20);
        assert_eq!(r.total_bytes, 20);
    }

    #[test]
    fn dense_shadow_agrees_on_mixed_charge_sequence() {
        use crate::wire::tag;
        let mut t = MetricsTable::new(8);
        t.enable_shadow();
        assert!(t.shadow_enabled());
        t.record_send_tagged(PartyId(0), PartyId(1), 10, tag::VALUE_SEED);
        t.record_receive_tagged(PartyId(1), PartyId(0), 10, tag::VALUE_SEED);
        t.record_send(PartyId(3), PartyId(2), 17);
        t.charge_synthetic_tagged(PartyId(4), 100, 2, tag::ESTABLISH);
        t.charge_synthetic_link_tagged(PartyId(5), PartyId(6), 64, 1, tag::AGGR_SHARE);
        t.charge_synthetic(PartyId(7), 1, 1);
        t.bump_round();
        t.record_send_tagged(PartyId(0), PartyId(1), 3, tag::SPREAD);
        assert_eq!(t.shadow_divergence(), None);
    }

    #[test]
    fn shadow_divergence_is_none_without_shadow() {
        let mut t = MetricsTable::new(2);
        t.record_send(PartyId(0), PartyId(1), 5);
        assert_eq!(t.shadow_divergence(), None);
    }

    #[test]
    #[should_panic(expected = "before any charge")]
    fn shadow_after_charges_panics() {
        let mut t = MetricsTable::new(2);
        t.record_send(PartyId(0), PartyId(1), 5);
        t.enable_shadow();
    }
}
