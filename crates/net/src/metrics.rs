//! Exact per-party communication accounting.
//!
//! Communication complexity is the quantity the paper optimizes, so the
//! simulator meters every envelope: bytes and messages, sent and received,
//! plus *locality* (the number of distinct parties each party exchanges
//! messages with — the degree of the effective communication graph).
//!
//! [`MetricsTable::report`] aggregates into the columns of Table 1:
//! max-per-party communication, totals, and maximum locality.

use crate::envelope::PartyId;
use crate::wire;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Communication counters for a single party.
#[derive(Clone, Debug, Default)]
pub struct PartyMetrics {
    /// Bytes of payload sent.
    pub bytes_sent: u64,
    /// Bytes of payload received *and processed* (after filtering).
    pub bytes_received: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received and processed.
    pub msgs_received: u64,
    /// Distinct peers this party sent to.
    pub peers_out: BTreeSet<PartyId>,
    /// Distinct peers this party processed messages from.
    pub peers_in: BTreeSet<PartyId>,
    /// Sent bytes by wire tag ([`crate::wire::tag`]). Marginals over this
    /// map sum exactly to `bytes_sent` — every recording path is tagged
    /// (untagged paths charge [`crate::wire::tag::RAW`]).
    pub sent_by_tag: BTreeMap<u8, u64>,
    /// Received-and-processed bytes by wire tag; sums to `bytes_received`.
    pub recv_by_tag: BTreeMap<u8, u64>,
}

impl PartyMetrics {
    /// Total bytes communicated (sent + received).
    pub fn bytes_total(&self) -> u64 {
        self.bytes_sent + self.bytes_received
    }

    /// Locality: distinct peers in either direction.
    pub fn locality(&self) -> usize {
        self.peers_out.union(&self.peers_in).count()
    }
}

/// Metrics for all parties in one protocol execution.
#[derive(Clone, Debug)]
pub struct MetricsTable {
    parties: Vec<PartyMetrics>,
    rounds: u64,
}

impl MetricsTable {
    /// Creates a table for `n` parties.
    pub fn new(n: usize) -> Self {
        MetricsTable {
            parties: vec![PartyMetrics::default(); n],
            rounds: 0,
        }
    }

    /// Number of parties.
    pub fn len(&self) -> usize {
        self.parties.len()
    }

    /// True if the table tracks no parties.
    pub fn is_empty(&self) -> bool {
        self.parties.is_empty()
    }

    /// Per-party metrics.
    pub fn party(&self, id: PartyId) -> &PartyMetrics {
        &self.parties[id.index()]
    }

    /// Records a sent envelope, attributed to [`crate::wire::tag::RAW`].
    pub fn record_send(&mut self, from: PartyId, to: PartyId, bytes: usize) {
        self.record_send_tagged(from, to, bytes, wire::tag::RAW);
    }

    /// Records a sent envelope, attributing its bytes to a wire tag.
    pub fn record_send_tagged(&mut self, from: PartyId, to: PartyId, bytes: usize, tag: u8) {
        let m = &mut self.parties[from.index()];
        m.bytes_sent += bytes as u64;
        m.msgs_sent += 1;
        m.peers_out.insert(to);
        *m.sent_by_tag.entry(tag).or_insert(0) += bytes as u64;
    }

    /// Records a received-and-processed envelope, attributed to
    /// [`crate::wire::tag::RAW`].
    pub fn record_receive(&mut self, to: PartyId, from: PartyId, bytes: usize) {
        self.record_receive_tagged(to, from, bytes, wire::tag::RAW);
    }

    /// Records a received-and-processed envelope, attributing its bytes to
    /// a wire tag.
    pub fn record_receive_tagged(&mut self, to: PartyId, from: PartyId, bytes: usize, tag: u8) {
        let m = &mut self.parties[to.index()];
        m.bytes_received += bytes as u64;
        m.msgs_received += 1;
        m.peers_in.insert(from);
        *m.recv_by_tag.entry(tag).or_insert(0) += bytes as u64;
    }

    /// Charges synthetic communication to a party — used when a
    /// sub-functionality is costed analytically rather than executed
    /// message-by-message (see DESIGN.md §2, substitution 5).
    ///
    /// This variant has no addressee: the bytes count toward `bytes_sent`
    /// but touch neither peer set, so they are invisible to
    /// [`PartyMetrics::locality`] and to the receiver's
    /// [`PartyMetrics::bytes_total`]. Synthetic traffic with a known
    /// committee topology (e.g. redundant-path aggregation copies) must use
    /// [`MetricsTable::charge_synthetic_link`] instead, or Table 1's
    /// locality and max-bytes columns silently under-report the redundancy
    /// factor.
    pub fn charge_synthetic(&mut self, party: PartyId, bytes: u64, msgs: u64) {
        self.charge_synthetic_tagged(party, bytes, msgs, wire::tag::RAW);
    }

    /// [`MetricsTable::charge_synthetic`] with an explicit wire tag for the
    /// per-tag byte attribution.
    pub fn charge_synthetic_tagged(&mut self, party: PartyId, bytes: u64, msgs: u64, tag: u8) {
        let m = &mut self.parties[party.index()];
        m.bytes_sent += bytes;
        m.msgs_sent += msgs;
        *m.sent_by_tag.entry(tag).or_insert(0) += bytes;
    }

    /// Charges synthetic communication over a concrete `from → to` link:
    /// the sender's `bytes_sent`/`msgs_sent` and the receiver's
    /// `bytes_received`/`msgs_received` both move, and the pair enters each
    /// other's peer sets so [`PartyMetrics::locality`] and
    /// [`PartyMetrics::bytes_total`] account the traffic exactly like a
    /// real envelope.
    ///
    /// Use this for analytically-costed protocols whose communication graph
    /// is known (committee exchanges, redundant-path copies); use
    /// [`MetricsTable::charge_synthetic`] only when no addressee exists.
    pub fn charge_synthetic_link(&mut self, from: PartyId, to: PartyId, bytes: u64, msgs: u64) {
        self.charge_synthetic_link_tagged(from, to, bytes, msgs, wire::tag::RAW);
    }

    /// [`MetricsTable::charge_synthetic_link`] with an explicit wire tag
    /// for the per-tag byte attribution (both endpoints).
    pub fn charge_synthetic_link_tagged(
        &mut self,
        from: PartyId,
        to: PartyId,
        bytes: u64,
        msgs: u64,
        tag: u8,
    ) {
        let sender = &mut self.parties[from.index()];
        sender.bytes_sent += bytes;
        sender.msgs_sent += msgs;
        sender.peers_out.insert(to);
        *sender.sent_by_tag.entry(tag).or_insert(0) += bytes;
        let receiver = &mut self.parties[to.index()];
        receiver.bytes_received += bytes;
        receiver.msgs_received += msgs;
        receiver.peers_in.insert(from);
        *receiver.recv_by_tag.entry(tag).or_insert(0) += bytes;
    }

    /// Advances the round counter.
    pub fn bump_round(&mut self) {
        self.rounds += 1;
    }

    /// Rounds elapsed.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Aggregated report over a set of parties (typically the honest ones —
    /// the adversary may inflate its own counters arbitrarily).
    pub fn report_for<I: IntoIterator<Item = PartyId>>(&self, ids: I) -> Report {
        let mut report = Report {
            rounds: self.rounds,
            ..Report::default()
        };
        let mut count = 0u64;
        for id in ids {
            let m = &self.parties[id.index()];
            let total = m.bytes_total();
            report.max_bytes_per_party = report.max_bytes_per_party.max(total);
            report.max_bytes_sent = report.max_bytes_sent.max(m.bytes_sent);
            report.total_bytes += m.bytes_sent;
            report.total_msgs += m.msgs_sent;
            report.max_msgs_per_party =
                report.max_msgs_per_party.max(m.msgs_sent + m.msgs_received);
            report.max_locality = report.max_locality.max(m.locality() as u64);
            count += 1;
        }
        report.parties = count;
        report
    }

    /// Aggregated report over all parties.
    pub fn report(&self) -> Report {
        self.report_for((0..self.parties.len()).map(PartyId::from))
    }

    /// Per-tag byte breakdown aggregated over a set of parties (typically
    /// the honest ones) — the per-step attribution dimension behind
    /// Table 1's totals.
    pub fn breakdown_for<I: IntoIterator<Item = PartyId>>(&self, ids: I) -> TagBreakdown {
        let mut out = TagBreakdown::default();
        for id in ids {
            let m = &self.parties[id.index()];
            for (&t, &b) in &m.sent_by_tag {
                *out.sent.entry(t).or_insert(0) += b;
            }
            for (&t, &b) in &m.recv_by_tag {
                *out.received.entry(t).or_insert(0) += b;
            }
        }
        out
    }

    /// Exact conservation of the per-tag attribution: for **every** party,
    /// the per-tag sent/received marginals sum to the party's untyped
    /// `bytes_sent`/`bytes_received` totals. Holds by construction — every
    /// recording path goes through a `_tagged` variant — and is asserted
    /// by tests after full protocol runs.
    pub fn tags_conserve_totals(&self) -> bool {
        self.parties.iter().all(|m| {
            m.sent_by_tag.values().sum::<u64>() == m.bytes_sent
                && m.recv_by_tag.values().sum::<u64>() == m.bytes_received
        })
    }
}

/// Per-tag byte totals over a party set (see
/// [`MetricsTable::breakdown_for`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TagBreakdown {
    /// Sent bytes per wire tag.
    pub sent: BTreeMap<u8, u64>,
    /// Received-and-processed bytes per wire tag.
    pub received: BTreeMap<u8, u64>,
}

impl TagBreakdown {
    /// Sent bytes aggregated per step label ([`crate::wire::step_label_for`]),
    /// in registry order — the rows of the per-step breakdown column in
    /// the `table1` harness.
    pub fn sent_by_step_label(&self) -> Vec<(&'static str, u64)> {
        let mut out: Vec<(&'static str, u64)> = Vec::new();
        for (&t, &b) in &self.sent {
            let label = crate::wire::step_label_for(t);
            if let Some(entry) = out.iter_mut().find(|(l, _)| *l == label) {
                entry.1 += b;
            } else {
                out.push((label, b));
            }
        }
        out
    }

    /// Total sent bytes across all tags.
    pub fn total_sent(&self) -> u64 {
        self.sent.values().sum()
    }
}

/// Aggregate communication statistics for one execution — the measured
/// analogues of Table 1's columns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Report {
    /// Parties included in the aggregation.
    pub parties: u64,
    /// Maximum over parties of (bytes sent + bytes received).
    pub max_bytes_per_party: u64,
    /// Maximum over parties of bytes sent.
    pub max_bytes_sent: u64,
    /// Sum over parties of bytes sent (= total network traffic).
    pub total_bytes: u64,
    /// Sum over parties of messages sent.
    pub total_msgs: u64,
    /// Maximum over parties of messages sent + received.
    pub max_msgs_per_party: u64,
    /// Maximum communication-graph degree over parties.
    pub max_locality: u64,
    /// Synchronous rounds elapsed.
    pub rounds: u64,
}

impl Report {
    /// Maximum bits per party — the paper's headline measure.
    pub fn max_bits_per_party(&self) -> u64 {
        self.max_bytes_per_party * 8
    }

    /// Renders the report as a JSON object — used by the perf harness to
    /// embed metric snapshots in `BENCH_*.json` without a serde dependency
    /// (the container is offline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"parties\":{},\"max_bytes_per_party\":{},\"max_bytes_sent\":{},\
             \"total_bytes\":{},\"total_msgs\":{},\"max_msgs_per_party\":{},\
             \"max_locality\":{},\"rounds\":{}}}",
            self.parties,
            self.max_bytes_per_party,
            self.max_bytes_sent,
            self.total_bytes,
            self.total_msgs,
            self.max_msgs_per_party,
            self.max_locality,
            self.rounds
        )
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parties={} rounds={} max_bytes/party={} total_bytes={} max_msgs/party={} max_locality={}",
            self.parties,
            self.rounds,
            self.max_bytes_per_party,
            self.total_bytes,
            self.max_msgs_per_party,
            self.max_locality
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_report() {
        let mut t = MetricsTable::new(3);
        t.record_send(PartyId(0), PartyId(1), 100);
        t.record_receive(PartyId(1), PartyId(0), 100);
        t.record_send(PartyId(0), PartyId(2), 50);
        t.record_receive(PartyId(2), PartyId(0), 50);
        t.bump_round();

        assert_eq!(t.party(PartyId(0)).bytes_sent, 150);
        assert_eq!(t.party(PartyId(0)).locality(), 2);
        assert_eq!(t.party(PartyId(1)).bytes_received, 100);
        assert_eq!(t.party(PartyId(1)).locality(), 1);

        let r = t.report();
        assert_eq!(r.parties, 3);
        assert_eq!(r.rounds, 1);
        assert_eq!(r.max_bytes_per_party, 150);
        assert_eq!(r.total_bytes, 150);
        assert_eq!(r.max_locality, 2);
        assert_eq!(r.max_bits_per_party(), 1200);
    }

    #[test]
    fn report_for_subset_excludes_others() {
        let mut t = MetricsTable::new(3);
        t.record_send(PartyId(0), PartyId(1), 1000);
        t.record_send(PartyId(2), PartyId(1), 5);
        let r = t.report_for([PartyId(2)]);
        assert_eq!(r.parties, 1);
        assert_eq!(r.max_bytes_per_party, 5);
    }

    #[test]
    fn synthetic_charge() {
        let mut t = MetricsTable::new(1);
        t.charge_synthetic(PartyId(0), 42, 3);
        assert_eq!(t.party(PartyId(0)).bytes_sent, 42);
        assert_eq!(t.party(PartyId(0)).msgs_sent, 3);
    }

    #[test]
    fn synthetic_link_charge_reaches_locality_and_totals() {
        // The silent-metrics gap: addressee-less charge_synthetic left
        // redundant-path copies out of locality() and out of the
        // receiver's bytes_total(). The link variant must surface both.
        let mut t = MetricsTable::new(3);
        t.charge_synthetic_link(PartyId(0), PartyId(1), 64, 1);
        t.charge_synthetic_link(PartyId(0), PartyId(2), 64, 1);

        // Sender side: bytes, messages, and *locality* all move.
        assert_eq!(t.party(PartyId(0)).bytes_sent, 128);
        assert_eq!(t.party(PartyId(0)).msgs_sent, 2);
        assert_eq!(
            t.party(PartyId(0)).locality(),
            2,
            "synthetic copies must count toward the sender's locality"
        );

        // Receiver side: the copy shows up in bytes_total and locality —
        // this is exactly what the addressee-less variant fails to do.
        assert_eq!(t.party(PartyId(1)).bytes_received, 64);
        assert_eq!(t.party(PartyId(1)).bytes_total(), 64);
        assert_eq!(t.party(PartyId(1)).locality(), 1);

        // Contrast with the legacy charge: no locality, no receiver bytes.
        let mut legacy = MetricsTable::new(3);
        legacy.charge_synthetic(PartyId(0), 128, 2);
        assert_eq!(legacy.party(PartyId(0)).locality(), 0);
        assert_eq!(legacy.party(PartyId(1)).bytes_total(), 0);

        // Aggregate view: the report's locality column sees the links.
        let r = t.report();
        assert_eq!(r.max_locality, 2);
        assert_eq!(r.max_bytes_per_party, 128);
    }

    #[test]
    fn tagged_marginals_conserve_untyped_totals() {
        use crate::wire::tag;
        let mut t = MetricsTable::new(3);
        t.record_send_tagged(PartyId(0), PartyId(1), 10, tag::VALUE_SEED);
        t.record_receive_tagged(PartyId(1), PartyId(0), 10, tag::VALUE_SEED);
        t.record_send(PartyId(0), PartyId(2), 5); // untyped → RAW bucket
        t.charge_synthetic_tagged(PartyId(2), 7, 1, tag::ESTABLISH);
        t.charge_synthetic_link_tagged(PartyId(1), PartyId(2), 3, 1, tag::SPREAD);
        assert!(t.tags_conserve_totals());

        assert_eq!(t.party(PartyId(0)).sent_by_tag[&tag::VALUE_SEED], 10);
        assert_eq!(t.party(PartyId(0)).sent_by_tag[&tag::RAW], 5);
        assert_eq!(t.party(PartyId(0)).bytes_sent, 15);

        let bd = t.breakdown_for((0..3u64).map(PartyId));
        assert_eq!(bd.total_sent(), t.report().total_bytes);
        assert_eq!(bd.sent[&tag::SPREAD], 3);
        assert_eq!(bd.received[&tag::SPREAD], 3);
        assert!(bd
            .sent_by_step_label()
            .iter()
            .any(|(l, b)| *l == "3:disseminate" && *b == 10));
    }

    #[test]
    fn locality_counts_union_not_sum() {
        let mut t = MetricsTable::new(2);
        t.record_send(PartyId(0), PartyId(1), 1);
        t.record_receive(PartyId(0), PartyId(1), 1);
        assert_eq!(t.party(PartyId(0)).locality(), 1);
    }
}
