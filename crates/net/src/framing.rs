//! Length-delimited framing for the socket transport.
//!
//! A frame on the wire is
//!
//! ```text
//! MAGIC (1 byte, 0xA7) ‖ LEB128 varint body_len ‖ body
//! body = kind (1 byte) ‖ kind-specific payload (LEB128 codec)
//! ```
//!
//! reusing the repo's canonical LEB128 codec ([`pba_crypto::codec`]) for
//! the length prefix and every payload field — the socket path adds no
//! second serialization dialect. The magic byte buys cheap *resync*: a
//! [`FrameReader`] that hits garbage (a non-magic byte where a frame must
//! start, a malformed body, or an oversized length) skips forward to the
//! next magic byte and keeps going, counting the event, instead of
//! wedging the stream forever.
//!
//! [`FrameReader`] is a push/pop buffer designed for torn reads: feed it
//! whatever byte chunks the socket hands you ([`FrameReader::push`]) and
//! pop complete frames ([`FrameReader::pop`]); a frame split at *any*
//! byte boundary decodes identically once the rest arrives (property-
//! tested in `tests/framing.rs`).

use crate::discovery::Hello;
use crate::envelope::{Envelope, PartyId};
use crate::wire::MAX_WIRE_BYTES;
use pba_crypto::codec::{
    decode_from_slice, read_varint, write_varint, CodecError, Decode, Encode, Reader,
};

/// First byte of every frame.
pub const MAGIC: u8 = 0xa7;

/// Upper bound on a frame body. An envelope frame carries one typed wire
/// payload (capped at [`MAX_WIRE_BYTES`] by `wire::decode_msg`) plus a
/// few varints of addressing; the slack covers that overhead.
pub const MAX_FRAME_BYTES: usize = MAX_WIRE_BYTES + 64;

/// Frame kind bytes (first byte of the body).
mod kind {
    pub const HELLO: u8 = 1;
    pub const ENVELOPE: u8 = 2;
    pub const ROUND: u8 = 3;
    pub const BYE: u8 = 4;
}

/// One transport frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Connection handshake; first frame in each direction.
    Hello(Hello),
    /// One protocol envelope, tagged with its index into the sender's
    /// staged batch for the current exchange (see
    /// [`crate::transport`]: receivers substitute authoritative bytes
    /// at exactly this index — no reordering heuristics).
    Envelope {
        /// Index into the globally-identical staged list of this round.
        staged_idx: u64,
        /// The envelope itself.
        env: Envelope,
    },
    /// Round barrier marker: "my envelopes for exchange `seq` are all
    /// sent". Monotone per connection.
    Round {
        /// Exchange sequence number.
        seq: u64,
    },
    /// Orderly goodbye; the peer is done and will close the stream.
    Bye,
}

impl Encode for Frame {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Frame::Hello(h) => {
                buf.push(kind::HELLO);
                h.encode(buf);
            }
            Frame::Envelope { staged_idx, env } => {
                buf.push(kind::ENVELOPE);
                write_varint(buf, *staged_idx);
                env.from.encode(buf);
                env.to.encode(buf);
                write_varint(buf, env.payload.len() as u64);
                buf.extend_from_slice(&env.payload);
            }
            Frame::Round { seq } => {
                buf.push(kind::ROUND);
                write_varint(buf, *seq);
            }
            Frame::Bye => buf.push(kind::BYE),
        }
    }
}

impl Decode for Frame {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let k = r.take(1)?[0];
        match k {
            kind::HELLO => Ok(Frame::Hello(Hello::decode(r)?)),
            kind::ENVELOPE => {
                let staged_idx = read_varint(r)?;
                let from = PartyId::decode(r)?;
                let to = PartyId::decode(r)?;
                let len = read_varint(r)?;
                if len as usize > MAX_WIRE_BYTES {
                    return Err(CodecError::LengthOverflow(len));
                }
                let payload = r.take(len as usize)?.to_vec();
                Ok(Frame::Envelope {
                    staged_idx,
                    env: Envelope { from, to, payload },
                })
            }
            kind::ROUND => Ok(Frame::Round {
                seq: read_varint(r)?,
            }),
            kind::BYE => Ok(Frame::Bye),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

/// Appends the on-wire encoding of `frame` (magic ‖ len ‖ body) to `buf`.
pub fn write_frame(buf: &mut Vec<u8>, frame: &Frame) {
    let mut body = Vec::new();
    frame.encode(&mut body);
    debug_assert!(body.len() <= MAX_FRAME_BYTES, "outgoing frame over cap");
    buf.push(MAGIC);
    write_varint(buf, body.len() as u64);
    buf.extend_from_slice(&body);
}

/// The on-wire encoding of one frame.
pub fn frame_to_vec(frame: &Frame) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, frame);
    buf
}

/// A malformed region of the byte stream, reported by
/// [`FrameReader::pop`]. The reader has already advanced past the
/// offending prefix, so popping again continues at the next candidate
/// frame — callers choose whether an error is fatal (the transport treats
/// every one as a structured peer failure) or survivable (resync tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// A frame header announced a body longer than [`MAX_FRAME_BYTES`].
    Oversized {
        /// The announced body length.
        len: u64,
    },
    /// The length prefix itself was not a canonical varint.
    BadLength(CodecError),
    /// The body failed to decode as a [`Frame`].
    Malformed(CodecError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len } => {
                write!(f, "frame body of {len} bytes exceeds cap {MAX_FRAME_BYTES}")
            }
            FrameError::BadLength(e) => write!(f, "bad frame length prefix: {e}"),
            FrameError::Malformed(e) => write!(f, "malformed frame body: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame parser over a torn byte stream.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily.
    pos: usize,
    resyncs: u64,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds bytes received from the socket.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact before growing, so long sessions don't accumulate the
        // whole stream.
        if self.pos > 0 && (self.pos >= 4096 || self.pos == self.buf.len()) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Number of times the reader skipped garbage to find a magic byte.
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Bytes buffered but not yet consumed.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes the reader, returning the unconsumed byte tail — used to
    /// hand a stream off between readers (e.g. the hello reader seeding
    /// the connection's long-lived reader) without losing bytes that
    /// arrived in the same socket read as the last popped frame.
    pub fn into_buffered(mut self) -> Vec<u8> {
        self.buf.split_off(self.pos)
    }

    /// Pops the next complete frame.
    ///
    /// Returns `Ok(None)` when the buffer holds only a frame prefix (more
    /// bytes needed).
    ///
    /// # Errors
    ///
    /// A [`FrameError`] for each malformed region; the reader skips past
    /// it, so the same error is never returned twice.
    pub fn pop(&mut self) -> Result<Option<Frame>, FrameError> {
        // Seek the next magic byte, counting a resync if we had to
        // discard anything to find it.
        let rest = &self.buf[self.pos..];
        match rest.iter().position(|&b| b == MAGIC) {
            Some(0) => {}
            Some(skip) => {
                self.pos += skip;
                self.resyncs += 1;
            }
            None => {
                if !rest.is_empty() {
                    self.resyncs += 1;
                }
                self.pos = self.buf.len();
                return Ok(None);
            }
        }

        let rest = &self.buf[self.pos + 1..];
        let mut r = Reader::new(rest);
        let len = match read_varint(&mut r) {
            Ok(len) => len,
            // A torn varint is indistinguishable from a short read;
            // wait for more bytes.
            Err(CodecError::UnexpectedEnd) => return Ok(None),
            Err(e) => {
                self.pos += 1;
                return Err(FrameError::BadLength(e));
            }
        };
        let header = rest.len() - r.remaining();
        if len as usize > MAX_FRAME_BYTES {
            self.pos += 1;
            return Err(FrameError::Oversized { len });
        }
        if r.remaining() < len as usize {
            return Ok(None);
        }
        let body = &rest[header..header + len as usize];
        match decode_from_slice::<Frame>(body) {
            Ok(frame) => {
                self.pos += 1 + header + len as usize;
                Ok(Some(frame))
            }
            Err(e) => {
                self.pos += 1;
                Err(FrameError::Malformed(e))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::{genesis_digest, Hello, PeerMap};

    fn sample_frames() -> Vec<Frame> {
        let map = PeerMap::contiguous(8, vec!["a:1".into(), "b:2".into()], 0);
        let genesis = genesis_digest(b"s", "charged", "snark", &map);
        vec![
            Frame::Hello(Hello::for_map(&map, genesis, 0)),
            Frame::Envelope {
                staged_idx: 3,
                env: Envelope::new(PartyId(1), PartyId(5), vec![9u8; 40]),
            },
            Frame::Envelope {
                staged_idx: 0,
                env: Envelope::new(PartyId(0), PartyId(0), Vec::new()),
            },
            Frame::Round { seq: 17 },
            Frame::Bye,
        ]
    }

    #[test]
    fn frames_roundtrip_through_reader() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            write_frame(&mut stream, f);
        }
        let mut reader = FrameReader::new();
        reader.push(&stream);
        for f in &frames {
            assert_eq!(reader.pop().unwrap().as_ref(), Some(f));
        }
        assert_eq!(reader.pop().unwrap(), None);
        assert_eq!(reader.resyncs(), 0);
    }

    #[test]
    fn torn_reads_single_byte_chunks() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            write_frame(&mut stream, f);
        }
        let mut reader = FrameReader::new();
        let mut got = Vec::new();
        for &b in &stream {
            reader.push(&[b]);
            while let Some(f) = reader.pop().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn oversized_frame_rejected_then_resyncs() {
        let mut stream = vec![MAGIC];
        write_varint(&mut stream, (MAX_FRAME_BYTES + 1) as u64);
        let good = Frame::Round { seq: 1 };
        write_frame(&mut stream, &good);
        let mut reader = FrameReader::new();
        reader.push(&stream);
        assert_eq!(
            reader.pop(),
            Err(FrameError::Oversized {
                len: (MAX_FRAME_BYTES + 1) as u64
            })
        );
        // The reader skipped the bad header and finds the next frame.
        assert_eq!(reader.pop().unwrap(), Some(good));
    }

    #[test]
    fn garbage_prefix_resyncs_once() {
        let good = Frame::Bye;
        let mut stream = vec![0x00, 0x01, 0x02];
        write_frame(&mut stream, &good);
        let mut reader = FrameReader::new();
        reader.push(&stream);
        assert_eq!(reader.pop().unwrap(), Some(good));
        assert_eq!(reader.resyncs(), 1);
    }

    #[test]
    fn oversized_envelope_payload_rejected_in_body() {
        // A body whose *envelope payload length* exceeds the wire cap is
        // malformed even if the frame length itself is within the frame
        // cap (the frame cap has slack above the wire cap).
        let mut body = vec![super::kind::ENVELOPE];
        write_varint(&mut body, 0); // staged_idx
        PartyId(0).encode(&mut body);
        PartyId(1).encode(&mut body);
        write_varint(&mut body, (MAX_WIRE_BYTES + 1) as u64);
        let mut stream = vec![MAGIC];
        write_varint(&mut stream, body.len() as u64);
        stream.extend_from_slice(&body);
        let mut reader = FrameReader::new();
        reader.push(&stream);
        assert!(matches!(reader.pop(), Err(FrameError::Malformed(_))));
    }
}
