//! The transport seam: one trait, two backends, one oracle.
//!
//! Every replica of a deployment runs the *full* deterministic execution
//! — all `n` machines, all phases — because every piece of protocol state
//! derives from `(seed, config)`. What a real deployment adds is
//! authority: each endpoint *owns* a slice of the parties (its
//! [`PeerMap`] range), and bytes from an owned sender are authoritative.
//! A [`Transport`] plugs into the network's single delivery boundary
//! ([`crate::network::Network::take_staged`]): at each exchange the
//! network hands the transport the round's staged batch, and the
//! transport returns the batch that will actually be delivered.
//!
//! * [`LocalTransport`] is the identity: the staged batch *is* the
//!   delivered batch. This is the classic in-process simulator, and the
//!   **golden oracle** for everything else.
//! * [`TcpTransport`] ships every staged envelope whose sender is owned
//!   locally and whose receiver is owned remotely to the receiver's
//!   endpoint, then *substitutes* the authoritative socket bytes it
//!   receives into its own locally-computed batch — at the exact staged
//!   index the sender stamped on the frame ([`Frame::Envelope`]), never
//!   by reordering heuristics. Delivery order is therefore the sim's
//!   emission order on every backend, and the chained transcript digest
//!   the network already records is directly comparable across backends:
//!   the first differing index names the first diverging round.
//!
//! Substituted bytes are load-bearing — they feed the machines' inboxes —
//! so a byte corrupted in flight genuinely diverges the replica instead
//! of being papered over by the local copy. That is what makes the
//! differential gate in `tests/transport_differential.rs` an end-to-end
//! check of the socket path, not a checksum of the simulator against
//! itself.
//!
//! Transports compose with fault-free (and lockstep) executions only: a
//! [`crate::faults::TimingModel`] reorders delivery locally, which is
//! exactly the authority the socket path cannot replicate remotely, so
//! [`crate::network::Network`] refuses to install both.

use crate::discovery::{Hello, PeerMap};
use crate::envelope::Envelope;
use crate::framing::{frame_to_vec, write_frame, Frame, FrameReader};
use pba_crypto::Digest;
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A structured transport failure. Every socket misbehavior — timeouts,
/// peers vanishing, handshake mismatches, frame corruption — surfaces as
/// one of these (recorded on the network, propagated as
/// `ProtocolError::Transport` by the protocol layer), never as a hang or
/// a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// Could not reach (or accept) a peer within the connect window.
    ConnectTimeout {
        /// The address being dialed, or `accept` for the listening side.
        addr: String,
    },
    /// A connection was established but the peer's hello never arrived.
    HelloTimeout {
        /// The peer's address.
        addr: String,
    },
    /// The peer's hello failed validation (wrong genesis, version, party
    /// range, or tick base).
    Hello {
        /// The peer's endpoint index.
        peer: usize,
        /// The first mismatching field.
        mismatch: crate::discovery::HelloMismatch,
    },
    /// The peer's connection closed while traffic was still expected.
    PeerClosed {
        /// The peer's endpoint index.
        peer: usize,
        /// The exchange during which the close surfaced.
        seq: u64,
    },
    /// The watchdog expired while gathering an exchange.
    RecvTimeout {
        /// The exchange being gathered.
        seq: u64,
        /// Peers whose round marker was still outstanding.
        waiting_on: Vec<usize>,
    },
    /// A peer's round marker named a different exchange — the replicas'
    /// round clocks disagree.
    SeqMismatch {
        /// The peer's endpoint index.
        peer: usize,
        /// The exchange this endpoint is gathering.
        expected: u64,
        /// The exchange the peer announced.
        found: u64,
    },
    /// A peer sent an envelope this replica's deterministic execution
    /// did not predict (bad index, wrong endpoints) — the replicas have
    /// diverged.
    Divergence {
        /// The peer's endpoint index.
        peer: usize,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// The peer's byte stream failed to parse as frames.
    Frame {
        /// The peer's endpoint index.
        peer: usize,
        /// The framing error.
        detail: String,
    },
    /// A socket operation failed.
    Io {
        /// What was being attempted.
        context: String,
        /// The OS error.
        detail: String,
    },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::ConnectTimeout { addr } => write!(f, "connect timeout: {addr}"),
            TransportError::HelloTimeout { addr } => write!(f, "hello timeout from {addr}"),
            TransportError::Hello { peer, mismatch } => {
                write!(f, "handshake with endpoint {peer} failed: {mismatch}")
            }
            TransportError::PeerClosed { peer, seq } => {
                write!(f, "endpoint {peer} closed during exchange {seq}")
            }
            TransportError::RecvTimeout { seq, waiting_on } => {
                write!(
                    f,
                    "exchange {seq} timed out waiting on endpoints {waiting_on:?}"
                )
            }
            TransportError::SeqMismatch {
                peer,
                expected,
                found,
            } => write!(
                f,
                "endpoint {peer} is at exchange {found}, expected {expected}"
            ),
            TransportError::Divergence { peer, detail } => {
                write!(f, "divergence with endpoint {peer}: {detail}")
            }
            TransportError::Frame { peer, detail } => {
                write!(f, "bad frame from endpoint {peer}: {detail}")
            }
            TransportError::Io { context, detail } => write!(f, "{context}: {detail}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Raw socket-level counters kept by a transport.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SocketStats {
    /// Exchanges performed ([`Transport::exchange`] calls).
    pub exchanges: u64,
    /// Envelope frames shipped to peers.
    pub frames_sent: u64,
    /// Envelope frames substituted from peers.
    pub frames_received: u64,
    /// Total bytes written to sockets (frames + round markers).
    pub bytes_sent: u64,
    /// Total bytes read from sockets.
    pub bytes_received: u64,
}

/// The delivery backend behind [`crate::network::Network::take_staged`].
pub trait Transport: std::fmt::Debug + Send {
    /// Performs exchange `seq`: publishes the locally-owned traffic in
    /// `staged`, gathers the remotely-owned traffic, and returns the
    /// batch to deliver — same length, same order, remote-sender entries
    /// carrying authoritative peer bytes.
    ///
    /// # Errors
    ///
    /// A [`TransportError`] on any socket failure or replica divergence;
    /// the network records it and delivers nothing further.
    fn exchange(
        &mut self,
        seq: u64,
        staged: Vec<Envelope>,
    ) -> Result<Vec<Envelope>, TransportError>;

    /// A short backend label for reports (`"sim"`, `"tcp"`).
    fn kind(&self) -> &'static str;

    /// Socket-level counters (all zero for in-process backends).
    fn stats(&self) -> SocketStats {
        SocketStats::default()
    }
}

/// The identity transport: delivers the staged batch unchanged. This is
/// the in-process simulator expressed through the trait, and the golden
/// oracle the socket backends are diffed against.
#[derive(Debug, Default)]
pub struct LocalTransport {
    exchanges: u64,
}

impl LocalTransport {
    /// A fresh passthrough transport.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Transport for LocalTransport {
    fn exchange(
        &mut self,
        _seq: u64,
        staged: Vec<Envelope>,
    ) -> Result<Vec<Envelope>, TransportError> {
        self.exchanges += 1;
        Ok(staged)
    }

    fn kind(&self) -> &'static str {
        "sim"
    }

    fn stats(&self) -> SocketStats {
        SocketStats {
            exchanges: self.exchanges,
            ..SocketStats::default()
        }
    }
}

/// Knobs for socket establishment and the exchange watchdog.
#[derive(Clone, Copy, Debug)]
pub struct TransportOpts {
    /// How long to keep dialing (or accepting) before giving up.
    pub connect_timeout: Duration,
    /// How long to wait for a connected peer's hello.
    pub hello_timeout: Duration,
    /// Watchdog on each receive while gathering an exchange: the
    /// guarantee that a dead or diverged peer surfaces as
    /// [`TransportError::RecvTimeout`] instead of a hang.
    pub recv_timeout: Duration,
}

impl Default for TransportOpts {
    fn default() -> Self {
        TransportOpts {
            connect_timeout: Duration::from_secs(10),
            hello_timeout: Duration::from_secs(10),
            recv_timeout: Duration::from_secs(30),
        }
    }
}

/// What a reader thread feeds the exchange loop.
enum Event {
    /// A parsed frame from a peer.
    Frame(usize, Frame),
    /// The peer's stream ended (EOF, orderly bye, or socket error).
    Closed(usize),
    /// The peer's stream stopped parsing as frames.
    Bad(usize, String),
}

/// The TCP backend: blocking `std::net` sockets, one reader thread per
/// peer, length-delimited frames ([`crate::framing`]). See the module
/// docs for the substitution protocol.
#[derive(Debug)]
pub struct TcpTransport {
    map: PeerMap,
    opts: TransportOpts,
    /// Write halves, indexed by endpoint; `None` at `self_idx` and for
    /// peers that have said goodbye.
    streams: Vec<Option<TcpStream>>,
    rx: Receiver<Event>,
    /// Frames that arrived ahead of the exchange being gathered.
    pending: Vec<VecDeque<Frame>>,
    /// Peers whose stream has closed (orderly or not).
    closed: Vec<bool>,
    stats: SocketStats,
    bytes_received: Arc<AtomicU64>,
}

impl TcpTransport {
    /// Binds this endpoint's listen address and connects the full mesh:
    /// higher-index endpoints dial lower-index ones, hellos are exchanged
    /// both ways and validated before any protocol byte flows.
    ///
    /// # Errors
    ///
    /// [`TransportError`] on bind/dial/accept failure, hello timeout, or
    /// hello mismatch.
    pub fn connect(
        map: PeerMap,
        genesis: Digest,
        tick_base: u64,
        opts: TransportOpts,
    ) -> Result<Self, TransportError> {
        let listener =
            TcpListener::bind(map.addr(map.self_idx())).map_err(|e| TransportError::Io {
                context: format!("bind {}", map.addr(map.self_idx())),
                detail: e.to_string(),
            })?;
        Self::with_listener(map, genesis, tick_base, opts, listener)
    }

    /// Like [`TcpTransport::connect`] but over a pre-bound listener —
    /// tests bind port 0 first, learn the OS-assigned ports, and build
    /// the peer map from the actual addresses.
    ///
    /// # Errors
    ///
    /// See [`TcpTransport::connect`].
    pub fn with_listener(
        map: PeerMap,
        genesis: Digest,
        tick_base: u64,
        opts: TransportOpts,
        listener: TcpListener,
    ) -> Result<Self, TransportError> {
        let k = map.k();
        let me = map.self_idx();
        let hello = Hello::for_map(&map, genesis, tick_base);
        let hello_frame = frame_to_vec(&Frame::Hello(hello));
        let mut streams: Vec<Option<TcpStream>> = (0..k).map(|_| None).collect();
        let mut leftovers: Vec<Vec<u8>> = vec![Vec::new(); k];

        // Dial every lower-index peer: send our hello, read theirs,
        // validate. Validation happens after both hellos are on the wire,
        // so a mismatch (wrong genesis, skewed tick base) surfaces as a
        // structured error on *both* sides.
        for j in 0..me {
            let mut stream = dial(map.addr(j), opts.connect_timeout)?;
            stream
                .write_all(&hello_frame)
                .map_err(|e| io_err("send hello", &e))?;
            let (peer_hello, leftover) = read_hello(&stream, map.addr(j), opts.hello_timeout)?;
            peer_hello
                .validate(&map, &genesis, tick_base, j)
                .map_err(|mismatch| TransportError::Hello { peer: j, mismatch })?;
            streams[j] = Some(stream);
            leftovers[j] = leftover;
        }

        // Accept every higher-index peer: read its hello to learn who it
        // is, reply with ours, then validate.
        let deadline = Instant::now() + opts.connect_timeout;
        listener
            .set_nonblocking(true)
            .map_err(|e| io_err("listener nonblocking", &e))?;
        for _ in me + 1..k {
            let mut stream = accept_until(&listener, deadline)?;
            let addr = stream
                .peer_addr()
                .map(|a| a.to_string())
                .unwrap_or_else(|_| "<unknown>".into());
            let (peer_hello, leftover) = read_hello(&stream, &addr, opts.hello_timeout)?;
            let e = peer_hello.endpoint as usize;
            if e <= me || e >= k || streams[e].is_some() {
                return Err(TransportError::Divergence {
                    peer: e.min(k),
                    detail: format!("unexpected hello from endpoint index {e}"),
                });
            }
            stream
                .write_all(&hello_frame)
                .map_err(|err| io_err("send hello", &err))?;
            peer_hello
                .validate(&map, &genesis, tick_base, e)
                .map_err(|mismatch| TransportError::Hello { peer: e, mismatch })?;
            streams[e] = Some(stream);
            leftovers[e] = leftover;
        }

        // Hand each read half to a detached reader thread feeding one
        // shared channel. Per-peer frame order is preserved (TCP +
        // dedicated thread); cross-peer interleaving does not matter
        // because substitution is by staged index.
        let (tx, rx) = mpsc::channel();
        let bytes_received = Arc::new(AtomicU64::new(0));
        for (peer, slot) in streams.iter().enumerate() {
            if let Some(stream) = slot {
                stream.set_nodelay(true).ok();
                stream
                    .set_read_timeout(None)
                    .map_err(|e| io_err("clear read timeout", &e))?;
                let read_half = stream.try_clone().map_err(|e| io_err("clone stream", &e))?;
                let tx = tx.clone();
                let counter = Arc::clone(&bytes_received);
                let leftover = std::mem::take(&mut leftovers[peer]);
                counter.fetch_add(leftover.len() as u64, Ordering::Relaxed);
                std::thread::Builder::new()
                    .name(format!("pba-net-read-{peer}"))
                    .spawn(move || reader_loop(peer, read_half, tx, counter, leftover))
                    .map_err(|e| io_err("spawn reader", &e))?;
            }
        }

        Ok(TcpTransport {
            opts,
            streams,
            rx,
            pending: (0..k).map(|_| VecDeque::new()).collect(),
            closed: vec![false; k],
            stats: SocketStats::default(),
            bytes_received,
            map,
        })
    }

    /// The party-to-peer map this transport was built with.
    pub fn peer_map(&self) -> &PeerMap {
        &self.map
    }

    /// The next event for exchange gathering: replayed pending frames of
    /// still-awaited peers first, then the live channel under the
    /// watchdog.
    fn next_event(&mut self, seq: u64, done: &[bool]) -> Result<Event, TransportError> {
        for (peer, queue) in self.pending.iter_mut().enumerate() {
            if !done[peer] {
                if let Some(frame) = queue.pop_front() {
                    return Ok(Event::Frame(peer, frame));
                }
            }
        }
        match self.rx.recv_timeout(self.opts.recv_timeout) {
            Ok(event) => Ok(event),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                Err(TransportError::RecvTimeout {
                    seq,
                    waiting_on: done
                        .iter()
                        .enumerate()
                        .filter(|&(_, d)| !d)
                        .map(|(p, _)| p)
                        .collect(),
                })
            }
        }
    }

    /// Substitutes one peer envelope into the staged batch at its stamped
    /// index, after checking the peer was entitled to send exactly that
    /// entry.
    fn substitute(
        &mut self,
        peer: usize,
        seq: u64,
        staged: &mut [Envelope],
        staged_idx: u64,
        env: Envelope,
    ) -> Result<(), TransportError> {
        let diverged = |detail: String| TransportError::Divergence { peer, detail };
        let staged_len = staged.len();
        let slot = staged.get_mut(staged_idx as usize).ok_or_else(|| {
            diverged(format!(
                "exchange {seq}: staged index {staged_idx} out of range ({staged_len} staged)"
            ))
        })?;
        if slot.from != env.from || slot.to != env.to {
            return Err(diverged(format!(
                "exchange {seq}: staged[{staged_idx}] is {} -> {}, peer sent {} -> {}",
                slot.from, slot.to, env.from, env.to
            )));
        }
        if self.map.owner(env.from) != peer || !self.map.is_local(env.to) {
            return Err(diverged(format!(
                "exchange {seq}: endpoint {peer} not entitled to {} -> {}",
                env.from, env.to
            )));
        }
        slot.payload = env.payload;
        self.stats.frames_received += 1;
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn exchange(
        &mut self,
        seq: u64,
        mut staged: Vec<Envelope>,
    ) -> Result<Vec<Envelope>, TransportError> {
        self.stats.exchanges += 1;
        let k = self.map.k();
        let me = self.map.self_idx();
        if k == 1 {
            return Ok(staged);
        }

        // Publish: envelopes we own the sender of, addressed off-endpoint,
        // batched into one buffer per peer, closed with the round marker.
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); k];
        for (i, env) in staged.iter().enumerate() {
            if self.map.is_local(env.from) && !self.map.is_local(env.to) {
                write_frame(
                    &mut out[self.map.owner(env.to)],
                    &Frame::Envelope {
                        staged_idx: i as u64,
                        env: env.clone(),
                    },
                );
                self.stats.frames_sent += 1;
            }
        }
        for (peer, buf) in out.iter_mut().enumerate() {
            if peer == me {
                continue;
            }
            if self.closed[peer] {
                return Err(TransportError::PeerClosed { peer, seq });
            }
            write_frame(buf, &Frame::Round { seq });
            let stream = self
                .streams
                .get_mut(peer)
                .and_then(Option::as_mut)
                .ok_or(TransportError::PeerClosed { peer, seq })?;
            stream
                .write_all(buf)
                .map_err(|_| TransportError::PeerClosed { peer, seq })?;
            self.stats.bytes_sent += buf.len() as u64;
        }

        // Gather until every peer's round marker for `seq` has arrived,
        // substituting authoritative bytes as they come in. Frames from
        // peers already done this exchange belong to a later one and are
        // stashed.
        let mut done: Vec<bool> = (0..k).map(|p| p == me).collect();
        while done.iter().any(|d| !d) {
            match self.next_event(seq, &done)? {
                Event::Frame(peer, frame) => {
                    if done[peer] {
                        self.pending[peer].push_back(frame);
                        continue;
                    }
                    match frame {
                        Frame::Round { seq: found } if found == seq => done[peer] = true,
                        Frame::Round { seq: found } => {
                            return Err(TransportError::SeqMismatch {
                                peer,
                                expected: seq,
                                found,
                            })
                        }
                        Frame::Envelope { staged_idx, env } => {
                            self.substitute(peer, seq, &mut staged, staged_idx, env)?;
                        }
                        Frame::Hello(_) => {
                            return Err(TransportError::Divergence {
                                peer,
                                detail: format!("exchange {seq}: repeated hello"),
                            })
                        }
                        Frame::Bye => {
                            return Err(TransportError::PeerClosed { peer, seq });
                        }
                    }
                }
                Event::Closed(peer) => {
                    self.closed[peer] = true;
                    self.streams[peer] = None;
                    if !done[peer] {
                        return Err(TransportError::PeerClosed { peer, seq });
                    }
                }
                Event::Bad(peer, detail) => {
                    self.closed[peer] = true;
                    return Err(TransportError::Frame { peer, detail });
                }
            }
        }
        self.stats.bytes_received = self.bytes_received.load(Ordering::Relaxed);
        Ok(staged)
    }

    fn kind(&self) -> &'static str {
        "tcp"
    }

    fn stats(&self) -> SocketStats {
        let mut stats = self.stats;
        stats.bytes_received = self.bytes_received.load(Ordering::Relaxed);
        stats
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        // Orderly goodbye; reader threads exit when the streams close.
        let bye = frame_to_vec(&Frame::Bye);
        for stream in self.streams.iter_mut().flatten() {
            let _ = stream.write_all(&bye);
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

fn io_err(context: &str, e: &std::io::Error) -> TransportError {
    TransportError::Io {
        context: context.to_string(),
        detail: e.to_string(),
    }
}

/// Dials `addr`, retrying on refusal until the deadline — peers of a
/// deployment start in arbitrary order, so early refusals are expected.
fn dial(addr: &str, timeout: Duration) -> Result<TcpStream, TransportError> {
    let deadline = Instant::now() + timeout;
    let timeout_err = || TransportError::ConnectTimeout {
        addr: addr.to_string(),
    };
    loop {
        let remaining = deadline
            .checked_duration_since(Instant::now())
            .ok_or_else(timeout_err)?;
        let target = addr
            .to_socket_addrs()
            .map_err(|e| io_err(&format!("resolve {addr}"), &e))?
            .next()
            .ok_or_else(|| TransportError::Io {
                context: format!("resolve {addr}"),
                detail: "no addresses".into(),
            })?;
        match TcpStream::connect_timeout(&target, remaining.min(Duration::from_millis(250))) {
            Ok(stream) => return Ok(stream),
            Err(_) => {
                if Instant::now() >= deadline {
                    return Err(timeout_err());
                }
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Accepts one connection from a nonblocking listener before `deadline`.
fn accept_until(listener: &TcpListener, deadline: Instant) -> Result<TcpStream, TransportError> {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream
                    .set_nonblocking(false)
                    .map_err(|e| io_err("stream blocking", &e))?;
                return Ok(stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() >= deadline {
                    return Err(TransportError::ConnectTimeout {
                        addr: "accept".into(),
                    });
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(io_err("accept", &e)),
        }
    }
}

/// Reads exactly one hello frame from a freshly-connected stream. Also
/// returns any bytes read past the hello — the peer may already be
/// streaming its first exchange — so they can seed the connection's
/// long-lived reader instead of being lost.
fn read_hello(
    stream: &TcpStream,
    addr: &str,
    timeout: Duration,
) -> Result<(Hello, Vec<u8>), TransportError> {
    stream
        .set_read_timeout(Some(timeout))
        .map_err(|e| io_err("set read timeout", &e))?;
    let deadline = Instant::now() + timeout;
    let mut reader = FrameReader::new();
    let mut stream_ref = stream;
    let mut buf = [0u8; 1024];
    loop {
        match reader.pop() {
            Ok(Some(Frame::Hello(h))) => return Ok((h, reader.into_buffered())),
            Ok(Some(_)) => {
                return Err(TransportError::Frame {
                    peer: usize::MAX,
                    detail: format!("{addr}: first frame was not a hello"),
                })
            }
            Ok(None) => {}
            Err(e) => {
                return Err(TransportError::Frame {
                    peer: usize::MAX,
                    detail: format!("{addr}: {e}"),
                })
            }
        }
        if Instant::now() >= deadline {
            return Err(TransportError::HelloTimeout {
                addr: addr.to_string(),
            });
        }
        match stream_ref.read(&mut buf) {
            Ok(0) => {
                return Err(TransportError::HelloTimeout {
                    addr: addr.to_string(),
                })
            }
            Ok(n) => reader.push(&buf[..n]),
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(TransportError::HelloTimeout {
                    addr: addr.to_string(),
                })
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_err(&format!("read hello from {addr}"), &e)),
        }
    }
}

/// One peer's read half: parse frames, forward them, report the close.
/// `leftover` carries bytes the hello reader consumed past the hello.
fn reader_loop(
    peer: usize,
    mut stream: TcpStream,
    tx: Sender<Event>,
    bytes: Arc<AtomicU64>,
    leftover: Vec<u8>,
) {
    let mut reader = FrameReader::new();
    reader.push(&leftover);
    let mut buf = [0u8; 16 * 1024];
    loop {
        loop {
            match reader.pop() {
                Ok(Some(Frame::Bye)) => {
                    let _ = tx.send(Event::Closed(peer));
                    return;
                }
                Ok(Some(frame)) => {
                    if tx.send(Event::Frame(peer, frame)).is_err() {
                        return; // transport dropped; nobody is listening
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    let _ = tx.send(Event::Bad(peer, e.to_string()));
                    return;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => {
                let _ = tx.send(Event::Closed(peer));
                return;
            }
            Ok(n) => {
                bytes.fetch_add(n as u64, Ordering::Relaxed);
                reader.push(&buf[..n]);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                let _ = tx.send(Event::Closed(peer));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::discovery::genesis_digest;
    use crate::envelope::PartyId;

    fn quick_opts() -> TransportOpts {
        TransportOpts {
            connect_timeout: Duration::from_secs(5),
            hello_timeout: Duration::from_secs(5),
            recv_timeout: Duration::from_secs(5),
        }
    }

    /// Binds `k` port-0 listeners and builds the shared peer map from
    /// the OS-assigned addresses.
    fn listeners_and_map(n: usize, k: usize) -> (Vec<TcpListener>, PeerMap) {
        let listeners: Vec<TcpListener> = (0..k)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
            .collect();
        let addrs: Vec<String> = listeners
            .iter()
            .map(|l| l.local_addr().expect("addr").to_string())
            .collect();
        (listeners, PeerMap::contiguous(n, addrs, 0))
    }

    /// Spawns one thread per endpoint, each building a transport and
    /// running `rounds` staged batches through it; returns each
    /// endpoint's delivered batches.
    fn run_mesh(
        n: usize,
        k: usize,
        rounds: usize,
        make_staged: impl Fn(u64) -> Vec<Envelope> + Clone + Send + 'static,
    ) -> Vec<Vec<Vec<Envelope>>> {
        let (listeners, map) = listeners_and_map(n, k);
        let genesis = genesis_digest(b"mesh", "charged", "snark", &map);
        let mut handles = Vec::new();
        for (e, listener) in listeners.into_iter().enumerate() {
            let map = map.for_endpoint(e);
            let make = make_staged.clone();
            handles.push(std::thread::spawn(move || {
                let mut t = TcpTransport::with_listener(map, genesis, 0, quick_opts(), listener)
                    .expect("connect");
                (0..rounds as u64)
                    .map(|seq| t.exchange(seq, make(seq)).expect("exchange"))
                    .collect::<Vec<_>>()
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    }

    #[test]
    fn local_transport_is_identity() {
        let mut t = LocalTransport::new();
        let staged = vec![Envelope::new(PartyId(0), PartyId(1), vec![1, 2])];
        assert_eq!(t.exchange(0, staged.clone()).unwrap(), staged);
        assert_eq!(t.kind(), "sim");
        assert_eq!(t.stats().exchanges, 1);
    }

    #[test]
    fn two_endpoint_exchange_substitutes_identically() {
        // All-to-all traffic, 4 parties over 2 endpoints: every endpoint
        // must deliver the same full batch, in staged order.
        let n = 4u64;
        let make = move |seq: u64| {
            let mut staged = Vec::new();
            for from in 0..n {
                for to in 0..n {
                    staged.push(Envelope::new(
                        PartyId(from),
                        PartyId(to),
                        vec![seq as u8, from as u8, to as u8],
                    ));
                }
            }
            staged
        };
        let results = run_mesh(n as usize, 2, 3, make);
        for seq in 0..3u64 {
            let expected = make(seq);
            for (e, per_endpoint) in results.iter().enumerate() {
                assert_eq!(
                    per_endpoint[seq as usize], expected,
                    "endpoint {e} seq {seq}"
                );
            }
        }
    }

    #[test]
    fn three_endpoint_empty_rounds_stay_in_lockstep() {
        let results = run_mesh(6, 3, 5, |_| Vec::new());
        for per_endpoint in &results {
            assert_eq!(per_endpoint.len(), 5);
            assert!(per_endpoint.iter().all(Vec::is_empty));
        }
    }

    #[test]
    fn wrong_genesis_hello_is_structured_on_both_sides() {
        let (listeners, map) = listeners_and_map(4, 2);
        let mut handles = Vec::new();
        for (e, listener) in listeners.into_iter().enumerate() {
            let map = map.for_endpoint(e);
            // Endpoint 1 disagrees about the seed.
            let seed: &[u8] = if e == 0 { b"seed-a" } else { b"seed-b" };
            let genesis = genesis_digest(seed, "charged", "snark", &map);
            handles.push(std::thread::spawn(move || {
                TcpTransport::with_listener(map, genesis, 0, quick_opts(), listener).err()
            }));
        }
        for h in handles {
            let err = h.join().expect("join").expect("must fail");
            match err {
                TransportError::Hello { mismatch, .. } => {
                    assert_eq!(mismatch.field, crate::discovery::HelloField::Genesis)
                }
                other => panic!("expected hello mismatch, got {other}"),
            }
        }
    }

    #[test]
    fn tick_base_skew_is_structured() {
        let (listeners, map) = listeners_and_map(4, 2);
        let genesis = genesis_digest(b"tick", "charged", "snark", &map);
        let mut handles = Vec::new();
        for (e, listener) in listeners.into_iter().enumerate() {
            let map = map.for_endpoint(e);
            handles.push(std::thread::spawn(move || {
                TcpTransport::with_listener(map, genesis, e as u64 * 3, quick_opts(), listener)
                    .err()
            }));
        }
        for h in handles {
            let err = h.join().expect("join").expect("must fail");
            match err {
                TransportError::Hello { mismatch, .. } => {
                    assert_eq!(mismatch.field, crate::discovery::HelloField::TickBase)
                }
                other => panic!("expected tick-base mismatch, got {other}"),
            }
        }
    }

    #[test]
    fn connect_timeout_is_structured_not_a_hang() {
        // Endpoint 1 dials endpoint 0's address, but nothing listens
        // there: loopback port 1 is privileged and outside the ephemeral
        // range, so nothing can be listening and concurrent tests' port-0
        // binds can never collide with it — every dial is refused until
        // the window expires.
        let dead_addr = "127.0.0.1:1".to_string();
        let live = TcpListener::bind("127.0.0.1:0").expect("bind");
        let live_addr = live.local_addr().expect("addr").to_string();
        let map = PeerMap::contiguous(4, vec![dead_addr.clone(), live_addr], 1);
        let genesis = genesis_digest(b"ct", "charged", "snark", &map);
        let opts = TransportOpts {
            connect_timeout: Duration::from_millis(300),
            ..quick_opts()
        };
        let err = TcpTransport::with_listener(map, genesis, 0, opts, live).unwrap_err();
        assert_eq!(err, TransportError::ConnectTimeout { addr: dead_addr });
    }

    #[test]
    fn peer_drop_mid_round_is_structured_not_a_hang() {
        let (listeners, map) = listeners_and_map(4, 2);
        let genesis = genesis_digest(b"drop", "charged", "snark", &map);
        let opts = TransportOpts {
            recv_timeout: Duration::from_secs(10),
            ..quick_opts()
        };
        let mut handles = Vec::new();
        for (e, listener) in listeners.into_iter().enumerate() {
            let map = map.for_endpoint(e);
            handles.push(std::thread::spawn(move || {
                let mut t =
                    TcpTransport::with_listener(map, genesis, 0, opts, listener).expect("connect");
                if e == 1 {
                    // Endpoint 1 completes exchange 0 and then vanishes.
                    t.exchange(0, Vec::new()).expect("exchange 0");
                    drop(t);
                    return None;
                }
                t.exchange(0, Vec::new()).expect("exchange 0");
                t.exchange(1, Vec::new()).err()
            }));
        }
        let errs: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect();
        assert_eq!(
            errs[0],
            Some(TransportError::PeerClosed { peer: 1, seq: 1 }),
        );
    }
}
