//! Peer discovery and party-to-peer mapping for multi-endpoint
//! deployments.
//!
//! A *deployment* splits the `n` protocol parties across `k` transport
//! endpoints (processes or in-process loopback endpoints). The
//! [`PeerMap`] is the explicit, validated description of that split —
//! following the sparse-network BA line (Augustine et al.), the mapping is
//! a first-class object rather than an assumed clique: every endpoint
//! knows exactly which parties every other endpoint speaks for, and the
//! [`Hello`] handshake re-verifies the whole map before any protocol byte
//! flows.
//!
//! The handshake also carries the **tick base** — the network tick at
//! which the endpoints' round clocks start. The deterministic simulator
//! always ran `take_staged` callers and the round driver in one process,
//! so "everyone agrees what round it is" held by construction; across
//! processes it is an *assumption*, and a [`crate::runner::RoundDriver`]
//! in partial-synchrony mode numbers its delivery windows from this base.
//! The hello makes the assumption checkable: endpoints with different
//! tick bases refuse to pair instead of silently running skewed windows
//! (see `HelloField::TickBase` rejections in [`crate::transport`]).

use crate::envelope::PartyId;
use pba_crypto::codec::{CodecError, Decode, Encode, Reader};
use pba_crypto::sha256::{Digest, Sha256};
use std::collections::BTreeSet;

/// Version byte of the transport handshake; bumped on incompatible frame
/// or hello layout changes so mismatched builds fail fast at the hello.
pub const PROTOCOL_VERSION: u32 = 1;

/// The party-to-peer mapping of one deployment: `n` parties split into
/// `k` contiguous ranges, one per endpoint, plus the endpoint addresses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerMap {
    n: usize,
    /// `ranges[e] = (first, count)` — endpoint `e` hosts parties
    /// `first .. first + count`.
    ranges: Vec<(u64, u64)>,
    /// Endpoint addresses (`host:port`), indexed like `ranges`.
    addrs: Vec<String>,
    /// This endpoint's index.
    self_idx: usize,
}

impl PeerMap {
    /// Builds a map splitting `n` parties contiguously and near-evenly
    /// over `addrs.len()` endpoints (the first `n % k` endpoints take one
    /// extra party). `self_idx` names the local endpoint.
    ///
    /// # Panics
    ///
    /// Panics if `addrs` is empty, `self_idx` is out of range, or there
    /// are more endpoints than parties.
    pub fn contiguous(n: usize, addrs: Vec<String>, self_idx: usize) -> Self {
        let k = addrs.len();
        assert!(k > 0, "a deployment needs at least one endpoint");
        assert!(self_idx < k, "endpoint index {self_idx} out of range");
        assert!(k <= n, "more endpoints ({k}) than parties ({n})");
        let base = (n / k) as u64;
        let extra = (n % k) as u64;
        let mut ranges = Vec::with_capacity(k);
        let mut first = 0u64;
        for e in 0..k as u64 {
            let count = base + u64::from(e < extra);
            ranges.push((first, count));
            first += count;
        }
        PeerMap {
            n,
            ranges,
            addrs,
            self_idx,
        }
    }

    /// Number of protocol parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of endpoints.
    pub fn k(&self) -> usize {
        self.ranges.len()
    }

    /// This endpoint's index.
    pub fn self_idx(&self) -> usize {
        self.self_idx
    }

    /// The address of endpoint `e`.
    pub fn addr(&self, e: usize) -> &str {
        &self.addrs[e]
    }

    /// The `(first, count)` party range of endpoint `e`.
    pub fn range(&self, e: usize) -> (u64, u64) {
        self.ranges[e]
    }

    /// The endpoint that hosts (speaks for) party `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn owner(&self, p: PartyId) -> usize {
        assert!(p.index() < self.n, "party {p} out of range");
        self.ranges
            .partition_point(|&(first, _)| first <= p.0)
            .saturating_sub(1)
    }

    /// True when this endpoint hosts party `p`.
    pub fn is_local(&self, p: PartyId) -> bool {
        self.owner(p) == self.self_idx
    }

    /// The set of parties hosted by this endpoint.
    pub fn local_parties(&self) -> BTreeSet<PartyId> {
        let (first, count) = self.ranges[self.self_idx];
        (first..first + count).map(PartyId).collect()
    }

    /// Returns the map re-rooted at another endpoint index (used by
    /// launchers that build one map and derive every node's view).
    pub fn for_endpoint(&self, self_idx: usize) -> Self {
        assert!(self_idx < self.k(), "endpoint index out of range");
        PeerMap {
            self_idx,
            ..self.clone()
        }
    }

    /// Digest of the partition (party ranges only, not addresses): part of
    /// the genesis so endpoints with different splits refuse to pair.
    pub fn partition_digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"pba-peer-map");
        h.update(&(self.n as u64).to_le_bytes());
        h.update(&(self.k() as u64).to_le_bytes());
        for &(first, count) in &self.ranges {
            h.update(&first.to_le_bytes());
            h.update(&count.to_le_bytes());
        }
        h.finalize()
    }
}

/// Computes the deployment genesis: a digest binding the execution seed,
/// the party count, the establishment label, the SRDS scheme label, and
/// the partition. Two endpoints agree on the genesis iff they would run
/// the *same deterministic execution* — a peer speaking a wrong-genesis
/// hello is refused before any protocol traffic.
pub fn genesis_digest(seed: &[u8], establishment: &str, scheme: &str, map: &PeerMap) -> Digest {
    let mut h = Sha256::new();
    h.update(b"pba-genesis");
    h.update(&(seed.len() as u64).to_le_bytes());
    h.update(seed);
    h.update(establishment.as_bytes());
    h.update(&[0u8]);
    h.update(scheme.as_bytes());
    h.update(&[0u8]);
    h.update(map.partition_digest().as_bytes());
    h.finalize()
}

/// The handshake message each endpoint sends (and validates) once per
/// connection, before any envelope flows.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Hello {
    /// Handshake/frame layout version ([`PROTOCOL_VERSION`]).
    pub version: u32,
    /// Deployment genesis ([`genesis_digest`]).
    pub genesis: Digest,
    /// Total protocol parties.
    pub n: u64,
    /// The sender's endpoint index.
    pub endpoint: u64,
    /// First party the sender speaks for.
    pub first_party: u64,
    /// Number of parties the sender speaks for.
    pub party_count: u64,
    /// The network tick the sender's round clock starts at. Endpoints
    /// must agree, or partial-synchrony delivery windows would be
    /// numbered against different origins (see the module docs).
    pub tick_base: u64,
}

impl Encode for Hello {
    fn encode(&self, buf: &mut Vec<u8>) {
        (self.version as u64).encode(buf);
        self.genesis.encode(buf);
        self.n.encode(buf);
        self.endpoint.encode(buf);
        self.first_party.encode(buf);
        self.party_count.encode(buf);
        self.tick_base.encode(buf);
    }
}

impl Decode for Hello {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(Hello {
            version: u64::decode(r)? as u32,
            genesis: Digest::decode(r)?,
            n: u64::decode(r)?,
            endpoint: u64::decode(r)?,
            first_party: u64::decode(r)?,
            party_count: u64::decode(r)?,
            tick_base: u64::decode(r)?,
        })
    }
}

impl Hello {
    /// The hello this endpoint introduces itself with.
    pub fn for_map(map: &PeerMap, genesis: Digest, tick_base: u64) -> Self {
        let (first_party, party_count) = map.range(map.self_idx());
        Hello {
            version: PROTOCOL_VERSION,
            genesis,
            n: map.n() as u64,
            endpoint: map.self_idx() as u64,
            first_party,
            party_count,
            tick_base,
        }
    }

    /// Validates a peer's hello against the local view: the peer must be
    /// `expected_endpoint`, speak for exactly the range the map assigns
    /// it, and agree on version, genesis, `n`, and the tick base.
    ///
    /// # Errors
    ///
    /// The first mismatching field.
    pub fn validate(
        &self,
        map: &PeerMap,
        genesis: &Digest,
        tick_base: u64,
        expected_endpoint: usize,
    ) -> Result<(), HelloMismatch> {
        let check = |field: HelloField, expected: u64, found: u64| {
            if expected == found {
                Ok(())
            } else {
                Err(HelloMismatch {
                    field,
                    expected,
                    found,
                })
            }
        };
        check(
            HelloField::Version,
            PROTOCOL_VERSION as u64,
            self.version as u64,
        )?;
        if self.genesis != *genesis {
            // Digests don't fit the numeric mismatch shape; report their
            // 64-bit prefixes (enough to tell two genesis values apart in
            // an error message).
            return Err(HelloMismatch {
                field: HelloField::Genesis,
                expected: genesis.prefix_u64(),
                found: self.genesis.prefix_u64(),
            });
        }
        check(HelloField::N, map.n() as u64, self.n)?;
        check(
            HelloField::Endpoint,
            expected_endpoint as u64,
            self.endpoint,
        )?;
        let (first, count) = map.range(expected_endpoint);
        check(HelloField::FirstParty, first, self.first_party)?;
        check(HelloField::PartyCount, count, self.party_count)?;
        check(HelloField::TickBase, tick_base, self.tick_base)?;
        Ok(())
    }
}

/// Which [`Hello`] field failed validation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HelloField {
    /// Protocol/frame layout version.
    Version,
    /// Deployment genesis digest (compared by 64-bit prefix in errors).
    Genesis,
    /// Total party count.
    N,
    /// Endpoint index.
    Endpoint,
    /// First hosted party.
    FirstParty,
    /// Hosted party count.
    PartyCount,
    /// Round-clock tick base.
    TickBase,
}

impl std::fmt::Display for HelloField {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            HelloField::Version => "version",
            HelloField::Genesis => "genesis",
            HelloField::N => "n",
            HelloField::Endpoint => "endpoint",
            HelloField::FirstParty => "first-party",
            HelloField::PartyCount => "party-count",
            HelloField::TickBase => "tick-base",
        };
        f.write_str(s)
    }
}

/// A failed hello validation: the field plus both views of it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HelloMismatch {
    /// The first mismatching field.
    pub field: HelloField,
    /// The local expectation.
    pub expected: u64,
    /// What the peer claimed.
    pub found: u64,
}

impl std::fmt::Display for HelloMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "hello {}: expected {}, peer claims {}",
            self.field, self.expected, self.found
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addrs(k: usize) -> Vec<String> {
        (0..k).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn contiguous_split_covers_all_parties_once() {
        for (n, k) in [(16, 1), (16, 2), (17, 3), (64, 5)] {
            let map = PeerMap::contiguous(n, addrs(k), 0);
            let mut seen = BTreeSet::new();
            for e in 0..k {
                let (first, count) = map.range(e);
                for p in first..first + count {
                    assert!(seen.insert(p), "party {p} hosted twice");
                    assert_eq!(map.owner(PartyId(p)), e, "n={n} k={k}");
                }
            }
            assert_eq!(seen.len(), n, "n={n} k={k}");
            // Near-even: ranges differ by at most one party.
            let counts: Vec<u64> = (0..k).map(|e| map.range(e).1).collect();
            let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
            assert!(max - min <= 1);
        }
    }

    #[test]
    fn local_parties_match_range() {
        let map = PeerMap::contiguous(10, addrs(3), 1);
        // 10 over 3: ranges are 4, 3, 3.
        assert_eq!(map.range(0), (0, 4));
        assert_eq!(map.range(1), (4, 3));
        assert_eq!(map.range(2), (7, 3));
        assert_eq!(
            map.local_parties(),
            [PartyId(4), PartyId(5), PartyId(6)].into()
        );
        assert!(map.is_local(PartyId(5)));
        assert!(!map.is_local(PartyId(0)));
        let other = map.for_endpoint(2);
        assert!(other.is_local(PartyId(9)));
        assert_eq!(other.partition_digest(), map.partition_digest());
    }

    #[test]
    fn genesis_binds_seed_and_partition() {
        let map2 = PeerMap::contiguous(16, addrs(2), 0);
        let map3 = PeerMap::contiguous(16, addrs(3), 0);
        let g = genesis_digest(b"seed-a", "charged", "snark", &map2);
        assert_eq!(g, genesis_digest(b"seed-a", "charged", "snark", &map2));
        assert_ne!(g, genesis_digest(b"seed-b", "charged", "snark", &map2));
        assert_ne!(g, genesis_digest(b"seed-a", "interactive", "snark", &map2));
        assert_ne!(g, genesis_digest(b"seed-a", "charged", "owf", &map2));
        assert_ne!(g, genesis_digest(b"seed-a", "charged", "snark", &map3));
    }

    #[test]
    fn hello_roundtrip_and_validation() {
        let map = PeerMap::contiguous(16, addrs(2), 0);
        let peer_map = map.for_endpoint(1);
        let genesis = genesis_digest(b"s", "charged", "snark", &map);
        let hello = Hello::for_map(&peer_map, genesis, 0);
        let bytes = pba_crypto::codec::encode_to_vec(&hello);
        let back: Hello = pba_crypto::codec::decode_from_slice(&bytes).unwrap();
        assert_eq!(back, hello);
        assert!(back.validate(&map, &genesis, 0, 1).is_ok());
        // Wrong expected endpoint.
        assert_eq!(
            back.validate(&map, &genesis, 0, 0).unwrap_err().field,
            HelloField::Endpoint
        );
        // Wrong genesis.
        let other = genesis_digest(b"other", "charged", "snark", &map);
        assert_eq!(
            back.validate(&map, &other, 0, 1).unwrap_err().field,
            HelloField::Genesis
        );
        // Tick-base skew: the cross-process round-numbering check.
        let skewed = Hello {
            tick_base: 7,
            ..hello
        };
        let err = skewed.validate(&map, &genesis, 0, 1).unwrap_err();
        assert_eq!(err.field, HelloField::TickBase);
        assert_eq!((err.expected, err.found), (0, 7));
        assert_eq!(
            err.to_string(),
            "hello tick-base: expected 0, peer claims 7"
        );
    }

    #[test]
    #[should_panic(expected = "more endpoints")]
    fn too_many_endpoints_rejected() {
        PeerMap::contiguous(2, addrs(3), 0);
    }
}
