//! The synchronous phase runner: drives honest protocol machines and a
//! Byzantine adversary round by round.
//!
//! A protocol execution is a sequence of *phases* (e.g., in the BA protocol:
//! tree setup, committee BA, coin toss, aggregation sweep, dissemination).
//! Each phase runs a set of [`Machine`]s for the honest parties against one
//! [`Adversary`] controlling all corrupted parties, over a shared
//! [`Network`] whose metrics accumulate across phases.
//!
//! The adversary is **rushing**: within each round it observes the honest
//! messages addressed to corrupted parties *before* choosing its own
//! messages for that round. Corruption is static during the online phase
//! (chosen adaptively during setup, per the paper's model — that choice
//! happens before the runner is invoked).
//!
//! # Parallel execution
//!
//! Within a round, honest parties are independent: each machine sees only
//! its own inbox (delivered last round) and its own state, and its effects
//! on the network (sends, receive charges) commute with nothing until the
//! round boundary. [`run_phase_threaded`] exploits this: machines run on a
//! phase-persistent pool of [`std::thread::scope`] workers (the
//! work-stealing scheduler in `sched`) with *buffered* contexts
//! ([`crate::network::RoundEffects`]), and the per-party effect logs are
//! replayed against the network in ascending [`PartyId`] order — the same
//! order the sequential engine steps parties in. Chunk boundaries follow a
//! per-party step-cost model and idle workers steal trailing chunks, but
//! neither influences the merge order, so the result is byte-identical to
//! [`run_phase`]: identical staged-envelope order, identical metrics, and
//! an identical rushing view for the adversary, which always runs on the
//! calling thread after the merge.
//!
//! Thread-level parallelism composes with *lane-level* hash batching:
//! machines route their per-round hash workloads through
//! [`crate::network::Ctx::hash_batch`] (the multi-lane SHA-256 engine),
//! which is pure — each worker batches its own machines' digests with no
//! shared state, so `BaConfig::threads` and the engine's lanes multiply
//! rather than contend. Machines that additionally declare their workload
//! up front ([`Machine::hash_manifest`]) get *cross-party* batching: the
//! worker pools every declared input of a chunk into one
//! [`pba_crypto::sha256::DigestBatcher`] flush, so ragged per-party
//! remainders fill whole lane groups instead of falling back to the
//! scalar core.

use crate::envelope::{Envelope, PartyId};
use crate::network::Network;
use crate::sched::{self, CostModel};
use std::collections::{BTreeMap, BTreeSet};

/// A per-party protocol state machine for one phase.
pub trait Machine {
    /// Executes one synchronous round. `inbox` holds the envelopes delivered
    /// to this party at the beginning of the round (sent in the previous
    /// round). The machine sends via `ctx` and reads via [`crate::network::Ctx::read`]
    /// (which is what charges its reception budget).
    fn on_round(&mut self, ctx: &mut crate::network::Ctx<'_>, inbox: &[Envelope]);

    /// True once the machine has produced its output and will ignore
    /// further rounds.
    fn is_done(&self) -> bool;

    /// Declares, *before* the round is stepped, the exact inputs this
    /// machine will feed to [`crate::network::Ctx::hash_batch`] /
    /// [`crate::network::Ctx::hash_batch_into`] this round (in call
    /// order), given the inbox it is about to receive.
    ///
    /// The parallel engine's workers pool the declared manifests of every
    /// machine in a chunk into a single cross-party
    /// [`pba_crypto::sha256::DigestBatcher`] batch before stepping any of
    /// them, then serve each machine's `hash_batch` calls from the pool by
    /// byte-matching the requests against the declaration. A machine whose
    /// calls diverge from its manifest (or that keeps the empty default)
    /// simply hashes on demand — served or not, the digests are
    /// bit-identical, so declaring is purely a lane-occupancy optimization
    /// and never a correctness obligation.
    fn hash_manifest(&self, _inbox: &[Envelope]) -> Vec<Vec<u8>> {
        Vec::new()
    }
}

impl<M: Machine + ?Sized> Machine for &mut M {
    fn on_round(&mut self, ctx: &mut crate::network::Ctx<'_>, inbox: &[Envelope]) {
        (**self).on_round(ctx, inbox);
    }
    fn is_done(&self) -> bool {
        (**self).is_done()
    }
    fn hash_manifest(&self, inbox: &[Envelope]) -> Vec<Vec<u8>> {
        (**self).hash_manifest(inbox)
    }
}

/// The adversary's interface for one phase: full control of all corrupted
/// parties, rushing observation, arbitrary (byte-level) message injection.
///
/// Adversaries always run on the phase-driving thread (they need no `Send`
/// bound), after every honest machine's effects have been merged — the
/// rushing view is therefore identical under sequential and parallel honest
/// execution.
pub trait Adversary {
    /// The set of statically corrupted parties.
    fn corrupted(&self) -> &BTreeSet<PartyId>;

    /// One round of adversarial behaviour. `rushed` maps each corrupted
    /// party to the envelopes honest parties addressed to it *this* round
    /// (rushing) together with last round's deliveries. `sender` stages
    /// messages from any corrupted identity.
    fn on_round(
        &mut self,
        round: u64,
        rushed: &BTreeMap<PartyId, Vec<Envelope>>,
        sender: &mut AdvSender<'_>,
    );
}

/// Staging interface for adversarial sends: may claim any corrupted identity
/// as the sender (channels are authenticated, so honest identities cannot be
/// spoofed).
#[derive(Debug)]
pub struct AdvSender<'a> {
    net: &'a mut Network,
    corrupted: &'a BTreeSet<PartyId>,
}

impl<'a> AdvSender<'a> {
    /// Creates a sender staging into `net` on behalf of `corrupted`.
    ///
    /// [`run_phase`] constructs one per round internally; this is public so
    /// adversary implementations (e.g. the fault-injection strategies in
    /// [`crate::faults`]) can be unit-tested round by round.
    pub fn new(net: &'a mut Network, corrupted: &'a BTreeSet<PartyId>) -> Self {
        AdvSender { net, corrupted }
    }

    /// Sends raw bytes from corrupted party `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not a corrupted party (authenticated channels).
    pub fn send_raw(&mut self, from: PartyId, to: PartyId, payload: Vec<u8>) {
        assert!(
            self.corrupted.contains(&from),
            "adversary cannot spoof honest party {from}"
        );
        self.net.stage(Envelope::new(from, to, payload));
    }

    /// Sends an encodable message from corrupted party `from` to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not corrupted.
    pub fn send<T: pba_crypto::codec::Encode + ?Sized>(
        &mut self,
        from: PartyId,
        to: PartyId,
        msg: &T,
    ) {
        self.send_raw(from, to, pba_crypto::codec::encode_to_vec(msg));
    }

    /// Sends a typed wire message (with its `{tag, step}` header) from
    /// corrupted party `from` to `to` — required for a corrupted party's
    /// lies to pass the honest receivers' hardened header checks.
    ///
    /// # Panics
    ///
    /// Panics if `from` is not corrupted.
    pub fn send_msg<T: crate::wire::WireMsg>(&mut self, from: PartyId, to: PartyId, msg: &T) {
        self.send_raw(from, to, crate::wire::encode_msg(msg));
    }

    /// Number of parties on the network.
    pub fn n(&self) -> usize {
        self.net.len()
    }
}

/// An adversary that controls a (possibly empty) set of parties but never
/// sends anything — crash/silent faults.
#[derive(Clone, Debug, Default)]
pub struct SilentAdversary {
    corrupted: BTreeSet<PartyId>,
}

impl SilentAdversary {
    /// Creates a silent adversary corrupting `corrupted`.
    pub fn new<I: IntoIterator<Item = PartyId>>(corrupted: I) -> Self {
        SilentAdversary {
            corrupted: corrupted.into_iter().collect(),
        }
    }
}

impl Adversary for SilentAdversary {
    fn corrupted(&self) -> &BTreeSet<PartyId> {
        &self.corrupted
    }

    fn on_round(
        &mut self,
        _round: u64,
        _rushed: &BTreeMap<PartyId, Vec<Envelope>>,
        _sender: &mut AdvSender<'_>,
    ) {
    }
}

/// Outcome of running a phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseOutcome {
    /// Rounds executed in this phase.
    pub rounds: u64,
    /// Whether all honest machines reported completion (vs. hitting the
    /// round limit).
    pub completed: bool,
}

/// How the runner turns machine rounds into network delivery ticks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundDriver {
    /// The classic synchronous schedule: one delivery tick per machine
    /// round — everything staged in round `r` is on the wire for round
    /// `r + 1`.
    Lockstep,
    /// Partial synchrony: each machine round opens a delivery window of
    /// `ticks` network ticks and fires on that *timeout budget* rather
    /// than on quiescence. A message delayed `d <= ticks - 1` ticks still
    /// arrives in the next machine round (the window absorbs it); longer
    /// delays straggle into later rounds or expire, and machines that run
    /// out of phase budget waiting report an incomplete
    /// [`PhaseOutcome`] — timing pressure becomes a real timeout.
    PartialSynchrony {
        /// Delivery ticks per machine round (`>= 1`).
        ticks: u64,
    },
}

impl RoundDriver {
    /// Delivery ticks opened per machine round.
    pub fn ticks(&self) -> u64 {
        match self {
            RoundDriver::Lockstep => 1,
            RoundDriver::PartialSynchrony { ticks } => (*ticks).max(1),
        }
    }
}

/// Runs one phase sequentially — equivalent to [`run_phase_threaded`] with
/// one worker.
///
/// `machines` holds the honest parties' state machines keyed by identity;
/// corrupted identities must not appear in it.
///
/// # Panics
///
/// Panics if a corrupted identity appears among the honest machines.
pub fn run_phase(
    net: &mut Network,
    machines: &mut BTreeMap<PartyId, Box<dyn Machine + Send + '_>>,
    adversary: &mut dyn Adversary,
    max_rounds: u64,
) -> PhaseOutcome {
    run_phase_threaded(net, machines, adversary, max_rounds, 1)
}

/// Runs one phase to completion (all honest machines done) or `max_rounds`,
/// stepping honest machines on a pool of up to `threads` scoped workers.
///
/// `threads <= 1` (including `0`) is the plain sequential engine. For
/// `threads > 1`, the phase spawns a persistent worker pool (capped at the
/// machine count, so `threads > n` is safe); each round's honest machines
/// are split into contiguous ascending-id chunks whose boundaries track
/// observed per-party step costs, idle workers steal trailing chunks from
/// a shared queue, and every worker runs its chunks against buffered
/// contexts. The buffered effects are merged in ascending [`PartyId`]
/// order before the adversary acts — steal order may vary run to run, the
/// merge order may not — so the execution (outcome, staged-envelope
/// transcript, metrics, adversary observations) is bit-identical for
/// every thread count.
///
/// # Panics
///
/// Panics if a corrupted identity appears among the honest machines, or if
/// a machine panics on a worker thread (the payload is resumed on the
/// calling thread).
pub fn run_phase_threaded(
    net: &mut Network,
    machines: &mut BTreeMap<PartyId, Box<dyn Machine + Send + '_>>,
    adversary: &mut dyn Adversary,
    max_rounds: u64,
    threads: usize,
) -> PhaseOutcome {
    run_phase_driven(
        net,
        machines,
        adversary,
        max_rounds,
        RoundDriver::Lockstep,
        threads,
    )
}

/// Runs one phase under an explicit [`RoundDriver`].
///
/// [`RoundDriver::Lockstep`] is exactly [`run_phase_threaded`]. Under
/// [`RoundDriver::PartialSynchrony`] each machine round drains a window of
/// `ticks` delivery ticks from the network before the machines act: late
/// messages surface in the machine round whose window covers their
/// deliver-at tick, and parties the network's timing model reports offline
/// are not stepped (their state freezes; their inbox for that round is
/// dropped — the delay queue has already accounted those messages as
/// delivered). A phase whose machines are still waiting on straggling or
/// expired traffic at `max_rounds` reports `completed = false`, which the
/// protocol layer surfaces as a timeout.
///
/// # Panics
///
/// Panics if a corrupted identity appears among the honest machines, or if
/// a machine panics on a worker thread.
pub fn run_phase_driven(
    net: &mut Network,
    machines: &mut BTreeMap<PartyId, Box<dyn Machine + Send + '_>>,
    adversary: &mut dyn Adversary,
    max_rounds: u64,
    driver: RoundDriver,
    threads: usize,
) -> PhaseOutcome {
    let (outcome, absorbed) =
        run_phase_overlapped(net, machines, adversary, max_rounds, driver, threads, None);
    debug_assert_eq!(absorbed, 0, "no background work was supplied");
    outcome
}

/// The per-round background hook of [`run_phase_overlapped`]: called with
/// the network (inside an overlap window) and the current machine round,
/// returns `true` when its work is done.
pub type BackgroundHook<'a> = &'a mut dyn FnMut(&mut Network, u64) -> bool;

/// Runs one phase while a background task executes in the slack of each
/// machine round — the pipelined driver behind BA-as-a-service streaming.
///
/// This is the chained-block shape from Fast-HotStuff: while the committee
/// machines vote on instance `i+1`'s rounds, the `background` hook makes
/// progress on instance `i`'s leftover work (predecessor-certificate
/// validation, deferred certification charges). The hook is called once per
/// machine round, after the adversary acts, with the network wrapped in a
/// round-overlap window: any [`Network::bump_round`] the hook performs is
/// absorbed into the concurrently-running machine round instead of
/// advancing the clock. The hook returns `true` when its work is done;
/// it is not called again after that.
///
/// Returns the phase outcome plus the number of absorbed background rounds.
/// Callers that overlap round-bearing work (deferred certification) should
/// compare that figure against the phase's own rounds and bump the clock by
/// the difference — the overlap can only hide as many rounds as the
/// foreground phase actually runs.
///
/// With `background = None` this is exactly [`run_phase_driven`]: no
/// overlap window is ever opened, so it composes with timing models.
///
/// # Panics
///
/// Panics if a corrupted identity appears among the honest machines, or if
/// a machine panics on a worker thread.
#[allow(clippy::too_many_arguments)]
pub fn run_phase_overlapped<'m>(
    net: &mut Network,
    machines: &mut BTreeMap<PartyId, Box<dyn Machine + Send + 'm>>,
    adversary: &mut dyn Adversary,
    max_rounds: u64,
    driver: RoundDriver,
    threads: usize,
    background: Option<BackgroundHook<'_>>,
) -> (PhaseOutcome, u64) {
    for id in machines.keys() {
        assert!(
            !adversary.corrupted().contains(id),
            "party {id} is both honest and corrupted"
        );
    }
    if threads <= 1 || machines.len() <= 1 {
        // Sequential engine: step machines in map order against the live
        // network. This is the reference schedule the parallel path must
        // reproduce bit for bit.
        return phase_loop(
            net,
            machines,
            adversary,
            max_rounds,
            driver,
            background,
            &mut |net, machines, inboxes, round, offline| {
                for (&id, machine) in machines.iter_mut() {
                    let inbox = inboxes.remove(&id).unwrap_or_default();
                    if offline.contains(&id) {
                        continue;
                    }
                    let mut ctx = net.ctx(id, round);
                    machine.on_round(&mut ctx, &inbox);
                }
            },
        );
    }
    // Parallel engine: one scoped worker pool for the whole phase. The
    // cost model persists across the phase's rounds — costs observed in
    // round r seed the chunk boundaries of round r + 1.
    let workers = threads.min(machines.len());
    sched::with_pool(workers, |pool| {
        let mut cost = CostModel::new();
        phase_loop(
            net,
            machines,
            adversary,
            max_rounds,
            driver,
            background,
            &mut |net, machines, inboxes, round, offline| {
                pool.step_round(net, machines, inboxes, round, offline, &mut cost);
            },
        )
    })
}

/// One honest step of a round: consumes the honest inboxes (leaving the
/// corrupted parties' entries for the rushing view) and steps every online
/// machine, sequentially or via the worker pool.
type StepFn<'a, 'm> = &'a mut dyn FnMut(
    &mut Network,
    &mut BTreeMap<PartyId, Box<dyn Machine + Send + 'm>>,
    &mut BTreeMap<PartyId, Vec<Envelope>>,
    u64,
    &BTreeSet<PartyId>,
);

/// The phase loop shared by the sequential and pooled engines: delivery
/// ticks, the honest step (via `step`), rushing adversary, background
/// overlap, and completion detection.
#[allow(clippy::too_many_arguments)]
fn phase_loop<'m>(
    net: &mut Network,
    machines: &mut BTreeMap<PartyId, Box<dyn Machine + Send + 'm>>,
    adversary: &mut dyn Adversary,
    max_rounds: u64,
    driver: RoundDriver,
    mut background: Option<BackgroundHook<'_>>,
    step: StepFn<'_, 'm>,
) -> (PhaseOutcome, u64) {
    let mut absorbed_total = 0u64;
    // Drop any stale cross-phase messages that are *due*. Traffic still in
    // the delay queue survives into this phase and arrives in the machine
    // round whose window covers its deliver-at tick.
    net.take_staged();

    let ticks = driver.ticks();
    let mut rounds = 0;
    let mut completed = false;
    while rounds < max_rounds {
        let mut delivered = net.take_staged();
        net.bump_round();
        for _ in 1..ticks {
            delivered.extend(net.take_staged());
            net.bump_round();
        }
        rounds += 1;

        // A transport failure means this round's delivery is incomplete:
        // stepping machines against it would diverge every replica from
        // the oracle. Abort the phase; the protocol layer reads the
        // recorded error off the network and reports it structurally.
        if net.transport_error().is_some() {
            return (
                PhaseOutcome {
                    rounds,
                    completed: false,
                },
                absorbed_total,
            );
        }

        // Partition deliveries per receiver.
        let mut inboxes: BTreeMap<PartyId, Vec<Envelope>> = BTreeMap::new();
        for env in delivered {
            inboxes.entry(env.to).or_default().push(env);
        }

        // Crash-recovery churn: parties offline at this tick keep their
        // (stale) state and miss the round entirely.
        let offline: BTreeSet<PartyId> = if net.timing().is_some() {
            machines
                .keys()
                .filter(|&&id| net.offline_now(id))
                .copied()
                .collect()
        } else {
            BTreeSet::new()
        };

        // Honest parties act first.
        step(net, machines, &mut inboxes, rounds - 1, &offline);

        // Rushing: adversary sees this round's honest messages to corrupted
        // parties (they are in `net.staged` now) plus last round's deliveries
        // to corrupted parties still in `inboxes`.
        let mut rushed: BTreeMap<PartyId, Vec<Envelope>> = BTreeMap::new();
        for (&id, envs) in inboxes.iter() {
            if adversary.corrupted().contains(&id) {
                rushed.entry(id).or_default().extend(envs.iter().cloned());
            }
        }
        let corrupted = adversary.corrupted().clone();
        // Peek at staged (this-round) messages in place: only envelopes
        // addressed to corrupted parties are cloned.
        for env in net.staged() {
            if corrupted.contains(&env.to) {
                rushed.entry(env.to).or_default().push(env.clone());
            }
        }

        {
            let mut sender = AdvSender {
                net,
                corrupted: &corrupted,
            };
            adversary.on_round(rounds - 1, &rushed, &mut sender);
        }

        // Background slot: the pipelined predecessor-instance work runs in
        // the slack of this machine round. Its round bumps are absorbed by
        // the overlap window rather than advancing the shared clock.
        if let Some(hook) = background.as_mut() {
            net.begin_round_overlap();
            let done = hook(net, rounds - 1);
            absorbed_total += net.end_round_overlap();
            if done {
                background = None;
            }
        }

        if machines.values().all(|m| m.is_done()) {
            completed = true;
            break;
        }
    }
    (PhaseOutcome { rounds, completed }, absorbed_total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Ctx;

    /// Relays a counter: party 0 starts at value 1; each round every party
    /// forwards (value+1) to the next party in a ring; done at value 5.
    struct Ring {
        id: PartyId,
        n: u64,
        value: Option<u64>,
        done: bool,
    }

    impl Machine for Ring {
        fn on_round(&mut self, ctx: &mut Ctx<'_>, inbox: &[Envelope]) {
            if self.done {
                return;
            }
            if ctx.round() == 0 && self.id == PartyId(0) {
                self.value = Some(1);
            }
            for env in inbox {
                if let Some(v) = ctx.read::<u64>(env) {
                    self.value = Some(v);
                }
            }
            if let Some(v) = self.value.take() {
                if v >= 5 {
                    self.done = true;
                } else {
                    let next = PartyId((self.id.0 + 1) % self.n);
                    ctx.send(next, &(v + 1));
                    self.done = true;
                }
            }
        }

        fn is_done(&self) -> bool {
            self.done
        }
    }

    fn ring_machines(n: u64) -> BTreeMap<PartyId, Box<dyn Machine + Send>> {
        (0..n)
            .map(|i| {
                (
                    PartyId(i),
                    Box::new(Ring {
                        id: PartyId(i),
                        n,
                        value: None,
                        done: false,
                    }) as Box<dyn Machine + Send>,
                )
            })
            .collect()
    }

    #[test]
    fn ring_relay_terminates() {
        let n = 4u64;
        let mut net = Network::new(n as usize);
        let mut machines = ring_machines(n);
        let mut adv = SilentAdversary::default();
        let out = run_phase(&mut net, &mut machines, &mut adv, 20);
        assert!(out.completed);
        // 0 sends 2 to 1 (r0), 1 sends 3 to 2 (r1), 2 sends 4 to 3 (r2),
        // 3 sends 5 to 0 (r3), 0 is already done → all done detected r4.
        assert!(out.rounds <= 6);
        assert_eq!(net.report().total_msgs, 4);
    }

    #[test]
    fn parallel_ring_matches_sequential() {
        // 0 is the sequential engine spelled differently; 7 > n exercises
        // a pool capped at the machine count; the rest steal for real.
        for threads in [0, 2, 3, 7, 64] {
            let n = 6u64;
            let mut seq_net = Network::new(n as usize);
            seq_net.enable_transcript();
            let mut seq_machines = ring_machines(n);
            let mut adv = SilentAdversary::default();
            let seq_out = run_phase(&mut seq_net, &mut seq_machines, &mut adv, 20);

            let mut par_net = Network::new(n as usize);
            par_net.enable_transcript();
            let mut par_machines = ring_machines(n);
            let mut adv = SilentAdversary::default();
            let par_out =
                run_phase_threaded(&mut par_net, &mut par_machines, &mut adv, 20, threads);

            assert_eq!(seq_out, par_out, "threads={threads}");
            assert_eq!(seq_net.report(), par_net.report(), "threads={threads}");
            assert_eq!(
                seq_net.transcript(),
                par_net.transcript(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn overlapped_background_absorbs_rounds() {
        let n = 4u64;
        // Oracle: the same phase with no background work.
        let mut plain_net = Network::new(n as usize);
        plain_net.enable_transcript();
        let mut plain_machines = ring_machines(n);
        let mut adv = SilentAdversary::default();
        let plain_out = run_phase(&mut plain_net, &mut plain_machines, &mut adv, 20);

        // Pipelined: a background task burns two of its own rounds in the
        // slack of each of the first two machine rounds. All four bumps are
        // absorbed — the foreground phase and the shared clock are unchanged.
        let mut net = Network::new(n as usize);
        net.enable_transcript();
        let mut machines = ring_machines(n);
        let mut adv = SilentAdversary::default();
        let mut calls = 0u64;
        let mut background = |net: &mut Network, _round: u64| {
            net.bump_round();
            net.bump_round();
            calls += 1;
            calls == 2
        };
        let (out, absorbed) = run_phase_overlapped(
            &mut net,
            &mut machines,
            &mut adv,
            20,
            RoundDriver::Lockstep,
            1,
            Some(&mut background),
        );
        assert_eq!(out, plain_out);
        assert_eq!(absorbed, 4);
        assert_eq!(calls, 2, "hook is not called again once done");
        assert_eq!(net.report(), plain_net.report());
        assert_eq!(net.transcript(), plain_net.transcript());
    }

    #[test]
    fn round_limit_reported() {
        struct Never;
        impl Machine for Never {
            fn on_round(&mut self, _: &mut Ctx<'_>, _: &[Envelope]) {}
            fn is_done(&self) -> bool {
                false
            }
        }
        let mut net = Network::new(1);
        let mut machines: BTreeMap<PartyId, Box<dyn Machine + Send>> =
            [(PartyId(0), Box::new(Never) as Box<dyn Machine + Send>)].into();
        let mut adv = SilentAdversary::default();
        let out = run_phase(&mut net, &mut machines, &mut adv, 3);
        assert!(!out.completed);
        assert_eq!(out.rounds, 3);
    }

    struct Flooder {
        corrupted: BTreeSet<PartyId>,
    }

    impl Adversary for Flooder {
        fn corrupted(&self) -> &BTreeSet<PartyId> {
            &self.corrupted
        }
        fn on_round(
            &mut self,
            _round: u64,
            _rushed: &BTreeMap<PartyId, Vec<Envelope>>,
            sender: &mut AdvSender<'_>,
        ) {
            let from = *self.corrupted.iter().next().unwrap();
            sender.send_raw(from, PartyId(0), vec![0u8; 100]);
        }
    }

    #[test]
    fn adversary_messages_delivered_but_filterable() {
        struct Selective {
            got_junk: bool,
        }
        impl Machine for Selective {
            fn on_round(&mut self, _ctx: &mut Ctx<'_>, inbox: &[Envelope]) {
                // Filters by sender: refuses to process P2's messages.
                for env in inbox {
                    if env.from == PartyId(1) {
                        self.got_junk = true; // seen but NOT processed (no read)
                    }
                }
            }
            fn is_done(&self) -> bool {
                self.got_junk
            }
        }
        let mut net = Network::new(2);
        let mut machines: BTreeMap<PartyId, Box<dyn Machine + Send>> = [(
            PartyId(0),
            Box::new(Selective { got_junk: false }) as Box<dyn Machine + Send>,
        )]
        .into();
        let mut adv = Flooder {
            corrupted: [PartyId(1)].into(),
        };
        let out = run_phase(&mut net, &mut machines, &mut adv, 5);
        assert!(out.completed);
        // Receiver processed nothing: zero received bytes despite floods.
        assert_eq!(net.metrics().party(PartyId(0)).bytes_received, 0);
        assert!(net.metrics().party(PartyId(1)).bytes_sent >= 100);
    }

    #[test]
    #[should_panic(expected = "cannot spoof")]
    fn adversary_cannot_spoof_honest() {
        struct Spoofer {
            corrupted: BTreeSet<PartyId>,
        }
        impl Adversary for Spoofer {
            fn corrupted(&self) -> &BTreeSet<PartyId> {
                &self.corrupted
            }
            fn on_round(
                &mut self,
                _r: u64,
                _i: &BTreeMap<PartyId, Vec<Envelope>>,
                s: &mut AdvSender<'_>,
            ) {
                s.send_raw(PartyId(0), PartyId(1), vec![]);
            }
        }
        struct Idle;
        impl Machine for Idle {
            fn on_round(&mut self, _: &mut Ctx<'_>, _: &[Envelope]) {}
            fn is_done(&self) -> bool {
                false
            }
        }
        let mut net = Network::new(3);
        let mut machines: BTreeMap<PartyId, Box<dyn Machine + Send>> =
            [(PartyId(0), Box::new(Idle) as Box<dyn Machine + Send>)].into();
        let mut adv = Spoofer {
            corrupted: [PartyId(2)].into(),
        };
        run_phase(&mut net, &mut machines, &mut adv, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn worker_panic_payload_is_preserved() {
        // A machine panicking on a worker thread must surface the original
        // message on the caller, exactly as in sequential mode.
        struct BadSender;
        impl Machine for BadSender {
            fn on_round(&mut self, ctx: &mut Ctx<'_>, _: &[Envelope]) {
                ctx.send_raw(PartyId(99), vec![]);
            }
            fn is_done(&self) -> bool {
                false
            }
        }
        let mut net = Network::new(2);
        let mut machines: BTreeMap<PartyId, Box<dyn Machine + Send>> = (0..2)
            .map(|i| (PartyId(i), Box::new(BadSender) as Box<dyn Machine + Send>))
            .collect();
        let mut adv = SilentAdversary::default();
        run_phase_threaded(&mut net, &mut machines, &mut adv, 2, 2);
    }

    /// A hash-bound machine that routes its per-round workload through
    /// [`Ctx::hash_batch_into`] and (optionally) declares it up front via
    /// [`Machine::hash_manifest`], XOR-folding the digests into a gossip
    /// payload so any divergence — wrong digest, wrong order, stale
    /// prefetch — corrupts the transcript.
    struct ManifestGrind {
        id: PartyId,
        n: u64,
        iters: usize,
        rounds: u64,
        quota: u64,
        declare: bool,
        scratch: Vec<pba_crypto::Digest>,
    }

    impl ManifestGrind {
        fn workload(&self, inbox: &[Envelope]) -> Vec<Vec<u8>> {
            let mut acc: u64 = self.rounds.wrapping_mul(0x9e37_79b9) ^ self.id.0;
            for env in inbox {
                acc ^= (env.payload.len() as u64).rotate_left(17) ^ env.from.0;
            }
            (0..self.iters)
                .map(|i| {
                    let mut input = Vec::with_capacity(20);
                    input.extend_from_slice(&acc.to_le_bytes());
                    input.extend_from_slice(&(i as u64).to_le_bytes());
                    input.extend_from_slice(&(self.id.0 as u32).to_le_bytes());
                    input
                })
                .collect()
        }
    }

    impl Machine for ManifestGrind {
        fn on_round(&mut self, ctx: &mut Ctx<'_>, inbox: &[Envelope]) {
            let inputs = self.workload(inbox);
            let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
            let mut digests = std::mem::take(&mut self.scratch);
            ctx.hash_batch_into(&refs, &mut digests);
            let fold = digests
                .iter()
                .fold(pba_crypto::Digest::ZERO, |acc, d| acc.xor(d));
            self.scratch = digests;
            let to = PartyId((self.id.0 + 1) % self.n);
            ctx.send_raw(to, fold.as_bytes().to_vec());
            self.rounds += 1;
        }
        fn is_done(&self) -> bool {
            self.rounds >= self.quota
        }
        fn hash_manifest(&self, inbox: &[Envelope]) -> Vec<Vec<u8>> {
            if self.declare {
                self.workload(inbox)
            } else {
                Vec::new()
            }
        }
    }

    fn grind_machines(n: u64, declare: bool) -> BTreeMap<PartyId, Box<dyn Machine + Send>> {
        (0..n)
            .map(|i| {
                (
                    PartyId(i),
                    Box::new(ManifestGrind {
                        id: PartyId(i),
                        n,
                        // Ragged on purpose: 13 % LANES != 0, so per-party
                        // batches leave scalar remainders the cross-party
                        // pool absorbs.
                        iters: 13,
                        rounds: 0,
                        quota: 4,
                        declare,
                        scratch: Vec::new(),
                    }) as Box<dyn Machine + Send>,
                )
            })
            .collect()
    }

    #[test]
    fn manifest_prefetch_matches_undeclared_and_sequential() {
        // Reference: sequential, no manifest declared (pure on-demand).
        let n = 9u64;
        let mut seq_net = Network::new(n as usize);
        seq_net.enable_transcript();
        let mut seq_machines = grind_machines(n, false);
        let mut adv = SilentAdversary::default();
        let seq_out = run_phase(&mut seq_net, &mut seq_machines, &mut adv, 10);
        assert!(seq_out.completed);

        for declare in [false, true] {
            for threads in [2, 4, 7] {
                let mut net = Network::new(n as usize);
                net.enable_transcript();
                let mut machines = grind_machines(n, declare);
                let mut adv = SilentAdversary::default();
                let out = run_phase_threaded(&mut net, &mut machines, &mut adv, 10, threads);
                assert_eq!(seq_out, out, "declare={declare} threads={threads}");
                assert_eq!(
                    seq_net.report(),
                    net.report(),
                    "declare={declare} threads={threads}"
                );
                assert_eq!(
                    seq_net.transcript(),
                    net.transcript(),
                    "declare={declare} threads={threads}"
                );
            }
        }
    }

    use crate::faults::{LatencyDist, TimingModel};

    /// Broadcasts its round number every round and records every payload
    /// it processed, tagged with the round it arrived in.
    struct Recorder {
        id: PartyId,
        n: u64,
        got: Vec<(u64, u64)>, // (arrival round, payload value)
        rounds: u64,
        quota: u64,
    }

    impl Machine for Recorder {
        fn on_round(&mut self, ctx: &mut Ctx<'_>, inbox: &[Envelope]) {
            let round = ctx.round();
            for env in inbox {
                if let Some(v) = ctx.read::<u64>(env) {
                    self.got.push((round, v));
                }
            }
            for to in (0..self.n).map(PartyId) {
                if to != self.id {
                    ctx.send(to, &round);
                }
            }
            self.rounds += 1;
        }
        fn is_done(&self) -> bool {
            self.rounds >= self.quota
        }
    }

    fn recorders(n: u64, quota: u64) -> BTreeMap<PartyId, Recorder> {
        (0..n)
            .map(|i| {
                (
                    PartyId(i),
                    Recorder {
                        id: PartyId(i),
                        n,
                        got: Vec::new(),
                        rounds: 0,
                        quota,
                    },
                )
            })
            .collect()
    }

    /// Runs one driven phase over concrete [`Recorder`] machines, keeping
    /// them inspectable afterwards.
    fn drive_recorders(
        net: &mut Network,
        machines: &mut BTreeMap<PartyId, Recorder>,
        max_rounds: u64,
        driver: RoundDriver,
        threads: usize,
    ) -> PhaseOutcome {
        let mut adv = SilentAdversary::default();
        let mut erased: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = machines
            .iter_mut()
            .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
            .collect();
        run_phase_driven(net, &mut erased, &mut adv, max_rounds, driver, threads)
    }

    #[test]
    fn delayed_message_crosses_phase_boundary() {
        // Regression for the all-messages-consumed-same-round assumption:
        // with a one-tick delay, traffic sent in phase 1's last round is
        // still in flight at the phase boundary. The next phase's
        // stale-drop must NOT discard it — it arrives in phase 2.
        let mut net = Network::new(2);
        net.set_timing(TimingModel::new(
            [3u8; 32],
            Some(LatencyDist::Fixed { delay: 1 }),
            None,
            Vec::new(),
        ));
        let driver = RoundDriver::PartialSynchrony { ticks: 2 };

        let mut phase1 = recorders(2, 1); // sends once, then done
        drive_recorders(&mut net, &mut phase1, 4, driver, 1);
        // The last round's sends are still sitting at the boundary.
        assert_eq!(net.staged().len(), 2, "phase-1 traffic still pending");

        let mut phase2 = recorders(2, 3);
        drive_recorders(&mut net, &mut phase2, 4, driver, 1);
        // The delayed phase-1 payload (round value 0) crossed the boundary
        // and was processed by the phase-2 machines.
        assert!(
            phase2[&PartyId(0)].got.iter().any(|&(_, value)| value == 0),
            "phase-1 traffic lost at the phase boundary: got {:?}",
            phase2[&PartyId(0)].got
        );
        // Nothing in flight or silently lost: the ledger closes.
        let stats = net.timing_stats();
        assert_eq!(net.in_flight_len(), 0);
        assert_eq!(stats.staged, stats.delivered, "no expiry axes configured");
    }

    #[test]
    fn stale_drop_still_discards_due_messages() {
        // The other half of the phase-boundary contract: with zero delay,
        // cross-phase messages are due at the boundary and the stale-drop
        // swallows them, exactly as the lockstep engine always has.
        let mut net = Network::new(2);
        net.set_timing(TimingModel::new(
            [3u8; 32],
            Some(LatencyDist::Fixed { delay: 0 }),
            None,
            Vec::new(),
        ));
        let mut phase1 = recorders(2, 1);
        drive_recorders(&mut net, &mut phase1, 4, RoundDriver::Lockstep, 1);
        assert_eq!(net.in_flight_len(), 0);

        let mut phase2 = recorders(2, 2);
        drive_recorders(&mut net, &mut phase2, 4, RoundDriver::Lockstep, 1);
        for recorder in phase2.values() {
            // Phase-2 round 0 delivers nothing: the phase-1 messages were
            // due at the boundary and the stale-drop swallowed them.
            assert!(
                recorder.got.iter().all(|&(round, _)| round > 0),
                "stale cross-phase traffic must be dropped, got {:?}",
                recorder.got
            );
        }
    }

    #[test]
    fn partial_synchrony_window_absorbs_delays_within_budget() {
        // delay <= ticks - 1: the window absorbs the latency and machines
        // observe the classic next-round delivery schedule.
        let run = |delay: u64, ticks: u64| {
            let mut net = Network::new(3);
            net.set_timing(TimingModel::new(
                [5u8; 32],
                Some(LatencyDist::Fixed { delay }),
                None,
                Vec::new(),
            ));
            let mut machines = recorders(3, 4);
            let out = drive_recorders(
                &mut net,
                &mut machines,
                8,
                RoundDriver::PartialSynchrony { ticks },
                1,
            );
            assert!(out.completed);
            machines[&PartyId(0)].got.clone()
        };
        let lockstep = run(0, 2);
        let delayed = run(1, 2);
        assert_eq!(
            lockstep, delayed,
            "a 1-tick delay inside a 2-tick window must be invisible"
        );
        assert!(
            lockstep.iter().any(|&(round, value)| round == value + 1),
            "messages arrive the machine round after they were sent"
        );
    }

    #[test]
    fn over_budget_delay_jams_completion() {
        // delay == ticks: every message misses its window and arrives a
        // machine round late. A machine waiting for round-r traffic at
        // round r + 1 never sees it in time; the phase must time out
        // rather than hang or panic — this is ProtocolError::Timeout's
        // runner-level source under real timing pressure.
        struct NeedsPrompt {
            id: PartyId,
            heard: bool,
            rounds: u64,
        }
        impl Machine for NeedsPrompt {
            fn on_round(&mut self, ctx: &mut Ctx<'_>, inbox: &[Envelope]) {
                // Expect the peer's round-(r-1) message at round r.
                let round = ctx.round();
                for env in inbox {
                    if let Some(v) = ctx.read::<u64>(env) {
                        if v + 1 == round {
                            self.heard = true;
                        }
                    }
                }
                let peer = PartyId(1 - self.id.0);
                ctx.send(peer, &round);
                self.rounds += 1;
            }
            fn is_done(&self) -> bool {
                self.heard
            }
        }
        let mut net = Network::new(2);
        net.set_timing(TimingModel::new(
            [5u8; 32],
            Some(LatencyDist::Fixed { delay: 2 }),
            None,
            Vec::new(),
        ));
        let mut adv = SilentAdversary::default();
        let mut machines: BTreeMap<PartyId, Box<dyn Machine + Send>> = (0..2)
            .map(|i| {
                (
                    PartyId(i),
                    Box::new(NeedsPrompt {
                        id: PartyId(i),
                        heard: false,
                        rounds: 0,
                    }) as Box<dyn Machine + Send>,
                )
            })
            .collect();
        let out = run_phase_driven(
            &mut net,
            &mut machines,
            &mut adv,
            6,
            RoundDriver::PartialSynchrony { ticks: 2 },
            1,
        );
        assert!(!out.completed, "over-budget delay must surface as timeout");
        assert_eq!(out.rounds, 6);
    }

    #[test]
    fn offline_machines_freeze_and_resume() {
        // Party 1 crashes for ticks 2..4: it misses those rounds entirely
        // (state frozen), then resumes and still reaches its quota if the
        // budget allows. Identical under sequential and threaded stepping.
        let run = |threads: usize| {
            let mut net = Network::new(3);
            net.enable_transcript();
            net.set_timing(TimingModel::new(
                [9u8; 32],
                None,
                None,
                vec![(PartyId(1), 2, 4)],
            ));
            let mut machines = recorders(3, 5);
            let out = drive_recorders(&mut net, &mut machines, 12, RoundDriver::Lockstep, threads);
            assert!(out.completed);
            let m1 = &machines[&PartyId(1)];
            (
                out,
                m1.got.clone(),
                m1.rounds,
                net.transcript().unwrap().to_vec(),
            )
        };
        let (out, got, stepped, transcript) = run(1);
        // The two offline rounds were missed: 5 quota rounds need 7 wall
        // rounds.
        assert_eq!(stepped, 5);
        assert!(out.rounds > 5, "offline rounds cost wall-clock rounds");
        assert!(
            got.iter().all(|&(round, _)| !(2..4).contains(&round)),
            "inbox during the crash window must be dropped"
        );
        let threaded = run(3);
        assert_eq!((out, got, stepped, transcript), threaded);
    }

    #[test]
    #[should_panic(expected = "both honest and corrupted")]
    fn overlap_detected() {
        struct Idle;
        impl Machine for Idle {
            fn on_round(&mut self, _: &mut Ctx<'_>, _: &[Envelope]) {}
            fn is_done(&self) -> bool {
                true
            }
        }
        let mut net = Network::new(1);
        let mut machines: BTreeMap<PartyId, Box<dyn Machine + Send>> =
            [(PartyId(0), Box::new(Idle) as Box<dyn Machine + Send>)].into();
        let mut adv = SilentAdversary::new([PartyId(0)]);
        run_phase(&mut net, &mut machines, &mut adv, 1);
    }
}
