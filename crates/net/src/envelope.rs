//! Party identities and message envelopes.

use pba_crypto::codec::{
    read_varint, varint_len, write_varint, CodecError, Decode, Encode, Reader,
};
use std::fmt;

/// A party identity: an index in `[0, n)`.
///
/// The paper indexes parties `P_1 … P_n`; we use zero-based indices
/// internally and render them one-based in display output.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PartyId(pub u64);

impl PartyId {
    /// The raw index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0 + 1)
    }
}

impl fmt::Display for PartyId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0 + 1)
    }
}

impl From<u64> for PartyId {
    fn from(v: u64) -> Self {
        PartyId(v)
    }
}

impl From<usize> for PartyId {
    fn from(v: usize) -> Self {
        PartyId(v as u64)
    }
}

impl Encode for PartyId {
    fn encode(&self, buf: &mut Vec<u8>) {
        write_varint(buf, self.0);
    }
    fn encoded_len(&self) -> usize {
        varint_len(self.0)
    }
}

impl Decode for PartyId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        Ok(PartyId(read_varint(r)?))
    }
}

/// A point-to-point message in flight: sender, receiver, and the encoded
/// payload bytes that are charged against communication budgets.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Sending party (as claimed by the network layer; channels are
    /// authenticated, so honest receivers may trust it).
    pub from: PartyId,
    /// Receiving party.
    pub to: PartyId,
    /// Encoded message body.
    pub payload: Vec<u8>,
}

impl Envelope {
    /// Creates an envelope.
    pub fn new(from: PartyId, to: PartyId, payload: Vec<u8>) -> Self {
        Envelope { from, to, payload }
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True if the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_crypto::codec::{decode_from_slice, encode_to_vec};

    #[test]
    fn party_id_display_is_one_based() {
        assert_eq!(format!("{}", PartyId(0)), "P1");
        assert_eq!(format!("{:?}", PartyId(41)), "P42");
    }

    #[test]
    fn party_id_codec_roundtrip() {
        let id = PartyId(123);
        let bytes = encode_to_vec(&id);
        assert_eq!(decode_from_slice::<PartyId>(&bytes).unwrap(), id);
        assert_eq!(bytes.len(), id.encoded_len());
    }

    #[test]
    fn envelope_len() {
        let e = Envelope::new(PartyId(0), PartyId(1), vec![1, 2, 3]);
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
    }

    #[test]
    fn conversions() {
        assert_eq!(PartyId::from(3usize), PartyId(3));
        assert_eq!(PartyId::from(3u64).index(), 3);
    }
}
