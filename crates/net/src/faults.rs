//! Composable Byzantine fault-injection strategies.
//!
//! Every strategy here implements [`Adversary`] and is driven by a
//! [`Prg`], so a failing chaos configuration replays bit-for-bit from its
//! seed. Strategies compose: [`Composed`] runs several side by side over a
//! partition of the corrupt set, [`Schedule`] switches strategies per
//! round window, and [`CrashAt`] silences any inner strategy mid-phase.
//!
//! Two layers of API:
//!
//! * the concrete combinators ([`Equivocator`], [`FieldEquivocator`],
//!   [`Garbler`], [`Replayer`], [`Flooder`], [`CrashAt`], [`Composed`],
//!   [`Schedule`]) for hand-assembled attacks;
//! * the declarative [`StrategySpec`] — a cloneable, printable description
//!   that [`StrategySpec::build`]s the combinator tree. Harnesses sweep
//!   over specs, and a violation report prints the spec + seed as the
//!   complete reproduction recipe.
//!
//! Strategies say *how* corrupted parties misbehave; *which* parties are
//! corrupted is the orthogonal [`crate::corruption::CorruptionPlan`] axis.
//! That axis includes an **adaptive post-setup** placement
//! ([`crate::corruption::CorruptionPlan::Adaptive`]) that picks its targets
//! from the established communication tree (ranking nodes by takeover
//! value); because target selection needs the tree, the ranking itself
//! lives in `pba_aetree::analysis` and protocol sessions resolve the plan
//! after establishment — any strategy here can then drive the
//! adaptively-chosen set.

use crate::envelope::{Envelope, PartyId};
use crate::runner::{AdvSender, Adversary, SilentAdversary};
use crate::wire;
use pba_crypto::prg::Prg;
use rand::RngCore;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Sends *different* payloads to different receivers from every corrupted
/// party — the classic equivocation attack against committee broadcast
/// steps.
///
/// Payloads come from a palette cycled by receiver index; with an empty
/// palette, pseudorandom short payloads are drawn from the [`Prg`] (still
/// distinct per receiver with overwhelming probability).
#[derive(Debug)]
pub struct Equivocator {
    corrupted: BTreeSet<PartyId>,
    palette: Vec<Vec<u8>>,
    prg: Prg,
}

impl Equivocator {
    /// Creates an equivocator with pseudorandom payloads.
    pub fn new(corrupted: BTreeSet<PartyId>, prg: Prg) -> Self {
        Equivocator {
            corrupted,
            palette: Vec::new(),
            prg,
        }
    }

    /// Creates an equivocator cycling through the given payload palette
    /// (e.g. the two encodings of conflicting protocol values).
    pub fn with_palette(corrupted: BTreeSet<PartyId>, palette: Vec<Vec<u8>>, prg: Prg) -> Self {
        Equivocator {
            corrupted,
            palette,
            prg,
        }
    }
}

impl Adversary for Equivocator {
    fn corrupted(&self) -> &BTreeSet<PartyId> {
        &self.corrupted
    }

    fn on_round(
        &mut self,
        _round: u64,
        _rushed: &BTreeMap<PartyId, Vec<Envelope>>,
        sender: &mut AdvSender<'_>,
    ) {
        let n = sender.n() as u64;
        let senders: Vec<PartyId> = self.corrupted.iter().copied().collect();
        for bad in senders {
            for to in (0..n).map(PartyId) {
                if self.corrupted.contains(&to) {
                    continue;
                }
                let payload = if self.palette.is_empty() {
                    let len = 1 + self.prg.gen_range(16) as usize;
                    let mut p = vec![0u8; len];
                    self.prg.fill_bytes(&mut p);
                    p
                } else {
                    self.palette[to.index() % self.palette.len()].clone()
                };
                sender.send_raw(bad, to, payload);
            }
        }
    }
}

/// How [`Garbler`] mutates an intercepted payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GarbleMode {
    /// Flip one pseudorandom bit (payload stays almost well-formed).
    BitFlip,
    /// Drop a pseudorandom suffix (stresses length/truncation checks).
    Truncate,
    /// Alternate between bit flips and truncations by round parity.
    Both,
    /// Structure-aware: decode the payload against its registered wire
    /// schema, mutate exactly one typed field, and re-encode
    /// ([`wire::mutate_field`]). The mutant passes the hardened decoder as
    /// the *same* message type with a wrong value, so only semantic checks
    /// (signatures, echo quorums, epoch numbers) can reject it. Untyped or
    /// unparseable payloads fall back to a bit flip.
    Field,
}

/// Intercepts the honest messages rushed to corrupted parties, mutates
/// them (bit-flip / truncate / typed-field), and forwards the mutants to
/// honest receivers — *almost*-well-formed bytes that exercise every
/// decode surface far more sharply than uniform noise.
#[derive(Debug)]
pub struct Garbler {
    corrupted: BTreeSet<PartyId>,
    mode: GarbleMode,
    prg: Prg,
}

impl Garbler {
    /// Creates a garbler with the given mutation mode.
    pub fn new(corrupted: BTreeSet<PartyId>, mode: GarbleMode, prg: Prg) -> Self {
        Garbler {
            corrupted,
            mode,
            prg,
        }
    }

    fn mutate(&mut self, payload: &[u8], round: u64) -> Vec<u8> {
        let mut out = payload.to_vec();
        if out.is_empty() {
            return vec![self.prg.gen_range(256) as u8];
        }
        let flip = match self.mode {
            GarbleMode::BitFlip => true,
            GarbleMode::Truncate => false,
            GarbleMode::Both => round.is_multiple_of(2),
            GarbleMode::Field => match wire::mutate_field(&out, &mut self.prg) {
                Some(mutant) => return mutant,
                // Untyped / unparseable payload: no schema to aim at.
                None => true,
            },
        };
        if flip {
            let byte = self.prg.gen_range(out.len() as u64) as usize;
            let bit = self.prg.gen_range(8) as u8;
            out[byte] ^= 1 << bit;
        } else {
            let keep = self.prg.gen_range(out.len() as u64) as usize;
            out.truncate(keep);
        }
        out
    }
}

impl Adversary for Garbler {
    fn corrupted(&self) -> &BTreeSet<PartyId> {
        &self.corrupted
    }

    fn on_round(
        &mut self,
        round: u64,
        rushed: &BTreeMap<PartyId, Vec<Envelope>>,
        sender: &mut AdvSender<'_>,
    ) {
        let n = sender.n() as u64;
        let intercepted: Vec<Envelope> = rushed.values().flatten().cloned().collect();
        for env in intercepted {
            // `rushed` keys are the corrupted receivers; the interceptor
            // re-sends under its own (authenticated) identity.
            let bad = env.to;
            if !self.corrupted.contains(&bad) {
                continue;
            }
            let mutant = self.mutate(&env.payload, round);
            // Reflect the mutant back at the honest sender and at one
            // pseudorandom other honest party.
            sender.send_raw(bad, env.from, mutant.clone());
            let other = PartyId(self.prg.gen_range(n));
            if !self.corrupted.contains(&other) && other != env.from {
                sender.send_raw(bad, other, mutant);
            }
        }
    }
}

/// Typed equivocation: intercepts a rushed typed message and *forks* it —
/// one pseudorandom honest party receives the original encoding, another
/// receives a structure-aware mutant of it ([`wire::mutate_field`]): the
/// same message type with exactly one field changed. Both sides of the
/// fork pass the hardened decoder, so unlike the byte-level
/// [`Equivocator`] the lie survives until a semantic check (signature,
/// echo quorum, epoch) compares values across receivers. Untyped payloads
/// are forked against pseudorandom bytes instead.
#[derive(Debug)]
pub struct FieldEquivocator {
    corrupted: BTreeSet<PartyId>,
    prg: Prg,
}

impl FieldEquivocator {
    /// Creates a typed equivocator.
    pub fn new(corrupted: BTreeSet<PartyId>, prg: Prg) -> Self {
        FieldEquivocator { corrupted, prg }
    }
}

impl Adversary for FieldEquivocator {
    fn corrupted(&self) -> &BTreeSet<PartyId> {
        &self.corrupted
    }

    fn on_round(
        &mut self,
        _round: u64,
        rushed: &BTreeMap<PartyId, Vec<Envelope>>,
        sender: &mut AdvSender<'_>,
    ) {
        let honest: Vec<PartyId> = (0..sender.n() as u64)
            .map(PartyId)
            .filter(|p| !self.corrupted.contains(p))
            .collect();
        if honest.len() < 2 {
            return;
        }
        let intercepted: Vec<Envelope> = rushed.values().flatten().cloned().collect();
        for env in intercepted {
            // `rushed` keys are the corrupted receivers; the interceptor
            // re-sends under its own (authenticated) identity.
            let bad = env.to;
            if !self.corrupted.contains(&bad) {
                continue;
            }
            let fork = wire::mutate_field(&env.payload, &mut self.prg).unwrap_or_else(|| {
                // No schema to fork against: equivocate with pseudorandom
                // bytes, as the byte-level Equivocator would.
                let len = 1 + self.prg.gen_range(16) as usize;
                let mut p = vec![0u8; len];
                self.prg.fill_bytes(&mut p);
                p
            });
            // Two distinct honest receivers see the two sides of the fork.
            let a = self.prg.gen_range(honest.len() as u64) as usize;
            let b = (a + 1 + self.prg.gen_range(honest.len() as u64 - 1) as usize) % honest.len();
            sender.send_raw(bad, honest[a], env.payload.clone());
            sender.send_raw(bad, honest[b], fork);
        }
    }
}

/// Records every payload rushed through corrupted parties and replays a
/// pseudorandom sample of the backlog each later round — stale-state /
/// cross-round replay attacks (epoch and freshness checks must hold).
#[derive(Debug)]
pub struct Replayer {
    corrupted: BTreeSet<PartyId>,
    backlog: Vec<Vec<u8>>,
    per_round: usize,
    prg: Prg,
}

impl Replayer {
    /// Creates a replayer resending up to `per_round` stale payloads per
    /// corrupted party per round.
    pub fn new(corrupted: BTreeSet<PartyId>, per_round: usize, prg: Prg) -> Self {
        Replayer {
            corrupted,
            backlog: Vec::new(),
            per_round,
            prg,
        }
    }
}

impl Adversary for Replayer {
    fn corrupted(&self) -> &BTreeSet<PartyId> {
        &self.corrupted
    }

    fn on_round(
        &mut self,
        _round: u64,
        rushed: &BTreeMap<PartyId, Vec<Envelope>>,
        sender: &mut AdvSender<'_>,
    ) {
        let honest: Vec<PartyId> = (0..sender.n() as u64)
            .map(PartyId)
            .filter(|p| !self.corrupted.contains(p))
            .collect();
        let senders: Vec<PartyId> = self.corrupted.iter().copied().collect();
        for bad in senders {
            for _ in 0..self.per_round {
                if self.backlog.is_empty() || honest.is_empty() {
                    break;
                }
                let idx = self.prg.gen_range(self.backlog.len() as u64) as usize;
                let target = honest[self.prg.gen_range(honest.len() as u64) as usize];
                sender.send_raw(bad, target, self.backlog[idx].clone());
            }
        }
        // Record *after* replaying: payloads resurface in later rounds,
        // never in the round they were first seen.
        for env in rushed.values().flatten() {
            self.backlog.push(env.payload.clone());
        }
        // Bound adversary memory.
        if self.backlog.len() > 4096 {
            let excess = self.backlog.len() - 4096;
            self.backlog.drain(..excess);
        }
    }
}

/// Targeted bandwidth exhaustion: every corrupted party slams one honest
/// victim with `per_round` payloads of `payload_len` bytes each round.
/// Under dynamic filtering the victim must stay cheap — the chaos sweep
/// asserts its *processed* bytes stay bounded.
#[derive(Debug)]
pub struct Flooder {
    corrupted: BTreeSet<PartyId>,
    victim: PartyId,
    payload_len: usize,
    per_round: usize,
    prg: Prg,
}

impl Flooder {
    /// Creates a flooder aimed at `victim`.
    pub fn new(
        corrupted: BTreeSet<PartyId>,
        victim: PartyId,
        payload_len: usize,
        per_round: usize,
        prg: Prg,
    ) -> Self {
        Flooder {
            corrupted,
            victim,
            payload_len,
            per_round,
            prg,
        }
    }

    /// The flooded party.
    pub fn victim(&self) -> PartyId {
        self.victim
    }
}

impl Adversary for Flooder {
    fn corrupted(&self) -> &BTreeSet<PartyId> {
        &self.corrupted
    }

    fn on_round(
        &mut self,
        _round: u64,
        _rushed: &BTreeMap<PartyId, Vec<Envelope>>,
        sender: &mut AdvSender<'_>,
    ) {
        if self.corrupted.contains(&self.victim) || self.victim.index() >= sender.n() {
            return;
        }
        let senders: Vec<PartyId> = self.corrupted.iter().copied().collect();
        for bad in senders {
            for _ in 0..self.per_round {
                let mut payload = vec![0u8; self.payload_len];
                self.prg.fill_bytes(&mut payload);
                sender.send_raw(bad, self.victim, payload);
            }
        }
    }
}

/// Runs an inner strategy until round `round`, then the corrupted parties
/// crash (fall permanently silent) — fail-stop mid-phase.
#[derive(Debug)]
pub struct CrashAt<A> {
    inner: A,
    round: u64,
}

impl<A: Adversary> CrashAt<A> {
    /// Crashes `inner`'s parties at the start of `round` (0-based within
    /// each phase).
    pub fn new(inner: A, round: u64) -> Self {
        CrashAt { inner, round }
    }
}

impl<A: Adversary> Adversary for CrashAt<A> {
    fn corrupted(&self) -> &BTreeSet<PartyId> {
        self.inner.corrupted()
    }

    fn on_round(
        &mut self,
        round: u64,
        rushed: &BTreeMap<PartyId, Vec<Envelope>>,
        sender: &mut AdvSender<'_>,
    ) {
        if round < self.round {
            self.inner.on_round(round, rushed, sender);
        }
    }
}

/// Runs several strategies side by side; the corrupt set is their union.
///
/// Each sub-strategy only observes rushed traffic addressed to *its own*
/// corrupted parties and only speaks through them, so e.g. half the
/// corrupt set can equivocate while the other half floods a victim.
pub struct Composed {
    parts: Vec<Box<dyn Adversary>>,
    union: BTreeSet<PartyId>,
}

impl Composed {
    /// Composes the given strategies.
    pub fn new(parts: Vec<Box<dyn Adversary>>) -> Self {
        let union = parts
            .iter()
            .flat_map(|p| p.corrupted().iter().copied())
            .collect();
        Composed { parts, union }
    }
}

impl fmt::Debug for Composed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Composed")
            .field("parts", &self.parts.len())
            .field("union", &self.union)
            .finish()
    }
}

impl Adversary for Composed {
    fn corrupted(&self) -> &BTreeSet<PartyId> {
        &self.union
    }

    fn on_round(
        &mut self,
        round: u64,
        rushed: &BTreeMap<PartyId, Vec<Envelope>>,
        sender: &mut AdvSender<'_>,
    ) {
        for part in &mut self.parts {
            let own: BTreeMap<PartyId, Vec<Envelope>> = rushed
                .iter()
                .filter(|(id, _)| part.corrupted().contains(id))
                .map(|(&id, envs)| (id, envs.clone()))
                .collect();
            part.on_round(round, &own, sender);
        }
    }
}

/// Activates strategies by round window: entry `(start, strategy)` runs
/// for rounds `start..next_start` (entries sorted by `start`; the last
/// runs to the end of the phase). Rounds before the first entry are
/// silent.
pub struct Schedule {
    entries: Vec<(u64, Box<dyn Adversary>)>,
    union: BTreeSet<PartyId>,
}

impl Schedule {
    /// Creates a schedule; entries need not be pre-sorted.
    pub fn new(mut entries: Vec<(u64, Box<dyn Adversary>)>) -> Self {
        entries.sort_by_key(|(start, _)| *start);
        let union = entries
            .iter()
            .flat_map(|(_, a)| a.corrupted().iter().copied())
            .collect();
        Schedule { entries, union }
    }
}

impl fmt::Debug for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let starts: Vec<u64> = self.entries.iter().map(|(s, _)| *s).collect();
        f.debug_struct("Schedule")
            .field("starts", &starts)
            .field("union", &self.union)
            .finish()
    }
}

impl Adversary for Schedule {
    fn corrupted(&self) -> &BTreeSet<PartyId> {
        &self.union
    }

    fn on_round(
        &mut self,
        round: u64,
        rushed: &BTreeMap<PartyId, Vec<Envelope>>,
        sender: &mut AdvSender<'_>,
    ) {
        let active = self
            .entries
            .iter_mut()
            .take_while(|(start, _)| *start <= round)
            .last();
        if let Some((_, strategy)) = active {
            strategy.on_round(round, rushed, sender);
        }
    }
}

/// A seeded per-link latency distribution: how many *ticks* (delivery
/// sub-rounds of the partial-synchrony driver) a message spends in
/// flight. Sampling is a pure function of the [`Prg`] handed in, so the
/// schedule replays bit-for-bit from the timing key.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LatencyDist {
    /// Every message takes exactly `delay` ticks.
    Fixed {
        /// The constant delay.
        delay: u64,
    },
    /// Uniform over `0..=max` ticks.
    Uniform {
        /// The inclusive maximum delay.
        max: u64,
    },
    /// Geometric: each extra tick of delay occurs with probability
    /// `num/den`, capped at `cap` ticks (the heavy-tail shape of queueing
    /// delay, truncated so schedules stay bounded).
    Geometric {
        /// Numerator of the per-tick continuation probability.
        num: u64,
        /// Denominator of the per-tick continuation probability (`>= 1`).
        den: u64,
        /// Inclusive maximum delay.
        cap: u64,
    },
}

impl LatencyDist {
    /// Draws one delay from the distribution.
    pub fn sample(&self, prg: &mut Prg) -> u64 {
        match self {
            LatencyDist::Fixed { delay } => *delay,
            LatencyDist::Uniform { max } => prg.gen_range(max + 1),
            LatencyDist::Geometric { num, den, cap } => {
                let mut d = 0;
                while d < *cap && prg.gen_range((*den).max(1)) < *num {
                    d += 1;
                }
                d
            }
        }
    }

    /// The largest delay the distribution can produce.
    pub fn max_delay(&self) -> u64 {
        match self {
            LatencyDist::Fixed { delay } => *delay,
            LatencyDist::Uniform { max } => *max,
            LatencyDist::Geometric { cap, .. } => *cap,
        }
    }

    fn label(&self) -> String {
        match self {
            LatencyDist::Fixed { delay } => format!("fix{delay}"),
            LatencyDist::Uniform { max } => format!("uni{max}"),
            LatencyDist::Geometric { num, den, cap } => format!("geo{num}of{den}c{cap}"),
        }
    }
}

/// The *timing* half of a fault strategy, extracted by
/// [`StrategySpec::timing_model`] and installed on the
/// [`crate::network::Network`] ([`crate::network::Network::set_timing`]).
///
/// All three axes are pure functions of `(key, link, tick)` — the model
/// holds no mutable state — so the delay queue behaves identically under
/// the sequential and threaded round engines:
///
/// * **latency** — per-link delays drawn from a [`LatencyDist`] through a
///   per-`(from, to, tick)` child PRG of the timing key;
/// * **partition** — an *asymmetric* cut: messages from parties
///   `>= split` to parties `< split` are dropped until the heal tick
///   (`None` = never heals). The reverse direction stays up, modelling
///   one-way reachability loss;
/// * **churn** — crash-recovery windows `(party, down, up)`: the party is
///   offline for ticks `down..up` (not stepped; mail expiring there is
///   lost) and rejoins at `up` with whatever state it had, resyncing from
///   the traffic and certificates it receives afterwards.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TimingModel {
    key: [u8; 32],
    latency: Option<LatencyDist>,
    partition: Option<(u64, Option<u64>)>,
    churn: Vec<(PartyId, u64, u64)>,
}

impl TimingModel {
    /// Assembles a model directly (harness/test entry point —
    /// [`StrategySpec::timing_model`] is the production path).
    pub fn new(
        key: [u8; 32],
        latency: Option<LatencyDist>,
        partition: Option<(u64, Option<u64>)>,
        churn: Vec<(PartyId, u64, u64)>,
    ) -> Self {
        TimingModel {
            key,
            latency,
            partition,
            churn,
        }
    }

    /// The delay (in ticks) of a message staged on `from -> to` at `tick`
    /// — a pure function of `(key, from, to, tick)`, identical however
    /// many worker threads ran the machines.
    pub fn delay(&self, from: PartyId, to: PartyId, tick: u64) -> u64 {
        let Some(dist) = &self.latency else {
            return 0;
        };
        let mut seed = Vec::with_capacity(56);
        seed.extend_from_slice(&self.key);
        seed.extend_from_slice(&from.0.to_le_bytes());
        seed.extend_from_slice(&to.0.to_le_bytes());
        seed.extend_from_slice(&tick.to_le_bytes());
        let mut prg = Prg::from_seed_label(&seed, "link-delay");
        dist.sample(&mut prg)
    }

    /// True when the partition drops `from -> to` traffic at `tick`.
    pub fn blocked(&self, from: PartyId, to: PartyId, tick: u64) -> bool {
        match self.partition {
            Some((split, heal)) => from.0 >= split && to.0 < split && heal.is_none_or(|h| tick < h),
            None => false,
        }
    }

    /// True when `p` is inside one of its crash windows at `tick`.
    pub fn offline(&self, p: PartyId, tick: u64) -> bool {
        self.churn
            .iter()
            .any(|&(q, down, up)| q == p && down <= tick && tick < up)
    }

    /// Every party offline at `tick`.
    pub fn offline_parties(&self, tick: u64) -> BTreeSet<PartyId> {
        self.churn
            .iter()
            .filter(|&&(_, down, up)| down <= tick && tick < up)
            .map(|&(p, _, _)| p)
            .collect()
    }

    /// The largest latency the model can assign (0 without a latency
    /// axis).
    pub fn max_delay(&self) -> u64 {
        self.latency.as_ref().map_or(0, |d| d.max_delay())
    }
}

/// A declarative, printable description of a fault-injection strategy —
/// the unit the chaos sweep enumerates. `Debug`-printing a spec together
/// with the seed and corruption plan is a complete reproduction recipe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StrategySpec {
    /// Corrupted parties stay silent (crash faults from round 0).
    Silent,
    /// [`Equivocator`] with pseudorandom payloads.
    Equivocate,
    /// [`FieldEquivocator`] forking one typed field of rushed messages.
    EquivocateTyped,
    /// [`Garbler`] with the given mutation mode.
    Garble(GarbleMode),
    /// [`Replayer`] with the given replay rate.
    Replay {
        /// Stale payloads re-sent per corrupted party per round.
        per_round: usize,
    },
    /// [`Flooder`] aimed at the honest party with the lowest id unless a
    /// victim is pinned.
    Flood {
        /// Victim party (ignored if corrupted; `None` = lowest honest id).
        victim: Option<PartyId>,
        /// Payload size per flood message.
        payload_len: usize,
        /// Flood messages per corrupted party per round.
        per_round: usize,
    },
    /// [`CrashAt`] wrapping an inner spec.
    CrashAt {
        /// The behaviour before the crash.
        inner: Box<StrategySpec>,
        /// Crash round (0-based within each phase).
        round: u64,
    },
    /// [`Composed`] over the sub-specs, splitting the corrupt set evenly
    /// between them (round-robin by corrupted-party rank).
    Compose(Vec<StrategySpec>),
    /// [`Schedule`] switching specs at the given round offsets.
    Phased(Vec<(u64, StrategySpec)>),
    /// Timing fault: seeded per-link latency. Content-side the corrupted
    /// parties stay silent; the timing side installs `dist` as the
    /// [`TimingModel`] latency axis and asks the runner for a
    /// partial-synchrony window of `budget` ticks per machine round —
    /// delays `<= budget - 1` arrive in the next machine round, longer
    /// ones straggle into later rounds or expire.
    Delay {
        /// Per-link delay distribution.
        dist: LatencyDist,
        /// Ticks per machine round granted to the round driver (`>= 1`).
        budget: u64,
    },
    /// Timing fault: an asymmetric partition. Messages from parties
    /// `>= split` to parties `< split` are dropped until tick `heal_at`
    /// (`None` = the cut never heals).
    Partition {
        /// Boundary party id of the cut.
        split: u64,
        /// Healing tick, or `None` for a permanent cut.
        heal_at: Option<u64>,
    },
    /// Timing fault: crash-recovery churn. The first `count` *honest*
    /// parties crash at tick `down` and rejoin at tick `up` with stale
    /// state, resyncing from the traffic and certificates they receive
    /// after rejoining.
    Churn {
        /// How many honest parties churn.
        count: usize,
        /// Crash tick (inclusive).
        down: u64,
        /// Rejoin tick (exclusive end of the offline window).
        up: u64,
    },
}

impl StrategySpec {
    /// A canonical catalogue of single and composed strategies for
    /// sweeps.
    pub fn catalogue() -> Vec<StrategySpec> {
        use StrategySpec::*;
        vec![
            Silent,
            Equivocate,
            EquivocateTyped,
            Garble(GarbleMode::BitFlip),
            Garble(GarbleMode::Truncate),
            Garble(GarbleMode::Both),
            Garble(GarbleMode::Field),
            Replay { per_round: 3 },
            Flood {
                victim: None,
                payload_len: 512,
                per_round: 8,
            },
            CrashAt {
                inner: Box::new(Equivocate),
                round: 4,
            },
            Compose(vec![
                Equivocate,
                Flood {
                    victim: None,
                    payload_len: 256,
                    per_round: 4,
                },
            ]),
            Phased(vec![
                (0, Garble(GarbleMode::BitFlip)),
                (3, Equivocate),
                (8, Replay { per_round: 2 }),
            ]),
            Delay {
                dist: LatencyDist::Uniform { max: 1 },
                budget: 2,
            },
            Delay {
                dist: LatencyDist::Uniform { max: 3 },
                budget: 4,
            },
            Delay {
                dist: LatencyDist::Geometric {
                    num: 1,
                    den: 2,
                    cap: 3,
                },
                budget: 4,
            },
            Partition {
                split: 24,
                heal_at: Some(4),
            },
            Churn {
                count: 2,
                down: 2,
                up: 10,
            },
        ]
    }

    /// Builds the adversary controlling `corrupted` on an `n`-party
    /// network, deterministically from `prg`.
    pub fn build(&self, corrupted: BTreeSet<PartyId>, n: usize, prg: &Prg) -> Box<dyn Adversary> {
        match self {
            StrategySpec::Silent => Box::new(SilentAdversary::new(corrupted)),
            StrategySpec::Equivocate => {
                Box::new(Equivocator::new(corrupted, prg.child("equivocate", 0)))
            }
            StrategySpec::EquivocateTyped => Box::new(FieldEquivocator::new(
                corrupted,
                prg.child("equivocate-typed", 0),
            )),
            StrategySpec::Garble(mode) => {
                Box::new(Garbler::new(corrupted, *mode, prg.child("garble", 0)))
            }
            StrategySpec::Replay { per_round } => {
                Box::new(Replayer::new(corrupted, *per_round, prg.child("replay", 0)))
            }
            StrategySpec::Flood {
                victim,
                payload_len,
                per_round,
            } => {
                let victim = (*victim)
                    .filter(|v| !corrupted.contains(v) && v.index() < n)
                    .or_else(|| (0..n as u64).map(PartyId).find(|p| !corrupted.contains(p)))
                    .unwrap_or(PartyId(0));
                Box::new(Flooder::new(
                    corrupted,
                    victim,
                    *payload_len,
                    *per_round,
                    prg.child("flood", 0),
                ))
            }
            StrategySpec::CrashAt { inner, round } => Box::new(CrashAt::new(
                BoxedAdversary(inner.build(corrupted, n, &prg.child("crash-inner", 0))),
                *round,
            )),
            StrategySpec::Compose(parts) => {
                let ids: Vec<PartyId> = corrupted.iter().copied().collect();
                let built = parts
                    .iter()
                    .enumerate()
                    .map(|(i, spec)| {
                        let share: BTreeSet<PartyId> = ids
                            .iter()
                            .enumerate()
                            .filter(|(rank, _)| rank % parts.len() == i)
                            .map(|(_, &p)| p)
                            .collect();
                        spec.build(share, n, &prg.child("compose", i as u64))
                    })
                    .collect();
                Box::new(Composed::new(built))
            }
            StrategySpec::Phased(entries) => {
                let built = entries
                    .iter()
                    .enumerate()
                    .map(|(i, (start, spec))| {
                        (
                            *start,
                            spec.build(corrupted.clone(), n, &prg.child("phased", i as u64)),
                        )
                    })
                    .collect();
                Box::new(Schedule::new(built))
            }
            // Pure timing strategies have no content-side behaviour: their
            // corrupted share (if any) stays silent, and the timing axes
            // are installed on the network via [`StrategySpec::timing_model`].
            StrategySpec::Delay { .. }
            | StrategySpec::Partition { .. }
            | StrategySpec::Churn { .. } => Box::new(SilentAdversary::new(corrupted)),
        }
    }

    /// Extracts the timing half of the spec, or `None` when the spec has
    /// no timing axis. `corrupted` and `n` resolve churn victims (the
    /// first `count` honest ids — churn models *honest* crash-recovery,
    /// never extra adversarial power), and `prg` derives the timing key
    /// that seeds every per-link delay draw. [`StrategySpec::CrashAt`] and
    /// [`StrategySpec::Compose`] recurse; [`StrategySpec::Phased`] does
    /// not (its schedule already reinterprets rounds, and nesting the two
    /// clocks would make windows unreadable).
    pub fn timing_model(
        &self,
        corrupted: &BTreeSet<PartyId>,
        n: usize,
        prg: &Prg,
    ) -> Option<TimingModel> {
        let mut latency = None;
        let mut partition = None;
        let mut churn = Vec::new();
        self.collect_timing(corrupted, n, &mut latency, &mut partition, &mut churn);
        if latency.is_none() && partition.is_none() && churn.is_empty() {
            return None;
        }
        let mut key = [0u8; 32];
        prg.child("timing-key", 0).fill_bytes(&mut key);
        Some(TimingModel {
            key,
            latency,
            partition,
            churn,
        })
    }

    fn collect_timing(
        &self,
        corrupted: &BTreeSet<PartyId>,
        n: usize,
        latency: &mut Option<LatencyDist>,
        partition: &mut Option<(u64, Option<u64>)>,
        churn: &mut Vec<(PartyId, u64, u64)>,
    ) {
        match self {
            StrategySpec::Delay { dist, .. } => *latency = Some(*dist),
            StrategySpec::Partition { split, heal_at } => *partition = Some((*split, *heal_at)),
            StrategySpec::Churn { count, down, up } => {
                let victims = (0..n as u64)
                    .map(PartyId)
                    .filter(|p| !corrupted.contains(p))
                    .take(*count);
                churn.extend(victims.map(|p| (p, *down, *up)));
            }
            StrategySpec::CrashAt { inner, .. } => {
                inner.collect_timing(corrupted, n, latency, partition, churn);
            }
            StrategySpec::Compose(parts) => {
                for part in parts {
                    part.collect_timing(corrupted, n, latency, partition, churn);
                }
            }
            _ => {}
        }
    }

    /// Ticks of delivery window per machine round the round driver should
    /// grant — the max `budget` over every [`StrategySpec::Delay`] in the
    /// tree, and 1 (lockstep) when the spec carries no latency.
    pub fn round_budget(&self) -> u64 {
        let budget = match self {
            StrategySpec::Delay { budget, .. } => *budget,
            StrategySpec::CrashAt { inner, .. } => inner.round_budget(),
            StrategySpec::Compose(parts) => {
                parts.iter().map(|p| p.round_budget()).max().unwrap_or(1)
            }
            _ => 1,
        };
        budget.max(1)
    }

    /// Extra machine rounds a phase budget should allow so that
    /// heal/rejoin events scheduled in tick time can still land inside
    /// the phase: ceil(window-end / ticks), capped at 64. Zero for specs
    /// without partition-heal or churn windows.
    pub fn round_slack(&self, ticks: u64) -> u64 {
        let t = ticks.max(1);
        match self {
            StrategySpec::Churn { up, .. } => up.div_ceil(t).min(64),
            StrategySpec::Partition {
                heal_at: Some(h), ..
            } => h.div_ceil(t).min(64),
            StrategySpec::CrashAt { inner, .. } => inner.round_slack(ticks),
            StrategySpec::Compose(parts) => parts
                .iter()
                .map(|p| p.round_slack(ticks))
                .max()
                .unwrap_or(0),
            _ => 0,
        }
    }

    /// A short stable label for tables and repro lines.
    pub fn label(&self) -> String {
        match self {
            StrategySpec::Silent => "silent".into(),
            StrategySpec::Equivocate => "equivocate".into(),
            StrategySpec::EquivocateTyped => "equivocate-typed".into(),
            StrategySpec::Garble(GarbleMode::BitFlip) => "garble-bitflip".into(),
            StrategySpec::Garble(GarbleMode::Truncate) => "garble-truncate".into(),
            StrategySpec::Garble(GarbleMode::Both) => "garble-both".into(),
            StrategySpec::Garble(GarbleMode::Field) => "garble-field".into(),
            StrategySpec::Replay { per_round } => format!("replay-{per_round}"),
            StrategySpec::Flood {
                payload_len,
                per_round,
                ..
            } => format!("flood-{payload_len}x{per_round}"),
            StrategySpec::CrashAt { inner, round } => {
                format!("crash@{round}({})", inner.label())
            }
            StrategySpec::Compose(parts) => {
                let labels: Vec<String> = parts.iter().map(|p| p.label()).collect();
                format!("compose[{}]", labels.join("+"))
            }
            StrategySpec::Phased(entries) => {
                let labels: Vec<String> = entries
                    .iter()
                    .map(|(r, s)| format!("{r}:{}", s.label()))
                    .collect();
                format!("phased[{}]", labels.join(","))
            }
            StrategySpec::Delay { dist, budget } => {
                format!("delay-{}-b{budget}", dist.label())
            }
            StrategySpec::Partition { split, heal_at } => match heal_at {
                Some(h) => format!("partition-{split}-heal{h}"),
                None => format!("partition-{split}-forever"),
            },
            StrategySpec::Churn { count, down, up } => {
                format!("churn-{count}@{down}-{up}")
            }
        }
    }
}

/// Adapter giving a boxed adversary a by-value [`Adversary`] impl (for
/// wrapping inside generic combinators like [`CrashAt`]).
struct BoxedAdversary(Box<dyn Adversary>);

impl fmt::Debug for BoxedAdversary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("BoxedAdversary")
            .field(self.0.corrupted())
            .finish()
    }
}

impl Adversary for BoxedAdversary {
    fn corrupted(&self) -> &BTreeSet<PartyId> {
        self.0.corrupted()
    }
    fn on_round(
        &mut self,
        round: u64,
        rushed: &BTreeMap<PartyId, Vec<Envelope>>,
        sender: &mut AdvSender<'_>,
    ) {
        self.0.on_round(round, rushed, sender);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::runner::{run_phase, Machine};
    use pba_crypto::codec::encode_to_vec;

    /// An honest machine: broadcasts its id every round, records the
    /// distinct payloads it processed, done after 5 rounds.
    struct Echo {
        id: PartyId,
        n: u64,
        seen: BTreeSet<Vec<u8>>,
        rounds: u64,
    }

    impl Machine for Echo {
        fn on_round(&mut self, ctx: &mut crate::network::Ctx<'_>, inbox: &[Envelope]) {
            for env in inbox {
                if let Some(v) = ctx.read::<Vec<u8>>(env) {
                    self.seen.insert(v);
                }
            }
            for to in (0..self.n).map(PartyId) {
                if to != self.id {
                    ctx.send(to, &vec![self.id.0 as u8]);
                }
            }
            self.rounds += 1;
        }
        fn is_done(&self) -> bool {
            self.rounds >= 5
        }
    }

    fn run_spec(spec: &StrategySpec, n: u64, corrupt: &[u64]) -> Network {
        let corrupted: BTreeSet<PartyId> = corrupt.iter().copied().map(PartyId).collect();
        let mut adversary = spec.build(corrupted.clone(), n as usize, &Prg::from_seed_bytes(b"f"));
        let mut net = Network::new(n as usize);
        let mut machines: BTreeMap<PartyId, Box<dyn Machine + Send>> = (0..n)
            .map(PartyId)
            .filter(|i| !corrupted.contains(i))
            .map(|i| {
                (
                    i,
                    Box::new(Echo {
                        id: i,
                        n,
                        seen: BTreeSet::new(),
                        rounds: 0,
                    }) as Box<dyn Machine + Send>,
                )
            })
            .collect();
        let out = run_phase(&mut net, &mut machines, adversary.as_mut(), 10);
        assert!(out.completed, "{} hung the echo phase", spec.label());
        net
    }

    #[test]
    fn catalogue_runs_against_echo_machines() {
        for spec in StrategySpec::catalogue() {
            run_spec(&spec, 6, &[4, 5]);
        }
    }

    #[test]
    fn equivocator_sends_distinct_payloads() {
        let corrupted: BTreeSet<PartyId> = [PartyId(3)].into();
        let mut adv = Equivocator::new(corrupted.clone(), Prg::from_seed_bytes(b"e"));
        let mut net = Network::new(4);
        {
            let mut sender = AdvSender::new(&mut net, &corrupted);
            adv.on_round(0, &BTreeMap::new(), &mut sender);
        }
        let staged = net.take_staged();
        assert_eq!(staged.len(), 3);
        let payloads: BTreeSet<&[u8]> = staged.iter().map(|e| e.payload.as_slice()).collect();
        assert!(payloads.len() > 1, "equivocator sent uniform payloads");
    }

    #[test]
    fn equivocator_palette_cycles_by_receiver() {
        let corrupted: BTreeSet<PartyId> = [PartyId(3)].into();
        let palette = vec![vec![0u8], vec![1u8]];
        let mut adv =
            Equivocator::with_palette(corrupted.clone(), palette, Prg::from_seed_bytes(b"e"));
        let mut net = Network::new(4);
        {
            let mut sender = AdvSender::new(&mut net, &corrupted);
            adv.on_round(0, &BTreeMap::new(), &mut sender);
        }
        for env in net.take_staged() {
            assert_eq!(env.payload, vec![(env.to.index() % 2) as u8]);
        }
    }

    #[test]
    fn garbler_mutants_differ_from_original() {
        let corrupted: BTreeSet<PartyId> = [PartyId(2)].into();
        let mut adv = Garbler::new(
            corrupted.clone(),
            GarbleMode::Both,
            Prg::from_seed_bytes(b"g"),
        );
        let original = encode_to_vec(&42u64);
        let mut net = Network::new(3);
        let rushed: BTreeMap<PartyId, Vec<Envelope>> = [(
            PartyId(2),
            vec![Envelope::new(PartyId(0), PartyId(2), original.clone())],
        )]
        .into();
        {
            let mut sender = AdvSender::new(&mut net, &corrupted);
            adv.on_round(0, &rushed, &mut sender);
        }
        let staged = net.take_staged();
        assert!(!staged.is_empty());
        for env in &staged {
            assert_ne!(env.payload, original, "garbler forwarded unmodified bytes");
        }
    }

    /// A wire-valid `SampleResponse` payload: `{tag, step}` header plus a
    /// one-byte body — the smallest registered schema to mutate against.
    fn typed_payload() -> Vec<u8> {
        vec![
            crate::wire::tag::SAMPLE_RESPONSE,
            crate::wire::step::NONE,
            0x07,
        ]
    }

    #[test]
    fn field_garbler_mutants_stay_wire_valid() {
        let corrupted: BTreeSet<PartyId> = [PartyId(2)].into();
        let mut adv = Garbler::new(
            corrupted.clone(),
            GarbleMode::Field,
            Prg::from_seed_bytes(b"gf"),
        );
        let original = typed_payload();
        let mut net = Network::new(4);
        let rushed: BTreeMap<PartyId, Vec<Envelope>> = [(
            PartyId(2),
            vec![Envelope::new(PartyId(0), PartyId(2), original.clone())],
        )]
        .into();
        {
            let mut sender = AdvSender::new(&mut net, &corrupted);
            adv.on_round(0, &rushed, &mut sender);
        }
        let staged = net.take_staged();
        assert!(!staged.is_empty());
        for env in &staged {
            assert_ne!(
                env.payload, original,
                "field garbler forwarded unmodified bytes"
            );
            assert_eq!(
                &env.payload[..2],
                &original[..2],
                "field mutation must keep the wire header"
            );
            assert_eq!(
                crate::wire::peek_tag(&env.payload),
                crate::wire::tag::SAMPLE_RESPONSE,
                "field mutant no longer classifies as its message type"
            );
        }
    }

    #[test]
    fn field_garbler_falls_back_to_bitflip_on_untyped_bytes() {
        let corrupted: BTreeSet<PartyId> = [PartyId(2)].into();
        let mut adv = Garbler::new(
            corrupted.clone(),
            GarbleMode::Field,
            Prg::from_seed_bytes(b"gu"),
        );
        let original = vec![0xffu8, 0xff, 0xff]; // unknown tag: no schema
        let mut net = Network::new(3);
        let rushed: BTreeMap<PartyId, Vec<Envelope>> = [(
            PartyId(2),
            vec![Envelope::new(PartyId(0), PartyId(2), original.clone())],
        )]
        .into();
        {
            let mut sender = AdvSender::new(&mut net, &corrupted);
            adv.on_round(0, &rushed, &mut sender);
        }
        let staged = net.take_staged();
        assert!(!staged.is_empty());
        for env in &staged {
            assert_ne!(env.payload, original);
            assert_eq!(env.payload.len(), original.len(), "fallback is a bit flip");
        }
    }

    #[test]
    fn field_equivocator_forks_typed_payloads() {
        let corrupted: BTreeSet<PartyId> = [PartyId(3)].into();
        let mut adv = FieldEquivocator::new(corrupted.clone(), Prg::from_seed_bytes(b"fe"));
        let original = typed_payload();
        let mut net = Network::new(4);
        let rushed: BTreeMap<PartyId, Vec<Envelope>> = [(
            PartyId(3),
            vec![Envelope::new(PartyId(0), PartyId(3), original.clone())],
        )]
        .into();
        {
            let mut sender = AdvSender::new(&mut net, &corrupted);
            adv.on_round(0, &rushed, &mut sender);
        }
        let staged = net.take_staged();
        assert_eq!(staged.len(), 2, "one fork = exactly two sends");
        assert_ne!(
            staged[0].to, staged[1].to,
            "fork must target distinct parties"
        );
        let payloads: Vec<&Vec<u8>> = staged.iter().map(|e| &e.payload).collect();
        assert!(
            payloads.contains(&&original),
            "one side of the fork keeps the original encoding"
        );
        let mutant = payloads
            .iter()
            .find(|p| ***p != original)
            .expect("other side of the fork is mutated");
        assert_eq!(
            crate::wire::peek_tag(mutant),
            crate::wire::tag::SAMPLE_RESPONSE,
            "forked payload must still be wire-valid"
        );
        for env in &staged {
            assert!(!corrupted.contains(&env.to));
        }
    }

    #[test]
    fn replayer_only_replays_previously_seen() {
        let corrupted: BTreeSet<PartyId> = [PartyId(2)].into();
        let mut adv = Replayer::new(corrupted.clone(), 2, Prg::from_seed_bytes(b"r"));
        let mut net = Network::new(3);
        let payload = vec![7u8; 9];
        let rushed: BTreeMap<PartyId, Vec<Envelope>> = [(
            PartyId(2),
            vec![Envelope::new(PartyId(0), PartyId(2), payload.clone())],
        )]
        .into();
        {
            let mut sender = AdvSender::new(&mut net, &corrupted);
            adv.on_round(0, &rushed, &mut sender);
        }
        assert!(net.take_staged().is_empty(), "replayed before recording");
        {
            let mut sender = AdvSender::new(&mut net, &corrupted);
            adv.on_round(1, &BTreeMap::new(), &mut sender);
        }
        let staged = net.take_staged();
        assert!(!staged.is_empty());
        assert!(staged.iter().all(|e| e.payload == payload));
        assert!(staged.iter().all(|e| !corrupted.contains(&e.to)));
    }

    #[test]
    fn crash_at_silences_inner() {
        let corrupted: BTreeSet<PartyId> = [PartyId(1)].into();
        let flood = Flooder::new(
            corrupted.clone(),
            PartyId(0),
            16,
            2,
            Prg::from_seed_bytes(b"c"),
        );
        let mut adv = CrashAt::new(flood, 2);
        let mut net = Network::new(2);
        for round in 0..4 {
            {
                let mut sender = AdvSender::new(&mut net, &corrupted);
                adv.on_round(round, &BTreeMap::new(), &mut sender);
            }
            let sent = net.take_staged().len();
            if round < 2 {
                assert_eq!(sent, 2, "pre-crash round {round}");
            } else {
                assert_eq!(sent, 0, "post-crash round {round}");
            }
        }
    }

    #[test]
    fn composed_partitions_and_unions() {
        let spec = StrategySpec::Compose(vec![StrategySpec::Equivocate, StrategySpec::Silent]);
        let corrupted: BTreeSet<PartyId> = [PartyId(4), PartyId(5)].into();
        let adv = spec.build(corrupted.clone(), 6, &Prg::from_seed_bytes(b"u"));
        assert_eq!(adv.corrupted(), &corrupted);
    }

    #[test]
    fn schedule_switches_by_round() {
        let corrupted: BTreeSet<PartyId> = [PartyId(1)].into();
        let loud = Flooder::new(
            corrupted.clone(),
            PartyId(0),
            8,
            1,
            Prg::from_seed_bytes(b"s1"),
        );
        let mut adv = Schedule::new(vec![(2, Box::new(loud) as Box<dyn Adversary>)]);
        let mut net = Network::new(2);
        for round in 0..4u64 {
            {
                let mut sender = AdvSender::new(&mut net, &corrupted);
                adv.on_round(round, &BTreeMap::new(), &mut sender);
            }
            let sent = net.take_staged().len();
            assert_eq!(sent, usize::from(round >= 2), "round {round}");
        }
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        let spec = StrategySpec::Equivocate;
        let run = |seed: &[u8]| {
            let corrupted: BTreeSet<PartyId> = [PartyId(3)].into();
            let mut adv = spec.build(corrupted.clone(), 4, &Prg::from_seed_bytes(seed));
            let mut net = Network::new(4);
            {
                let mut sender = AdvSender::new(&mut net, &corrupted);
                adv.on_round(0, &BTreeMap::new(), &mut sender);
            }
            net.take_staged()
        };
        assert_eq!(run(b"a"), run(b"a"));
        assert_ne!(run(b"a"), run(b"b"));
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StrategySpec::Equivocate.label(), "equivocate");
        assert_eq!(StrategySpec::EquivocateTyped.label(), "equivocate-typed");
        assert_eq!(
            StrategySpec::Garble(GarbleMode::Field).label(),
            "garble-field"
        );
        assert_eq!(
            StrategySpec::CrashAt {
                inner: Box::new(StrategySpec::Garble(GarbleMode::Both)),
                round: 3
            }
            .label(),
            "crash@3(garble-both)"
        );
        assert_eq!(
            StrategySpec::Delay {
                dist: LatencyDist::Fixed { delay: 1 },
                budget: 2
            }
            .label(),
            "delay-fix1-b2"
        );
        assert_eq!(
            StrategySpec::Delay {
                dist: LatencyDist::Uniform { max: 3 },
                budget: 4
            }
            .label(),
            "delay-uni3-b4"
        );
        assert_eq!(
            StrategySpec::Delay {
                dist: LatencyDist::Geometric {
                    num: 1,
                    den: 2,
                    cap: 3
                },
                budget: 4
            }
            .label(),
            "delay-geo1of2c3-b4"
        );
        assert_eq!(
            StrategySpec::Partition {
                split: 24,
                heal_at: Some(4)
            }
            .label(),
            "partition-24-heal4"
        );
        assert_eq!(
            StrategySpec::Partition {
                split: 24,
                heal_at: None
            }
            .label(),
            "partition-24-forever"
        );
        assert_eq!(
            StrategySpec::Churn {
                count: 2,
                down: 2,
                up: 10
            }
            .label(),
            "churn-2@2-10"
        );
        let labels: BTreeSet<String> = StrategySpec::catalogue()
            .iter()
            .map(|s| s.label())
            .collect();
        assert_eq!(
            labels.len(),
            StrategySpec::catalogue().len(),
            "catalogue labels collide"
        );
        // Labels stay space-free: the chaos case key is space-separated.
        for spec in StrategySpec::catalogue() {
            assert!(
                !spec.label().contains(' '),
                "label {:?} contains a space",
                spec.label()
            );
        }
    }

    #[test]
    fn link_delays_are_pure_and_seed_deterministic() {
        let spec = StrategySpec::Delay {
            dist: LatencyDist::Uniform { max: 3 },
            budget: 4,
        };
        let model = |seed: &[u8]| {
            spec.timing_model(&BTreeSet::new(), 8, &Prg::from_seed_bytes(seed))
                .expect("delay spec has a timing axis")
        };
        let (a, b) = (model(b"t"), model(b"t"));
        let mut saw_nonzero = false;
        for from in (0..8).map(PartyId) {
            for to in (0..8).map(PartyId) {
                for tick in 0..16 {
                    let d = a.delay(from, to, tick);
                    // Pure in (link, tick): resampling never diverges.
                    assert_eq!(d, a.delay(from, to, tick));
                    assert_eq!(d, b.delay(from, to, tick));
                    assert!(d <= 3);
                    saw_nonzero |= d > 0;
                }
            }
        }
        assert!(saw_nonzero, "uniform(0..=3) never drew a delay");
        // A different timing key reshuffles the schedule.
        let c = model(b"u");
        let differs = (0..16).any(|tick| {
            a.delay(PartyId(0), PartyId(1), tick) != c.delay(PartyId(0), PartyId(1), tick)
        });
        assert!(differs, "delay schedule ignores the timing key");
    }

    #[test]
    fn geometric_delays_respect_the_cap() {
        let dist = LatencyDist::Geometric {
            num: 9,
            den: 10,
            cap: 5,
        };
        let mut prg = Prg::from_seed_bytes(b"geo");
        let mut hit_cap = false;
        for _ in 0..200 {
            let d = dist.sample(&mut prg);
            assert!(d <= 5);
            hit_cap |= d == 5;
        }
        assert!(hit_cap, "9/10 geometric never reached its cap in 200 draws");
    }

    #[test]
    fn partition_blocks_one_direction_until_heal() {
        let spec = StrategySpec::Partition {
            split: 4,
            heal_at: Some(3),
        };
        let model = spec
            .timing_model(&BTreeSet::new(), 8, &Prg::from_seed_bytes(b"t"))
            .expect("partition spec has a timing axis");
        let (low, high) = (PartyId(1), PartyId(5));
        for tick in 0..3 {
            assert!(model.blocked(high, low, tick), "cut is down at tick {tick}");
            assert!(!model.blocked(low, high, tick), "cut must be asymmetric");
            assert!(!model.blocked(high, PartyId(6), tick));
        }
        for tick in 3..8 {
            assert!(!model.blocked(high, low, tick), "cut healed at tick 3");
        }
        let forever = StrategySpec::Partition {
            split: 4,
            heal_at: None,
        }
        .timing_model(&BTreeSet::new(), 8, &Prg::from_seed_bytes(b"t"))
        .expect("partition spec has a timing axis");
        assert!(forever.blocked(high, low, 1_000_000));
    }

    #[test]
    fn churn_victims_are_honest_and_windows_close() {
        let corrupted: BTreeSet<PartyId> = [PartyId(0), PartyId(2)].into();
        let spec = StrategySpec::Churn {
            count: 2,
            down: 3,
            up: 7,
        };
        let model = spec
            .timing_model(&corrupted, 8, &Prg::from_seed_bytes(b"t"))
            .expect("churn spec has a timing axis");
        // Victims skip corrupted ids: the first two honest are 1 and 3.
        for victim in [PartyId(1), PartyId(3)] {
            assert!(!model.offline(victim, 2));
            assert!(model.offline(victim, 3));
            assert!(model.offline(victim, 6));
            assert!(!model.offline(victim, 7), "rejoined at tick 7");
        }
        assert!(!model.offline(PartyId(0), 4), "corrupted never churns");
        assert!(!model.offline(PartyId(4), 4), "only `count` victims churn");
        assert_eq!(
            model.offline_parties(5),
            [PartyId(1), PartyId(3)].into_iter().collect()
        );
        assert!(model.offline_parties(9).is_empty());
    }

    #[test]
    fn timing_extraction_recurses_and_reports_budget_and_slack() {
        let composed = StrategySpec::Compose(vec![
            StrategySpec::Equivocate,
            StrategySpec::CrashAt {
                inner: Box::new(StrategySpec::Delay {
                    dist: LatencyDist::Fixed { delay: 1 },
                    budget: 3,
                }),
                round: 5,
            },
            StrategySpec::Churn {
                count: 1,
                down: 0,
                up: 12,
            },
        ]);
        let model = composed
            .timing_model(&BTreeSet::new(), 6, &Prg::from_seed_bytes(b"t"))
            .expect("composed spec carries timing axes");
        assert_eq!(model.max_delay(), 1);
        assert!(model.offline(PartyId(0), 11));
        assert_eq!(composed.round_budget(), 3);
        assert_eq!(composed.round_slack(3), 4); // ceil(12 / 3)
        assert_eq!(composed.round_slack(1), 12);
        // Content-only specs have no timing half at all.
        assert!(StrategySpec::Equivocate
            .timing_model(&BTreeSet::new(), 6, &Prg::from_seed_bytes(b"t"))
            .is_none());
        assert_eq!(StrategySpec::Equivocate.round_budget(), 1);
        assert_eq!(StrategySpec::Equivocate.round_slack(1), 0);
    }
}
