//! The typed wire protocol: a stable one-byte tag registry, a tagged
//! `{tag, step}` envelope header, and a single hardened decode entry point.
//!
//! Every typed payload on the simulated network is self-describing: its
//! first byte names the message type ([`tag`]), its second byte names the
//! Figure 3 step the traffic belongs to ([`step`]). This buys three things:
//!
//! 1. **Per-step byte attribution.** [`Network::stage`](crate::network::Network::stage)
//!    and [`Ctx::charge_receive`](crate::network::Ctx::charge_receive) peek
//!    at the header ([`peek_tag`]) and bin every byte into the per-(party,
//!    tag) dimension of [`crate::metrics::MetricsTable`], whose marginals
//!    sum exactly to the pre-existing per-party totals.
//! 2. **Structure-aware fault injection.** The registry carries a
//!    declarative body schema per tag ([`FieldSpec`]), so
//!    [`mutate_field`] can decode an honest payload, mutate exactly one
//!    typed field, and re-encode a well-formed — but wrong — message.
//! 3. **Uniform hardening.** [`decode_msg`] is the single decode entry
//!    point for typed traffic: length caps, unknown-tag, wrong-step, and
//!    trailing-byte rejection happen once, not per call site.
//!
//! Tags are a compatibility surface: **adding** a tag is fine, renumbering
//! an existing one breaks recorded attributions (a golden snapshot test
//! pins the registry). Tag `0x00` is reserved for raw/untyped traffic and
//! never carries a typed body.

use pba_crypto::codec::{self, read_varint, write_varint, CodecError, Decode, Encode, Reader};
use pba_crypto::prg::Prg;

/// Upper bound on any single typed payload (header + body), enforced by
/// [`decode_msg`]. Generously above every honest message while stopping
/// hostile multi-gigabyte envelopes at the door.
pub const MAX_WIRE_BYTES: usize = 1 << 20;

/// Length of the `{tag, step}` wire header.
pub const HEADER_LEN: usize = 2;

/// The stable one-byte tag registry. Values are append-only: renumbering
/// an existing tag fails the golden registry snapshot test.
pub mod tag {
    /// Raw / untyped traffic (reserved; never a typed body).
    pub const RAW: u8 = 0x00;
    /// `PkMsg<u8>` — phase-king BA over bit values.
    pub const PK_MSG_U8: u8 = 0x01;
    /// `PkMsg<Digest>` — phase-king BA over digest values (coin agreement).
    pub const PK_MSG_DIGEST: u8 = 0x02;
    /// `CoinMsg` — commit/echo/reveal common-coin toss.
    pub const COIN: u8 = 0x03;
    /// `VssCoinMsg` — VSS-based common-coin toss (deal/echo).
    pub const VSS_COIN: u8 = 0x04;
    /// `DsMessage` — Dolev–Strong signature-chain broadcast.
    pub const DOLEV_STRONG: u8 = 0x05;
    /// `ValueSeed` — Fig. 3 step 3 `(epoch, value, seed)` dissemination.
    pub const VALUE_SEED: u8 = 0x06;
    /// `Certificate` — Fig. 3 step 6 certified `(epoch, value, seed, sig)`.
    pub const CERTIFICATE: u8 = 0x07;
    /// Attribution-only: Fig. 3 step 4 signature submission.
    pub const SIG_SUBMIT: u8 = 0x08;
    /// Attribution-only: Fig. 3 step 5b intra-committee signature-set exchange.
    pub const AGGR_SHARE: u8 = 0x09;
    /// Attribution-only: Fig. 3 step 5 constant-round MPC output delivery.
    pub const AGGR_MPC: u8 = 0x0a;
    /// Attribution-only: Fig. 3 steps 7–8 PRF-based certificate spreading.
    pub const SPREAD: u8 = 0x0b;
    /// Attribution-only: Fig. 3 step 1 tree/committee establishment.
    pub const ESTABLISH: u8 = 0x0c;
    /// Attribution-only: robust tree input fan-in.
    pub const FANIN: u8 = 0x0d;
    /// `SampleQuery` — √n-sampling baseline query.
    pub const SAMPLE_QUERY: u8 = 0x0e;
    /// `SampleResponse` — √n-sampling baseline response.
    pub const SAMPLE_RESPONSE: u8 = 0x0f;
    /// `BroadcastInput` — broadcast sender's input transfer to the supreme
    /// committee.
    pub const BCAST_INPUT: u8 = 0x10;
    /// `MvInput` — multi-value (ℓ-byte) input fan-in up the tree.
    pub const MV_INPUT: u8 = 0x11;
}

/// Nominal Figure 3 step numbers carried in the header's second byte.
pub mod step {
    /// Not part of Fig. 3 (baselines, raw traffic).
    pub const NONE: u8 = 0;
    /// Step 1: tree/committee establishment.
    pub const ESTABLISH: u8 = 1;
    /// Step 2: supreme-committee BA (phase king + common coin).
    pub const COMMITTEE_BA: u8 = 2;
    /// Step 3: value/seed dissemination down the tree.
    pub const DISSEMINATE: u8 = 3;
    /// Step 4: signature submission up the tree.
    pub const SIG_SUBMIT: u8 = 4;
    /// Step 5: signature aggregation (`f_aggr-sig`).
    pub const AGGREGATE: u8 = 5;
    /// Step 6: certificate formation and descent.
    pub const CERTIFY: u8 = 6;
    /// Steps 7–8: PRF-based spreading and output.
    pub const SPREAD: u8 = 7;
}

/// One typed field inside a message body — the declarative schema the
/// structure-aware fault layer mutates against. Lengths and enum variant
/// selectors are *structural* (never mutated); leaves are fair game.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FieldSpec {
    /// Fixed-width raw bytes (digests, hash preimages).
    Bytes(usize),
    /// A canonical prime-field element (8 bytes LE, value < modulus).
    Fp,
    /// A canonical LEB128 varint (party ids).
    Varint,
    /// A fixed-width little-endian `u64`.
    U64,
    /// A single byte value.
    Byte,
    /// A varint-length-prefixed byte string.
    VarBytes,
    /// A varint-count-prefixed sequence; each element is the given field
    /// list in order.
    Seq(&'static [FieldSpec]),
}

/// The body layout behind a tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BodySchema {
    /// A struct: the fields in order.
    Struct(&'static [FieldSpec]),
    /// An enum: a leading variant byte selects one field list.
    Enum(&'static [&'static [FieldSpec]]),
    /// No typed body — attribution-only tags and raw traffic.
    Opaque,
}

/// One registry row: the stable tag, its message, its Fig. 3 step, the
/// crate that owns the message type, and the body schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TagInfo {
    /// Stable one-byte tag.
    pub tag: u8,
    /// Message type name (or attribution bucket name).
    pub name: &'static str,
    /// Nominal Fig. 3 step (see [`step`]); `0` when outside Fig. 3.
    pub step: u8,
    /// Human-readable step label used in breakdown tables.
    pub step_label: &'static str,
    /// Crate owning the message type.
    pub crate_name: &'static str,
    /// Declarative body layout for structure-aware mutation.
    pub schema: BodySchema,
}

use FieldSpec as F;

const PK_U8_VARIANTS: &[&[FieldSpec]] = &[&[F::Byte], &[F::Byte], &[F::Byte]];
const PK_DIGEST_VARIANTS: &[&[FieldSpec]] = &[&[F::Bytes(32)], &[F::Bytes(32)], &[F::Bytes(32)]];
const COIN_VARIANTS: &[&[FieldSpec]] = &[
    // Commit(Digest)
    &[F::Bytes(32)],
    // Echo(Vec<(PartyId, Digest)>)
    &[F::Seq(&[F::Varint, F::Bytes(32)])],
    // Reveal([u8; 32], [u8; 32])
    &[F::Bytes(32), F::Bytes(32)],
];
const VSS_COIN_VARIANTS: &[&[FieldSpec]] = &[
    // Deal(Fp)
    &[F::Fp],
    // Echo(Vec<(u64, Fp)>) — positions are u64 *values*, not ids.
    &[F::Seq(&[F::U64, F::Fp])],
];
// DsMessage { value: u8, chain: Vec<ChainLink> }, ChainLink flattened:
// signer PartyId, then MssSignature { idx, vk, lamport { revealed,
// complements }, merkle { leaf_index, path } }.
const DS_FIELDS: &[FieldSpec] = &[
    F::Byte,
    F::Seq(&[
        F::Varint,
        F::U64,
        F::Bytes(32),
        F::Seq(&[F::Bytes(32)]),
        F::Seq(&[F::Bytes(32)]),
        F::U64,
        F::Seq(&[F::Bytes(32)]),
    ]),
];
const VALUE_SEED_FIELDS: &[FieldSpec] = &[F::U64, F::VarBytes, F::Bytes(32)];
const CERTIFICATE_FIELDS: &[FieldSpec] = &[F::U64, F::VarBytes, F::Bytes(32), F::VarBytes];
const SAMPLE_QUERY_FIELDS: &[FieldSpec] = &[F::U64];
const SAMPLE_RESPONSE_FIELDS: &[FieldSpec] = &[F::Byte];
const BCAST_INPUT_FIELDS: &[FieldSpec] = &[F::Byte];
const MV_INPUT_FIELDS: &[FieldSpec] = &[F::U64, F::VarBytes];

/// The full tag registry, ordered by tag. The golden snapshot test in
/// `tests/wire.rs` pins every row; append new tags at the end.
pub const REGISTRY: &[TagInfo] = &[
    TagInfo {
        tag: tag::RAW,
        name: "raw",
        step: step::NONE,
        step_label: "untyped",
        crate_name: "pba-net",
        schema: BodySchema::Opaque,
    },
    TagInfo {
        tag: tag::PK_MSG_U8,
        name: "PkMsg<u8>",
        step: step::COMMITTEE_BA,
        step_label: "2:committee-ba",
        crate_name: "pba-core",
        schema: BodySchema::Enum(PK_U8_VARIANTS),
    },
    TagInfo {
        tag: tag::PK_MSG_DIGEST,
        name: "PkMsg<Digest>",
        step: step::COMMITTEE_BA,
        step_label: "2:committee-ba",
        crate_name: "pba-core",
        schema: BodySchema::Enum(PK_DIGEST_VARIANTS),
    },
    TagInfo {
        tag: tag::COIN,
        name: "CoinMsg",
        step: step::COMMITTEE_BA,
        step_label: "2:committee-ba",
        crate_name: "pba-core",
        schema: BodySchema::Enum(COIN_VARIANTS),
    },
    TagInfo {
        tag: tag::VSS_COIN,
        name: "VssCoinMsg",
        step: step::COMMITTEE_BA,
        step_label: "2:committee-ba",
        crate_name: "pba-core",
        schema: BodySchema::Enum(VSS_COIN_VARIANTS),
    },
    TagInfo {
        tag: tag::DOLEV_STRONG,
        name: "DsMessage",
        step: step::NONE,
        step_label: "baseline",
        crate_name: "pba-core",
        schema: BodySchema::Struct(DS_FIELDS),
    },
    TagInfo {
        tag: tag::VALUE_SEED,
        name: "ValueSeed",
        step: step::DISSEMINATE,
        step_label: "3:disseminate",
        crate_name: "pba-core",
        schema: BodySchema::Struct(VALUE_SEED_FIELDS),
    },
    TagInfo {
        tag: tag::CERTIFICATE,
        name: "Certificate",
        step: step::CERTIFY,
        step_label: "6:certify",
        crate_name: "pba-core",
        schema: BodySchema::Struct(CERTIFICATE_FIELDS),
    },
    TagInfo {
        tag: tag::SIG_SUBMIT,
        name: "sig-submit",
        step: step::SIG_SUBMIT,
        step_label: "4:sig-submit",
        crate_name: "pba-core",
        schema: BodySchema::Opaque,
    },
    TagInfo {
        tag: tag::AGGR_SHARE,
        name: "aggr-share",
        step: step::AGGREGATE,
        step_label: "5:aggregate",
        crate_name: "pba-core",
        schema: BodySchema::Opaque,
    },
    TagInfo {
        tag: tag::AGGR_MPC,
        name: "aggr-mpc",
        step: step::AGGREGATE,
        step_label: "5:aggregate",
        crate_name: "pba-core",
        schema: BodySchema::Opaque,
    },
    TagInfo {
        tag: tag::SPREAD,
        name: "spread",
        step: step::SPREAD,
        step_label: "7-8:spread",
        crate_name: "pba-core",
        schema: BodySchema::Opaque,
    },
    TagInfo {
        tag: tag::ESTABLISH,
        name: "establish",
        step: step::ESTABLISH,
        step_label: "1:establish",
        crate_name: "pba-aetree",
        schema: BodySchema::Opaque,
    },
    TagInfo {
        tag: tag::FANIN,
        name: "fanin",
        step: step::NONE,
        step_label: "tree-fanin",
        crate_name: "pba-aetree",
        schema: BodySchema::Opaque,
    },
    TagInfo {
        tag: tag::SAMPLE_QUERY,
        name: "SampleQuery",
        step: step::NONE,
        step_label: "baseline",
        crate_name: "pba-core",
        schema: BodySchema::Struct(SAMPLE_QUERY_FIELDS),
    },
    TagInfo {
        tag: tag::SAMPLE_RESPONSE,
        name: "SampleResponse",
        step: step::NONE,
        step_label: "baseline",
        crate_name: "pba-core",
        schema: BodySchema::Struct(SAMPLE_RESPONSE_FIELDS),
    },
    TagInfo {
        tag: tag::BCAST_INPUT,
        name: "BroadcastInput",
        step: step::NONE,
        step_label: "bcast-input",
        crate_name: "pba-core",
        schema: BodySchema::Struct(BCAST_INPUT_FIELDS),
    },
    TagInfo {
        tag: tag::MV_INPUT,
        name: "MvInput",
        step: step::NONE,
        step_label: "mv-input",
        crate_name: "pba-core",
        schema: BodySchema::Struct(MV_INPUT_FIELDS),
    },
];

/// Looks a tag up in the registry.
pub fn lookup(t: u8) -> Option<&'static TagInfo> {
    REGISTRY.iter().find(|info| info.tag == t)
}

/// The breakdown-table step label for a tag ([`TagInfo::step_label`], or
/// `"untyped"` for unregistered tags).
pub fn step_label_for(t: u8) -> &'static str {
    lookup(t).map_or("untyped", |info| info.step_label)
}

/// A typed wire message: an encodable/decodable value with a registered
/// tag and a nominal Fig. 3 step. Implementations live next to the message
/// type and must reference the [`tag`]/[`step`] constants (so renumbering
/// is caught by the registry snapshot test, not silently re-derived).
pub trait WireMsg: Encode + Decode {
    /// The registered one-byte tag ([`tag`]).
    const TAG: u8;
    /// The nominal Fig. 3 step carried in the header ([`step`]).
    const STEP: u8;
}

/// Errors raised by the hardened decode entry point [`decode_msg`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Payload shorter than the `{tag, step}` header.
    TooShort,
    /// Payload exceeds [`MAX_WIRE_BYTES`].
    OverCap(usize),
    /// Header tag is not in the registry.
    UnknownTag(u8),
    /// Header tag is registered but is not the expected message's tag.
    WrongTag {
        /// The decoder's expected tag.
        expected: u8,
        /// The tag found in the header.
        found: u8,
    },
    /// Header step byte does not match the tag's registered step.
    WrongStep {
        /// The registered step for this tag.
        expected: u8,
        /// The step found in the header.
        found: u8,
    },
    /// The body failed to decode (including trailing-byte rejection).
    Body(CodecError),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::TooShort => f.write_str("payload shorter than wire header"),
            WireError::OverCap(n) => write!(f, "payload of {n} bytes exceeds wire cap"),
            WireError::UnknownTag(t) => write!(f, "unknown wire tag {t:#04x}"),
            WireError::WrongTag { expected, found } => {
                write!(f, "wire tag {found:#04x}, expected {expected:#04x}")
            }
            WireError::WrongStep { expected, found } => {
                write!(f, "wire step {found}, expected {expected}")
            }
            WireError::Body(e) => write!(f, "wire body: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Encodes a typed message with its `{tag, step}` header.
pub fn encode_msg<T: WireMsg>(msg: &T) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN + msg.encoded_len());
    encode_msg_into(msg, &mut buf);
    buf
}

/// Encodes a typed message with its header into a caller-owned buffer.
///
/// The buffer is cleared first, so the result is byte-for-byte the
/// [`encode_msg`] output; reusing one buffer across sends keeps its
/// high-water capacity and avoids per-message growth reallocations (the
/// `Ctx` send paths use this with a per-backend scratch buffer).
pub fn encode_msg_into<T: WireMsg>(msg: &T, buf: &mut Vec<u8>) {
    buf.clear();
    buf.push(T::TAG);
    buf.push(T::STEP);
    msg.encode(buf);
}

/// Encoded wire length of a typed message (header included) — the
/// replacement for hand-computed wire-size constants.
pub fn encoded_msg_len<T: WireMsg>(msg: &T) -> usize {
    HEADER_LEN + msg.encoded_len()
}

/// The single hardened decode entry point for typed traffic.
///
/// Rejects, in order: payloads over [`MAX_WIRE_BYTES`]; payloads shorter
/// than the header; unregistered tags; registered-but-unexpected tags;
/// step bytes that contradict the registry; and malformed bodies
/// (truncation, hostile lengths, trailing bytes — via the strict
/// [`codec::decode_from_slice`]).
///
/// # Errors
///
/// A [`WireError`] naming the first failed check.
pub fn decode_msg<T: WireMsg>(payload: &[u8]) -> Result<T, WireError> {
    if payload.len() > MAX_WIRE_BYTES {
        return Err(WireError::OverCap(payload.len()));
    }
    if payload.len() < HEADER_LEN {
        return Err(WireError::TooShort);
    }
    let (found_tag, found_step) = (payload[0], payload[1]);
    let info = lookup(found_tag).ok_or(WireError::UnknownTag(found_tag))?;
    if found_tag != T::TAG {
        return Err(WireError::WrongTag {
            expected: T::TAG,
            found: found_tag,
        });
    }
    if found_step != info.step {
        return Err(WireError::WrongStep {
            expected: info.step,
            found: found_step,
        });
    }
    debug_assert_eq!(info.step, T::STEP, "WireMsg STEP disagrees with registry");
    codec::decode_from_slice(&payload[HEADER_LEN..]).map_err(WireError::Body)
}

/// Classifies a payload for byte attribution: returns the header tag when
/// the payload carries a plausible wire header (registered tag whose
/// registered step matches the header's step byte), else [`tag::RAW`].
///
/// This is a 16-bit heuristic, not authentication: honest traffic is all
/// typed after the wire migration, so misclassification is confined to
/// adversarial bytes (which honest reports exclude anyway). Conservation
/// of the per-tag marginals holds regardless of how bytes are binned.
pub fn peek_tag(payload: &[u8]) -> u8 {
    if payload.len() >= HEADER_LEN {
        if let Some(info) = lookup(payload[0]) {
            if info.tag != tag::RAW && info.step == payload[1] {
                return info.tag;
            }
        }
    }
    tag::RAW
}

/// Structural parse bound: honest sequences are committee-sized, so a
/// schema walk never needs more elements than this.
const MAX_WALK_ELEMS: u64 = 1 << 16;

#[derive(Clone, Copy, Debug)]
enum LeafKind {
    Raw,
    Fp,
    Varint,
}

#[derive(Clone, Copy, Debug)]
struct Leaf {
    start: usize,
    end: usize,
    kind: LeafKind,
}

struct Walker<'a> {
    r: Reader<'a>,
    consumed: usize,
    leaves: Vec<Leaf>,
}

impl<'a> Walker<'a> {
    fn new(body: &'a [u8]) -> Self {
        Walker {
            r: Reader::new(body),
            consumed: 0,
            leaves: Vec::new(),
        }
    }

    fn pos(&self) -> usize {
        self.consumed
    }

    fn take(&mut self, n: usize) -> Option<()> {
        self.r.take(n).ok()?;
        self.consumed += n;
        Some(())
    }

    fn leaf(&mut self, n: usize, kind: LeafKind) -> Option<()> {
        let start = self.pos();
        self.take(n)?;
        self.leaves.push(Leaf {
            start,
            end: self.pos(),
            kind,
        });
        Some(())
    }

    fn varint(&mut self) -> Option<u64> {
        let before = self.r.remaining();
        let v = read_varint(&mut self.r).ok()?;
        self.consumed += before - self.r.remaining();
        Some(v)
    }

    fn field(&mut self, spec: &FieldSpec) -> Option<()> {
        match spec {
            FieldSpec::Bytes(n) => self.leaf(*n, LeafKind::Raw),
            FieldSpec::Fp => self.leaf(8, LeafKind::Fp),
            FieldSpec::U64 => self.leaf(8, LeafKind::Raw),
            FieldSpec::Byte => self.leaf(1, LeafKind::Raw),
            FieldSpec::Varint => {
                let start = self.pos();
                self.varint()?;
                self.leaves.push(Leaf {
                    start,
                    end: self.pos(),
                    kind: LeafKind::Varint,
                });
                Some(())
            }
            FieldSpec::VarBytes => {
                let len = self.varint()?;
                if len > MAX_WALK_ELEMS {
                    return None;
                }
                if len > 0 {
                    self.leaf(len as usize, LeafKind::Raw)?;
                }
                Some(())
            }
            FieldSpec::Seq(elem) => {
                let count = self.varint()?;
                if count > MAX_WALK_ELEMS {
                    return None;
                }
                for _ in 0..count {
                    for f in *elem {
                        self.field(f)?;
                    }
                }
                Some(())
            }
        }
    }
}

/// Parses `payload` (header included) against its registered schema and
/// collects the mutable leaf fields. `None` when the payload is untyped,
/// opaque, or does not parse cleanly against its schema.
fn leaves_of(payload: &[u8]) -> Option<Vec<Leaf>> {
    let t = peek_tag(payload);
    if t == tag::RAW {
        return None;
    }
    let info = lookup(t)?;
    let body = &payload[HEADER_LEN..];
    let mut w = Walker::new(body);
    match info.schema {
        BodySchema::Opaque => return None,
        BodySchema::Struct(fields) => {
            for f in fields {
                w.field(f)?;
            }
        }
        BodySchema::Enum(variants) => {
            let variant = *body.first()? as usize;
            w.take(1)?;
            for f in *variants.get(variant)? {
                w.field(f)?;
            }
        }
    }
    if w.r.remaining() != 0 || w.leaves.is_empty() {
        return None;
    }
    // Offset body positions to full-payload positions.
    Some(
        w.leaves
            .into_iter()
            .map(|l| Leaf {
                start: l.start + HEADER_LEN,
                end: l.end + HEADER_LEN,
                kind: l.kind,
            })
            .collect(),
    )
}

/// Structure-aware mutation: decodes `payload` against its registered
/// schema, mutates exactly one typed leaf field, and re-encodes. The
/// result decodes successfully as the *same* message type but carries a
/// wrong value — the adversarial counterpart of a well-formed lie, as
/// opposed to the bit-flips honest machines reject at the codec layer.
///
/// Returns `None` for untyped/opaque payloads or payloads that do not
/// parse against their schema (callers fall back to byte-level garbling).
pub fn mutate_field(payload: &[u8], prg: &mut Prg) -> Option<Vec<u8>> {
    let leaves = leaves_of(payload)?;
    let leaf = leaves[prg.gen_range(leaves.len() as u64) as usize];
    let span = &payload[leaf.start..leaf.end];
    let replacement: Vec<u8> = match leaf.kind {
        LeafKind::Raw => {
            let mut out = span.to_vec();
            let at = prg.gen_range(out.len() as u64) as usize;
            out[at] ^= (prg.gen_range(255) + 1) as u8;
            out
        }
        LeafKind::Fp => {
            let old = u64::from_le_bytes(span.try_into().expect("Fp leaf is 8 bytes"));
            let modulus = pba_crypto::field::MODULUS;
            // Adding r ∈ [1, modulus) to a canonical value stays canonical
            // after reduction and never maps back to the original.
            let delta = prg.gen_range(modulus - 1) + 1;
            let new = (old % modulus + delta) % modulus;
            new.to_le_bytes().to_vec()
        }
        LeafKind::Varint => {
            let mut r = Reader::new(span);
            let old = read_varint(&mut r).ok()?;
            let new = old.wrapping_add(prg.gen_range(7) + 1);
            let mut out = Vec::new();
            write_varint(&mut out, new);
            out
        }
    };
    let mut out = Vec::with_capacity(payload.len());
    out.extend_from_slice(&payload[..leaf.start]);
    out.extend_from_slice(&replacement);
    out.extend_from_slice(&payload[leaf.end..]);
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_tags_are_unique_and_sorted() {
        for pair in REGISTRY.windows(2) {
            assert!(pair[0].tag < pair[1].tag, "registry must stay sorted");
        }
        assert_eq!(REGISTRY[0].tag, tag::RAW);
    }

    #[test]
    fn registry_steps_are_consistent() {
        for info in REGISTRY {
            assert!(lookup(info.tag) == Some(info));
        }
        assert!(lookup(0xfe).is_none());
    }

    #[test]
    fn peek_tag_requires_both_header_bytes_to_agree() {
        assert_eq!(peek_tag(&[]), tag::RAW);
        assert_eq!(peek_tag(&[tag::VALUE_SEED]), tag::RAW);
        // Right tag, wrong step byte → raw.
        assert_eq!(peek_tag(&[tag::VALUE_SEED, step::CERTIFY]), tag::RAW);
        assert_eq!(
            peek_tag(&[tag::VALUE_SEED, step::DISSEMINATE]),
            tag::VALUE_SEED
        );
        // Unregistered first byte → raw.
        assert_eq!(peek_tag(&[0x7f, 0]), tag::RAW);
        // The raw tag itself never classifies as typed.
        assert_eq!(peek_tag(&[tag::RAW, step::NONE, 1, 2]), tag::RAW);
    }

    #[test]
    fn opaque_and_raw_payloads_are_not_field_mutable() {
        let mut prg = Prg::from_seed_bytes(b"wire");
        assert!(mutate_field(&[], &mut prg).is_none());
        assert!(mutate_field(&[0xab, 0xcd, 1, 2, 3], &mut prg).is_none());
        // Attribution-only tag: plausible header, opaque schema.
        assert!(mutate_field(&[tag::SPREAD, step::SPREAD, 9, 9], &mut prg).is_none());
    }
}
