#![warn(missing_docs)]
//! # pba-net
//!
//! A synchronous, round-based network simulator with **exact per-party
//! communication accounting** — the measurement substrate for reproducing
//! the communication-complexity claims of *Boyle–Cohen–Goel (PODC 2021)*.
//!
//! The model matches the paper's: a complete synchronous point-to-point
//! network of authenticated channels; a static Byzantine adversary (chosen
//! adaptively during setup) that is **rushing** within each round; and
//! **dynamic message filtering** — receivers pay communication only for
//! messages they choose to process.
//!
//! * [`envelope`] — party identities and messages;
//! * [`metrics`] — per-party bytes/messages/locality counters and the
//!   aggregate [`metrics::Report`] (the measured Table 1 columns);
//! * [`network`] — staging, delivery, and the per-party [`network::Ctx`];
//! * [`runner`] — the phase runner driving honest [`runner::Machine`]s
//!   against an [`runner::Adversary`];
//! * [`corruption`] — corruption-set sampling plans;
//! * [`faults`] — composable Byzantine fault-injection strategies
//!   ([`faults::StrategySpec`]) for chaos testing, covering both message
//!   *content* (equivocation, garbling, floods, …) and *timing*: seeded
//!   per-link latency, healing partitions, and crash-recovery churn
//!   ([`faults::TimingModel`]), delivered through the network's
//!   deterministic delay queue and the partial-synchrony
//!   [`runner::RoundDriver`];
//! * [`wire`] — the typed wire protocol: stable tag registry, `{tag, step}`
//!   headers, the hardened [`wire::decode_msg`] entry point, and the
//!   schema-driven [`wire::mutate_field`] used by structure-aware faults;
//! * [`transport`] — the delivery backend seam: the [`transport::Transport`]
//!   trait behind [`network::Network::take_staged`], with the in-process
//!   [`transport::LocalTransport`] oracle and the real-socket
//!   [`transport::TcpTransport`];
//! * [`framing`] — length-delimited socket framing (magic ‖ LEB128 len ‖
//!   body) with torn-read buffering and garbage resync;
//! * [`discovery`] — the party-to-peer [`discovery::PeerMap`] and the
//!   genesis-bound [`discovery::Hello`] handshake.
//!
//! # Examples
//!
//! ```
//! use pba_net::network::Network;
//! use pba_net::envelope::PartyId;
//!
//! let mut net = Network::new(4);
//! let mut ctx = net.ctx(PartyId(0), 0);
//! ctx.send(PartyId(1), &7u64);
//! drop(ctx);
//! assert_eq!(net.report().total_bytes, 8);
//! ```

pub mod corruption;
pub mod discovery;
pub mod envelope;
pub mod faults;
pub mod framing;
pub mod metrics;
pub mod network;
pub mod runner;
mod sched;
pub mod transport;
pub mod wire;

pub use discovery::{genesis_digest, Hello, HelloField, HelloMismatch, PeerMap};
pub use envelope::{Envelope, PartyId};
pub use faults::{LatencyDist, TimingModel};
pub use metrics::{MetricsTable, Report, TagBreakdown};
pub use network::{Ctx, Network, RoundEffects, TimingStats};
pub use runner::{
    run_phase, run_phase_driven, run_phase_threaded, AdvSender, Adversary, Machine, PhaseOutcome,
    RoundDriver, SilentAdversary,
};
pub use transport::{
    LocalTransport, SocketStats, TcpTransport, Transport, TransportError, TransportOpts,
};
pub use wire::WireMsg;
