//! The work-stealing scheduler behind the parallel round engine.
//!
//! [`crate::runner::run_phase_threaded`] used to spawn one thread per round
//! per contiguous chunk. This module replaces that with a **persistent
//! scoped worker pool** per phase plus cost-balanced, stealable chunking
//! per round:
//!
//! * the phase spawns `workers` scoped threads once; each round's machines
//!   are drained into owned [`WorkItem`]s and pushed onto a shared injector
//!   queue;
//! * chunks stay **contiguous ascending-id ranges**, but their boundaries
//!   are chosen by a per-party cost model ([`CostModel`]): the EWMA of step
//!   times observed in round `r` seeds the partition for round `r + 1`,
//!   and each round is over-partitioned into more chunks than workers so
//!   an idle worker *steals* trailing chunks a static partition would have
//!   serialized behind a slow neighbour;
//! * workers never touch the [`Network`]: every machine steps against a
//!   buffered [`Ctx`] and the per-chunk effect logs are merged on the
//!   calling thread in ascending chunk order — which is ascending
//!   [`PartyId`] order, the sequential engine's order. Steal order and
//!   chunk boundaries therefore influence *wall-clock only*; transcripts,
//!   metrics, and the adversary's rushing view stay bit-identical for
//!   every thread count.
//!
//! Workers also run the cross-party hash grouping layer: before stepping a
//! chunk, the declared manifests of all its machines
//! ([`Machine::hash_manifest`]) are pooled through one
//! [`DigestBatcher`] flush, so ragged per-party remainders fill full
//! SHA-256 lane groups instead of each falling back to the scalar core.
//! Served digests are byte-matched against the declaration, hence
//! bit-identical to on-demand hashing — only lane occupancy changes.

use crate::envelope::{Envelope, PartyId};
use crate::network::{Ctx, Network, RoundEffects};
use crate::runner::Machine;
use pba_crypto::sha256::{BatchJob, DigestBatcher};
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A phase-scoped boxed honest machine.
pub(crate) type BoxedMachine<'m> = Box<dyn Machine + Send + 'm>;

/// Chunks offered per worker per round: over-partitioning is what makes
/// stealing possible (an idle worker picks up a trailing chunk while a
/// busy one is still inside an earlier chunk). Three is a latency/overhead
/// compromise — chunk dispatch costs one channel send plus one mutex pull.
const CHUNKS_PER_WORKER: usize = 3;

/// One stealable unit of round work: a contiguous ascending-id run of
/// machines with their inboxes, owned while in flight.
struct WorkItem<'m> {
    chunk: usize,
    round: u64,
    n: usize,
    parties: Vec<(PartyId, BoxedMachine<'m>, Vec<Envelope>)>,
}

/// A completed chunk: machines handed back with their buffered effects and
/// the observed per-party step cost in nanoseconds.
struct ChunkResult<'m> {
    chunk: usize,
    parties: Vec<(PartyId, BoxedMachine<'m>, RoundEffects, u64)>,
}

/// What a worker reports per chunk: the result, or the caught panic payload
/// (re-raised on the calling thread with its original message).
type ChunkOutcome<'m> = Result<ChunkResult<'m>, Box<dyn Any + Send>>;

/// Exponentially-weighted per-party step-cost estimates, fed by observed
/// step times and read by the next round's partition.
///
/// The model is deliberately *outside* the determinism boundary: wall-clock
/// observations are nondeterministic, but they only ever move chunk
/// boundaries — never the PartyId-ordered merge — so two runs with wildly
/// different cost histories still produce identical transcripts.
#[derive(Debug, Default)]
pub(crate) struct CostModel {
    ewma_ns: BTreeMap<PartyId, f64>,
}

impl CostModel {
    /// Smoothing factor: reactive enough to track a machine whose phase
    /// role changes (committee member vs bystander), damped enough to ride
    /// out scheduler noise.
    const ALPHA: f64 = 0.4;

    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Records one observed step cost.
    fn observe(&mut self, id: PartyId, ns: u64) {
        let e = self.ewma_ns.entry(id).or_insert(ns as f64);
        *e = (1.0 - Self::ALPHA) * *e + Self::ALPHA * ns as f64;
    }

    /// Predicted cost of stepping `id` (floor 1.0 so zero-cost histories
    /// cannot collapse a chunk share to nothing).
    fn predict(&self, id: PartyId) -> f64 {
        self.ewma_ns.get(&id).copied().unwrap_or(1.0).max(1.0)
    }

    /// Cuts `ids` (ascending) into at most `target_chunks` contiguous
    /// ranges of roughly equal predicted cost, returning the exclusive end
    /// index of each chunk. With no observations yet every party costs the
    /// same and this degenerates to the classic equal-count partition.
    fn chunk_bounds(&self, ids: &[PartyId], target_chunks: usize) -> Vec<usize> {
        let target_chunks = target_chunks.clamp(1, ids.len());
        let costs: Vec<f64> = ids.iter().map(|&id| self.predict(id)).collect();
        let total: f64 = costs.iter().sum();
        let share = total / target_chunks as f64;
        let mut bounds = Vec::with_capacity(target_chunks);
        let mut acc = 0.0;
        for (i, c) in costs.iter().enumerate() {
            acc += c;
            if acc >= share - f64::EPSILON && bounds.len() + 1 < target_chunks {
                bounds.push(i + 1);
                acc = 0.0;
            }
        }
        bounds.push(ids.len());
        bounds
    }
}

/// The per-phase worker pool: a shared injector queue the workers pull
/// (and thereby steal) chunks from, and a results channel back to the
/// phase-driving thread.
pub(crate) struct Pool<'m> {
    injector: Sender<WorkItem<'m>>,
    results: Receiver<ChunkOutcome<'m>>,
    workers: usize,
}

/// Spawns `workers` scoped pool threads, runs `f` with the pool handle on
/// the calling thread, then shuts the pool down (dropping the injector ends
/// every worker loop; the scope joins them).
pub(crate) fn with_pool<'m, R>(workers: usize, f: impl FnOnce(&mut Pool<'m>) -> R) -> R {
    std::thread::scope(|scope| {
        let (injector, queue) = channel::<WorkItem<'m>>();
        let queue = Arc::new(Mutex::new(queue));
        let (result_tx, results) = channel::<ChunkOutcome<'m>>();
        for _ in 0..workers {
            let queue = Arc::clone(&queue);
            let result_tx = result_tx.clone();
            scope.spawn(move || worker_loop(&queue, &result_tx));
        }
        drop(result_tx);
        let mut pool = Pool {
            injector,
            results,
            workers,
        };
        f(&mut pool)
    })
}

/// One worker: pull the next unclaimed chunk (self-scheduling *is* the
/// steal — whichever worker goes idle first claims the trailing chunk),
/// run it behind a panic guard, report the outcome. Exits when the
/// injector closes at the end of the phase.
fn worker_loop<'m>(queue: &Mutex<Receiver<WorkItem<'m>>>, results: &Sender<ChunkOutcome<'m>>) {
    let mut batcher = DigestBatcher::new();
    loop {
        // Holding the lock while blocked in recv serializes *claims*, not
        // work: the next idle worker waits on the mutex and claims the next
        // item the moment the current claimant releases it.
        let item = {
            let guard = queue.lock().unwrap_or_else(|e| e.into_inner());
            match guard.recv() {
                Ok(item) => item,
                Err(_) => return, // phase over
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| run_chunk(item, &mut batcher)));
        if outcome.is_err() {
            // A machine panicked mid-chunk; the batcher may hold a
            // half-consumed pool. Start clean for any further chunks.
            batcher = DigestBatcher::new();
        }
        if results.send(outcome).is_err() {
            return; // phase thread gone (itself unwinding)
        }
    }
}

/// Steps every machine of one chunk against a buffered context, pooling the
/// chunk's declared hash manifests through one cross-party batch first.
fn run_chunk<'m>(item: WorkItem<'m>, batcher: &mut DigestBatcher) -> ChunkResult<'m> {
    let WorkItem {
        chunk,
        round,
        n,
        parties,
    } = item;
    batcher.reset();
    let jobs: Vec<Option<BatchJob>> = parties
        .iter()
        .map(|(_, machine, inbox)| batcher.enqueue(machine.hash_manifest(inbox)))
        .collect();
    if !batcher.is_empty() {
        batcher.flush();
    }
    let mut done = Vec::with_capacity(parties.len());
    for ((id, mut machine, inbox), job) in parties.into_iter().zip(jobs) {
        let started = Instant::now();
        let mut effects = RoundEffects::new();
        {
            let mut ctx = Ctx::buffered(id, round, n, &mut effects);
            if let Some(job) = &job {
                ctx = ctx.with_prefetch(batcher.job(job));
            }
            machine.on_round(&mut ctx, &inbox);
        }
        let cost_ns = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        done.push((id, machine, effects, cost_ns));
    }
    ChunkResult {
        chunk,
        parties: done,
    }
}

impl<'m> Pool<'m> {
    /// Runs one parallel honest step: drain the steppable machines into
    /// cost-balanced chunks, let the workers claim them, then merge the
    /// buffered effects in ascending chunk (= [`PartyId`]) order and feed
    /// the observed step costs back into the model.
    ///
    /// # Panics
    ///
    /// Re-raises (with its original payload) the first panic any machine
    /// hit on a worker — after every in-flight chunk has reported, so no
    /// worker is left holding phase state.
    pub(crate) fn step_round(
        &mut self,
        net: &mut Network,
        machines: &mut BTreeMap<PartyId, BoxedMachine<'m>>,
        inboxes: &mut BTreeMap<PartyId, Vec<Envelope>>,
        round: u64,
        offline: &BTreeSet<PartyId>,
        cost: &mut CostModel,
    ) {
        let n = net.len();
        let ids: Vec<PartyId> = machines.keys().copied().collect();
        let mut items: Vec<(PartyId, BoxedMachine<'m>, Vec<Envelope>)> =
            Vec::with_capacity(ids.len());
        for id in ids {
            let inbox = inboxes.remove(&id).unwrap_or_default();
            if offline.contains(&id) {
                // Same as the sequential engine: the inbox is consumed and
                // dropped, the machine keeps its (frozen) state in the map.
                continue;
            }
            let machine = machines.remove(&id).expect("machine present");
            items.push((id, machine, inbox));
        }
        if items.is_empty() {
            return; // every machine offline this round
        }
        let item_ids: Vec<PartyId> = items.iter().map(|(id, _, _)| *id).collect();
        let bounds = cost.chunk_bounds(&item_ids, self.workers * CHUNKS_PER_WORKER);
        let nchunks = bounds.len();
        let mut items = items.into_iter();
        let mut start = 0;
        for (chunk, &end) in bounds.iter().enumerate() {
            let parties: Vec<_> = items.by_ref().take(end - start).collect();
            start = end;
            self.injector
                .send(WorkItem {
                    chunk,
                    round,
                    n,
                    parties,
                })
                .expect("pool workers alive");
        }
        let mut results: Vec<ChunkResult<'m>> = Vec::with_capacity(nchunks);
        let mut panic_payload: Option<Box<dyn Any + Send>> = None;
        for _ in 0..nchunks {
            match self.results.recv().expect("pool workers alive") {
                Ok(res) => results.push(res),
                Err(payload) => panic_payload = Some(panic_payload.take().unwrap_or(payload)),
            }
        }
        if let Some(payload) = panic_payload {
            // Re-raise machine panics with their original payload so
            // `should_panic` expectations and chaos harnesses see the same
            // message as under sequential execution.
            resume_unwind(payload);
        }
        // Chunks are contiguous ascending-id ranges, so ascending chunk
        // order is ascending PartyId order — the sequential merge order.
        results.sort_by_key(|r| r.chunk);
        for res in results {
            for (id, machine, effects, ns) in res.parties {
                net.apply_effects(effects);
                cost.observe(id, ns);
                machines.insert(id, machine);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_bounds_uniform_matches_equal_partition() {
        let model = CostModel::new();
        let ids: Vec<PartyId> = (0..12).map(PartyId).collect();
        let bounds = model.chunk_bounds(&ids, 4);
        assert_eq!(bounds, vec![3, 6, 9, 12]);
    }

    #[test]
    fn chunk_bounds_isolate_expensive_party() {
        let mut model = CostModel::new();
        for i in 0..8u64 {
            model.observe(PartyId(i), if i == 0 { 1_000_000 } else { 10 });
        }
        let ids: Vec<PartyId> = (0..8).map(PartyId).collect();
        let bounds = model.chunk_bounds(&ids, 4);
        // The hot party closes its own chunk immediately.
        assert_eq!(bounds[0], 1, "bounds = {bounds:?}");
        assert_eq!(*bounds.last().unwrap(), 8);
        assert!(bounds.len() <= 4);
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "strictly increasing"
        );
    }

    #[test]
    fn chunk_bounds_clamp_to_item_count() {
        let model = CostModel::new();
        let ids: Vec<PartyId> = (0..3).map(PartyId).collect();
        let bounds = model.chunk_bounds(&ids, 24);
        assert_eq!(bounds, vec![1, 2, 3], "one party per chunk at most");
    }

    #[test]
    fn ewma_tracks_changing_costs() {
        let mut model = CostModel::new();
        model.observe(PartyId(0), 1000);
        assert_eq!(model.predict(PartyId(0)), 1000.0);
        model.observe(PartyId(0), 0);
        assert!(model.predict(PartyId(0)) < 1000.0);
        // Unseen parties and all-zero histories stay at the floor.
        assert_eq!(model.predict(PartyId(9)), 1.0);
    }
}
