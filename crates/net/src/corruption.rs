//! Corruption-set sampling for experiments.
//!
//! The paper's adversary corrupts adaptively *during setup* (after seeing
//! public keys and setup information) and is static afterwards. The samplers
//! here produce the corrupt set; protocol-specific "adaptive after setup"
//! choices are made by the experiment harnesses, which may call these with
//! setup-derived information.

use crate::envelope::PartyId;
use pba_crypto::prg::Prg;
use std::collections::BTreeSet;

/// How the experiment picks the corrupted set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CorruptionPlan {
    /// No corruptions.
    None,
    /// `t` parties chosen uniformly at random.
    Random {
        /// Number of parties to corrupt.
        t: usize,
    },
    /// An explicit set (e.g., chosen adaptively from setup information).
    Explicit(BTreeSet<PartyId>),
    /// The first `t` parties — a structured placement that stresses
    /// index-range logic (contiguous virtual IDs land in the same leaves).
    Prefix {
        /// Number of parties to corrupt.
        t: usize,
    },
    /// The last `t` parties — the mirror of [`CorruptionPlan::Prefix`],
    /// stressing the high end of index-range logic.
    Suffix {
        /// Number of parties to corrupt.
        t: usize,
    },
    /// Every `step`-th party starting at `offset`, up to `t` parties —
    /// a structured placement spreading corruption evenly across leaves
    /// (the complement of the contiguous placements).
    Stride {
        /// Number of parties to corrupt.
        t: usize,
        /// Distance between corrupted indices (≥ 1).
        step: usize,
        /// First corrupted index.
        offset: usize,
    },
    /// An **adaptive post-setup** adversary: the corrupt set is chosen
    /// *after* the communication tree is established, by ranking tree
    /// nodes by takeover value (smallest committees on the most
    /// load-bearing root-paths) and spending the budget there.
    ///
    /// This plan cannot be materialized here — target selection needs the
    /// established tree, which lives above this crate. Protocol sessions
    /// resolve it post-establishment (via `pba_aetree::analysis`'s
    /// adaptive-target ranking) and substitute the resulting
    /// [`CorruptionPlan::Explicit`] set; [`CorruptionPlan::materialize`]
    /// panics if asked to resolve it without a tree.
    Adaptive {
        /// Corruption budget (number of parties).
        t: usize,
    },
}

impl CorruptionPlan {
    /// Materializes the corrupt set for `n` parties using `prg`.
    ///
    /// # Panics
    ///
    /// Panics if the plan requests more corruptions than parties.
    pub fn materialize(&self, n: usize, prg: &mut Prg) -> BTreeSet<PartyId> {
        match self {
            CorruptionPlan::None => BTreeSet::new(),
            CorruptionPlan::Random { t } => {
                assert!(*t <= n, "cannot corrupt {t} of {n}");
                prg.sample_distinct(n as u64, *t)
                    .into_iter()
                    .map(PartyId)
                    .collect()
            }
            CorruptionPlan::Explicit(set) => {
                assert!(set.iter().all(|p| p.index() < n), "corrupt id out of range");
                set.clone()
            }
            CorruptionPlan::Prefix { t } => {
                assert!(*t <= n, "cannot corrupt {t} of {n}");
                (0..*t as u64).map(PartyId).collect()
            }
            CorruptionPlan::Suffix { t } => {
                assert!(*t <= n, "cannot corrupt {t} of {n}");
                ((n - t) as u64..n as u64).map(PartyId).collect()
            }
            CorruptionPlan::Stride { t, step, offset } => {
                assert!(*step >= 1, "stride step must be >= 1");
                assert!(*t <= n, "cannot corrupt {t} of {n}");
                let set: BTreeSet<PartyId> = (*offset..n)
                    .step_by(*step)
                    .take(*t)
                    .map(|i| PartyId(i as u64))
                    .collect();
                assert!(
                    set.len() == *t,
                    "stride (step {step}, offset {offset}) yields only {} of {t} in [0,{n})",
                    set.len()
                );
                set
            }
            CorruptionPlan::Adaptive { t } => panic!(
                "adaptive plan (t = {t}) must be resolved against an established \
                 tree by the protocol session, not materialized blindly"
            ),
        }
    }

    /// The corruption budget a plan will spend (the size of the set
    /// [`CorruptionPlan::materialize`] produces, or the budget an adaptive
    /// plan is allowed post-establishment).
    pub fn budget(&self) -> usize {
        match self {
            CorruptionPlan::None => 0,
            CorruptionPlan::Random { t }
            | CorruptionPlan::Prefix { t }
            | CorruptionPlan::Suffix { t }
            | CorruptionPlan::Stride { t, .. }
            | CorruptionPlan::Adaptive { t } => *t,
            CorruptionPlan::Explicit(set) => set.len(),
        }
    }

    /// A short stable label for sweep tables and repro lines.
    pub fn label(&self) -> String {
        match self {
            CorruptionPlan::None => "none".into(),
            CorruptionPlan::Random { t } => format!("random-{t}"),
            CorruptionPlan::Explicit(set) => format!("explicit-{}", set.len()),
            CorruptionPlan::Prefix { t } => format!("prefix-{t}"),
            CorruptionPlan::Suffix { t } => format!("suffix-{t}"),
            CorruptionPlan::Stride { t, step, offset } => {
                format!("stride-{t}x{step}+{offset}")
            }
            CorruptionPlan::Adaptive { t } => format!("adaptive-{t}"),
        }
    }
}

/// Largest corruption count strictly below `beta * n`.
///
/// The paper works with resilience `βn` for constant `β < 1/3`; experiments
/// call this with e.g. `beta = 0.33` or `0.25`.
pub fn max_corruptions(n: usize, beta: f64) -> usize {
    assert!((0.0..1.0).contains(&beta), "beta must be in [0,1)");
    let bound = (beta * n as f64).floor() as usize;
    bound.min(n.saturating_sub(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plan_size_and_range() {
        let mut prg = Prg::from_seed_bytes(b"c");
        let set = CorruptionPlan::Random { t: 10 }.materialize(100, &mut prg);
        assert_eq!(set.len(), 10);
        assert!(set.iter().all(|p| p.index() < 100));
    }

    #[test]
    fn prefix_plan() {
        let mut prg = Prg::from_seed_bytes(b"c");
        let set = CorruptionPlan::Prefix { t: 3 }.materialize(10, &mut prg);
        assert_eq!(set, [PartyId(0), PartyId(1), PartyId(2)].into());
    }

    #[test]
    fn none_plan_empty() {
        let mut prg = Prg::from_seed_bytes(b"c");
        assert!(CorruptionPlan::None.materialize(5, &mut prg).is_empty());
    }

    #[test]
    fn explicit_plan_passthrough() {
        let mut prg = Prg::from_seed_bytes(b"c");
        let set: BTreeSet<PartyId> = [PartyId(7)].into();
        assert_eq!(
            CorruptionPlan::Explicit(set.clone()).materialize(10, &mut prg),
            set
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explicit_out_of_range_panics() {
        let mut prg = Prg::from_seed_bytes(b"c");
        CorruptionPlan::Explicit([PartyId(10)].into()).materialize(10, &mut prg);
    }

    #[test]
    fn suffix_plan() {
        let mut prg = Prg::from_seed_bytes(b"c");
        let set = CorruptionPlan::Suffix { t: 3 }.materialize(10, &mut prg);
        assert_eq!(set, [PartyId(7), PartyId(8), PartyId(9)].into());
    }

    #[test]
    fn stride_plan() {
        let mut prg = Prg::from_seed_bytes(b"c");
        let set = CorruptionPlan::Stride {
            t: 3,
            step: 4,
            offset: 1,
        }
        .materialize(12, &mut prg);
        assert_eq!(set, [PartyId(1), PartyId(5), PartyId(9)].into());
    }

    #[test]
    #[should_panic(expected = "yields only")]
    fn stride_overflow_panics() {
        let mut prg = Prg::from_seed_bytes(b"c");
        CorruptionPlan::Stride {
            t: 5,
            step: 4,
            offset: 0,
        }
        .materialize(10, &mut prg);
    }

    #[test]
    fn labels_are_distinct() {
        let plans = [
            CorruptionPlan::None,
            CorruptionPlan::Random { t: 3 },
            CorruptionPlan::Prefix { t: 3 },
            CorruptionPlan::Suffix { t: 3 },
            CorruptionPlan::Stride {
                t: 3,
                step: 2,
                offset: 0,
            },
            CorruptionPlan::Adaptive { t: 3 },
        ];
        let labels: BTreeSet<String> = plans.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), plans.len());
    }

    #[test]
    fn budgets_match_materialized_sizes() {
        let mut prg = Prg::from_seed_bytes(b"b");
        let plans = [
            CorruptionPlan::None,
            CorruptionPlan::Random { t: 4 },
            CorruptionPlan::Prefix { t: 2 },
            CorruptionPlan::Suffix { t: 5 },
            CorruptionPlan::Explicit([PartyId(1), PartyId(3)].into()),
        ];
        for plan in &plans {
            assert_eq!(plan.materialize(20, &mut prg).len(), plan.budget());
        }
        assert_eq!(CorruptionPlan::Adaptive { t: 7 }.budget(), 7);
    }

    #[test]
    #[should_panic(expected = "resolved against an established tree")]
    fn adaptive_plan_refuses_blind_materialization() {
        let mut prg = Prg::from_seed_bytes(b"c");
        CorruptionPlan::Adaptive { t: 3 }.materialize(10, &mut prg);
    }

    #[test]
    fn max_corruptions_below_third() {
        assert_eq!(max_corruptions(9, 1.0 / 3.0), 3);
        assert_eq!(max_corruptions(10, 0.25), 2);
        assert_eq!(max_corruptions(1, 0.99), 0);
        assert_eq!(max_corruptions(100, 0.33), 33);
    }
}
