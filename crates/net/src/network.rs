//! The synchronous network: staged envelopes, round delivery, and the
//! per-party sending/receiving context with exact accounting.
//!
//! Model (standard synchronous point-to-point network with authenticated
//! channels, as in the paper):
//!
//! * messages sent in round `r` are delivered at the beginning of round
//!   `r + 1` — unless a [`TimingModel`] is installed
//!   ([`Network::set_timing`]), in which case staged traffic passes
//!   through a deterministic delay queue: each message is stamped with a
//!   deliver-at tick drawn from the seeded per-link latency distribution,
//!   dropped by the partition cut, or expired when its receiver is
//!   offline at delivery (see [`Network::take_staged`]);
//! * channels are authenticated — the `from` field of an [`Envelope`] is
//!   trustworthy for honest receivers;
//! * receivers perform **dynamic message filtering**: a message costs its
//!   receiver communication only when the receiver *processes* it (reads the
//!   payload via [`Ctx::read`]); filtered messages are dropped for free, as
//!   in the message-filtering model the paper builds on.
//!
//! # Buffered contexts and deterministic parallelism
//!
//! A [`Ctx`] normally mutates the [`Network`] directly. For the parallel
//! round engine ([`crate::runner::run_phase_threaded`]) a context can
//! instead *buffer* its effects — sends and receive charges — into a
//! [`RoundEffects`] value owned by the calling worker thread. Replaying the
//! per-party effect logs against the network in ascending [`PartyId`] order
//! performs **exactly the same `Network` mutations in exactly the same
//! order** as the sequential schedule (which also steps parties in
//! ascending id order), so staged-envelope order, metric totals, and the
//! adversary's rushing view are byte-identical regardless of how many
//! worker threads ran the machines.

use crate::envelope::{Envelope, PartyId};
use crate::faults::TimingModel;
use crate::metrics::{MetricsTable, Report};
use crate::transport::{Transport, TransportError};
use crate::wire::{self, WireMsg};
use pba_crypto::codec::{decode_from_slice, Decode, Encode};
use pba_crypto::sha256::PrefetchedDigests;
use pba_crypto::{Digest, Sha256};
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// One buffered network mutation (see [`RoundEffects`]).
#[derive(Clone, Debug, PartialEq, Eq)]
enum Effect {
    /// A staged envelope (sender pays on replay, exactly as in
    /// [`Network::stage`]).
    Send(Envelope),
    /// A receiver-side processing charge, exactly as in
    /// [`Ctx::charge_receive`]. The wire tag is captured at charge time so
    /// replay attributes the bytes identically.
    Receive {
        to: PartyId,
        from: PartyId,
        bytes: usize,
        tag: u8,
    },
}

/// The ordered effect log of one party's round, produced by a buffered
/// [`Ctx`] and replayed with [`Network::apply_effects`].
///
/// The log preserves the exact interleaving of sends and receive charges
/// the machine performed, so replaying it is indistinguishable from having
/// run the machine against the network directly.
#[derive(Clone, Debug, Default)]
pub struct RoundEffects {
    ops: Vec<Effect>,
    /// Per-worker encode scratch reused across this log's sends; carries no
    /// observable state (see the manual [`PartialEq`]).
    scratch: Vec<u8>,
}

/// Equality is over the buffered operations only: the encode scratch is a
/// capacity-reuse optimization whose leftover bytes are not part of the
/// effect log's meaning.
impl PartialEq for RoundEffects {
    fn eq(&self, other: &Self) -> bool {
        self.ops == other.ops
    }
}

impl Eq for RoundEffects {}

impl RoundEffects {
    /// An empty effect log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations were buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Counters kept by the delay queue while a [`TimingModel`] is installed.
/// They satisfy the conservation law checked in `tests/proptest_timing.rs`:
///
/// `staged == delivered + expired_partition + expired_offline + in flight`
///
/// — a message is never silently lost; it is delivered (possibly late) or
/// expires for a named reason.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimingStats {
    /// Messages that entered the delay queue.
    pub staged: u64,
    /// Messages handed to the runner (on time or late).
    pub delivered: u64,
    /// Messages dropped by the partition cut.
    pub expired_partition: u64,
    /// Messages whose receiver was offline at the delivery tick.
    pub expired_offline: u64,
}

/// The simulated synchronous network for one protocol execution.
#[derive(Debug)]
pub struct Network {
    n: usize,
    metrics: MetricsTable,
    /// Envelopes sent this round, delivered next round.
    staged: Vec<Envelope>,
    /// When enabled, a chained per-round digest of every delivered batch —
    /// entry `i` commits to rounds `0..=i`, so the first index at which two
    /// transcripts differ names the first diverging round.
    transcript: Option<Vec<Digest>>,
    /// Encode scratch reused by every direct-backend [`Ctx`] send; keeps
    /// its high-water capacity so message encoding never reallocates on
    /// the hot path.
    encode_scratch: Vec<u8>,
    /// Delivery ticks elapsed: one per [`Network::bump_round`].
    now: u64,
    /// The delay queue: messages keyed by their deliver-at tick. Only
    /// populated while a timing model is installed.
    in_flight: BTreeMap<u64, Vec<Envelope>>,
    /// The installed timing faults, if any (see [`Network::set_timing`]).
    timing: Option<TimingModel>,
    /// Tick zero of the timing model — set lazily at the first
    /// [`Network::take_staged`] after installation, so the model's tick
    /// coordinates start at the first delivery it governs regardless of
    /// how many synthetic rounds (establishment, fan-in) preceded it.
    timing_base: Option<u64>,
    stats: TimingStats,
    /// The delivery backend, if one is attached: every
    /// [`Network::take_staged`] routes the staged batch through
    /// [`Transport::exchange`] (see [`Network::attach_transport`]).
    transport: Option<Box<dyn Transport>>,
    /// The first transport failure, if any. Once set, delivery stops —
    /// every later `take_staged` returns an empty batch so the runner can
    /// wind the phase down and report a structured error instead of
    /// stepping machines against a half-exchanged round.
    transport_error: Option<TransportError>,
    /// Exchanges performed so far; becomes the sequence number stamped on
    /// the round markers of the next exchange.
    exchange_seq: u64,
    /// Open round-overlap window, if any (see
    /// [`Network::begin_round_overlap`]): while `Some`, `bump_round`
    /// increments this absorbed-round counter instead of advancing the
    /// clock — the rounds ride on machine rounds being counted elsewhere.
    absorbed_rounds: Option<u64>,
}

impl Network {
    /// Creates a network for `n` parties.
    pub fn new(n: usize) -> Self {
        Network {
            n,
            metrics: MetricsTable::new(n),
            staged: Vec::new(),
            transcript: None,
            encode_scratch: Vec::new(),
            now: 0,
            in_flight: BTreeMap::new(),
            timing: None,
            timing_base: None,
            stats: TimingStats::default(),
            transport: None,
            transport_error: None,
            exchange_seq: 0,
            absorbed_rounds: None,
        }
    }

    /// Number of parties.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the network has no parties.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Read access to the metrics table.
    pub fn metrics(&self) -> &MetricsTable {
        &self.metrics
    }

    /// Mutable access to the metrics table (for synthetic charges).
    pub fn metrics_mut(&mut self) -> &mut MetricsTable {
        &mut self.metrics
    }

    /// Attaches the dense reference table as a differential shadow behind
    /// the sparse metrics (see [`MetricsTable::enable_shadow`]); must be
    /// called before any traffic is metered. Check divergence afterwards
    /// with `net.metrics().shadow_divergence()`.
    pub fn enable_metrics_shadow(&mut self) {
        self.metrics.enable_shadow();
    }

    /// Aggregate report over all parties.
    pub fn report(&self) -> Report {
        self.metrics.report()
    }

    /// Starts recording the delivery transcript: every subsequent
    /// [`Network::take_staged`] appends a digest chaining the previous
    /// entry with the full delivered batch (sender, receiver, payload).
    pub fn enable_transcript(&mut self) {
        if self.transcript.is_none() {
            self.transcript = Some(Vec::new());
        }
    }

    /// The recorded delivery transcript (`None` unless
    /// [`Network::enable_transcript`] was called). Entry `i` is a running
    /// hash over all batches delivered up to and including the `i`-th
    /// [`Network::take_staged`].
    pub fn transcript(&self) -> Option<&[Digest]> {
        self.transcript.as_deref()
    }

    /// Stages an envelope for next-round delivery, charging the sender.
    /// The sender's bytes are attributed to the wire tag sniffed from the
    /// payload header ([`wire::peek_tag`]; [`wire::tag::RAW`] for untyped
    /// payloads).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn stage(&mut self, env: Envelope) {
        assert!(
            env.from.index() < self.n,
            "sender {} out of range",
            env.from
        );
        assert!(env.to.index() < self.n, "receiver {} out of range", env.to);
        let tag = wire::peek_tag(&env.payload);
        self.metrics
            .record_send_tagged(env.from, env.to, env.len(), tag);
        self.staged.push(env);
    }

    /// Replays a buffered effect log against the network, in the exact
    /// order the operations were performed. Sends go through
    /// [`Network::stage`] (range checks and sender charges included);
    /// receive charges hit the metrics table directly, as
    /// [`Ctx::charge_receive`] does.
    pub fn apply_effects(&mut self, effects: RoundEffects) {
        for op in effects.ops {
            match op {
                Effect::Send(env) => self.stage(env),
                Effect::Receive {
                    to,
                    from,
                    bytes,
                    tag,
                } => self.metrics.record_receive_tagged(to, from, bytes, tag),
            }
        }
    }

    /// Takes the deliverable envelopes (the runner calls this at each tick
    /// boundary).
    ///
    /// Without a timing model this is the classic synchronous semantics:
    /// everything staged since the last call, byte-identical to the
    /// pre-timing network. With a model installed, staged envelopes are
    /// first admitted to the delay queue — dropped if the partition blocks
    /// the link, stamped `deliver_at = now + delay(from, to, tick)`
    /// otherwise, and expired if the receiver is offline at that tick —
    /// and then every queue bucket due at or before `now` is drained in
    /// tick order (insertion order within a tick). Delays are a pure
    /// function of `(timing key, link, tick)`, so this sequence is
    /// identical under the sequential and threaded round engines.
    pub fn take_staged(&mut self) -> Vec<Envelope> {
        let batch = if let Some(transport) = &mut self.transport {
            let staged = std::mem::take(&mut self.staged);
            if self.transport_error.is_some() {
                // Already failed: deliver nothing and let the runner
                // observe the recorded error.
                Vec::new()
            } else {
                let seq = self.exchange_seq;
                self.exchange_seq += 1;
                match transport.exchange(seq, staged) {
                    Ok(batch) => batch,
                    Err(e) => {
                        self.transport_error = Some(e);
                        Vec::new()
                    }
                }
            }
        } else if self.timing.is_some() {
            let model = self.timing.take().expect("timing model present");
            let base = *self.timing_base.get_or_insert(self.now);
            let tick = self.now - base;
            for env in std::mem::take(&mut self.staged) {
                self.stats.staged += 1;
                if model.blocked(env.from, env.to, tick) {
                    self.stats.expired_partition += 1;
                    continue;
                }
                let deliver_at = self.now + model.delay(env.from, env.to, tick);
                if model.offline(env.to, deliver_at - base) {
                    self.stats.expired_offline += 1;
                    continue;
                }
                self.in_flight.entry(deliver_at).or_default().push(env);
            }
            let due: Vec<u64> = self
                .in_flight
                .range(..=self.now)
                .map(|(&at, _)| at)
                .collect();
            let mut batch = Vec::new();
            for at in due {
                batch.extend(self.in_flight.remove(&at).expect("bucket exists"));
            }
            self.stats.delivered += batch.len() as u64;
            self.timing = Some(model);
            batch
        } else {
            std::mem::take(&mut self.staged)
        };
        if let Some(entries) = &mut self.transcript {
            let mut h = Sha256::new();
            h.update(b"net-transcript");
            h.update(entries.last().map_or(&[0u8; 32][..], |d| d.as_bytes()));
            for env in &batch {
                h.update(&env.from.0.to_le_bytes());
                h.update(&env.to.0.to_le_bytes());
                h.update(&(env.len() as u64).to_le_bytes());
                h.update(&env.payload);
            }
            entries.push(h.finalize());
        }
        batch
    }

    /// Peeks at the staged envelopes without consuming them — used by the
    /// runner for rushing observation, so only envelopes addressed to
    /// corrupted parties are cloned (rather than cloning and re-staging the
    /// whole round's traffic).
    pub fn staged(&self) -> &[Envelope] {
        &self.staged
    }

    /// Advances the round counter and the delivery tick — unless a
    /// round-overlap window is open, in which case the round is *absorbed*
    /// (counted in the window, not on the clock): it executes concurrently
    /// with machine rounds that are already being counted elsewhere.
    pub fn bump_round(&mut self) {
        if let Some(absorbed) = &mut self.absorbed_rounds {
            *absorbed += 1;
            return;
        }
        self.now += 1;
        self.metrics.bump_round();
    }

    /// Opens a round-overlap window: until [`Network::end_round_overlap`],
    /// `bump_round` calls are absorbed instead of advancing the clock.
    /// Used by the pipelined driver to run charge-only background work
    /// (e.g. a previous instance's certification) *during* the machine
    /// rounds of the current phase — bytes are still metered in full;
    /// only the round count overlaps.
    ///
    /// # Panics
    ///
    /// Panics if a window is already open (windows do not nest) or a
    /// timing model is installed (absorbed rounds would desynchronize the
    /// delay queue's tick coordinates).
    pub fn begin_round_overlap(&mut self) {
        assert!(
            self.absorbed_rounds.is_none(),
            "round-overlap windows do not nest"
        );
        assert!(
            self.timing.is_none(),
            "round overlap and timing faults are mutually exclusive"
        );
        self.absorbed_rounds = Some(0);
    }

    /// Closes the round-overlap window and returns how many `bump_round`
    /// calls it absorbed.
    ///
    /// # Panics
    ///
    /// Panics if no window is open.
    pub fn end_round_overlap(&mut self) -> u64 {
        self.absorbed_rounds
            .take()
            .expect("no round-overlap window open")
    }

    /// Installs timing faults: subsequent [`Network::take_staged`] calls
    /// route staged traffic through the delay queue. The model's tick zero
    /// is the first `take_staged` after this call.
    ///
    /// # Panics
    ///
    /// Panics if a transport is attached — timing faults reorder delivery
    /// locally, which a socket backend cannot replicate remotely (see
    /// [`crate::transport`]).
    pub fn set_timing(&mut self, model: TimingModel) {
        assert!(
            self.transport.is_none(),
            "timing faults and a transport are mutually exclusive"
        );
        self.timing = Some(model);
        self.timing_base = None;
    }

    /// Attaches a delivery backend: every subsequent
    /// [`Network::take_staged`] routes the staged batch through
    /// [`Transport::exchange`]. Recording of the delivery transcript is
    /// enabled as a side effect, so the oracle and every socket endpoint
    /// chain their digests from the same point.
    ///
    /// # Panics
    ///
    /// Panics if a timing model is installed (see [`Network::set_timing`]).
    pub fn attach_transport(&mut self, transport: Box<dyn Transport>) {
        assert!(
            self.timing.is_none(),
            "timing faults and a transport are mutually exclusive"
        );
        self.enable_transcript();
        self.transport = Some(transport);
    }

    /// Removes and returns the attached transport (its sockets close when
    /// the returned value is dropped).
    pub fn detach_transport(&mut self) -> Option<Box<dyn Transport>> {
        self.transport.take()
    }

    /// The attached transport, if any.
    pub fn transport(&self) -> Option<&dyn Transport> {
        self.transport.as_deref()
    }

    /// The first transport failure, if any. Set once; all delivery after
    /// it is empty.
    pub fn transport_error(&self) -> Option<&TransportError> {
        self.transport_error.as_ref()
    }

    /// The installed timing model, if any.
    pub fn timing(&self) -> Option<&TimingModel> {
        self.timing.as_ref()
    }

    /// Delay-queue counters (all zero without a timing model).
    pub fn timing_stats(&self) -> TimingStats {
        self.stats
    }

    /// Messages currently sitting in the delay queue.
    pub fn in_flight_len(&self) -> usize {
        self.in_flight.values().map(Vec::len).sum()
    }

    /// Ticks elapsed since the network was created (one per
    /// [`Network::bump_round`]).
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The current tick in the timing model's coordinates (0 before the
    /// model's clock starts).
    fn timing_tick(&self) -> u64 {
        self.now - self.timing_base.unwrap_or(self.now)
    }

    /// True when the timing model has `p` crashed at the current tick.
    pub fn offline_now(&self, p: PartyId) -> bool {
        self.timing
            .as_ref()
            .is_some_and(|m| m.offline(p, self.timing_tick()))
    }

    /// Every party the timing model has crashed at the current tick.
    pub fn offline_set(&self) -> BTreeSet<PartyId> {
        self.timing
            .as_ref()
            .map(|m| m.offline_parties(self.timing_tick()))
            .unwrap_or_default()
    }

    /// Creates the per-party context for sending/receiving in a round.
    pub fn ctx(&mut self, id: PartyId, round: u64) -> Ctx<'_> {
        Ctx {
            id,
            round,
            backend: Backend::Direct(self),
            prefetch: None,
        }
    }
}

/// How a [`Ctx`] realizes its operations: against the live network, or
/// into a thread-local effect buffer.
#[derive(Debug)]
enum Backend<'a> {
    Direct(&'a mut Network),
    Buffered {
        n: usize,
        effects: &'a mut RoundEffects,
    },
}

/// Per-party, per-round API handed to protocol machines.
///
/// All communication flows through this context so that accounting is exact:
/// [`Ctx::send`] charges the sender; [`Ctx::read`] charges the receiver.
///
/// The context never exposes intermediate network state (staged traffic or
/// running metrics) to the machine, which is what makes the buffered
/// backend observationally identical to the direct one.
#[derive(Debug)]
pub struct Ctx<'a> {
    id: PartyId,
    round: u64,
    backend: Backend<'a>,
    /// Digests prefetched by the worker's cross-party [`pba_crypto::sha256::
    /// DigestBatcher`], if the machine declared a hash manifest for this
    /// round (see [`crate::runner::Machine::hash_manifest`]). Serving is
    /// bit-identical to computing on demand, so this carries no observable
    /// state — only lane occupancy changes.
    prefetch: Option<PrefetchedDigests<'a>>,
}

impl<'a> Ctx<'a> {
    /// A buffering context for `id`: sends and receive charges accumulate
    /// into `effects` instead of mutating a network. `n` is the party
    /// count of the network the effects will later be applied to.
    pub fn buffered(id: PartyId, round: u64, n: usize, effects: &'a mut RoundEffects) -> Self {
        Ctx {
            id,
            round,
            backend: Backend::Buffered { n, effects },
            prefetch: None,
        }
    }

    /// Attaches a prefetched-digest view: subsequent [`Ctx::hash_batch`] /
    /// [`Ctx::hash_batch_into`] calls whose inputs match the declared
    /// manifest (in order) are served from the pool instead of hashing
    /// on the calling thread.
    pub fn with_prefetch(mut self, prefetch: PrefetchedDigests<'a>) -> Self {
        self.prefetch = Some(prefetch);
        self
    }
}

impl Ctx<'_> {
    /// The party this context belongs to.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// The current round (within the running phase).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of parties on the network.
    pub fn n(&self) -> usize {
        match &self.backend {
            Backend::Direct(net) => net.len(),
            Backend::Buffered { n, .. } => *n,
        }
    }

    /// The backend's reusable encode buffer (cleared by the wire encoders;
    /// retains capacity across sends).
    fn scratch(&mut self) -> &mut Vec<u8> {
        match &mut self.backend {
            Backend::Direct(net) => &mut net.encode_scratch,
            Backend::Buffered { effects, .. } => &mut effects.scratch,
        }
    }

    /// Sends an encodable message to `to`, charged to this party. The
    /// payload is *untagged*: its bytes land in the [`wire::tag::RAW`]
    /// attribution bucket. Protocol machines should prefer
    /// [`Ctx::send_msg`].
    ///
    /// Encoding reuses the backend's scratch buffer; the staged envelope
    /// carries an exact-size copy, byte-for-byte identical to encoding
    /// into a fresh `Vec` (asserted in `tests/wire.rs`).
    pub fn send<T: Encode + ?Sized>(&mut self, to: PartyId, msg: &T) {
        let scratch = self.scratch();
        scratch.clear();
        msg.encode(scratch);
        let payload = scratch.as_slice().to_vec();
        self.send_raw(to, payload);
    }

    /// Sends a typed wire message to `to` with its `{tag, step}` header,
    /// charged to this party and attributed to the message's tag.
    ///
    /// Encoding reuses the backend's scratch buffer (see [`Ctx::send`]).
    pub fn send_msg<T: WireMsg>(&mut self, to: PartyId, msg: &T) {
        let scratch = self.scratch();
        wire::encode_msg_into(msg, scratch);
        let payload = scratch.as_slice().to_vec();
        self.send_raw(to, payload);
    }

    /// Hashes many independent inputs through the multi-lane SHA-256
    /// engine ([`pba_crypto::sha256::batch_digest`]): bit-identical to
    /// hashing each input with the scalar core, up to ~8× fewer compression
    /// passes.
    ///
    /// This is the round engine's batching entry point: machines hand their
    /// per-round hash workload (inbox digests, commitment openings, …) to
    /// the engine in one call. The function is pure — no network state is
    /// read or written — so worker threads under
    /// [`crate::runner::run_phase_threaded`] each batch their own machines'
    /// workloads and `BaConfig::threads` composes with lane-level batching.
    ///
    /// When the worker prefetched this machine's declared manifest (see
    /// [`crate::runner::Machine::hash_manifest`]), matching requests are
    /// served from the cross-party pool — same bytes, fuller lanes.
    pub fn hash_batch(&self, inputs: &[&[u8]]) -> Vec<Digest> {
        if let Some(served) = self.prefetch.as_ref().and_then(|p| p.serve(inputs)) {
            return served.to_vec();
        }
        pba_crypto::sha256::batch_digest(inputs)
    }

    /// [`Ctx::hash_batch`] writing into a caller-owned scratch buffer
    /// ([`pba_crypto::sha256::batch_digest_into`]): `out` is cleared and
    /// refilled, reusing its capacity round over round — no per-call
    /// allocation on the round hot path.
    pub fn hash_batch_into(&self, inputs: &[&[u8]], out: &mut Vec<Digest>) {
        if let Some(served) = self.prefetch.as_ref().and_then(|p| p.serve(inputs)) {
            out.clear();
            out.extend_from_slice(served);
            return;
        }
        pba_crypto::sha256::batch_digest_into(inputs, out);
    }

    /// Sends raw payload bytes to `to`.
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range (in buffered mode the check runs
    /// eagerly so the failure surfaces in the machine's own round, exactly
    /// as it would against the live network).
    pub fn send_raw(&mut self, to: PartyId, payload: Vec<u8>) {
        let env = Envelope::new(self.id, to, payload);
        match &mut self.backend {
            Backend::Direct(net) => net.stage(env),
            Backend::Buffered { n, effects } => {
                assert!(env.from.index() < *n, "sender {} out of range", env.from);
                assert!(env.to.index() < *n, "receiver {} out of range", env.to);
                effects.ops.push(Effect::Send(env));
            }
        }
    }

    /// Processes an incoming envelope: charges this party for receiving it
    /// and decodes the payload.
    ///
    /// Returns `None` when decoding fails (the bytes were still paid for —
    /// the party had to read the message to discover it was garbage).
    pub fn read<T: Decode>(&mut self, env: &Envelope) -> Option<T> {
        self.charge_receive(env);
        decode_from_slice(&env.payload).ok()
    }

    /// Processes an incoming typed envelope through the hardened wire
    /// decoder: charges this party for receiving it (attributed to the
    /// sniffed tag) and decodes via [`wire::decode_msg`].
    ///
    /// Returns `None` when the payload is over-cap, mis-tagged, carries a
    /// wrong step byte, or has a malformed body (the bytes were still paid
    /// for — the party had to read the message to discover that).
    pub fn recv_msg<T: WireMsg>(&mut self, env: &Envelope) -> Option<T> {
        self.charge_receive(env);
        wire::decode_msg(&env.payload).ok()
    }

    /// Charges this party for processing `env` without decoding. The
    /// bytes are attributed to the wire tag sniffed from the payload.
    pub fn charge_receive(&mut self, env: &Envelope) {
        debug_assert_eq!(env.to, self.id, "processing someone else's mail");
        let tag = wire::peek_tag(&env.payload);
        match &mut self.backend {
            Backend::Direct(net) => {
                net.metrics
                    .record_receive_tagged(self.id, env.from, env.len(), tag)
            }
            Backend::Buffered { effects, .. } => effects.ops.push(Effect::Receive {
                to: self.id,
                from: env.from,
                bytes: env.len(),
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_crypto::codec::{CodecError, Reader};

    /// A minimal typed message for wire-layer tests, matching the
    /// registered `SampleQuery` schema (`[U64]`).
    #[derive(Clone, Debug, PartialEq, Eq)]
    struct TestQuery(u64);

    impl Encode for TestQuery {
        fn encode(&self, buf: &mut Vec<u8>) {
            self.0.encode(buf);
        }
    }

    impl Decode for TestQuery {
        fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
            Ok(TestQuery(u64::decode(r)?))
        }
    }

    impl WireMsg for TestQuery {
        const TAG: u8 = wire::tag::SAMPLE_QUERY;
        const STEP: u8 = wire::step::NONE;
    }

    #[test]
    fn typed_send_and_recv_attribute_tagged_bytes() {
        let mut net = Network::new(2);
        {
            let mut ctx = net.ctx(PartyId(0), 0);
            ctx.send_msg(PartyId(1), &TestQuery(42));
        }
        let envs = net.take_staged();
        {
            let mut ctx = net.ctx(PartyId(1), 1);
            assert_eq!(ctx.recv_msg::<TestQuery>(&envs[0]), Some(TestQuery(42)));
        }
        let len = (wire::HEADER_LEN + 8) as u64;
        let sender = net.metrics().party(PartyId(0));
        let receiver = net.metrics().party(PartyId(1));
        assert_eq!(sender.sent_by_tag[&wire::tag::SAMPLE_QUERY], len);
        assert_eq!(receiver.recv_by_tag[&wire::tag::SAMPLE_QUERY], len);
        assert!(net.metrics().tags_conserve_totals());
    }

    #[test]
    fn recv_msg_rejects_malformed_but_still_charges() {
        let mut net = Network::new(2);
        // Wrong step byte in the header: hardened decode refuses it.
        let mut payload = wire::encode_msg(&TestQuery(7));
        payload[1] ^= 0x55;
        let env = Envelope::new(PartyId(0), PartyId(1), payload);
        net.stage(env.clone());
        net.take_staged();
        {
            let mut ctx = net.ctx(PartyId(1), 0);
            assert_eq!(ctx.recv_msg::<TestQuery>(&env), None);
        }
        // Charged, but attributed to the raw bucket (header implausible).
        let receiver = net.metrics().party(PartyId(1));
        assert_eq!(receiver.bytes_received, env.len() as u64);
        assert_eq!(receiver.recv_by_tag[&wire::tag::RAW], env.len() as u64);
    }

    #[test]
    fn stage_and_take() {
        let mut net = Network::new(2);
        net.stage(Envelope::new(PartyId(0), PartyId(1), vec![1, 2, 3]));
        assert_eq!(net.metrics().party(PartyId(0)).bytes_sent, 3);
        let staged = net.take_staged();
        assert_eq!(staged.len(), 1);
        assert!(net.take_staged().is_empty());
    }

    #[test]
    fn ctx_send_and_read_charges_both_sides() {
        let mut net = Network::new(2);
        {
            let mut ctx = net.ctx(PartyId(0), 0);
            ctx.send(PartyId(1), &42u64);
        }
        let envs = net.take_staged();
        {
            let mut ctx = net.ctx(PartyId(1), 1);
            let v: u64 = ctx.read(&envs[0]).unwrap();
            assert_eq!(v, 42);
        }
        assert_eq!(net.metrics().party(PartyId(0)).bytes_sent, 8);
        assert_eq!(net.metrics().party(PartyId(1)).bytes_received, 8);
    }

    #[test]
    fn unprocessed_messages_are_free_for_receiver() {
        let mut net = Network::new(2);
        net.stage(Envelope::new(PartyId(0), PartyId(1), vec![0u8; 1000]));
        let _ = net.take_staged(); // receiver filters it out, never reads
        assert_eq!(net.metrics().party(PartyId(1)).bytes_received, 0);
        assert_eq!(net.metrics().party(PartyId(0)).bytes_sent, 1000);
    }

    #[test]
    fn malformed_payload_read_returns_none_but_charges() {
        let mut net = Network::new(2);
        let env = Envelope::new(PartyId(0), PartyId(1), vec![9]);
        net.stage(env.clone());
        net.take_staged();
        let mut ctx = net.ctx(PartyId(1), 0);
        assert_eq!(ctx.read::<u64>(&env), None);
        let _ = ctx;
        assert_eq!(net.metrics().party(PartyId(1)).bytes_received, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_receiver_panics() {
        let mut net = Network::new(1);
        net.stage(Envelope::new(PartyId(0), PartyId(5), vec![]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn buffered_out_of_range_receiver_panics() {
        let mut fx = RoundEffects::new();
        let mut ctx = Ctx::buffered(PartyId(0), 0, 1, &mut fx);
        ctx.send_raw(PartyId(5), vec![]);
    }

    #[test]
    fn buffered_effects_replay_identically() {
        // One party performing the same interleaved ops directly and via a
        // buffer must leave the network in an identical state.
        let inbox = Envelope::new(PartyId(1), PartyId(0), vec![7; 5]);
        let typed_inbox = Envelope::new(PartyId(1), PartyId(0), wire::encode_msg(&TestQuery(9)));
        let script = |ctx: &mut Ctx<'_>| {
            ctx.send(PartyId(1), &1u64);
            ctx.charge_receive(&inbox);
            ctx.send_raw(PartyId(1), vec![9; 3]);
            ctx.send_msg(PartyId(1), &TestQuery(4));
            let _ = ctx.recv_msg::<TestQuery>(&typed_inbox);
        };

        let mut direct = Network::new(2);
        script(&mut direct.ctx(PartyId(0), 0));

        let mut buffered = Network::new(2);
        let mut fx = RoundEffects::new();
        script(&mut Ctx::buffered(PartyId(0), 0, 2, &mut fx));
        assert_eq!(fx.len(), 5);
        buffered.apply_effects(fx);

        assert_eq!(direct.staged(), buffered.staged());
        assert_eq!(direct.report(), buffered.report());
        for id in [PartyId(0), PartyId(1)] {
            assert_eq!(
                direct.metrics().party(id).sent_by_tag,
                buffered.metrics().party(id).sent_by_tag
            );
            assert_eq!(
                direct.metrics().party(id).recv_by_tag,
                buffered.metrics().party(id).recv_by_tag
            );
        }
    }

    #[test]
    fn scratch_reuse_produces_identical_payloads() {
        // Interleave typed and untyped sends of different lengths so stale
        // scratch bytes would surface as payload corruption if the clear /
        // exact-size-copy discipline broke.
        let mut net = Network::new(2);
        {
            let mut ctx = net.ctx(PartyId(0), 0);
            ctx.send_msg(PartyId(1), &TestQuery(7));
            ctx.send(PartyId(1), &0xAABBCCDDu32);
            ctx.send_msg(PartyId(1), &TestQuery(u64::MAX));
            ctx.send(PartyId(1), &vec![1u8, 2, 3]);
        }
        let staged = net.take_staged();
        assert_eq!(staged[0].payload, wire::encode_msg(&TestQuery(7)));
        assert_eq!(
            staged[1].payload,
            pba_crypto::codec::encode_to_vec(&0xAABBCCDDu32)
        );
        assert_eq!(staged[2].payload, wire::encode_msg(&TestQuery(u64::MAX)));
        assert_eq!(
            staged[3].payload,
            pba_crypto::codec::encode_to_vec(&vec![1u8, 2, 3])
        );
        // Exact-size copies: no scratch capacity leaks into envelopes.
        for env in &staged {
            assert_eq!(env.payload.len(), env.payload.capacity());
        }
    }

    #[test]
    fn hash_batch_matches_scalar_digests() {
        let mut net = Network::new(1);
        let inputs: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; i as usize * 7]).collect();
        let refs: Vec<&[u8]> = inputs.iter().map(|v| v.as_slice()).collect();
        let ctx = net.ctx(PartyId(0), 0);
        let batched = ctx.hash_batch(&refs);
        let scalar: Vec<Digest> = refs.iter().map(|i| Sha256::digest(i)).collect();
        assert_eq!(batched, scalar);
    }

    #[test]
    fn round_effects_equality_ignores_scratch() {
        let mut a = RoundEffects::new();
        let mut b = RoundEffects::new();
        Ctx::buffered(PartyId(0), 0, 2, &mut a).send_msg(PartyId(1), &TestQuery(1));
        Ctx::buffered(PartyId(0), 0, 2, &mut b).send_msg(PartyId(1), &TestQuery(1));
        // Dirty one scratch differently: logs must still compare equal.
        Ctx::buffered(PartyId(0), 0, 2, &mut b)
            .scratch()
            .extend([9u8; 40]);
        assert_eq!(a, b);
    }

    /// A timing model with a single fixed-latency axis and no partition or
    /// churn, on a throwaway key.
    fn fixed_delay_model(delay: u64) -> TimingModel {
        TimingModel::new(
            [7u8; 32],
            Some(crate::faults::LatencyDist::Fixed { delay }),
            None,
            Vec::new(),
        )
    }

    #[test]
    fn zero_delay_model_is_byte_identical_to_no_model() {
        let run = |timed: bool| {
            let mut net = Network::new(2);
            net.enable_transcript();
            if timed {
                net.set_timing(fixed_delay_model(0));
            }
            let mut batches = Vec::new();
            for round in 0..3u8 {
                net.stage(Envelope::new(PartyId(0), PartyId(1), vec![round]));
                batches.push(net.take_staged());
                net.bump_round();
            }
            (batches, net.transcript().unwrap().to_vec())
        };
        assert_eq!(run(false), run(true));
        let mut net = Network::new(2);
        net.set_timing(fixed_delay_model(0));
        net.stage(Envelope::new(PartyId(0), PartyId(1), vec![1]));
        net.take_staged();
        let stats = net.timing_stats();
        assert_eq!((stats.staged, stats.delivered), (1, 1));
        assert_eq!(net.in_flight_len(), 0);
    }

    #[test]
    fn one_tick_delay_delivers_one_round_late() {
        let mut net = Network::new(2);
        net.set_timing(fixed_delay_model(1));
        net.stage(Envelope::new(PartyId(0), PartyId(1), vec![9]));
        // Staged at tick 0 with delay 1: not due yet.
        assert!(net.take_staged().is_empty());
        assert_eq!(net.in_flight_len(), 1);
        net.bump_round();
        let late = net.take_staged();
        assert_eq!(late.len(), 1);
        assert_eq!(late[0].payload, vec![9]);
        assert_eq!(net.in_flight_len(), 0);
        assert_eq!(net.timing_stats().delivered, 1);
    }

    #[test]
    fn timing_base_is_lazy() {
        // Rounds bumped before the first delivery do not consume model
        // ticks: the clock starts at the first `take_staged`.
        let mut net = Network::new(2);
        net.set_timing(TimingModel::new(
            [7u8; 32],
            None,
            None,
            vec![(PartyId(1), 0, 2)],
        ));
        for _ in 0..10 {
            net.bump_round(); // synthetic pre-phase rounds
        }
        assert!(net.offline_now(PartyId(1)), "window starts at tick 0");
        net.take_staged(); // clock starts: tick 0
        assert!(net.offline_now(PartyId(1)));
        net.bump_round();
        net.bump_round();
        assert!(!net.offline_now(PartyId(1)), "rejoined at tick 2");
        assert!(net.offline_set().is_empty());
    }

    #[test]
    fn expired_messages_are_counted_not_lost() {
        // Receiver 0 is offline for ticks 0..2; the partition blocks
        // 1 -> 0 is not configured here, so expiry is all churn.
        let mut net = Network::new(2);
        net.set_timing(TimingModel::new(
            [7u8; 32],
            None,
            Some((1, Some(1))),
            vec![(PartyId(0), 0, 2)],
        ));
        // Tick 0: 1 -> 0 is blocked by the partition (from >= 1, to < 1).
        net.stage(Envelope::new(PartyId(1), PartyId(0), vec![1]));
        // 0 -> 1 passes (partition is asymmetric).
        net.stage(Envelope::new(PartyId(0), PartyId(1), vec![2]));
        let batch = net.take_staged();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].payload, vec![2]);
        net.bump_round();
        // Tick 1: the cut healed, but the receiver is offline until tick 2.
        net.stage(Envelope::new(PartyId(1), PartyId(0), vec![3]));
        assert!(net.take_staged().is_empty());
        net.bump_round();
        // Tick 2: receiver is back; delivery resumes.
        net.stage(Envelope::new(PartyId(1), PartyId(0), vec![4]));
        assert_eq!(net.take_staged().len(), 1);
        let stats = net.timing_stats();
        assert_eq!(stats.staged, 4);
        assert_eq!(stats.delivered, 2);
        assert_eq!(stats.expired_partition, 1);
        assert_eq!(stats.expired_offline, 1);
        assert_eq!(
            stats.staged,
            stats.delivered
                + stats.expired_partition
                + stats.expired_offline
                + net.in_flight_len() as u64
        );
    }

    /// A transport that fails every exchange — exercises the network's
    /// error latch.
    #[derive(Debug)]
    struct FailingTransport;

    impl crate::transport::Transport for FailingTransport {
        fn exchange(
            &mut self,
            seq: u64,
            _staged: Vec<Envelope>,
        ) -> Result<Vec<Envelope>, crate::transport::TransportError> {
            Err(crate::transport::TransportError::PeerClosed { peer: 1, seq })
        }
        fn kind(&self) -> &'static str {
            "failing"
        }
    }

    #[test]
    fn local_transport_matches_bare_network_transcript() {
        let run = |attach: bool| {
            let mut net = Network::new(2);
            if attach {
                net.attach_transport(Box::new(crate::transport::LocalTransport::new()));
            } else {
                net.enable_transcript();
            }
            let mut batches = Vec::new();
            for round in 0..3u8 {
                net.stage(Envelope::new(PartyId(0), PartyId(1), vec![round]));
                batches.push(net.take_staged());
                net.bump_round();
            }
            (batches, net.transcript().unwrap().to_vec())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn transport_failure_latches_and_empties_delivery() {
        let mut net = Network::new(2);
        net.attach_transport(Box::new(FailingTransport));
        net.stage(Envelope::new(PartyId(0), PartyId(1), vec![1]));
        assert!(net.transport_error().is_none());
        assert!(net.take_staged().is_empty());
        assert_eq!(
            net.transport_error(),
            Some(&crate::transport::TransportError::PeerClosed { peer: 1, seq: 0 })
        );
        // Later rounds stay empty and keep the *first* error.
        net.stage(Envelope::new(PartyId(0), PartyId(1), vec![2]));
        assert!(net.take_staged().is_empty());
        assert_eq!(
            net.transport_error(),
            Some(&crate::transport::TransportError::PeerClosed { peer: 1, seq: 0 })
        );
        assert_eq!(net.transport().unwrap().kind(), "failing");
        assert!(net.detach_transport().is_some());
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn transport_after_timing_panics() {
        let mut net = Network::new(2);
        net.set_timing(fixed_delay_model(0));
        net.attach_transport(Box::new(crate::transport::LocalTransport::new()));
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn timing_after_transport_panics() {
        let mut net = Network::new(2);
        net.attach_transport(Box::new(crate::transport::LocalTransport::new()));
        net.set_timing(fixed_delay_model(0));
    }

    #[test]
    fn transcript_chains_delivered_batches() {
        let mut a = Network::new(2);
        let mut b = Network::new(2);
        a.enable_transcript();
        b.enable_transcript();
        for net in [&mut a, &mut b] {
            net.stage(Envelope::new(PartyId(0), PartyId(1), vec![1]));
            net.take_staged();
            net.stage(Envelope::new(PartyId(1), PartyId(0), vec![2]));
            net.take_staged();
        }
        assert_eq!(a.transcript(), b.transcript());
        assert_eq!(a.transcript().unwrap().len(), 2);

        // A divergence in round 1 shows up at index 1, not index 0.
        let mut c = Network::new(2);
        c.enable_transcript();
        c.stage(Envelope::new(PartyId(0), PartyId(1), vec![1]));
        c.take_staged();
        c.stage(Envelope::new(PartyId(1), PartyId(0), vec![3]));
        c.take_staged();
        let (ta, tc) = (a.transcript().unwrap(), c.transcript().unwrap());
        assert_eq!(ta[0], tc[0]);
        assert_ne!(ta[1], tc[1]);
    }
}
