//! The synchronous network: staged envelopes, round delivery, and the
//! per-party sending/receiving context with exact accounting.
//!
//! Model (standard synchronous point-to-point network with authenticated
//! channels, as in the paper):
//!
//! * messages sent in round `r` are delivered at the beginning of round
//!   `r + 1`;
//! * channels are authenticated — the `from` field of an [`Envelope`] is
//!   trustworthy for honest receivers;
//! * receivers perform **dynamic message filtering**: a message costs its
//!   receiver communication only when the receiver *processes* it (reads the
//!   payload via [`Ctx::read`]); filtered messages are dropped for free, as
//!   in the message-filtering model the paper builds on.

use crate::envelope::{Envelope, PartyId};
use crate::metrics::{MetricsTable, Report};
use pba_crypto::codec::{decode_from_slice, Decode, Encode};

/// The simulated synchronous network for one protocol execution.
#[derive(Debug)]
pub struct Network {
    n: usize,
    metrics: MetricsTable,
    /// Envelopes sent this round, delivered next round.
    staged: Vec<Envelope>,
}

impl Network {
    /// Creates a network for `n` parties.
    pub fn new(n: usize) -> Self {
        Network {
            n,
            metrics: MetricsTable::new(n),
            staged: Vec::new(),
        }
    }

    /// Number of parties.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the network has no parties.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Read access to the metrics table.
    pub fn metrics(&self) -> &MetricsTable {
        &self.metrics
    }

    /// Mutable access to the metrics table (for synthetic charges).
    pub fn metrics_mut(&mut self) -> &mut MetricsTable {
        &mut self.metrics
    }

    /// Aggregate report over all parties.
    pub fn report(&self) -> Report {
        self.metrics.report()
    }

    /// Stages an envelope for next-round delivery, charging the sender.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn stage(&mut self, env: Envelope) {
        assert!(
            env.from.index() < self.n,
            "sender {} out of range",
            env.from
        );
        assert!(env.to.index() < self.n, "receiver {} out of range", env.to);
        self.metrics.record_send(env.from, env.to, env.len());
        self.staged.push(env);
    }

    /// Takes all staged envelopes (the runner calls this at round boundary).
    pub fn take_staged(&mut self) -> Vec<Envelope> {
        std::mem::take(&mut self.staged)
    }

    /// Peeks at the staged envelopes without consuming them — used by the
    /// runner for rushing observation, so only envelopes addressed to
    /// corrupted parties are cloned (rather than cloning and re-staging the
    /// whole round's traffic).
    pub fn staged(&self) -> &[Envelope] {
        &self.staged
    }

    /// Advances the round counter.
    pub fn bump_round(&mut self) {
        self.metrics.bump_round();
    }

    /// Creates the per-party context for sending/receiving in a round.
    pub fn ctx(&mut self, id: PartyId, round: u64) -> Ctx<'_> {
        Ctx {
            id,
            round,
            net: self,
        }
    }
}

/// Per-party, per-round API handed to protocol machines.
///
/// All communication flows through this context so that accounting is exact:
/// [`Ctx::send`] charges the sender; [`Ctx::read`] charges the receiver.
#[derive(Debug)]
pub struct Ctx<'a> {
    id: PartyId,
    round: u64,
    net: &'a mut Network,
}

impl Ctx<'_> {
    /// The party this context belongs to.
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// The current round (within the running phase).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of parties on the network.
    pub fn n(&self) -> usize {
        self.net.len()
    }

    /// Sends an encodable message to `to`, charged to this party.
    pub fn send<T: Encode + ?Sized>(&mut self, to: PartyId, msg: &T) {
        let payload = pba_crypto::codec::encode_to_vec(msg);
        self.send_raw(to, payload);
    }

    /// Sends raw payload bytes to `to`.
    pub fn send_raw(&mut self, to: PartyId, payload: Vec<u8>) {
        self.net.stage(Envelope::new(self.id, to, payload));
    }

    /// Processes an incoming envelope: charges this party for receiving it
    /// and decodes the payload.
    ///
    /// Returns `None` when decoding fails (the bytes were still paid for —
    /// the party had to read the message to discover it was garbage).
    pub fn read<T: Decode>(&mut self, env: &Envelope) -> Option<T> {
        self.charge_receive(env);
        decode_from_slice(&env.payload).ok()
    }

    /// Charges this party for processing `env` without decoding.
    pub fn charge_receive(&mut self, env: &Envelope) {
        debug_assert_eq!(env.to, self.id, "processing someone else's mail");
        self.net
            .metrics
            .record_receive(self.id, env.from, env.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_and_take() {
        let mut net = Network::new(2);
        net.stage(Envelope::new(PartyId(0), PartyId(1), vec![1, 2, 3]));
        assert_eq!(net.metrics().party(PartyId(0)).bytes_sent, 3);
        let staged = net.take_staged();
        assert_eq!(staged.len(), 1);
        assert!(net.take_staged().is_empty());
    }

    #[test]
    fn ctx_send_and_read_charges_both_sides() {
        let mut net = Network::new(2);
        {
            let mut ctx = net.ctx(PartyId(0), 0);
            ctx.send(PartyId(1), &42u64);
        }
        let envs = net.take_staged();
        {
            let mut ctx = net.ctx(PartyId(1), 1);
            let v: u64 = ctx.read(&envs[0]).unwrap();
            assert_eq!(v, 42);
        }
        assert_eq!(net.metrics().party(PartyId(0)).bytes_sent, 8);
        assert_eq!(net.metrics().party(PartyId(1)).bytes_received, 8);
    }

    #[test]
    fn unprocessed_messages_are_free_for_receiver() {
        let mut net = Network::new(2);
        net.stage(Envelope::new(PartyId(0), PartyId(1), vec![0u8; 1000]));
        let _ = net.take_staged(); // receiver filters it out, never reads
        assert_eq!(net.metrics().party(PartyId(1)).bytes_received, 0);
        assert_eq!(net.metrics().party(PartyId(0)).bytes_sent, 1000);
    }

    #[test]
    fn malformed_payload_read_returns_none_but_charges() {
        let mut net = Network::new(2);
        let env = Envelope::new(PartyId(0), PartyId(1), vec![9]);
        net.stage(env.clone());
        net.take_staged();
        let mut ctx = net.ctx(PartyId(1), 0);
        assert_eq!(ctx.read::<u64>(&env), None);
        let _ = ctx;
        assert_eq!(net.metrics().party(PartyId(1)).bytes_received, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_receiver_panics() {
        let mut net = Network::new(1);
        net.stage(Envelope::new(PartyId(0), PartyId(5), vec![]));
    }
}
