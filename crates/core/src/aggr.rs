//! The signature-aggregation functionality `f_aggr-sig` of §3.1.
//!
//! The paper realizes `f_aggr-sig` with the constant-round MPC of
//! Damgård–Ishai so that `Aggregate₂`'s randomness can stay private.
//! Neither of our SRDS constructions uses secret randomness in
//! `Aggregate₂`, so we realize the functionality directly at its interface
//! (DESIGN.md §2, substitution 4): every committee member submits its
//! signature set; the functionality keeps exactly the signatures submitted
//! by a **strict majority** of members (the paper: "determines the set of
//! signatures received from a majority of the parties"), aggregates them
//! with `Aggregate₁`/`Aggregate₂`, and hands the same output to everyone.
//!
//! [`charge_aggr_round`] meters the communication the realizing protocol
//! costs: the intra-committee exchange of the input sets plus the
//! constant-round MPC traffic, all `polylog(n) · poly(κ)` per member.

use pba_net::wire::tag;
use pba_net::{Network, PartyId};
use pba_srds::traits::Srds;
use std::collections::BTreeMap;

/// Computes `f_aggr-sig` over the members' submitted signature sets.
///
/// `inputs` maps each committee member to the set it submitted (corrupted
/// members' entries come from the adversary; missing entries model
/// silence). A signature qualifies for aggregation iff submitted by more
/// than half of `committee`.
pub fn f_aggr_sig<S: Srds>(
    scheme: &S,
    pp: &S::PublicParams,
    keys: &S::KeyBoard,
    message: &[u8],
    committee: &[PartyId],
    inputs: &BTreeMap<PartyId, Vec<S::Signature>>,
) -> Option<S::Signature> {
    let quorum = committee.len() / 2 + 1;
    // Count submissions per distinct signature.
    let mut pool: Vec<(S::Signature, usize)> = Vec::new();
    for member in committee {
        let Some(set) = inputs.get(member) else {
            continue;
        };
        let mut seen_this_member: Vec<&S::Signature> = Vec::new();
        for sig in set {
            // A member submitting the same signature twice counts once.
            if seen_this_member.contains(&sig) {
                continue;
            }
            seen_this_member.push(sig);
            if let Some(entry) = pool.iter_mut().find(|(s, _)| s == sig) {
                entry.1 += 1;
            } else {
                pool.push((sig.clone(), 1));
            }
        }
    }
    let majority: Vec<S::Signature> = pool
        .into_iter()
        .filter(|(_, c)| *c >= quorum)
        .map(|(s, _)| s)
        .collect();
    if majority.is_empty() {
        return None;
    }
    scheme.aggregate(pp, keys, message, &majority)
}

/// The common uniform case of [`f_aggr_sig`]: `submitters` members (the
/// honest ones) all submitted the identical `inputs` set and the remaining
/// members submitted nothing. Equivalent to the general function but avoids
/// materializing per-member copies.
pub fn f_aggr_sig_uniform<S: Srds>(
    scheme: &S,
    pp: &S::PublicParams,
    keys: &S::KeyBoard,
    message: &[u8],
    committee_len: usize,
    submitters: usize,
    inputs: &[S::Signature],
) -> Option<S::Signature> {
    let quorum = committee_len / 2 + 1;
    if submitters < quorum || inputs.is_empty() {
        return None;
    }
    scheme.aggregate(pp, keys, message, inputs)
}

/// Meters the communication of one `f_aggr-sig` invocation for a committee:
/// each member broadcasts its input set to every other member (Fig. 3 step
/// 5b) and participates in the constant-round aggregation protocol.
///
/// `input_bytes` is each member's total submitted signature bytes;
/// `output_bytes` the size of the aggregate (exchanged during the MPC
/// output phase).
pub fn charge_aggr_round(
    net: &mut Network,
    committee: &[PartyId],
    input_bytes: &BTreeMap<PartyId, usize>,
    output_bytes: usize,
) {
    for &member in committee {
        let bytes = input_bytes.get(&member).copied().unwrap_or(0);
        for &peer in committee {
            if peer == member {
                continue;
            }
            // Step 5b exchange: signature-share sets between members.
            net.metrics_mut()
                .record_send_tagged(member, peer, bytes, tag::AGGR_SHARE);
            net.metrics_mut()
                .record_receive_tagged(peer, member, bytes, tag::AGGR_SHARE);
        }
        // Constant-round MPC output delivery, charged per concrete link
        // so the aggregate's fan-out is visible in locality and in the
        // receivers' totals (addressee-less `charge_synthetic` kept this
        // traffic out of both — the silent-metrics gap).
        for &peer in committee {
            if peer == member {
                continue;
            }
            net.metrics_mut().charge_synthetic_link_tagged(
                member,
                peer,
                output_bytes as u64,
                1,
                tag::AGGR_MPC,
            );
        }
    }
    // Round accounting is the caller's: all nodes of a tree level run their
    // f_aggr-sig invocations in parallel, so the caller bumps once per level.
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_crypto::prg::Prg;
    use pba_srds::owf::OwfSrds;
    use pba_srds::traits::PkiBoard;

    fn setup(n: usize) -> (OwfSrds, PkiBoard<OwfSrds>, Vec<LamportKeys>) {
        let scheme = OwfSrds::with_defaults();
        let mut prg = Prg::from_seed_bytes(b"aggr");
        let board = PkiBoard::establish(&scheme, n, &mut prg);
        (scheme, board, Vec::new())
    }

    // Alias to keep the helper signature readable.
    type LamportKeys = ();

    #[test]
    fn unanimous_submission_aggregates_everything() {
        let (scheme, board, _) = setup(256);
        let keys = board.prepare(&scheme);
        let sigs: Vec<_> = (0..256u64)
            .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], b"m"))
            .collect();
        let committee: Vec<PartyId> = (0..7u64).map(PartyId).collect();
        let inputs: BTreeMap<PartyId, Vec<_>> =
            committee.iter().map(|&m| (m, sigs.clone())).collect();
        let agg = f_aggr_sig(&scheme, &board.pp, &keys, b"m", &committee, &inputs).unwrap();
        assert!(scheme.verify(&board.pp, &keys, b"m", &agg));
    }

    #[test]
    fn minority_submissions_filtered() {
        let (scheme, board, _) = setup(256);
        let keys = board.prepare(&scheme);
        let sigs: Vec<_> = (0..256u64)
            .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], b"m"))
            .collect();
        let committee: Vec<PartyId> = (0..7u64).map(PartyId).collect();
        // Members 0..4 submit everything; 5 and 6 submit one extra sig that
        // only they saw — that one must be filtered (but here all sigs are
        // valid, so check by count instead).
        let mut inputs: BTreeMap<PartyId, Vec<_>> = committee
            .iter()
            .take(5)
            .map(|&m| (m, sigs[..sigs.len() - 1].to_vec()))
            .collect();
        inputs.insert(PartyId(5), vec![sigs[sigs.len() - 1].clone()]);
        inputs.insert(PartyId(6), vec![sigs[sigs.len() - 1].clone()]);
        let agg = f_aggr_sig(&scheme, &board.pp, &keys, b"m", &committee, &inputs).unwrap();
        // The minority signature (count 2 < 4) is excluded.
        assert_eq!(agg.entries.len(), sigs.len() - 1);
    }

    #[test]
    fn empty_inputs_yield_none() {
        let (scheme, board, _) = setup(64);
        let keys = board.prepare(&scheme);
        let committee: Vec<PartyId> = (0..5u64).map(PartyId).collect();
        let inputs = BTreeMap::new();
        assert!(f_aggr_sig(&scheme, &board.pp, &keys, b"m", &committee, &inputs).is_none());
    }

    #[test]
    fn duplicate_submission_by_one_member_counts_once() {
        let (scheme, board, _) = setup(256);
        let keys = board.prepare(&scheme);
        let sigs: Vec<_> = (0..256u64)
            .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], b"m"))
            .collect();
        let committee: Vec<PartyId> = (0..5u64).map(PartyId).collect();
        // Only member 0 submits (repeating the set 10 times): no majority.
        let mut repeated = Vec::new();
        for _ in 0..10 {
            repeated.extend(sigs.iter().cloned());
        }
        let inputs: BTreeMap<PartyId, Vec<_>> = [(PartyId(0), repeated)].into();
        assert!(f_aggr_sig(&scheme, &board.pp, &keys, b"m", &committee, &inputs).is_none());
    }

    #[test]
    fn uniform_matches_general() {
        let (scheme, board, _) = setup(256);
        let keys = board.prepare(&scheme);
        let sigs: Vec<_> = (0..256u64)
            .filter_map(|i| scheme.sign(&board.pp, i, &board.sks[i as usize], b"m"))
            .collect();
        let committee: Vec<PartyId> = (0..7u64).map(PartyId).collect();
        let inputs: BTreeMap<PartyId, Vec<_>> =
            committee.iter().map(|&m| (m, sigs.clone())).collect();
        let general = f_aggr_sig(&scheme, &board.pp, &keys, b"m", &committee, &inputs);
        let uniform = f_aggr_sig_uniform(&scheme, &board.pp, &keys, b"m", 7, 7, &sigs);
        assert_eq!(general, uniform);
        // Below quorum: both None.
        let few: BTreeMap<PartyId, Vec<_>> = committee
            .iter()
            .take(3)
            .map(|&m| (m, sigs.clone()))
            .collect();
        assert_eq!(
            f_aggr_sig(&scheme, &board.pp, &keys, b"m", &committee, &few),
            None
        );
        assert_eq!(
            f_aggr_sig_uniform(&scheme, &board.pp, &keys, b"m", 7, 3, &sigs),
            None
        );
    }

    #[test]
    fn charge_aggr_round_meters_members_only() {
        let mut net = Network::new(20);
        let committee: Vec<PartyId> = (0..5u64).map(PartyId).collect();
        let input_bytes: BTreeMap<PartyId, usize> = committee.iter().map(|&m| (m, 100)).collect();
        charge_aggr_round(&mut net, &committee, &input_bytes, 64);
        for i in 0..5u64 {
            assert!(net.metrics().party(PartyId(i)).bytes_sent >= 400);
        }
        for i in 5..20u64 {
            assert_eq!(net.metrics().party(PartyId(i)).bytes_sent, 0);
        }
        // Rounds are bumped by the caller (per level), not per invocation.
        assert_eq!(net.report().rounds, 0);
    }
}
