//! Committee Byzantine agreement: the **phase-king** protocol
//! (Berman–Garay–Perry), realizing the `f_ba` functionality of §3.1 for
//! `t < n/3` inside polylog-size committees.
//!
//! The paper invokes Garay–Moses `f_ba` inside committees; phase-king has
//! the same resilience (`t < n/3`) and round/communication asymptotics at
//! committee scale (see DESIGN.md §2, substitution 3). The protocol is
//! generic over the agreed value type, which also lets the coin-tossing
//! functionality agree on 32-byte seeds.
//!
//! Structure: `t + 1` phases of three rounds each —
//!
//! 1. **value**: everyone broadcasts its current value; a value seen
//!    `≥ n − t` times becomes the party's *proposal*;
//! 2. **propose**: proposals are broadcast; a proposal seen `> t` times is
//!    adopted; the count of matching proposals is remembered;
//! 3. **king**: the phase's king broadcasts its value; parties that saw
//!    `< n − t` matching proposals adopt the king's value.
//!
//! With `t < n/3`, at most one value can gather a proposal quorum per
//! phase, and any phase with an honest king ends with all honest parties
//! agreed; `t + 1` phases guarantee an honest king.

use pba_crypto::codec::{CodecError, Decode, Encode, Reader};
use pba_crypto::Digest;
use pba_net::wire::{step, tag};
use pba_net::{Ctx, Envelope, Machine, PartyId, WireMsg};
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

/// Value types phase-king can agree on.
pub trait PkValue: Clone + Eq + Hash + Debug + Encode + Decode {}
impl<T: Clone + Eq + Hash + Debug + Encode + Decode> PkValue for T {}

/// A phase-king message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PkMsg<V> {
    /// Round-1 value broadcast.
    Value(V),
    /// Round-2 proposal broadcast.
    Propose(V),
    /// Round-3 king broadcast.
    King(V),
}

impl<V: Encode> Encode for PkMsg<V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            PkMsg::Value(v) => {
                buf.push(0);
                v.encode(buf);
            }
            PkMsg::Propose(v) => {
                buf.push(1);
                v.encode(buf);
            }
            PkMsg::King(v) => {
                buf.push(2);
                v.encode(buf);
            }
        }
    }
}

impl<V: Decode> Decode for PkMsg<V> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        match u8::decode(r)? {
            0 => Ok(PkMsg::Value(V::decode(r)?)),
            1 => Ok(PkMsg::Propose(V::decode(r)?)),
            2 => Ok(PkMsg::King(V::decode(r)?)),
            t => Err(CodecError::InvalidTag(t)),
        }
    }
}

impl WireMsg for PkMsg<u8> {
    const TAG: u8 = tag::PK_MSG_U8;
    const STEP: u8 = step::COMMITTEE_BA;
}

impl WireMsg for PkMsg<Digest> {
    const TAG: u8 = tag::PK_MSG_DIGEST;
    const STEP: u8 = step::COMMITTEE_BA;
}

/// Number of synchronous rounds a committee of size `c` needs.
pub fn rounds_for(c: usize) -> u64 {
    let t = max_faults(c);
    3 * (t as u64 + 1) + 1
}

/// Maximum Byzantine faults tolerated by a committee of size `c`.
pub fn max_faults(c: usize) -> usize {
    c.saturating_sub(1) / 3
}

/// The phase-king state machine for one committee member.
///
/// Committee members address each other through the *global* party ids in
/// `committee`; a party appearing multiple times in a committee acts once
/// per seat through separate machines in the caller's bookkeeping (the BA
/// protocol's committees have distinct members, so this does not arise
/// there).
#[derive(Debug)]
pub struct PhaseKing<V> {
    committee: Vec<PartyId>,
    me: PartyId,
    t: usize,
    value: V,
    proposal: Option<V>,
    propose_count: usize,
    decided: bool,
    done: bool,
}

impl<V: PkValue> PhaseKing<V> {
    /// Creates the machine for member `me` of `committee` with input
    /// `value`.
    ///
    /// # Panics
    ///
    /// Panics if `me` is not in the committee or the committee is empty.
    pub fn new(committee: Vec<PartyId>, me: PartyId, value: V) -> Self {
        assert!(!committee.is_empty(), "empty committee");
        assert!(committee.contains(&me), "{me} not in committee");
        let t = max_faults(committee.len());
        PhaseKing {
            committee,
            me,
            t,
            value,
            proposal: None,
            propose_count: 0,
            decided: false,
            done: false,
        }
    }

    /// The decided value, once the protocol has terminated.
    pub fn output(&self) -> Option<&V> {
        self.decided.then_some(&self.value)
    }

    fn broadcast(&self, ctx: &mut Ctx<'_>, msg: &PkMsg<V>)
    where
        PkMsg<V>: WireMsg,
    {
        for &peer in &self.committee {
            if peer != self.me {
                ctx.send_msg(peer, msg);
            }
        }
    }

    /// Tallies one message per committee peer from the inbox, plus the
    /// party's own contribution.
    fn tally<F>(
        &mut self,
        ctx: &mut Ctx<'_>,
        inbox: &[Envelope],
        mine: Option<V>,
        pick: F,
    ) -> HashMap<V, usize>
    where
        F: Fn(PkMsg<V>) -> Option<V>,
        PkMsg<V>: WireMsg,
    {
        let mut counts: HashMap<V, usize> = HashMap::new();
        let mut seen: std::collections::HashSet<PartyId> = Default::default();
        for env in inbox {
            // Dynamic filtering: one message per committee peer per round.
            if !self.committee.contains(&env.from) || !seen.insert(env.from) {
                continue;
            }
            if let Some(msg) = ctx.recv_msg::<PkMsg<V>>(env) {
                if let Some(v) = pick(msg) {
                    *counts.entry(v).or_default() += 1;
                }
            }
        }
        if let Some(v) = mine {
            *counts.entry(v).or_default() += 1;
        }
        counts
    }
}

impl<V: PkValue> Machine for PhaseKing<V>
where
    PkMsg<V>: WireMsg,
{
    fn on_round(&mut self, ctx: &mut Ctx<'_>, inbox: &[Envelope]) {
        if self.done {
            return;
        }
        let n = self.committee.len();
        let round = ctx.round();
        let phase = (round / 3) as usize;

        // Phase boundary: the previous phase's king message is in the inbox.
        if round % 3 == 0 && phase >= 1 {
            let prev_king = self.committee[(phase - 1) % n];
            if prev_king != self.me {
                for env in inbox {
                    if env.from != prev_king {
                        continue;
                    }
                    if let Some(PkMsg::King(v)) = ctx.recv_msg::<PkMsg<V>>(env) {
                        if self.propose_count < n - self.t {
                            self.value = v;
                        }
                        break;
                    }
                }
            }
        }

        if phase > self.t {
            // All t + 1 phases complete: decide.
            self.decided = true;
            self.done = true;
            return;
        }

        match round % 3 {
            0 => {
                // Round 1 of the phase: broadcast value.
                self.broadcast(ctx, &PkMsg::Value(self.value.clone()));
            }
            1 => {
                // Tally values; propose any (n - t)-quorum value.
                let mine = Some(self.value.clone());
                let counts = self.tally(ctx, inbox, mine, |m| match m {
                    PkMsg::Value(v) => Some(v),
                    _ => None,
                });
                self.proposal = counts
                    .into_iter()
                    .find(|(_, c)| *c >= n - self.t)
                    .map(|(v, _)| v);
                if let Some(p) = &self.proposal {
                    let msg = PkMsg::Propose(p.clone());
                    self.broadcast(ctx, &msg);
                }
            }
            _ => {
                // Tally proposals; adopt a (> t)-supported one; king speaks.
                let counts = self.tally(ctx, inbox, self.proposal.clone(), |m| match m {
                    PkMsg::Propose(v) => Some(v),
                    _ => None,
                });
                let (best, best_count) = counts
                    .into_iter()
                    .max_by_key(|(_, c)| *c)
                    .map(|(v, c)| (Some(v), c))
                    .unwrap_or((None, 0));
                if best_count > self.t {
                    self.value = best.expect("count > 0 implies value");
                }
                self.propose_count = best_count;

                let king = self.committee[phase % n];
                if king == self.me {
                    self.broadcast(ctx, &PkMsg::King(self.value.clone()));
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pba_net::runner::{run_phase, AdvSender, Adversary, SilentAdversary};
    use pba_net::Network;
    use std::collections::{BTreeMap, BTreeSet};

    /// Concrete runner that keeps typed access to the machines.
    fn run_committee_concrete(
        c: usize,
        inputs: &[u8],
        adversary: &mut dyn Adversary,
    ) -> (Vec<Option<u8>>, pba_net::Report) {
        let committee: Vec<PartyId> = (0..c).map(PartyId::from).collect();
        let mut net = Network::new(c);
        let mut typed: BTreeMap<PartyId, PhaseKing<u8>> = BTreeMap::new();
        for (i, &id) in committee.iter().enumerate() {
            if !adversary.corrupted().contains(&id) {
                typed.insert(id, PhaseKing::new(committee.clone(), id, inputs[i]));
            }
        }
        {
            let mut machines: BTreeMap<PartyId, Box<dyn Machine + Send + '_>> = typed
                .iter_mut()
                .map(|(&id, m)| (id, Box::new(m) as Box<dyn Machine + Send + '_>))
                .collect();
            let outcome = run_phase(&mut net, &mut machines, adversary, rounds_for(c) + 6);
            assert!(outcome.completed, "phase-king did not terminate");
        }
        let outputs = committee
            .iter()
            .map(|id| typed.get(id).and_then(|m| m.output().copied()))
            .collect();
        (outputs, net.report())
    }

    #[test]
    fn all_honest_unanimous() {
        let mut adv = SilentAdversary::default();
        let (out, _) = run_committee_concrete(7, &[1; 7], &mut adv);
        assert!(out.iter().all(|o| *o == Some(1)));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn all_honest_mixed_inputs_agree() {
        let mut adv = SilentAdversary::default();
        let inputs = [0u8, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        let (out, _) = run_committee_concrete(10, &inputs, &mut adv);
        let decided: BTreeSet<u8> = out.iter().flatten().copied().collect();
        assert_eq!(decided.len(), 1, "honest parties disagree: {out:?}");
    }

    #[test]
    fn validity_with_silent_faults() {
        // All honest parties hold 1; t silent corrupt parties.
        for c in [4usize, 7, 10, 13] {
            let t = max_faults(c);
            let corrupt: BTreeSet<PartyId> = (0..t).map(PartyId::from).collect();
            let mut adv = SilentAdversary::new(corrupt.clone());
            let inputs = vec![1u8; c];
            let (out, _) = run_committee_concrete(c, &inputs, &mut adv);
            for (i, o) in out.iter().enumerate() {
                if !corrupt.contains(&PartyId::from(i)) {
                    assert_eq!(*o, Some(1), "c={c} party {i}");
                }
            }
        }
    }

    /// A Byzantine adversary that equivocates values and proposals, and
    /// lies as king.
    struct Equivocator {
        corrupted: BTreeSet<PartyId>,
        committee: Vec<PartyId>,
    }

    impl Adversary for Equivocator {
        fn corrupted(&self) -> &BTreeSet<PartyId> {
            &self.corrupted
        }
        fn on_round(
            &mut self,
            round: u64,
            _rushed: &BTreeMap<PartyId, Vec<Envelope>>,
            sender: &mut AdvSender<'_>,
        ) {
            for &bad in &self.corrupted {
                for (j, &peer) in self.committee.iter().enumerate() {
                    if self.corrupted.contains(&peer) {
                        continue;
                    }
                    // Send 0 to even-index peers, 1 to odd — in every role.
                    let v = (j % 2) as u8;
                    let msg = match round % 3 {
                        0 => PkMsg::Value(v),
                        1 => PkMsg::Propose(v),
                        _ => PkMsg::King(v),
                    };
                    sender.send_msg(bad, peer, &msg);
                }
            }
        }
    }

    #[test]
    fn agreement_under_equivocation() {
        for c in [7usize, 10, 13] {
            let t = max_faults(c);
            let committee: Vec<PartyId> = (0..c).map(PartyId::from).collect();
            // Corrupt the *last* t (kings are taken from the front, so the
            // first kings are honest — adversarial kings tested next).
            let corrupted: BTreeSet<PartyId> = (c - t..c).map(PartyId::from).collect();
            let mut adv = Equivocator {
                corrupted: corrupted.clone(),
                committee: committee.clone(),
            };
            let inputs: Vec<u8> = (0..c).map(|i| (i % 2) as u8).collect();
            let (out, _) = run_committee_concrete(c, &inputs, &mut adv);
            let decided: BTreeSet<u8> = committee
                .iter()
                .filter(|id| !corrupted.contains(id))
                .map(|id| out[id.index()].expect("honest decided"))
                .collect();
            assert_eq!(decided.len(), 1, "c={c}: honest disagree {out:?}");
        }
    }

    #[test]
    fn agreement_with_corrupt_kings_first() {
        // Corrupt the first t members (the first t kings are Byzantine).
        for c in [7usize, 13] {
            let t = max_faults(c);
            let committee: Vec<PartyId> = (0..c).map(PartyId::from).collect();
            let corrupted: BTreeSet<PartyId> = (0..t).map(PartyId::from).collect();
            let mut adv = Equivocator {
                corrupted: corrupted.clone(),
                committee: committee.clone(),
            };
            let inputs: Vec<u8> = (0..c).map(|i| (i % 2) as u8).collect();
            let (out, _) = run_committee_concrete(c, &inputs, &mut adv);
            let decided: BTreeSet<u8> = committee
                .iter()
                .filter(|id| !corrupted.contains(id))
                .map(|id| out[id.index()].expect("honest decided"))
                .collect();
            assert_eq!(decided.len(), 1, "c={c}: honest disagree {out:?}");
        }
    }

    #[test]
    fn validity_under_equivocation_with_unanimous_honest() {
        let c = 10;
        let t = max_faults(c);
        let committee: Vec<PartyId> = (0..c).map(PartyId::from).collect();
        let corrupted: BTreeSet<PartyId> = (c - t..c).map(PartyId::from).collect();
        let mut adv = Equivocator {
            corrupted: corrupted.clone(),
            committee,
        };
        let (out, _) = run_committee_concrete(c, &[1u8; 10], &mut adv);
        for (i, o) in out.iter().enumerate().take(c - t) {
            assert_eq!(*o, Some(1), "validity violated at {i}");
        }
    }

    #[test]
    fn communication_quadratic_in_committee_not_more() {
        let mut adv = SilentAdversary::default();
        let c = 13;
        let (_, report) = run_committee_concrete(c, &vec![1u8; c], &mut adv);
        // Each round every member sends ≤ c messages of 4 bytes (2-byte
        // wire header + variant byte + value): total ≤ rounds * c^2 * msg.
        let bound = rounds_for(c) * (c * c) as u64 * 4;
        assert!(
            report.total_bytes <= bound,
            "{} > {bound}",
            report.total_bytes
        );
    }

    #[test]
    fn rounds_and_faults_helpers() {
        assert_eq!(max_faults(4), 1);
        assert_eq!(max_faults(7), 2);
        assert_eq!(max_faults(3), 0);
        assert!(rounds_for(7) >= 9);
    }

    #[test]
    #[should_panic(expected = "not in committee")]
    fn outsider_rejected() {
        PhaseKing::new(vec![PartyId(0)], PartyId(9), 1u8);
    }
}
